file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fd.dir/bench_fig12_fd.cc.o"
  "CMakeFiles/bench_fig12_fd.dir/bench_fig12_fd.cc.o.d"
  "bench_fig12_fd"
  "bench_fig12_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
