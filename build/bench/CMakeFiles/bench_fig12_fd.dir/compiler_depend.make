# Empty compiler generated dependencies file for bench_fig12_fd.
# This may be replaced when dependencies are built.
