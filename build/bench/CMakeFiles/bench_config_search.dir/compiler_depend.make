# Empty compiler generated dependencies file for bench_config_search.
# This may be replaced when dependencies are built.
