# Empty compiler generated dependencies file for bench_fig10_enterprise.
# This may be replaced when dependencies are built.
