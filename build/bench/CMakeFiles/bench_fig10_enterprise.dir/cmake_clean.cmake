file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_enterprise.dir/bench_fig10_enterprise.cc.o"
  "CMakeFiles/bench_fig10_enterprise.dir/bench_fig10_enterprise.cc.o.d"
  "bench_fig10_enterprise"
  "bench_fig10_enterprise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_enterprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
