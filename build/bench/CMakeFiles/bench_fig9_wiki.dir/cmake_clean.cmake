file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_wiki.dir/bench_fig9_wiki.cc.o"
  "CMakeFiles/bench_fig9_wiki.dir/bench_fig9_wiki.cc.o.d"
  "bench_fig9_wiki"
  "bench_fig9_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
