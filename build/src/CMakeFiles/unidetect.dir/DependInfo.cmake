
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodetect/pattern.cc" "src/CMakeFiles/unidetect.dir/autodetect/pattern.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/autodetect/pattern.cc.o.d"
  "/root/repo/src/autodetect/pmi_detector.cc" "src/CMakeFiles/unidetect.dir/autodetect/pmi_detector.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/autodetect/pmi_detector.cc.o.d"
  "/root/repo/src/baselines/baseline.cc" "src/CMakeFiles/unidetect.dir/baselines/baseline.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/baselines/baseline.cc.o.d"
  "/root/repo/src/baselines/constraint_baselines.cc" "src/CMakeFiles/unidetect.dir/baselines/constraint_baselines.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/baselines/constraint_baselines.cc.o.d"
  "/root/repo/src/baselines/outlier_baselines.cc" "src/CMakeFiles/unidetect.dir/baselines/outlier_baselines.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/baselines/outlier_baselines.cc.o.d"
  "/root/repo/src/baselines/spelling_baselines.cc" "src/CMakeFiles/unidetect.dir/baselines/spelling_baselines.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/baselines/spelling_baselines.cc.o.d"
  "/root/repo/src/corpus/corpus.cc" "src/CMakeFiles/unidetect.dir/corpus/corpus.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/corpus/corpus.cc.o.d"
  "/root/repo/src/corpus/corpus_io.cc" "src/CMakeFiles/unidetect.dir/corpus/corpus_io.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/corpus/corpus_io.cc.o.d"
  "/root/repo/src/corpus/data_pools.cc" "src/CMakeFiles/unidetect.dir/corpus/data_pools.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/corpus/data_pools.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/CMakeFiles/unidetect.dir/corpus/generator.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/corpus/generator.cc.o.d"
  "/root/repo/src/corpus/token_index.cc" "src/CMakeFiles/unidetect.dir/corpus/token_index.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/corpus/token_index.cc.o.d"
  "/root/repo/src/detect/dictionary.cc" "src/CMakeFiles/unidetect.dir/detect/dictionary.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/dictionary.cc.o.d"
  "/root/repo/src/detect/fd_detector.cc" "src/CMakeFiles/unidetect.dir/detect/fd_detector.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/fd_detector.cc.o.d"
  "/root/repo/src/detect/fdr.cc" "src/CMakeFiles/unidetect.dir/detect/fdr.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/fdr.cc.o.d"
  "/root/repo/src/detect/finding.cc" "src/CMakeFiles/unidetect.dir/detect/finding.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/finding.cc.o.d"
  "/root/repo/src/detect/finding_json.cc" "src/CMakeFiles/unidetect.dir/detect/finding_json.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/finding_json.cc.o.d"
  "/root/repo/src/detect/outlier_detector.cc" "src/CMakeFiles/unidetect.dir/detect/outlier_detector.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/outlier_detector.cc.o.d"
  "/root/repo/src/detect/spelling_detector.cc" "src/CMakeFiles/unidetect.dir/detect/spelling_detector.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/spelling_detector.cc.o.d"
  "/root/repo/src/detect/unidetect.cc" "src/CMakeFiles/unidetect.dir/detect/unidetect.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/unidetect.cc.o.d"
  "/root/repo/src/detect/uniqueness_detector.cc" "src/CMakeFiles/unidetect.dir/detect/uniqueness_detector.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/detect/uniqueness_detector.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/unidetect.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/injection.cc" "src/CMakeFiles/unidetect.dir/eval/injection.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/eval/injection.cc.o.d"
  "/root/repo/src/eval/precision.cc" "src/CMakeFiles/unidetect.dir/eval/precision.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/eval/precision.cc.o.d"
  "/root/repo/src/featurize/buckets.cc" "src/CMakeFiles/unidetect.dir/featurize/buckets.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/featurize/buckets.cc.o.d"
  "/root/repo/src/featurize/features.cc" "src/CMakeFiles/unidetect.dir/featurize/features.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/featurize/features.cc.o.d"
  "/root/repo/src/learn/candidates.cc" "src/CMakeFiles/unidetect.dir/learn/candidates.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/learn/candidates.cc.o.d"
  "/root/repo/src/learn/model.cc" "src/CMakeFiles/unidetect.dir/learn/model.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/learn/model.cc.o.d"
  "/root/repo/src/learn/subset_stats.cc" "src/CMakeFiles/unidetect.dir/learn/subset_stats.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/learn/subset_stats.cc.o.d"
  "/root/repo/src/learn/trainer.cc" "src/CMakeFiles/unidetect.dir/learn/trainer.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/learn/trainer.cc.o.d"
  "/root/repo/src/metrics/dispersion.cc" "src/CMakeFiles/unidetect.dir/metrics/dispersion.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/metrics/dispersion.cc.o.d"
  "/root/repo/src/metrics/edit_distance.cc" "src/CMakeFiles/unidetect.dir/metrics/edit_distance.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/metrics/edit_distance.cc.o.d"
  "/root/repo/src/metrics/metric_functions.cc" "src/CMakeFiles/unidetect.dir/metrics/metric_functions.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/metrics/metric_functions.cc.o.d"
  "/root/repo/src/repair/repair.cc" "src/CMakeFiles/unidetect.dir/repair/repair.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/repair/repair.cc.o.d"
  "/root/repo/src/search/config_search.cc" "src/CMakeFiles/unidetect.dir/search/config_search.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/search/config_search.cc.o.d"
  "/root/repo/src/synthesis/fd_synthesis_detector.cc" "src/CMakeFiles/unidetect.dir/synthesis/fd_synthesis_detector.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/synthesis/fd_synthesis_detector.cc.o.d"
  "/root/repo/src/synthesis/string_program.cc" "src/CMakeFiles/unidetect.dir/synthesis/string_program.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/synthesis/string_program.cc.o.d"
  "/root/repo/src/table/column.cc" "src/CMakeFiles/unidetect.dir/table/column.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/table/column.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/unidetect.dir/table/table.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/table/table.cc.o.d"
  "/root/repo/src/table/types.cc" "src/CMakeFiles/unidetect.dir/table/types.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/table/types.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/unidetect.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/csv.cc.o.d"
  "/root/repo/src/util/json.cc" "src/CMakeFiles/unidetect.dir/util/json.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/json.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/unidetect.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/unidetect.dir/util/random.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/unidetect.dir/util/status.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/unidetect.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/unidetect.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/unidetect.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
