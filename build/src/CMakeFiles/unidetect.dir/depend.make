# Empty dependencies file for unidetect.
# This may be replaced when dependencies are built.
