file(REMOVE_RECURSE
  "libunidetect.a"
)
