file(REMOVE_RECURSE
  "CMakeFiles/unidetect_cli.dir/unidetect_cli.cpp.o"
  "CMakeFiles/unidetect_cli.dir/unidetect_cli.cpp.o.d"
  "unidetect_cli"
  "unidetect_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidetect_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
