# Empty dependencies file for unidetect_cli.
# This may be replaced when dependencies are built.
