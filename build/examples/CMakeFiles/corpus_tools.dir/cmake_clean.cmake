file(REMOVE_RECURSE
  "CMakeFiles/corpus_tools.dir/corpus_tools.cpp.o"
  "CMakeFiles/corpus_tools.dir/corpus_tools.cpp.o.d"
  "corpus_tools"
  "corpus_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
