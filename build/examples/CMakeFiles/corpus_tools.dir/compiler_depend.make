# Empty compiler generated dependencies file for corpus_tools.
# This may be replaced when dependencies are built.
