file(REMOVE_RECURSE
  "CMakeFiles/wiki_audit.dir/wiki_audit.cpp.o"
  "CMakeFiles/wiki_audit.dir/wiki_audit.cpp.o.d"
  "wiki_audit"
  "wiki_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
