# Empty dependencies file for wiki_audit.
# This may be replaced when dependencies are built.
