file(REMOVE_RECURSE
  "CMakeFiles/spreadsheet_audit.dir/spreadsheet_audit.cpp.o"
  "CMakeFiles/spreadsheet_audit.dir/spreadsheet_audit.cpp.o.d"
  "spreadsheet_audit"
  "spreadsheet_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spreadsheet_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
