# Empty dependencies file for spreadsheet_audit.
# This may be replaced when dependencies are built.
