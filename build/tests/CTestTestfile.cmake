# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/unidetect_tests[1]_include.cmake")
add_test(perf_smoke "/root/repo/build/tests/perf_smoke")
set_tests_properties(perf_smoke PROPERTIES  LABELS "perf" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;0;")
