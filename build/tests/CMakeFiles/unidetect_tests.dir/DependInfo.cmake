
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/unidetect_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/candidates_test.cc" "tests/CMakeFiles/unidetect_tests.dir/candidates_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/candidates_test.cc.o.d"
  "/root/repo/tests/column_table_test.cc" "tests/CMakeFiles/unidetect_tests.dir/column_table_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/column_table_test.cc.o.d"
  "/root/repo/tests/config_search_test.cc" "tests/CMakeFiles/unidetect_tests.dir/config_search_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/config_search_test.cc.o.d"
  "/root/repo/tests/corpus_io_test.cc" "tests/CMakeFiles/unidetect_tests.dir/corpus_io_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/corpus_io_test.cc.o.d"
  "/root/repo/tests/csv_fuzz_test.cc" "tests/CMakeFiles/unidetect_tests.dir/csv_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/csv_fuzz_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/unidetect_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/detectors_test.cc" "tests/CMakeFiles/unidetect_tests.dir/detectors_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/detectors_test.cc.o.d"
  "/root/repo/tests/dictionary_test.cc" "tests/CMakeFiles/unidetect_tests.dir/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/dictionary_test.cc.o.d"
  "/root/repo/tests/dispersion_test.cc" "tests/CMakeFiles/unidetect_tests.dir/dispersion_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/dispersion_test.cc.o.d"
  "/root/repo/tests/edit_distance_test.cc" "tests/CMakeFiles/unidetect_tests.dir/edit_distance_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/edit_distance_test.cc.o.d"
  "/root/repo/tests/end_to_end_test.cc" "tests/CMakeFiles/unidetect_tests.dir/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/end_to_end_test.cc.o.d"
  "/root/repo/tests/false_positive_test.cc" "tests/CMakeFiles/unidetect_tests.dir/false_positive_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/false_positive_test.cc.o.d"
  "/root/repo/tests/fdr_test.cc" "tests/CMakeFiles/unidetect_tests.dir/fdr_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/fdr_test.cc.o.d"
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/unidetect_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/features_test.cc.o.d"
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/unidetect_tests.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/generator_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/unidetect_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/injection_test.cc" "tests/CMakeFiles/unidetect_tests.dir/injection_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/injection_test.cc.o.d"
  "/root/repo/tests/json_test.cc" "tests/CMakeFiles/unidetect_tests.dir/json_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/json_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/unidetect_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/metric_functions_test.cc" "tests/CMakeFiles/unidetect_tests.dir/metric_functions_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/metric_functions_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/unidetect_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/pattern_test.cc" "tests/CMakeFiles/unidetect_tests.dir/pattern_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/pattern_test.cc.o.d"
  "/root/repo/tests/perturbation_property_test.cc" "tests/CMakeFiles/unidetect_tests.dir/perturbation_property_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/perturbation_property_test.cc.o.d"
  "/root/repo/tests/precision_test.cc" "tests/CMakeFiles/unidetect_tests.dir/precision_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/precision_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/unidetect_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/repair_test.cc" "tests/CMakeFiles/unidetect_tests.dir/repair_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/repair_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/unidetect_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/unidetect_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/string_util_test.cc" "tests/CMakeFiles/unidetect_tests.dir/string_util_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/string_util_test.cc.o.d"
  "/root/repo/tests/subset_stats_test.cc" "tests/CMakeFiles/unidetect_tests.dir/subset_stats_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/subset_stats_test.cc.o.d"
  "/root/repo/tests/synthesis_test.cc" "tests/CMakeFiles/unidetect_tests.dir/synthesis_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/synthesis_test.cc.o.d"
  "/root/repo/tests/thread_determinism_test.cc" "tests/CMakeFiles/unidetect_tests.dir/thread_determinism_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/thread_determinism_test.cc.o.d"
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/unidetect_tests.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/thread_pool_test.cc.o.d"
  "/root/repo/tests/token_index_test.cc" "tests/CMakeFiles/unidetect_tests.dir/token_index_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/token_index_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/unidetect_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/trainer_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/unidetect_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/unidetect_tests.dir/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/unidetect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
