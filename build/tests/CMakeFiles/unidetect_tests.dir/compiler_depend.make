# Empty compiler generated dependencies file for unidetect_tests.
# This may be replaced when dependencies are built.
