#!/usr/bin/env bash
# Full local verification: release build + tests, sanitizer build + tests,
# and every benchmark binary. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build =="
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== address+UB sanitizer build =="
cmake -B build-asan -G Ninja \
  -DUNIDETECT_SANITIZE="address;undefined" \
  -DUNIDETECT_BUILD_BENCHMARKS=OFF -DUNIDETECT_BUILD_EXAMPLES=OFF
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure

echo "== benchmarks =="
for bench in build/bench/bench_*; do
  echo "--- ${bench} ---"
  "${bench}"
done
