#!/usr/bin/env bash
# Full local verification — the same preset matrix CI runs
# (.github/workflows/ci.yml):
#
#   release     optimized build + full test suite (the offline-labelled
#               sharded-build pipeline slice runs first as a fast gate,
#               then a UNIDETECT_DISABLE_SIMD=1 scalar-fallback slice)
#   asan-ubsan  address+UB sanitizer build + full test suite
#   tsan        ThreadSanitizer build + the multithreaded
#               DetectCorpus / ThreadPool / parallel-load tests and the
#               DetectionService Reload/ApplyDelta-under-DetectBatch
#               races plus the background compactor loop
#   lint        -Wall -Wextra -Werror build + the unidetect_lint gate
#               (all passes: determinism, unsafe-bytes,
#               checked-arithmetic; report in build-lint/lint_report.json)
#   tidy        clang-tidy over every TU (skipped if clang-tidy missing)
#   format      clang-format --dry-run (skipped if clang-format missing)
#
# `scripts/check.sh --bench` additionally runs every benchmark binary.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local name="$1"
  echo "== preset: ${name} =="
  cmake --preset "${name}"
  cmake --build --preset "${name}"
}

run_preset release
# Fast fail on the offline pipeline slice (sharded-vs-single-shot
# equivalence, crash-resume) before the full suite, then the seeded
# snapshot fuzz smoke (never-crash contract on mutated snapshots), then
# the delta equivalence suite (base+K deltas byte-identical to the
# Model::Merge fold at every K, through the stack, the service, and the
# compactor).
ctest --preset offline
ctest --preset fuzz
ctest --test-dir build-release --output-on-failure \
  -R 'ModelStack|DeltaSnapshot|ApplyDelta|Compactor'
# Network front end gate: loopback byte-identity (single- and
# multi-shard), typed overload / deadline / per-connection-cap
# shedding, zero torn responses across reload churn, wire robustness,
# the async multiplexing client, and the metric-table validation.
ctest --test-dir build-release --output-on-failure \
  -R 'ServerIntegration|ServerMetric|MetricsRegistry|WireProtocol|ShardedServer|AsyncClient'
ctest --preset release
# Scalar-fallback leg: UNIDETECT_DISABLE_SIMD forces every vector
# kernel onto its scalar path; re-run the suites that exercise them so
# the fallback stays green on machines without AVX2/NEON.
UNIDETECT_DISABLE_SIMD=1 ctest --test-dir build-release --output-on-failure \
  -R 'Simd|Dispersion|SubsetStats|Mpd|MetricFunctions|SnapshotV2|Detect'

run_preset asan-ubsan
ctest --preset asan-ubsan

run_preset tsan
ctest --preset tsan

run_preset lint
ctest --preset lint

if command -v clang-tidy >/dev/null 2>&1; then
  run_preset tidy
else
  echo "== preset: tidy skipped (clang-tidy not installed) =="
fi

echo "== format check =="
scripts/format_check.sh

if [[ "${1:-}" == "--bench" ]]; then
  echo "== benchmarks =="
  for bench in build-release/bench/bench_*; do
    echo "--- ${bench} ---"
    "${bench}"
  done
fi

echo "check.sh: all gates green"
