#!/usr/bin/env bash
# Check-only formatting gate: verifies every tracked C++ file already
# matches .clang-format. Never rewrites anything. Skips (exit 0) with a
# notice when clang-format is not installed, so gcc-only environments
# keep a green matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not found; skipping" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.h')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format_check: no tracked C++ files" >&2
  exit 0
fi

clang-format --dry-run --Werror "${files[@]}"
echo "format_check: ${#files[@]} files clean"
