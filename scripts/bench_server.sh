#!/usr/bin/env bash
# Runs the sharded-front-end saturation generator (bench/bench_server.cc)
# and records BENCH_PR10.json at the repo root: for every io_threads ∈
# {1,2,4,8} × coalesce {on,off}, the offered rate climbs a ladder until
# the server saturates, recording achieved throughput, exact
# p50/p99/p999 latency, and shed counts at every rung. The
# host.hardware_concurrency field in the output qualifies the scaling
# numbers (a 1-core host serializes the shards by construction). The
# sharded-server and async-client tests guard the semantics the numbers
# rest on (byte-identity across shards, typed shedding, graceful
# drain), so they run first.
#
# Usage: scripts/bench_server.sh [--connections N] [--rate R]
#                                [--seconds S] [--steps K]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/bench/bench_server ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_server unidetect_tests
fi

ctest --test-dir build -R 'ServerIntegrationTest|ShardedServerTest|AsyncClientTest' \
  --output-on-failure

build/bench/bench_server "$@" > BENCH_PR10.json

echo "Wrote $(pwd)/BENCH_PR10.json"
cat BENCH_PR10.json
