#!/usr/bin/env bash
# Runs the network-front-end load generator (bench/bench_server.cc) and
# records BENCH_PR9.json at the repo root: achieved QPS and exact
# p50/p99/p999 request latency for three scenarios — coalescing on
# (the serving default), coalescing off (every request its own
# DetectBatch call), and coalescing on under continuous Reload /
# ApplyDelta churn. The server integration tests guard the semantics
# the numbers rest on (byte-identity, typed shedding, zero torn
# responses across swaps), so they run first.
#
# Usage: scripts/bench_server.sh [--connections N] [--rate R] [--seconds S]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/bench/bench_server ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_server unidetect_tests
fi

ctest --test-dir build -R 'ServerIntegrationTest' --output-on-failure

build/bench/bench_server "$@" > BENCH_PR9.json

echo "Wrote $(pwd)/BENCH_PR9.json"
cat BENCH_PR9.json
