#!/usr/bin/env bash
# Runs the hot-path microbenchmarks and records the numbers that back the
# performance claims in BENCH_PR8.json at the repo root: the PR 1 pairs
# (single-pass MPD closest pair vs the three-scan reference,
# merge-sort-tree LR counting vs the linear scan), the PR 3 pairs
# (binary snapshot vs legacy text cold model load, DetectBatch
# throughput at 1 vs 4 threads), the PR 4 offline pipeline sweep
# (BM_OfflineBuild at 1/2/4/8 shards, BM_OfflineMerge fold cost), the
# PR 5 UDSNAP v2 pairs (BM_ModelLoadV2 and BM_ReloadLatency at ver=1
# vs ver=2 across observation counts, BM_LrQueryLoadedModel over owned
# v1 vs mapped v2 storage), and the PR 6 pairs (BM_CountSurprising
# with the SIMD kernels on vs forced scalar, BM_DetectBatchWarmCache
# vs the cold BM_DetectBatch, BM_LrQueryLoadedModel over f16 vs f32
# observation sections), and the PR 8 layered-serving sweep
# (BM_ApplyDelta incremental publish vs the BM_ReloadLatency v2 floor,
# BM_LrQueryLayered at K = 0/1/2/5 resident delta layers, BM_Compact
# fold-and-swap cost). Each optimized path and its baseline live in
# the same binary, so one run captures both sides.
#
# Usage: scripts/bench_perf.sh [extra benchmark args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/bench/bench_perf ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_perf
fi

# The perf- and offline-labelled ctest slices guard the numbers below:
# benchmarks are only meaningful if the optimized paths agree with the
# references and the sharded build is bit-identical to single-shot.
ctest --test-dir build -L 'perf|offline' --output-on-failure

build/bench/bench_perf \
  --benchmark_filter='BM_(MpdProfile|MpdProfileReference|LrQuery|LrQueryLinear|LrQueryLoadedModel|LrQueryLayered|CountSurprising|BoundedEditDistance|EditDistance|LikelihoodRatioLookup|ModelLoadBinary|ModelLoadText|ModelLoadV2|ReloadLatency|ApplyDelta|Compact|DetectBatch|DetectBatchWarmCache|OfflineBuild|OfflineMerge)' \
  --benchmark_format=json \
  --benchmark_out=BENCH_PR8.json \
  --benchmark_out_format=json \
  "$@"

echo "Wrote $(pwd)/BENCH_PR8.json"
