#!/usr/bin/env bash
# Runs the hot-path microbenchmarks and records the numbers that back the
# performance claims in BENCH_PR3.json at the repo root: the PR 1 pairs
# (single-pass MPD closest pair vs the three-scan reference,
# merge-sort-tree LR counting vs the linear scan) plus the PR 3 pairs
# (binary snapshot vs legacy text cold model load, DetectBatch
# throughput at 1 vs 4 threads). Each optimized path and its baseline
# live in the same binary, so one run captures both sides.
#
# Usage: scripts/bench_perf.sh [extra benchmark args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/bench/bench_perf ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_perf
fi

# The perf-labelled ctest slice guards the numbers below: benchmarks are
# only meaningful if the optimized paths agree with the references.
ctest --test-dir build -L perf --output-on-failure

build/bench/bench_perf \
  --benchmark_filter='BM_(MpdProfile|MpdProfileReference|LrQuery|LrQueryLinear|BoundedEditDistance|EditDistance|LikelihoodRatioLookup|ModelLoadBinary|ModelLoadText|DetectBatch)' \
  --benchmark_format=json \
  --benchmark_out=BENCH_PR3.json \
  --benchmark_out_format=json \
  "$@"

echo "Wrote $(pwd)/BENCH_PR3.json"
