#!/usr/bin/env bash
# Runs the hot-path microbenchmarks and records the numbers that back the
# PR 1 performance claims (single-pass MPD closest pair, merge-sort-tree
# LR counting) in BENCH_PR1.json at the repo root. The optimized paths
# and their seed-equivalent reference implementations live in the same
# binary, so one run captures both sides of every before/after pair.
#
# Usage: scripts/bench_perf.sh [extra benchmark args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/bench/bench_perf ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_perf
fi

# The perf-labelled ctest slice guards the numbers below: benchmarks are
# only meaningful if the optimized paths agree with the references.
ctest --test-dir build -L perf --output-on-failure

build/bench/bench_perf \
  --benchmark_filter='BM_(MpdProfile|MpdProfileReference|LrQuery|LrQueryLinear|BoundedEditDistance|EditDistance|LikelihoodRatioLookup)' \
  --benchmark_format=json \
  --benchmark_out=BENCH_PR1.json \
  --benchmark_out_format=json \
  "$@"

echo "Wrote $(pwd)/BENCH_PR1.json"
