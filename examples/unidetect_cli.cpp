// unidetect_cli: a single command-line front end over the library —
// train models, scan CSVs, evaluate on injected corpora, and run the
// Definition 5 configuration search.
//
//   unidetect_cli train  <model> [--tables N] [--seed S] [--from-dir D]
//   unidetect_cli detect <model> <sheet.csv> [--alpha A] [--fdr Q]
//                        [--patterns] [--repair]
//   unidetect_cli eval   <model> [--tables N] [--seed S]
//   unidetect_cli search [--background N] [--targets N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "detect/unidetect.h"
#include "eval/harness.h"
#include "learn/trainer.h"
#include "repair/repair.h"
#include "search/config_search.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

// Minimal flag scanner: --name value (or bare --name for booleans).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }
  std::string Get(const std::string& name, const std::string& fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == "--" + name) return args_[i + 1];
    }
    return fallback;
  }
  long GetInt(const std::string& name, long fallback) const {
    const std::string v = Get(name, "");
    return v.empty() ? fallback : std::atol(v.c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string v = Get(name, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  bool Has(const std::string& name) const {
    for (const auto& arg : args_) {
      if (arg == "--" + name) return true;
    }
    return false;
  }
  // First argument that is not a flag or a flag value.
  std::string Positional(size_t index) const {
    size_t seen = 0;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) == 0) {
        ++i;  // skip the flag's value
        continue;
      }
      if (seen++ == index) return args_[i];
    }
    return "";
  }

 private:
  std::vector<std::string> args_;
};

int CmdTrain(const Flags& flags) {
  const std::string model_path = flags.Positional(0);
  if (model_path.empty()) {
    std::fprintf(stderr, "train: missing <model> path\n");
    return 2;
  }
  Corpus corpus;
  const std::string from_dir = flags.Get("from-dir", "");
  if (!from_dir.empty()) {
    auto loaded = LoadCorpusFromDirectory(from_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "train: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).ValueOrDie();
    std::printf("Loaded %zu tables from %s\n", corpus.tables.size(),
                from_dir.c_str());
  } else {
    const auto tables = static_cast<size_t>(flags.GetInt("tables", 25000));
    const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    corpus = GenerateCorpus(WebCorpusSpec(tables, seed)).corpus;
    std::printf("Generated background corpus: %zu tables\n",
                corpus.tables.size());
  }
  Trainer trainer;
  const Model model = trainer.Train(corpus);
  const Status st = model.Save(model_path);
  if (!st.ok()) {
    std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Model (%zu subsets, %llu observations) saved to %s\n",
              model.num_subsets(),
              static_cast<unsigned long long>(model.num_observations()),
              model_path.c_str());
  return 0;
}

int CmdDetect(const Flags& flags) {
  const std::string model_path = flags.Positional(0);
  const std::string csv_path = flags.Positional(1);
  if (model_path.empty() || csv_path.empty()) {
    std::fprintf(stderr, "detect: usage: detect <model> <sheet.csv>\n");
    return 2;
  }
  auto model = Model::Load(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "detect: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto csv = ReadCsvFile(csv_path);
  if (!csv.ok()) {
    std::fprintf(stderr, "detect: %s\n", csv.status().ToString().c_str());
    return 1;
  }
  auto table = Table::FromCsv(*csv, csv_path);
  if (!table.ok()) {
    std::fprintf(stderr, "detect: %s\n", table.status().ToString().c_str());
    return 1;
  }

  UniDetectOptions options;
  options.alpha = flags.GetDouble("alpha", 0.05);
  options.fdr_q = flags.GetDouble("fdr", 0.0);
  options.set_detect(ErrorClass::kPattern, flags.Has("patterns"));
  options.use_dictionary = true;
  UniDetect detector(&*model, options);
  Corpus one;
  one.tables.push_back(std::move(table).ValueOrDie());
  const std::vector<Finding> findings = detector.DetectCorpus(one);

  if (flags.Has("json")) {
    std::printf("%s\n", FindingsToJson(findings).c_str());
    return 0;
  }
  if (findings.empty()) {
    std::printf("no findings at alpha=%g\n", options.alpha);
    return 0;
  }
  const Repairer repairer(&*model);
  for (const Finding& finding : findings) {
    std::printf("[%s] LR=%.4g col=%zu row(s)=",
                ErrorClassToString(finding.error_class), finding.score,
                finding.column);
    for (size_t row : finding.rows) std::printf("%zu ", row);
    std::printf("value=%s\n    %s\n", finding.value.c_str(),
                finding.explanation.c_str());
    if (flags.Has("repair")) {
      for (const auto& fix : repairer.Suggest(one.tables[0], finding)) {
        if (fix.action == RepairAction::kReplace) {
          std::printf("    fix: '%s' -> '%s' (%s)\n", fix.current.c_str(),
                      fix.suggested.c_str(), fix.rationale.c_str());
        } else {
          std::printf("    fix: review/remove row %zu (%s)\n", fix.row,
                      fix.rationale.c_str());
        }
      }
    }
  }
  return 0;
}

int CmdEval(const Flags& flags) {
  const std::string model_path = flags.Positional(0);
  if (model_path.empty()) {
    std::fprintf(stderr, "eval: missing <model> path\n");
    return 2;
  }
  auto model = Model::Load(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "eval: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const auto tables = static_cast<size_t>(flags.GetInt("tables", 1500));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 777));
  Experiment experiment{std::move(model).ValueOrDie(), {}, {}};
  CorpusSpec spec = WebCorpusSpec(tables, seed);
  spec.name = "eval";
  experiment.test = GenerateCorpus(spec);
  experiment.truth = InjectErrors(&experiment.test, InjectionSpec());
  std::printf("evaluating on %zu tables with %zu injected errors\n", tables,
              experiment.truth.errors.size());

  std::vector<PrecisionCurve> curves;
  for (ErrorClass cls : {ErrorClass::kOutlier, ErrorClass::kSpelling,
                         ErrorClass::kUniqueness, ErrorClass::kFd}) {
    PrecisionCurve curve = RunUniDetect(experiment, cls);
    curve.method = std::string("UniDetect/") + ErrorClassToString(cls);
    curves.push_back(std::move(curve));
  }
  PrintCurves("Precision@K by error class", curves);
  return 0;
}

int CmdSearch(const Flags& flags) {
  const auto background_tables =
      static_cast<size_t>(flags.GetInt("background", 6000));
  const auto target_tables =
      static_cast<size_t>(flags.GetInt("targets", 1500));
  const AnnotatedCorpus background =
      GenerateCorpus(WebCorpusSpec(background_tables, 1));
  AnnotatedCorpus targets = GenerateCorpus(WebCorpusSpec(target_tables, 555));
  InjectErrors(&targets, InjectionSpec());
  const auto results =
      SearchConfigurations(background.corpus, targets.corpus);
  std::printf("%-42s %12s %12s\n", "configuration", "discoveries",
              "candidates");
  for (const auto& result : results) {
    std::printf("%-42s %12zu %12zu\n", result.config.ToString().c_str(),
                result.discoveries, result.candidates);
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "unidetect_cli <command> ...\n"
      "  train  <model> [--tables N] [--seed S] [--from-dir D]\n"
      "  detect <model> <sheet.csv> [--alpha A] [--fdr Q] [--patterns]"
      " [--repair] [--json]\n"
      "  eval   <model> [--tables N] [--seed S]\n"
      "  search [--background N] [--targets N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  const Flags flags(argc, argv, 2);
  if (std::strcmp(argv[1], "train") == 0) return CmdTrain(flags);
  if (std::strcmp(argv[1], "detect") == 0) return CmdDetect(flags);
  if (std::strcmp(argv[1], "eval") == 0) return CmdEval(flags);
  if (std::strcmp(argv[1], "search") == 0) return CmdSearch(flags);
  return Usage();
}
