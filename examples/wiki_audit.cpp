// Wiki audit: the paper's headline use case — scan a Wikipedia-style
// table corpus with a model trained on the general web, and print the
// most confident findings of every class ("surprising discoveries of
// thousands of FD violations, numeric outliers, spelling mistakes").
//
//   $ ./build/examples/wiki_audit [num_test_tables] [top_k]

#include <cstdio>
#include <cstdlib>

#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "eval/harness.h"
#include "eval/injection.h"
#include "util/logging.h"

using namespace unidetect;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const size_t num_tables =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 1500;
  const size_t top_k = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 8;

  ExperimentConfig config;
  CorpusSpec test_spec = WikiCorpusSpec(num_tables, /*seed=*/888);
  test_spec.name = "WIKI";
  std::printf("Training on WEB (%zu tables), auditing WIKI (%zu tables)\n",
              config.train_tables, num_tables);
  const Experiment experiment = BuildExperiment(test_spec, config);

  UniDetectOptions options;
  options.alpha = 1.0;
  options.use_dictionary = true;
  UniDetect detector(&experiment.model, options);
  const std::vector<Finding> findings =
      detector.DetectCorpus(experiment.test.corpus);

  for (ErrorClass cls : {ErrorClass::kOutlier, ErrorClass::kSpelling,
                         ErrorClass::kUniqueness, ErrorClass::kFd}) {
    std::printf("\n== top %s findings ==\n", ErrorClassToString(cls));
    size_t shown = 0;
    for (const Finding& finding : findings) {
      if (finding.error_class != cls) continue;
      const bool injected = experiment.truth.Matches(finding);
      std::printf("%-5s LR=%-10.3g %-28s [%s] %s\n",
                  injected ? "TRUE" : "??", finding.score,
                  finding.value.c_str(), finding.table_name.c_str(),
                  finding.explanation.c_str());
      if (++shown >= top_k) break;
    }
    if (shown == 0) std::printf("(none)\n");
  }
  return 0;
}
