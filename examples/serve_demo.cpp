// serve_demo: the serving tier end to end — load a model snapshot into a
// DetectionService with the findings cache enabled, answer batched
// detection requests (the repeated batch is served from the cache),
// hot-swap the model with Reload() while requests keep flowing, rebuild
// the model through the sharded offline pipeline (plan -> build ->
// merge) and hot-swap the merged snapshot in, publish an incremental
// delta with ApplyDelta() and fold it away with the compactor, and
// print the service counters including the cache hit/miss/eviction
// numbers and the delta-chain gauges.
// Without a model path it trains a small model first (and saves it as a
// binary snapshot) so the demo is self-contained.
//
//   $ ./build/examples/serve_demo [model_path] [num_request_tables]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "eval/injection.h"
#include "learn/trainer.h"
#include "offline/compactor.h"
#include "offline/delta_build.h"
#include "offline/offline_build.h"
#include "server/client.h"
#include "server/server.h"
#include "serving/detection_service.h"
#include "util/logging.h"

using namespace unidetect;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const std::string path = argc > 1 ? argv[1] : "serve_demo.model";
  const size_t num_tables =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 64;

  // Ensure a model snapshot exists at `path` (train one if not).
  if (!Model::Load(path).ok()) {
    std::printf("No model at %s; training a small one...\n", path.c_str());
    Trainer trainer;
    const Model model =
        trainer.Train(GenerateCorpus(WebCorpusSpec(2000, 7)).corpus);
    const Status st = model.Save(path);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Stand up the service with the findings cache enabled: repeated
  // batches over unchanged tables are answered from the per-column
  // fingerprint -> findings LRU instead of re-running detection.
  auto service = DetectionService::Create(path, UniDetectOptions{},
                                          /*findings_cache_bytes=*/8u << 20);
  if (!service.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("Serving model %s (generation %llu)\n", path.c_str(),
              static_cast<unsigned long long>((*service)->generation()));

  // A batch of "request" tables with injected errors.
  AnnotatedCorpus requests = GenerateCorpus(WebCorpusSpec(num_tables, 11));
  InjectErrors(&requests, InjectionSpec{});

  const DetectionService::BatchResult batch =
      (*service)->DetectBatch(requests.corpus.tables, nullptr,
                              /*num_threads=*/0);
  size_t total = 0;
  for (const auto& findings : batch.per_table) total += findings.size();
  std::printf("Batch of %zu tables -> %zu findings (generation %llu)\n",
              batch.per_table.size(), total,
              static_cast<unsigned long long>(batch.generation));

  // The same batch again: every table fingerprint hits the findings
  // cache, so the responses skip detection entirely.
  const DetectionService::BatchResult warm =
      (*service)->DetectBatch(requests.corpus.tables, nullptr,
                              /*num_threads=*/0);
  size_t warm_total = 0;
  for (const auto& findings : warm.per_table) warm_total += findings.size();
  std::printf("Same batch again (warm cache) -> %zu findings\n", warm_total);

  // Per-request override: stricter alpha, fewer findings.
  UniDetectOptions strict;
  strict.alpha = 1e-4;
  const DetectionService::BatchResult strict_batch =
      (*service)->DetectBatch(requests.corpus.tables, &strict);
  size_t strict_total = 0;
  for (const auto& findings : strict_batch.per_table) {
    strict_total += findings.size();
  }
  std::printf("Same batch at alpha=1e-4 -> %zu findings\n", strict_total);

  // Hot swap: reload the same file; generation advances, service keeps
  // serving throughout (see DetectionServiceTest for the racing proof).
  const Status reload = (*service)->Reload(path);
  if (!reload.ok()) {
    std::fprintf(stderr, "reload: %s\n", reload.ToString().c_str());
    return 1;
  }
  std::printf("Reloaded -> generation %llu\n",
              static_cast<unsigned long long>((*service)->generation()));

  // Production retrain path: the sharded offline pipeline (DESIGN.md
  // section 11) crunches a corpus directory into per-shard partials,
  // merges them into a snapshot, and the service hot-swaps it in. In
  // deployment plan/build/merge run out-of-process (tools/offline_build
  // plan|build|merge); the service only ever sees the merged file.
  const std::string corpus_dir = path + ".corpus";
  const std::string build_dir = path + ".offline";
  std::filesystem::remove_all(corpus_dir);
  std::filesystem::remove_all(build_dir);
  Status offline = SaveCorpusToDirectory(
      GenerateCorpus(WebCorpusSpec(200, 19)).corpus, corpus_dir);
  if (offline.ok()) {
    offline = PlanOfflineBuild({corpus_dir}, TrainerOptions{},
                               /*num_shards=*/4, build_dir);
  }
  if (offline.ok()) {
    OfflineBuildOptions build_options;
    build_options.num_threads = 4;
    offline = RunOfflineBuild(build_dir, build_options).status();
  }
  if (offline.ok()) offline = MergeOfflineBuildToFile(build_dir, path);
  if (offline.ok()) offline = (*service)->Reload(path);
  if (!offline.ok()) {
    std::fprintf(stderr, "offline rebuild: %s\n",
                 offline.ToString().c_str());
    return 1;
  }
  std::printf(
      "Offline rebuild (4 shards) merged and reloaded -> generation %llu\n",
      static_cast<unsigned long long>((*service)->generation()));

  // Incremental learning (DESIGN.md section 15): when new shards arrive,
  // train a small delta over only them, publish it with ApplyDelta (a
  // chain-hash check plus a pointer swap — microseconds, not a rebuild),
  // then fold the chain back into a fresh base with the compactor.
  const std::string delta_dir = path + ".delta_corpus";
  const std::string delta_path = path + ".delta1.udsnap";
  std::filesystem::remove_all(delta_dir);
  Status delta_status = SaveCorpusToDirectory(
      GenerateCorpus(WebCorpusSpec(40, 23)).corpus, delta_dir);
  if (delta_status.ok()) {
    DeltaBuildSpec spec;
    spec.base_path = path;
    spec.input_dirs = {delta_dir};
    spec.out_path = delta_path;
    delta_status = BuildDeltaSnapshot(spec).status();
  }
  if (delta_status.ok()) delta_status = (*service)->ApplyDelta(delta_path);
  if (!delta_status.ok()) {
    std::fprintf(stderr, "delta: %s\n", delta_status.ToString().c_str());
    return 1;
  }
  std::printf("Delta trained over 40 new tables and applied -> "
              "generation %llu, %zu layers\n",
              static_cast<unsigned long long>((*service)->generation()),
              (*service)->Layers().paths.size());

  // The layered service answers byte-identically to the merged fold;
  // the warm cache entries from the pre-delta generation self-invalidate
  // (the generation is part of the cache key), so this batch re-detects.
  const DetectionService::BatchResult layered =
      (*service)->DetectBatch(requests.corpus.tables, nullptr,
                              /*num_threads=*/0);
  size_t layered_total = 0;
  for (const auto& findings : layered.per_table) {
    layered_total += findings.size();
  }
  std::printf("Batch over base+delta -> %zu findings (generation %llu)\n",
              layered_total,
              static_cast<unsigned long long>(layered.generation));

  // Compact: fold base+delta into a fresh base (bit-identical to the
  // offline Model::Merge fold) and swap it in via the generation CAS.
  // In deployment Compactor::Start() runs this loop in the background.
  CompactorOptions compact_options;
  compact_options.output_path = path + ".compacted.udsnap";
  Compactor compactor(service->get(), compact_options);
  const auto compacted = compactor.CompactOnce();
  if (!compacted.ok()) {
    std::fprintf(stderr, "compact: %s\n",
                 compacted.status().ToString().c_str());
    return 1;
  }
  std::printf("Compacted %s -> generation %llu, back to %zu layer(s)\n",
              compact_options.output_path.c_str(),
              static_cast<unsigned long long>((*service)->generation()),
              (*service)->Layers().paths.size());

  // Network front end (DESIGN.md section 16): the same service behind a
  // real socket. Port 0 picks an ephemeral port; one server thread
  // multiplexes UDWIRE and HTTP on it. The loopback client's findings
  // are byte-identical to a direct DetectBatch call — the wire encodes
  // cells exactly, and the coalescer slices responses back per request.
  ServerOptions server_options;
  server_options.port = 0;
  DetectionServer server(service->get(), server_options);
  const Status served = server.Start();
  if (!served.ok()) {
    std::fprintf(stderr, "server: %s\n", served.ToString().c_str());
    return 1;
  }
  std::printf("\nServing on 127.0.0.1:%u (UDWIRE + HTTP)\n", server.port());

  auto client = UdwireClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  wire::DetectRequest net_request;
  net_request.request_id = 42;
  net_request.deadline_ms = 30000;
  net_request.tables.assign(requests.corpus.tables.begin(),
                            requests.corpus.tables.begin() +
                                std::min<size_t>(8, num_tables));
  auto net_response = client->Detect(net_request);
  if (!net_response.ok() ||
      net_response->code != wire::WireCode::kOk) {
    std::fprintf(stderr, "detect over wire failed\n");
    return 1;
  }
  size_t net_total = 0;
  for (const auto& findings : net_response->per_table) {
    net_total += findings.size();
  }
  std::printf("UDWIRE round trip: %zu tables -> %zu findings "
              "(generation %llu)\n",
              net_response->per_table.size(), net_total,
              static_cast<unsigned long long>(net_response->generation));

  // The HTTP adapter answers operational probes on the same port.
  const auto healthz = HttpFetch("127.0.0.1", server.port(), "GET",
                                 "/healthz");
  std::printf("GET /healthz -> %s", healthz.ok()
                                        ? healthz->substr(0, healthz->find(
                                                                 "\r\n"))
                                              .c_str()
                                        : "error");
  std::printf("\n");
  server.Stop();
  std::printf("Server drained and stopped; %llu requests served over "
              "the wire\n\n",
              static_cast<unsigned long long>(
                  server.metrics().Count(ServerMetric::kRequests)));

  const ServiceStats stats = (*service)->Stats();
  std::printf("Stats: %llu requests, %llu tables, %llu findings, "
              "%llu reloads, p50 < %.0fus, p99 < %.0fus\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.tables),
              static_cast<unsigned long long>(stats.findings),
              static_cast<unsigned long long>(stats.reloads),
              stats.latency_p50_us, stats.latency_p99_us);
  std::printf("Reload latency: p50 < %.0fus, p99 < %.0fus\n",
              stats.reload_latency_p50_us, stats.reload_latency_p99_us);
  std::printf("Model storage: %llu resident bytes, %llu mapped bytes%s\n",
              static_cast<unsigned long long>(stats.model_resident_bytes),
              static_cast<unsigned long long>(stats.model_mapped_bytes),
              stats.model_mapped_bytes > 0 ? " (zero-copy v2 snapshot)" : "");
  std::printf("Findings cache: %llu hits / %llu misses (%.0f%% hit rate), "
              "%llu entries, %llu resident bytes, %llu evictions\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              100.0 * stats.cache_hit_rate,
              static_cast<unsigned long long>(stats.cache_entries),
              static_cast<unsigned long long>(stats.cache_resident_bytes),
              static_cast<unsigned long long>(stats.cache_evictions));
  std::printf("Delta chain: %llu resident delta layers, %llu delta bytes, "
              "%llu deltas applied, %llu compactions\n",
              static_cast<unsigned long long>(stats.delta_layers),
              static_cast<unsigned long long>(stats.delta_resident_bytes),
              static_cast<unsigned long long>(stats.applied_deltas),
              static_cast<unsigned long long>(stats.compactions));
  return 0;
}
