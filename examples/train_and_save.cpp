// Train a Uni-Detect model on a generated background corpus and save it
// to disk — the offline "learning" half of the system (Section 2.2.3).
// The saved model is what an application like spreadsheet_audit ships
// with: online detection then needs no corpus at all.
//
//   $ ./build/examples/train_and_save [model_path] [num_tables] [seed]

#include <cstdio>
#include <cstdlib>

#include "corpus/generator.h"
#include "learn/trainer.h"
#include "util/logging.h"

using namespace unidetect;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "unidetect.model";
  const size_t num_tables =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 10000;
  const uint64_t seed =
      argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 1;

  std::printf("Generating background corpus T: %zu web tables (seed %llu)\n",
              num_tables, static_cast<unsigned long long>(seed));
  const AnnotatedCorpus background =
      GenerateCorpus(WebCorpusSpec(num_tables, seed));
  const CorpusStats stats = background.corpus.Stats();
  std::printf("  avg %.1f columns x %.1f rows per table\n",
              stats.avg_columns_per_table, stats.avg_rows_per_table);

  Trainer trainer;
  const Model model = trainer.Train(background.corpus);
  std::printf("Trained: %zu feature subsets, %llu observations, %zu tokens\n",
              model.num_subsets(),
              static_cast<unsigned long long>(model.num_observations()),
              model.token_index().num_tokens());

  const Status st = model.Save(path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Model saved to %s\n", path.c_str());
  std::printf("Use it with: ./build/examples/spreadsheet_audit <csv> %s\n",
              path.c_str());
  return 0;
}
