// Quickstart: train a Uni-Detect model on a background corpus, then scan
// a small spreadsheet (with four planted errors) and print the ranked
// findings.
//
//   $ ./build/examples/quickstart
//
// Steps:
//   1. generate a background web-table corpus T (stands in for the
//      paper's 135M crawled tables),
//   2. Trainer::Train -> Model (the offline "learning" component),
//   3. UniDetect::DetectTable on user data (the online component).

#include <cstdio>

#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "table/table.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

// A parts inventory with four planted problems:
//   - part "KV118-552B2K7" entered twice           (uniqueness violation)
//   - supplier city "Chicago"/"Chicagoo"           (spelling mistake)
//   - price 2497.0 with a decimal slip ("2.497")   (numeric outlier)
//   - one part mapped to two different bins        (FD violation)
Table MakeDemoSpreadsheet() {
  Table table("parts.xlsx");
  auto add = [&](const char* name, std::vector<std::string> cells) {
    Status st = table.AddColumn(Column(name, std::move(cells)));
    UNIDETECT_CHECK(st.ok());
  };
  add("Part No.", {"KV118-552B2K7", "MP241-118A3T9", "BX770-031C4R2",
                   "KV118-552B2K7", "LN402-877D1Q5", "RW655-209E8S3",
                   "TC903-446F2U1", "GH128-335G7V6", "DM519-602H4W8",
                   "PS284-771J9X2", "QA067-148K3Y5", "VB836-925L6Z4"});
  add("Supplier City", {"Chicago", "Boston", "Denver", "Chicagoo", "Seattle",
                        "Atlanta", "Houston", "Phoenix", "Toronto",
                        "Montreal", "Vancouver", "Dublin"});
  add("Price", {"2.497", "2815.5", "2641", "2702.25", "2588", "2776.4",
                "2694", "2745.75", "2611.3", "2838", "2569.9", "2723.6"});
  add("Bin", {"A-01", "A-02", "A-03", "B-07", "B-05", "B-06", "C-07", "C-08",
              "C-09", "D-10", "D-11", "D-12"});
  return table;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  std::printf("Generating background corpus T ...\n");
  const AnnotatedCorpus background =
      GenerateCorpus(WebCorpusSpec(/*num_tables=*/4000, /*seed=*/1));

  std::printf("Training Uni-Detect model on %zu tables ...\n",
              background.corpus.tables.size());
  Trainer trainer;
  const Model model = trainer.Train(background.corpus);
  std::printf("Model: %zu feature subsets, %llu observations\n",
              model.num_subsets(),
              static_cast<unsigned long long>(model.num_observations()));

  const Table spreadsheet = MakeDemoSpreadsheet();
  std::printf("\nScanning %s (%zu columns x %zu rows) ...\n",
              spreadsheet.name().c_str(), spreadsheet.num_columns(),
              spreadsheet.num_rows());

  UniDetectOptions options;
  options.alpha = 0.3;  // keep moderately confident findings for the demo
  UniDetect detector(&model, options);
  const std::vector<Finding> findings = detector.DetectTable(spreadsheet);

  if (findings.empty()) {
    std::printf("No errors detected.\n");
    return 0;
  }
  std::printf("\n%-12s %-24s %-10s %s\n", "class", "value", "LR", "why");
  for (const Finding& finding : findings) {
    std::printf("%-12s %-24s %-10.4g %s\n",
                ErrorClassToString(finding.error_class),
                finding.value.c_str(), finding.score,
                finding.explanation.c_str());
  }
  return 0;
}
