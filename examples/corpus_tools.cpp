// Corpus tools: export a synthetic background corpus to a directory of
// CSV files, then train a model back from that directory — the workflow
// a downstream user follows to train Uni-Detect on their own table
// collection (point it at a folder of CSVs).
//
//   $ ./build/examples/corpus_tools export <dir> [num_tables] [seed]
//   $ ./build/examples/corpus_tools train <dir> <model_path>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "learn/trainer.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

int Export(const char* dir, size_t num_tables, uint64_t seed) {
  const AnnotatedCorpus corpus =
      GenerateCorpus(WebCorpusSpec(num_tables, seed));
  const Status st = SaveCorpusToDirectory(corpus.corpus, dir);
  if (!st.ok()) {
    std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Wrote %zu CSV tables to %s\n", corpus.corpus.tables.size(),
              dir);
  return 0;
}

int TrainFromDirectory(const char* dir, const char* model_path) {
  auto corpus = LoadCorpusFromDirectory(dir);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu tables from %s\n", corpus->tables.size(), dir);
  Trainer trainer;
  const Model model = trainer.Train(*corpus);
  std::printf("Trained: %zu subsets, %llu observations\n",
              model.num_subsets(),
              static_cast<unsigned long long>(model.num_observations()));
  const Status st = model.Save(model_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Model saved to %s\n", model_path);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  corpus_tools export <dir> [num_tables] [seed]\n"
               "  corpus_tools train <dir> <model_path>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "export") == 0) {
    const size_t num_tables =
        argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 2000;
    const uint64_t seed =
        argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 1;
    return Export(argv[2], num_tables, seed);
  }
  if (std::strcmp(argv[1], "train") == 0 && argc >= 4) {
    return TrainFromDirectory(argv[2], argv[3]);
  }
  return Usage();
}
