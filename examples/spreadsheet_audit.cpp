// Spreadsheet audit: the paper's motivating "mom-and-pop shop" scenario —
// scan a user CSV with a pre-trained model and report likely data errors,
// the way an error-checking feature embedded in Excel/Sheets would.
//
//   $ ./build/examples/spreadsheet_audit [sheet.csv] [model_path]
//
// Without arguments it writes and audits a demo sales sheet containing a
// missed decimal point, a duplicated invoice number, and a misspelled
// supplier — the exact error kinds the introduction motivates.

#include <cstdio>
#include <fstream>

#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "repair/repair.h"
#include "table/table.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

const char* kDemoCsv =
    "Invoice,Supplier,Item,Unit Price,Quantity\n"
    "INV-20240101,Acme Paper,Letter reams,24.99,40\n"
    "INV-20240102,Bright Office,Toner black,89.50,6\n"
    "INV-20240103,Acme Paper,A4 reams,23.75,35\n"
    "INV-20240104,Nordic Desk,Standing desk,499.00,2\n"
    "INV-20240105,Acme Papr,Letter reams,24.99,25\n"
    "INV-20240106,Bright Office,Toner cyan,9450,5\n"
    "INV-20240107,City Movers,Delivery,75.00,1\n"
    "INV-20240103,Nordic Desk,Desk lamp,45.25,8\n"
    "INV-20240109,Acme Paper,Letter reams,24.99,30\n"
    "INV-20240110,Bright Office,Paper clips,3.15,50\n"
    "INV-20240111,Nordic Desk,Monitor arm,129.00,4\n"
    "INV-20240112,City Movers,Delivery,80.00,1\n";

Result<Model> ObtainModel(const char* model_path) {
  if (model_path != nullptr) {
    std::printf("Loading model from %s ...\n", model_path);
    return Model::Load(model_path);
  }
  std::printf("No model given; training a small one on the fly ...\n");
  Trainer trainer;
  return trainer.Train(GenerateCorpus(WebCorpusSpec(5000, 1)).corpus);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  // 1. Load the spreadsheet.
  Result<CsvData> csv = [&]() -> Result<CsvData> {
    if (argc > 1) return ReadCsvFile(argv[1]);
    std::printf("No CSV given; using the built-in demo sales sheet.\n");
    return ParseCsv(kDemoCsv);
  }();
  if (!csv.ok()) {
    std::fprintf(stderr, "cannot read sheet: %s\n",
                 csv.status().ToString().c_str());
    return 1;
  }
  Result<Table> table =
      Table::FromCsv(*csv, argc > 1 ? argv[1] : "demo_sales.csv");
  if (!table.ok()) {
    std::fprintf(stderr, "cannot interpret sheet: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("Sheet: %zu columns x %zu rows\n", table->num_columns(),
              table->num_rows());

  // 2. Obtain a model (pre-trained file, or train a small one now).
  Result<Model> model = ObtainModel(argc > 2 ? argv[2] : nullptr);
  if (!model.ok()) {
    std::fprintf(stderr, "no model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3. Scan and report.
  UniDetectOptions options;
  options.alpha = 0.15;
  options.use_dictionary = true;
  UniDetect detector(&*model, options);
  const std::vector<Finding> findings = detector.DetectTable(*table);

  if (findings.empty()) {
    std::printf("\nNo likely errors found.\n");
    return 0;
  }
  std::printf("\n%zu likely error(s), most confident first:\n\n",
              findings.size());
  const Repairer repairer(&*model);
  for (const Finding& finding : findings) {
    const Column& column = table->column(finding.column);
    std::printf("  [%s] column '%s'", ErrorClassToString(finding.error_class),
                column.name().c_str());
    if (finding.column2 != Finding::kNoColumn) {
      std::printf(" -> '%s'", table->column(finding.column2).name().c_str());
    }
    std::printf(", row(s)");
    for (size_t row : finding.rows) std::printf(" %zu", row + 2);  // 1-based + header
    std::printf(": %s\n      %s\n", finding.value.c_str(),
                finding.explanation.c_str());
    for (const RepairSuggestion& fix : repairer.Suggest(*table, finding)) {
      if (fix.action == RepairAction::kReplace) {
        std::printf("      suggested fix: '%s' -> '%s' (%s)\n",
                    fix.current.c_str(), fix.suggested.c_str(),
                    fix.rationale.c_str());
      } else {
        std::printf("      suggested fix: review/remove row %zu (%s)\n",
                    fix.row + 2, fix.rationale.c_str());
      }
    }
  }
  return 0;
}
