#include "featurize/features.h"

#include <gtest/gtest.h>

#include "featurize/buckets.h"

namespace unidetect {
namespace {

// ---------------------------------------------------------------------------
// Bucketizers: boundaries are inclusive on the right, per the paper's
// "(0-20], (20-50], ..." notation.

TEST(BucketsTest, RowCountBoundaries) {
  EXPECT_EQ(RowCountBucket(1), 0);
  EXPECT_EQ(RowCountBucket(20), 0);
  EXPECT_EQ(RowCountBucket(21), 1);
  EXPECT_EQ(RowCountBucket(50), 1);
  EXPECT_EQ(RowCountBucket(100), 2);
  EXPECT_EQ(RowCountBucket(500), 3);
  EXPECT_EQ(RowCountBucket(1000), 4);
  EXPECT_EQ(RowCountBucket(1001), 5);
  EXPECT_EQ(RowCountBucket(1000000), 5);
}

TEST(BucketsTest, TokenLengthBoundaries) {
  EXPECT_EQ(TokenLengthBucket(3.0), 0);
  EXPECT_EQ(TokenLengthBucket(5.0), 0);
  EXPECT_EQ(TokenLengthBucket(5.1), 1);
  EXPECT_EQ(TokenLengthBucket(10.0), 1);
  EXPECT_EQ(TokenLengthBucket(15.0), 2);
  EXPECT_EQ(TokenLengthBucket(20.0), 3);
  EXPECT_EQ(TokenLengthBucket(21.0), 4);
}

TEST(BucketsTest, PrevalenceBoundaries) {
  EXPECT_EQ(PrevalenceBucket(0.0), 0);
  EXPECT_EQ(PrevalenceBucket(50.0), 0);
  EXPECT_EQ(PrevalenceBucket(100.0), 1);
  EXPECT_EQ(PrevalenceBucket(1000.0), 2);
  EXPECT_EQ(PrevalenceBucket(10000.0), 3);
  EXPECT_EQ(PrevalenceBucket(100000.0), 4);
  EXPECT_EQ(PrevalenceBucket(100001.0), 5);
}

TEST(BucketsTest, LeftnessCapped) {
  EXPECT_EQ(LeftnessBucket(0), 0);
  EXPECT_EQ(LeftnessBucket(2), 2);
  EXPECT_EQ(LeftnessBucket(3), 3);
  EXPECT_EQ(LeftnessBucket(99), 3);
}

// ---------------------------------------------------------------------------
// Feature keys.

TEST(FeaturesTest, ClassesNeverCollide) {
  // Even with featurization disabled, different error classes get
  // different keys (the class tag lives in the low bits).
  FeaturizeOptions off;
  off.enabled = false;
  Column col("c", {"a", "b", "c"});
  MpdProfile profile;
  TokenIndex index;
  const FeatureKey outlier = OutlierFeatures(col, off);
  const FeatureKey spelling = SpellingFeatures(col, profile, off);
  const FeatureKey uniqueness = UniquenessFeatures(col, 0, index, off);
  const FeatureKey fd = FdFeatures(col, col, index, off);
  EXPECT_FALSE(outlier == spelling);
  EXPECT_FALSE(spelling == uniqueness);
  EXPECT_FALSE(uniqueness == fd);
  EXPECT_FALSE(outlier == fd);
}

TEST(FeaturesTest, DisabledFeaturizationCollapsesSubsets) {
  FeaturizeOptions off;
  off.enabled = false;
  Column ints("c", {"1", "2", "3"});
  Column strings("c", {"a", "b", "c"});
  EXPECT_TRUE(OutlierFeatures(ints, off) == OutlierFeatures(strings, off));
}

TEST(FeaturesTest, TypeSeparatesSubsets) {
  FeaturizeOptions on;
  Column ints("c", {"1", "2", "3"});
  Column floats("c", {"1.5", "2.5", "3.5"});
  EXPECT_FALSE(OutlierFeatures(ints, on) == OutlierFeatures(floats, on));
}

TEST(FeaturesTest, RowBucketSeparatesSubsets) {
  FeaturizeOptions on;
  std::vector<std::string> small(10, "1");
  std::vector<std::string> large(200, "1");
  for (size_t i = 0; i < small.size(); ++i) small[i] = std::to_string(i);
  for (size_t i = 0; i < large.size(); ++i) large[i] = std::to_string(i);
  Column a("c", small);
  Column b("c", large);
  EXPECT_FALSE(OutlierFeatures(a, on) == OutlierFeatures(b, on));
}

TEST(FeaturesTest, LeftnessAffectsUniquenessKey) {
  FeaturizeOptions on;
  TokenIndex index;
  Column col("c", {"a", "b", "c"});
  EXPECT_FALSE(UniquenessFeatures(col, 0, index, on) ==
               UniquenessFeatures(col, 1, index, on));
  // ...but positions past the cap collapse.
  EXPECT_TRUE(UniquenessFeatures(col, 3, index, on) ==
              UniquenessFeatures(col, 7, index, on));
}

TEST(FeaturesTest, FdKeyUsesBothColumnTypes) {
  FeaturizeOptions on;
  TokenIndex index;
  Column s("c", {"a", "b", "c"});
  Column n("c", {"1", "2", "3"});
  EXPECT_FALSE(FdFeatures(s, n, index, on) == FdFeatures(n, s, index, on));
}

TEST(FeaturesTest, HashSpreadsKeys) {
  FeatureKeyHash hash;
  EXPECT_NE(hash(FeatureKey{1}), hash(FeatureKey{2}));
  EXPECT_EQ(hash(FeatureKey{42}), hash(FeatureKey{42}));
}

TEST(FeaturesTest, DebugStringMentionsClass) {
  FeaturizeOptions on;
  Column col("c", {"1", "2", "3"});
  const std::string repr = FeatureKeyToString(OutlierFeatures(col, on));
  EXPECT_NE(repr.find("class=outlier"), std::string::npos);
}

TEST(FeaturesTest, ErrorClassNames) {
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kOutlier), "outlier");
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kSpelling), "spelling");
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kUniqueness), "uniqueness");
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kFd), "fd");
  EXPECT_STREQ(ErrorClassToString(ErrorClass::kPattern), "pattern");
}

}  // namespace
}  // namespace unidetect
