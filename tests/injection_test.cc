#include "eval/injection.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"

namespace unidetect {
namespace {

AnnotatedCorpus TestCorpus(size_t tables = 300, uint64_t seed = 3) {
  return GenerateCorpus(WebCorpusSpec(tables, seed));
}

TEST(InjectionTest, RecordsWhatItCorrupts) {
  AnnotatedCorpus corpus = TestCorpus();
  const AnnotatedCorpus pristine = TestCorpus();
  InjectionSpec spec;
  const GroundTruth truth = InjectErrors(&corpus, spec);
  ASSERT_GT(truth.errors.size(), 20u);
  for (const auto& error : truth.errors) {
    const Table& table = corpus.corpus.tables[error.table_index];
    ASSERT_LT(error.column, table.num_columns());
    ASSERT_LT(error.row, table.num_rows());
    // The corrupted cell holds the recorded corrupted value...
    EXPECT_EQ(table.column(error.column).cell(error.row), error.corrupted);
    // ...and differs from the pristine corpus at that cell unless the
    // corruption landed where a later injection overwrote it (rare).
    const Table& original = pristine.corpus.tables[error.table_index];
    if (error.error_class != ErrorClass::kFd) {
      EXPECT_NE(original.column(error.column).cell(error.row),
                error.corrupted);
    }
  }
}

TEST(InjectionTest, ZeroRatesInjectNothing) {
  AnnotatedCorpus corpus = TestCorpus();
  InjectionSpec spec;
  spec.spelling_rate = spec.outlier_rate = 0.0;
  spec.uniqueness_rate = spec.fd_rate = 0.0;
  const GroundTruth truth = InjectErrors(&corpus, spec);
  EXPECT_TRUE(truth.errors.empty());
}

TEST(InjectionTest, Deterministic) {
  AnnotatedCorpus a = TestCorpus();
  AnnotatedCorpus b = TestCorpus();
  InjectionSpec spec;
  const GroundTruth ta = InjectErrors(&a, spec);
  const GroundTruth tb = InjectErrors(&b, spec);
  ASSERT_EQ(ta.errors.size(), tb.errors.size());
  for (size_t i = 0; i < ta.errors.size(); ++i) {
    EXPECT_EQ(ta.errors[i].table_index, tb.errors[i].table_index);
    EXPECT_EQ(ta.errors[i].row, tb.errors[i].row);
    EXPECT_EQ(ta.errors[i].corrupted, tb.errors[i].corrupted);
  }
}

TEST(InjectionTest, EveryClassRepresented) {
  AnnotatedCorpus corpus = TestCorpus(600);
  InjectionSpec spec;
  const GroundTruth truth = InjectErrors(&corpus, spec);
  EXPECT_GT(truth.CountClass(ErrorClass::kSpelling), 0u);
  EXPECT_GT(truth.CountClass(ErrorClass::kOutlier), 0u);
  EXPECT_GT(truth.CountClass(ErrorClass::kUniqueness), 0u);
  EXPECT_GT(truth.CountClass(ErrorClass::kFd), 0u);
}

TEST(InjectionTest, SpellingTypoIsCloseToSource) {
  AnnotatedCorpus corpus = TestCorpus(400);
  InjectionSpec spec;
  spec.outlier_rate = spec.uniqueness_rate = spec.fd_rate = 0.0;
  const GroundTruth truth = InjectErrors(&corpus, spec);
  ASSERT_GT(truth.errors.size(), 10u);
  for (const auto& error : truth.errors) {
    const Table& table = corpus.corpus.tables[error.table_index];
    const std::string& source =
        table.column(error.column).cell(error.partner_row);
    // The typo derives from the partner row's value: nonempty, distinct.
    EXPECT_NE(error.corrupted, source);
    EXPECT_FALSE(source.empty());
  }
}

TEST(InjectionTest, UniquenessDuplicatesPartnerValue) {
  AnnotatedCorpus corpus = TestCorpus(400);
  InjectionSpec spec;
  spec.spelling_rate = spec.outlier_rate = spec.fd_rate = 0.0;
  const GroundTruth truth = InjectErrors(&corpus, spec);
  for (const auto& error : truth.errors) {
    if (error.error_class != ErrorClass::kUniqueness) continue;
    const Table& table = corpus.corpus.tables[error.table_index];
    EXPECT_EQ(table.column(error.column).cell(error.row),
              table.column(error.column).cell(error.partner_row));
  }
}

TEST(InjectionTest, FdViolationActuallyViolates) {
  AnnotatedCorpus corpus = TestCorpus(500);
  InjectionSpec spec;
  spec.spelling_rate = spec.outlier_rate = spec.uniqueness_rate = 0.0;
  const GroundTruth truth = InjectErrors(&corpus, spec);
  size_t checked = 0;
  for (const auto& error : truth.errors) {
    if (error.error_class != ErrorClass::kFd) continue;
    const Table& table = corpus.corpus.tables[error.table_index];
    const Column& lhs = table.column(error.column);
    const Column& rhs = table.column(error.column2);
    EXPECT_EQ(lhs.cell(error.row), lhs.cell(error.partner_row));
    EXPECT_NE(rhs.cell(error.row), rhs.cell(error.partner_row));
    ++checked;
  }
  EXPECT_GT(checked, 5u);
}

TEST(GroundTruthMatchTest, LocationBasedJudgment) {
  GroundTruth truth;
  InjectedError error;
  error.error_class = ErrorClass::kSpelling;
  error.table_index = 3;
  error.column = 1;
  error.row = 7;
  error.partner_row = 2;
  truth.errors.push_back(error);

  Finding finding;
  finding.table_index = 3;
  finding.column = 1;
  finding.rows = {7};
  finding.error_class = ErrorClass::kSpelling;
  EXPECT_TRUE(truth.Matches(finding));

  // A different class pointing at the same cell still counts (the
  // paper's judges label errors, not classes).
  finding.error_class = ErrorClass::kUniqueness;
  EXPECT_TRUE(truth.Matches(finding));

  // Partner row also counts.
  finding.rows = {2};
  EXPECT_TRUE(truth.Matches(finding));

  // Wrong table / column / row do not.
  finding.rows = {7};
  finding.table_index = 4;
  EXPECT_FALSE(truth.Matches(finding));
  finding.table_index = 3;
  finding.column = 0;
  EXPECT_FALSE(truth.Matches(finding));
  finding.column = 1;
  finding.rows = {8};
  EXPECT_FALSE(truth.Matches(finding));
}

TEST(GroundTruthMatchTest, FdColumnsMatchEitherSide) {
  GroundTruth truth;
  InjectedError error;
  error.error_class = ErrorClass::kFd;
  error.table_index = 0;
  error.column = 2;
  error.column2 = 4;
  error.row = 5;
  truth.errors.push_back(error);

  Finding finding;
  finding.error_class = ErrorClass::kFd;
  finding.table_index = 0;
  finding.column = 4;  // reversed direction
  finding.column2 = 2;
  finding.rows = {5};
  EXPECT_TRUE(truth.Matches(finding));

  // A uniqueness finding on the lhs column alone also matches.
  Finding uniq;
  uniq.error_class = ErrorClass::kUniqueness;
  uniq.table_index = 0;
  uniq.column = 2;
  uniq.rows = {5};
  EXPECT_TRUE(truth.Matches(uniq));
}

}  // namespace
}  // namespace unidetect
