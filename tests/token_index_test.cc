#include "corpus/token_index.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

Table MakeTable(const std::string& name,
                std::vector<std::vector<std::string>> columns) {
  Table table(name);
  for (size_t i = 0; i < columns.size(); ++i) {
    EXPECT_TRUE(
        table.AddColumn(Column("c" + std::to_string(i), columns[i])).ok());
  }
  return table;
}

TEST(TokenIndexTest, CountsTablesNotOccurrences) {
  TokenIndex index;
  // "london" appears twice in one table: counts once.
  index.AddTable(MakeTable("t1", {{"London", "London", "Paris"}}));
  index.AddTable(MakeTable("t2", {{"London"}}));
  EXPECT_EQ(index.num_tables(), 2u);
  EXPECT_EQ(index.TableCount("london"), 2u);
  EXPECT_EQ(index.TableCount("paris"), 1u);
  EXPECT_EQ(index.TableCount("berlin"), 0u);
}

TEST(TokenIndexTest, CaseFolded) {
  TokenIndex index;
  index.AddTable(MakeTable("t", {{"LONDON"}}));
  EXPECT_EQ(index.TableCount("London"), 1u);
  EXPECT_EQ(index.TableCount("london"), 1u);
}

TEST(TokenIndexTest, MultiTokenCells) {
  TokenIndex index;
  index.AddTable(MakeTable("t", {{"Keane, Mr. Andrew"}}));
  EXPECT_EQ(index.TableCount("keane"), 1u);
  EXPECT_EQ(index.TableCount("mr."), 1u);
  EXPECT_EQ(index.TableCount("andrew"), 1u);
}

TEST(TokenIndexTest, AveragePrevalence) {
  TokenIndex index;
  for (int i = 0; i < 10; ++i) {
    index.AddTable(MakeTable("t", {{"common"}}));
  }
  index.AddTable(MakeTable("t", {{"rare"}}));
  // A column of one "common" (11 occurrences... 10 tables) and one "rare".
  Column col("c", {"common", "rare"});
  // common counts 10, rare counts 1 -> average (10 + 1) / 2.
  EXPECT_NEAR(index.AveragePrevalence(col), 5.5, 1e-12);
  // Empty columns yield zero.
  Column empty("c", {"", " "});
  EXPECT_DOUBLE_EQ(index.AveragePrevalence(empty), 0.0);
}

TEST(TokenIndexTest, MergeAddsCounts) {
  TokenIndex a;
  TokenIndex b;
  a.AddTable(MakeTable("t", {{"x"}}));
  b.AddTable(MakeTable("t", {{"x", "y"}}));
  a.Merge(b);
  EXPECT_EQ(a.num_tables(), 2u);
  EXPECT_EQ(a.TableCount("x"), 2u);
  EXPECT_EQ(a.TableCount("y"), 1u);
}

TEST(TokenIndexTest, SerializationRoundTrip) {
  TokenIndex index;
  index.AddTable(MakeTable("t", {{"alpha beta", "gamma"}}));
  index.AddTable(MakeTable("t", {{"alpha"}}));
  auto restored = TokenIndex::Deserialize(index.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_tables(), 2u);
  EXPECT_EQ(restored->TableCount("alpha"), 2u);
  EXPECT_EQ(restored->TableCount("beta"), 1u);
  EXPECT_EQ(restored->num_tokens(), index.num_tokens());
}

TEST(TokenIndexTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(TokenIndex::Deserialize("").ok());
  EXPECT_FALSE(TokenIndex::Deserialize("nonsense\n").ok());
  EXPECT_FALSE(TokenIndex::Deserialize("TokenIndex v1 1 1\nbadline\n").ok());
}

TEST(TokenIndexTest, ForEachTokenVisitsAll) {
  TokenIndex index;
  index.AddTable(MakeTable("t", {{"a b c"}}));
  size_t visited = 0;
  index.ForEachToken([&](std::string_view, uint64_t count) {
    ++visited;
    EXPECT_EQ(count, 1u);
  });
  EXPECT_EQ(visited, 3u);
}

}  // namespace
}  // namespace unidetect
