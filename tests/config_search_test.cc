#include "search/config_search.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "eval/injection.h"

namespace unidetect {
namespace {

TEST(EvalMetricTest, PerKindValidity) {
  Column numeric("n", {"1", "2", "3", "4", "5", "6", "7", "100"});
  Column strings("s", {"alpha", "beta", "gamma", "delta"});

  EXPECT_TRUE(EvalMetric(MetricKind::kMaxMad, numeric).valid);
  EXPECT_TRUE(EvalMetric(MetricKind::kMaxSd, numeric).valid);
  EXPECT_FALSE(EvalMetric(MetricKind::kMpd, numeric).valid);
  EXPECT_TRUE(EvalMetric(MetricKind::kUr, numeric).valid);

  EXPECT_FALSE(EvalMetric(MetricKind::kMaxMad, strings).valid);
  EXPECT_TRUE(EvalMetric(MetricKind::kMpd, strings).valid);
  EXPECT_TRUE(EvalMetric(MetricKind::kUr, strings).valid);
}

TEST(EvalMetricTest, UrValueMatchesProfile) {
  Column col("c", {"a", "b", "a", "c"});
  const MetricValue value = EvalMetric(MetricKind::kUr, col);
  ASSERT_TRUE(value.valid);
  EXPECT_DOUBLE_EQ(value.value, 0.75);
}

TEST(DirectionOfMetricTest, Tails) {
  EXPECT_EQ(DirectionOfMetric(MetricKind::kMaxMad),
            SurpriseDirection::kHigherMoreSurprising);
  EXPECT_EQ(DirectionOfMetric(MetricKind::kMpd),
            SurpriseDirection::kLowerMoreSurprising);
  EXPECT_EQ(DirectionOfMetric(MetricKind::kUr),
            SurpriseDirection::kLowerMoreSurprising);
}

TEST(SelectPerturbationRowsTest, EachKindSelectsItsTarget) {
  Column numeric("n", {"1", "2", "3", "4", "900"});
  EXPECT_EQ(SelectPerturbationRows(PerturbationKind::kDropMostOutlying,
                                   numeric, 2),
            (std::vector<size_t>{4}));

  Column dups("d", {"a", "b", "a", "c", "b"});
  EXPECT_EQ(SelectPerturbationRows(PerturbationKind::kDropDuplicates, dups, 5),
            (std::vector<size_t>{2, 4}));
  // Epsilon caps.
  EXPECT_EQ(
      SelectPerturbationRows(PerturbationKind::kDropDuplicates, dups, 1),
      (std::vector<size_t>{2}));

  Column names("s", {"Chicago", "Chicagoo", "Boston", "Denver"});
  const auto rows =
      SelectPerturbationRows(PerturbationKind::kDropClosestPair, names, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0] == 0 || rows[0] == 1);
}

TEST(ConfigurationTest, ToStringNamesParts) {
  Configuration config;
  config.metric = MetricKind::kMpd;
  config.perturbation = PerturbationKind::kDropClosestPair;
  EXPECT_EQ(config.ToString(), "MPD + drop-closest-pair");
}

TEST(SearchConfigurationsTest, AlignedConfigsBeatMismatched) {
  const AnnotatedCorpus background = GenerateCorpus(WebCorpusSpec(1200, 1));
  AnnotatedCorpus targets = GenerateCorpus(WebCorpusSpec(400, 555));
  InjectErrors(&targets, InjectionSpec());

  ConfigSearchOptions options;
  options.min_support = 15;
  options.alpha = 0.05;  // small corpora: looser significance bar
  const auto results =
      SearchConfigurations(background.corpus, targets.corpus, options);
  ASSERT_EQ(results.size(),
            static_cast<size_t>(kNumMetricKinds * kNumPerturbationKinds));
  // Results sorted by discoveries descending.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].discoveries, results[i].discoveries);
  }

  auto discoveries_of = [&](MetricKind m, PerturbationKind p) {
    for (const auto& result : results) {
      if (result.config.metric == m && result.config.perturbation == p) {
        return result.discoveries;
      }
    }
    return size_t{0};
  };
  // The paper's canonical bad combo finds nothing; its aligned
  // counterpart finds plenty.
  EXPECT_GT(discoveries_of(MetricKind::kUr,
                           PerturbationKind::kDropDuplicates),
            0u);
  EXPECT_EQ(discoveries_of(MetricKind::kMpd,
                           PerturbationKind::kDropDuplicates),
            0u);
  EXPECT_GT(discoveries_of(MetricKind::kMaxMad,
                           PerturbationKind::kDropMostOutlying),
            discoveries_of(MetricKind::kMaxMad,
                           PerturbationKind::kDropDuplicates));
}

}  // namespace
}  // namespace unidetect
