// Failure-injection / adversarial-input tests: every public entry point
// must tolerate degenerate tables (empty, single-row, all-blank,
// constant, enormous cells, binary bytes) without crashing or producing
// NaN scores. A background-scanning feature meets arbitrary user data.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/constraint_baselines.h"
#include "baselines/outlier_baselines.h"
#include "baselines/spelling_baselines.h"
#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "repair/repair.h"
#include "synthesis/string_program.h"

namespace unidetect {
namespace {

const Model& TinyModel() {
  static const Model* model = [] {
    Trainer trainer;
    return new Model(
        trainer.Train(GenerateCorpus(WebCorpusSpec(300, 77)).corpus));
  }();
  return *model;
}

std::vector<Table> DegenerateTables() {
  std::vector<Table> tables;

  tables.emplace_back("empty");

  Table one_cell("one_cell");
  EXPECT_TRUE(one_cell.AddColumn(Column("c", {"x"})).ok());
  tables.push_back(std::move(one_cell));

  Table all_blank("all_blank");
  EXPECT_TRUE(
      all_blank.AddColumn(Column("c", std::vector<std::string>(20, ""))).ok());
  tables.push_back(std::move(all_blank));

  Table constant("constant");
  EXPECT_TRUE(
      constant.AddColumn(Column("c", std::vector<std::string>(20, "same")))
          .ok());
  EXPECT_TRUE(
      constant.AddColumn(Column("d", std::vector<std::string>(20, "7")))
          .ok());
  tables.push_back(std::move(constant));

  Table huge_cells("huge_cells");
  EXPECT_TRUE(huge_cells
                  .AddColumn(Column("c", {std::string(40000, 'a'),
                                          std::string(40000, 'b'),
                                          std::string(39999, 'a'),
                                          "short", "also short", "third",
                                          "fourth", "fifth", "sixth",
                                          "seventh"}))
                  .ok());
  tables.push_back(std::move(huge_cells));

  Table binaryish("binaryish");
  EXPECT_TRUE(binaryish
                  .AddColumn(Column("c", {"\x01\x02\x03", "\xff\xfe",
                                          "nor\tmal", "new\nline", "quo\"te",
                                          "comma,inside", "tab\there",
                                          "plain", "values", "here"}))
                  .ok());
  tables.push_back(std::move(binaryish));

  Table mixed_junk("mixed_junk");
  EXPECT_TRUE(mixed_junk
                  .AddColumn(Column("c", {"1e308", "-1e308", "0", "0", "NaN",
                                          "inf", "1", "2", "3", "4", "5",
                                          "6"}))
                  .ok());
  tables.push_back(std::move(mixed_junk));

  return tables;
}

TEST(RobustnessTest, UniDetectSurvivesDegenerateTables) {
  UniDetectOptions options;
  options.alpha = 1.0;
  options.use_dictionary = true;
  UniDetect detector(&TinyModel(), options);
  for (const Table& table : DegenerateTables()) {
    const std::vector<Finding> findings = detector.DetectTable(table);
    for (const Finding& finding : findings) {
      EXPECT_TRUE(std::isfinite(finding.score)) << table.name();
      EXPECT_GE(finding.score, 0.0) << table.name();
      EXPECT_LE(finding.score, 1.0) << table.name();
      for (size_t row : finding.rows) {
        EXPECT_LT(row, table.num_rows()) << table.name();
      }
    }
  }
}

TEST(RobustnessTest, BaselinesSurviveDegenerateTables) {
  const WordFrequency frequency(TinyModel().token_index());
  std::vector<std::unique_ptr<Baseline>> baselines;
  baselines.push_back(std::make_unique<FuzzyClusterBaseline>());
  baselines.push_back(std::make_unique<SpellerBaseline>(&frequency));
  baselines.push_back(std::make_unique<OovBaseline>(
      &TinyModel().token_index(), "OOV", 10));
  baselines.push_back(std::make_unique<MaxMadBaseline>());
  baselines.push_back(std::make_unique<MaxSdBaseline>());
  baselines.push_back(std::make_unique<DbodBaseline>());
  baselines.push_back(std::make_unique<LofBaseline>());
  baselines.push_back(std::make_unique<UniqueRowRatioBaseline>());
  baselines.push_back(std::make_unique<UniqueValueRatioBaseline>());
  baselines.push_back(std::make_unique<UniqueProjectionRatioBaseline>());
  baselines.push_back(std::make_unique<ConformingRowRatioBaseline>());
  baselines.push_back(std::make_unique<ConformingPairRatioBaseline>());

  for (const Table& table : DegenerateTables()) {
    for (const auto& baseline : baselines) {
      std::vector<Finding> findings;
      baseline->Detect(table, &findings);
      for (const Finding& finding : findings) {
        EXPECT_TRUE(std::isfinite(finding.score))
            << baseline->name() << " on " << table.name();
      }
    }
  }
}

TEST(RobustnessTest, SynthesisSurvivesDegenerateColumns) {
  Column empty("a", {});
  Column blank("b", std::vector<std::string>(10, ""));
  Column normal("c", {"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"});
  EXPECT_FALSE(SynthesizeColumnProgram(empty, empty).found);
  EXPECT_FALSE(SynthesizeColumnProgram(blank, normal).found);
  EXPECT_FALSE(SynthesizeColumnProgram(normal, blank).found);
}

TEST(RobustnessTest, RepairerSurvivesBogusFindings) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column("c", {"1", "2", "3"})).ok());
  Repairer repairer(&TinyModel());
  // Findings with out-of-range rows or missing pair columns.
  Finding bogus;
  bogus.error_class = ErrorClass::kFd;
  bogus.column = 0;
  bogus.column2 = Finding::kNoColumn;
  bogus.rows = {99};
  EXPECT_TRUE(repairer.Suggest(table, bogus).empty());

  Finding empty_rows;
  empty_rows.error_class = ErrorClass::kOutlier;
  empty_rows.column = 0;
  EXPECT_TRUE(repairer.Suggest(table, empty_rows).empty());

  Finding single_row_spelling;
  single_row_spelling.error_class = ErrorClass::kSpelling;
  single_row_spelling.column = 0;
  single_row_spelling.rows = {0};  // spelling repair needs a pair
  EXPECT_TRUE(repairer.Suggest(table, single_row_spelling).empty());
}

TEST(RobustnessTest, TrainerSurvivesPathologicalCorpus) {
  Corpus corpus;
  corpus.name = "pathological";
  for (Table& table : DegenerateTables()) corpus.tables.push_back(table);
  Trainer trainer;
  const Model model = trainer.Train(corpus);  // must not crash
  EXPECT_GE(model.num_subsets(), 0u);
}

}  // namespace
}  // namespace unidetect
