// DetectionService: snapshot-swap correctness, batch determinism, and
// the Reload-while-DetectBatch race (the tsan preset runs this suite —
// its name is in the CMakePresets.json tsan test filter).

#include "serving/detection_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "learn/trainer.h"
#include "util/logging.h"

namespace unidetect {
namespace {

std::shared_ptr<const Model> TrainSharedModel(size_t tables, uint64_t seed) {
  SetLogLevel(LogLevel::kWarning);
  Trainer trainer;
  return std::make_shared<const Model>(
      trainer.Train(GenerateCorpus(WebCorpusSpec(tables, seed)).corpus));
}

std::string AllFindingsJson(const DetectionService::BatchResult& result) {
  std::string out;
  for (const auto& findings : result.per_table) {
    out += FindingsToJson(findings);
    out += '\n';
  }
  return out;
}

TEST(DetectionServiceTest, BatchMatchesDirectDetection) {
  auto model = TrainSharedModel(200, 41);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(20, 42));

  const auto batch = service.DetectBatch(test.corpus.tables);
  ASSERT_EQ(batch.per_table.size(), test.corpus.tables.size());
  EXPECT_EQ(batch.generation, 1u);

  const UniDetect direct(model.get(), options);
  for (size_t i = 0; i < test.corpus.tables.size(); ++i) {
    EXPECT_EQ(FindingsToJson(batch.per_table[i]),
              FindingsToJson(direct.DetectTable(test.corpus.tables[i])))
        << "table " << i;
  }
}

TEST(DetectionServiceTest, BatchIsThreadCountInvariant) {
  auto model = TrainSharedModel(200, 43);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(40, 44));

  const auto serial =
      service.DetectBatch(test.corpus.tables, nullptr, /*num_threads=*/1);
  const auto parallel =
      service.DetectBatch(test.corpus.tables, nullptr, /*num_threads=*/4);
  EXPECT_EQ(AllFindingsJson(serial), AllFindingsJson(parallel));
}

TEST(DetectionServiceTest, PerRequestOverrideDoesNotStick) {
  auto model = TrainSharedModel(200, 45);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(20, 46));

  const auto before = service.DetectBatch(test.corpus.tables);
  UniDetectOptions strict;
  strict.alpha = 1e-12;
  const auto overridden = service.DetectBatch(test.corpus.tables, &strict);
  const auto after = service.DetectBatch(test.corpus.tables);

  size_t base_count = 0;
  size_t strict_count = 0;
  for (const auto& f : before.per_table) base_count += f.size();
  for (const auto& f : overridden.per_table) strict_count += f.size();
  EXPECT_LT(strict_count, base_count);
  EXPECT_EQ(AllFindingsJson(before), AllFindingsJson(after));
}

TEST(DetectionServiceTest, ReloadSwapsGenerationAndFailureLeavesService) {
  auto model = TrainSharedModel(120, 47);
  DetectionService service(model);
  EXPECT_EQ(service.generation(), 1u);

  const std::string path = testing::TempDir() + "/service_reload.model";
  ASSERT_TRUE(model->Save(path).ok());
  ASSERT_TRUE(service.Reload(path).ok());
  EXPECT_EQ(service.generation(), 2u);

  // A bad path must fail typed and leave the service serving gen 2.
  const Status bad = service.Reload("/nonexistent/model.bin");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.IsIOError());
  EXPECT_EQ(service.generation(), 2u);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.failed_reloads, 1u);
  EXPECT_EQ(stats.generation, 2u);
}

TEST(DetectionServiceTest, ReloadHistogramAndStorageGauges) {
  auto model = TrainSharedModel(120, 53);
  const std::string path = testing::TempDir() + "/service_gauges.model";
  ASSERT_TRUE(model->Save(path).ok());

  auto service = DetectionService::Create(path);
  ASSERT_TRUE(service.ok()) << service.status();
  {
    const ServiceStats stats = (*service)->Stats();
    // Save() wrote a v2 snapshot, so Create mapped it zero-copy: the
    // gauges must show file-backed bytes and a small private footprint.
    EXPECT_GT(stats.model_mapped_bytes, 0u);
    EXPECT_LT(stats.model_resident_bytes, stats.model_mapped_bytes);
    // No reloads yet: the reload percentiles stay at their zero state.
    EXPECT_EQ(stats.reloads, 0u);
    EXPECT_EQ(stats.reload_latency_p50_us, 0.0);
    EXPECT_EQ(stats.reload_latency_p99_us, 0.0);
  }

  for (int i = 0; i < 3; ++i) ASSERT_TRUE((*service)->Reload(path).ok());
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.reloads, 3u);
  EXPECT_GT(stats.reload_latency_p50_us, 0.0);
  EXPECT_GE(stats.reload_latency_p99_us, stats.reload_latency_p50_us);
  EXPECT_GT(stats.model_mapped_bytes, 0u);
}

TEST(DetectionServiceTest, StatsCountRequestsTablesAndFindings) {
  auto model = TrainSharedModel(120, 48);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(10, 49));

  const auto batch = service.DetectBatch(test.corpus.tables);
  size_t found = 0;
  for (const auto& findings : batch.per_table) found += findings.size();

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.tables, test.corpus.tables.size());
  EXPECT_EQ(stats.findings, found);
  EXPECT_GT(stats.latency_p50_us, 0.0);
  EXPECT_GE(stats.latency_p99_us, stats.latency_p50_us);
}

// The serving-tier race the design exists for: Reload keeps swapping
// snapshots while DetectBatch requests stream in on other threads. Each
// request must see one coherent snapshot (tsan proves the absence of
// data races; the JSON comparison proves responses stay well-formed and
// deterministic for whichever generation served them).
TEST(DetectionServiceTest, ReloadRacesDetectBatchSafely) {
  auto model = TrainSharedModel(120, 50);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(8, 51));

  const std::string path = testing::TempDir() + "/service_race.model";
  ASSERT_TRUE(model->Save(path).ok());
  const std::string expected = AllFindingsJson(service.DetectBatch(
      test.corpus.tables));

  std::thread reloader([&] {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(service.Reload(path).ok());
    }
  });
  std::vector<std::thread> clients;
  std::vector<std::string> responses(3);
  for (size_t c = 0; c < responses.size(); ++c) {
    clients.emplace_back([&, c] {
      std::string all;
      for (int i = 0; i < 4; ++i) {
        all += AllFindingsJson(service.DetectBatch(
            test.corpus.tables, nullptr, /*num_threads=*/2));
      }
      responses[c] = std::move(all);
    });
  }
  reloader.join();
  for (auto& client : clients) client.join();

  // Every generation serves the same model bytes here, so every batch
  // must equal the pre-race response, swap or no swap.
  for (size_t c = 0; c < responses.size(); ++c) {
    std::string expected_all;
    for (int i = 0; i < 4; ++i) expected_all += expected;
    EXPECT_EQ(responses[c], expected_all) << "client " << c;
  }
  EXPECT_EQ(service.generation(), 9u);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 1u + 12u);
  EXPECT_EQ(stats.reloads, 8u);
}

// ---------------------------------------------------------------------------
// Findings cache (serving/findings_cache.h). The tsan preset runs these
// too — cache probe/insert happen on the DetectBatch path under races.

TEST(DetectionServiceCacheTest, WarmHitsReturnIdenticalFindings) {
  auto model = TrainSharedModel(200, 61);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options, /*findings_cache_bytes=*/8 << 20);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(20, 62));

  const auto cold = service.DetectBatch(test.corpus.tables);
  {
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, test.corpus.tables.size());
    EXPECT_EQ(stats.cache_entries, test.corpus.tables.size());
    EXPECT_GT(stats.cache_resident_bytes, 0u);
    EXPECT_EQ(stats.cache_hit_rate, 0.0);
  }

  // Second pass: every table is answered from the cache, bit-identically,
  // in both the serial and the parallel driver.
  const auto warm = service.DetectBatch(test.corpus.tables);
  EXPECT_EQ(AllFindingsJson(cold), AllFindingsJson(warm));
  const auto warm_parallel =
      service.DetectBatch(test.corpus.tables, nullptr, /*num_threads=*/4);
  EXPECT_EQ(AllFindingsJson(cold), AllFindingsJson(warm_parallel));
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 2 * test.corpus.tables.size());
  EXPECT_EQ(stats.cache_misses, test.corpus.tables.size());
  EXPECT_NEAR(stats.cache_hit_rate, 2.0 / 3.0, 1e-12);
}

TEST(DetectionServiceCacheTest, OverrideOptionsKeySeparately) {
  auto model = TrainSharedModel(200, 63);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options, /*findings_cache_bytes=*/8 << 20);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(12, 64));

  const auto base = service.DetectBatch(test.corpus.tables);
  UniDetectOptions strict;
  strict.alpha = 1e-12;
  // The override batch must not hit the default-key entries (different
  // effective options -> different fingerprints), nor poison them.
  const auto overridden = service.DetectBatch(test.corpus.tables, &strict);
  EXPECT_NE(AllFindingsJson(base), AllFindingsJson(overridden));
  const auto base_again = service.DetectBatch(test.corpus.tables);
  EXPECT_EQ(AllFindingsJson(base), AllFindingsJson(base_again));
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, test.corpus.tables.size());
  EXPECT_EQ(stats.cache_misses, 2 * test.corpus.tables.size());
}

TEST(DetectionServiceCacheTest, ReloadInvalidates) {
  auto model = TrainSharedModel(120, 65);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options, /*findings_cache_bytes=*/8 << 20);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(10, 66));
  const std::string path = testing::TempDir() + "/service_cache.model";
  ASSERT_TRUE(model->Save(path).ok());

  const auto before = service.DetectBatch(test.corpus.tables);
  ASSERT_TRUE(service.Reload(path).ok());
  EXPECT_EQ(service.Stats().cache_entries, 0u);

  // Same model bytes, new generation: everything re-detects (all misses)
  // and the findings come out identical.
  const auto after = service.DetectBatch(test.corpus.tables);
  EXPECT_EQ(AllFindingsJson(before), AllFindingsJson(after));
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 2 * test.corpus.tables.size());
}

TEST(DetectionServiceCacheTest, ByteBoundEvictsDeterministically) {
  auto model = TrainSharedModel(120, 67);
  UniDetectOptions options;
  options.alpha = 1.0;
  // A bound small enough that the batch must evict: each entry costs at
  // least 128 bookkeeping bytes.
  DetectionService service(model, options, /*findings_cache_bytes=*/1024);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(30, 68));

  const auto first = service.DetectBatch(test.corpus.tables);
  {
    const ServiceStats stats = service.Stats();
    EXPECT_LE(stats.cache_resident_bytes, 1024u);
    // Either entries were evicted to fit or were too large to insert at
    // all; both ways the population stays under the table count. (The
    // exact LRU eviction order is pinned by findings_cache_test.cc.)
    EXPECT_LT(stats.cache_entries, test.corpus.tables.size());
  }
  // Capacity pressure changes hit rates, never results.
  const auto second = service.DetectBatch(test.corpus.tables);
  EXPECT_EQ(AllFindingsJson(first), AllFindingsJson(second));
}

TEST(DetectionServiceCacheTest, DisabledByDefault) {
  auto model = TrainSharedModel(120, 69);
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(5, 70));
  (void)service.DetectBatch(test.corpus.tables);
  (void)service.DetectBatch(test.corpus.tables);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.cache_resident_bytes, 0u);
}

}  // namespace
}  // namespace unidetect
