// Tests for the determinism linter itself, pinned against the fixture
// files in tests/lint_fixtures/ (exact finding counts and NOLINT
// suppression semantics).

#include "lint/determinism_lint.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace unidetect {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(UNIDETECT_LINT_FIXTURE_DIR) + "/" + name;
}

LintResult LintFixture(const std::string& name) {
  const std::string path = FixturePath(name);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(path, buffer.str());
}

std::map<std::string, int> CountByCheck(const LintResult& result) {
  std::map<std::string, int> counts;
  for (const auto& finding : result.findings) ++counts[finding.check];
  return counts;
}

TEST(DeterminismLintTest, CleanFixtureHasNoFindings) {
  LintResult result = LintFixture("good_sorted_iteration.cc");
  EXPECT_TRUE(result.findings.empty())
      << result.findings.size() << " unexpected findings, first: "
      << (result.findings.empty() ? "" : result.findings[0].message);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismLintTest, UnorderedAppendsFlagged) {
  LintResult result = LintFixture("bad_unordered_append.cc");
  ASSERT_EQ(result.findings.size(), 3u);
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.check, "unordered-iteration");
  }
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismLintTest, BannedSourcesFlagged) {
  LintResult result = LintFixture("bad_banned_sources.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["banned-source"], 5);
  EXPECT_EQ(counts["pointer-key"], 2);
  EXPECT_EQ(result.findings.size(), 7u);
}

TEST(DeterminismLintTest, PointerKeysOverMappedRegionsFlagged) {
  // The zero-copy snapshot path hands out spans into a mapped region;
  // keying anything on those addresses is run-to-run nondeterministic
  // (ASLR moves the mapping). The fixture collects the shapes the v2
  // reader must never grow.
  LintResult result = LintFixture("bad_pointer_key_mapped.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["pointer-key"], 3);
  EXPECT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismLintTest, PointerKeyedCachesFlagged) {
  // The serving tier memoizes findings; this fixture collects the
  // pointer-keyed cache shapes (request address, column address, LRU
  // node address) that the linter must keep rejecting — the real cache
  // keys on content fingerprints and evicts in LRU list order.
  LintResult result = LintFixture("bad_pointer_key_cache.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["pointer-key"], 3);
  EXPECT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismLintTest, MutableStateFlagged) {
  LintResult result = LintFixture("bad_mutable_state.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["mutable-global"], 2);
  EXPECT_EQ(counts["mutable-static"], 1);
  EXPECT_EQ(result.findings.size(), 3u);
}

TEST(DeterminismLintTest, NolintSuppressesFindings) {
  LintResult result = LintFixture("nolint_suppression.cc");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "mutable-global");
  EXPECT_EQ(result.suppressed, 2);
}

TEST(DeterminismLintTest, FindingsAreSortedAndCarryLines) {
  LintResult result = LintFixture("bad_mutable_state.cc");
  ASSERT_EQ(result.findings.size(), 3u);
  for (size_t i = 1; i < result.findings.size(); ++i) {
    EXPECT_LE(result.findings[i - 1].line, result.findings[i].line);
  }
  for (const auto& finding : result.findings) {
    EXPECT_GT(finding.line, 0);
    EXPECT_NE(finding.file.find("bad_mutable_state.cc"), std::string::npos);
  }
}

TEST(DeterminismLintTest, RandomOwnerFileMayUseEngines) {
  const std::string source = "void Seed() { std::mt19937 gen; (void)gen; }\n";
  EXPECT_TRUE(
      LintSource("src/util/random.cc", source).findings.empty());
  EXPECT_EQ(LintSource("src/detect/foo.cc", source).findings.size(), 1u);
}

TEST(DeterminismLintTest, ReportJsonShape) {
  LintResult result = LintFixture("nolint_suppression.cc");
  const std::string json = ReportJson(1, result);
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"mutable-global\""), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace unidetect
