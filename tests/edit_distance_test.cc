#include "metrics/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/random.h"

namespace unidetect {
namespace {

TEST(EditDistanceTest, KnownPairs) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  // The paper's examples.
  EXPECT_EQ(EditDistance("Kevin Doeling", "Kevin Dowling"), 1u);
  EXPECT_EQ(EditDistance("Mississippi", "Mississipi"), 1u);
  EXPECT_EQ(EditDistance("H2O", "H2O2"), 1u);
  EXPECT_EQ(EditDistance("Super Bowl XXI", "Super Bowl XXII"), 1u);
  EXPECT_EQ(EditDistance("Bromine", "Bromide"), 1u);
}

TEST(EditDistanceTest, Symmetry) {
  EXPECT_EQ(EditDistance("abcdef", "azced"), EditDistance("azced", "abcdef"));
}

TEST(BoundedEditDistanceTest, AgreesWithinBound) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 5), 3u);
}

TEST(BoundedEditDistanceTest, ReportsBoundPlusOneWhenExceeded) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 2), 3u);
  EXPECT_EQ(BoundedEditDistance("", "abcdef", 3), 4u);
  EXPECT_EQ(BoundedEditDistance("aaaa", "bbbb", 1), 2u);
}

TEST(BoundedEditDistanceTest, LengthGapShortCircuit) {
  // |len difference| > bound can never fit.
  EXPECT_EQ(BoundedEditDistance("ab", "abcdefgh", 3), 4u);
}

// Property: bounded distance equals full distance whenever it fits the
// bound, over random string pairs.
class EditDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EditDistancePropertyTest, BoundedMatchesFull) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = rng.AlphaString(rng.NextBounded(12));
    std::string b = a;
    // Mutate b a random number of times for interesting distances.
    const size_t edits = rng.NextBounded(5);
    for (size_t e = 0; e < edits && !b.empty(); ++e) {
      const size_t pos = rng.NextBounded(b.size());
      switch (rng.NextBounded(3)) {
        case 0:
          b[pos] = static_cast<char>('a' + rng.NextBounded(26));
          break;
        case 1:
          b.erase(pos, 1);
          break;
        default:
          b.insert(pos, 1, static_cast<char>('a' + rng.NextBounded(26)));
          break;
      }
    }
    const size_t full = EditDistance(a, b);
    for (size_t bound : {size_t{1}, size_t{3}, size_t{20}}) {
      const size_t bounded = BoundedEditDistance(a, b, bound);
      if (full <= bound) {
        EXPECT_EQ(bounded, full) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_EQ(bounded, bound + 1) << a << " vs " << b;
      }
    }
    // Triangle inequality against a third string.
    const std::string c = rng.AlphaString(rng.NextBounded(12));
    EXPECT_LE(EditDistance(a, c), full + EditDistance(b, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistancePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace unidetect
