// Fuzz-style property test: the CSV parser must never crash, loop, or
// mis-handle arbitrary byte soup, and must round-trip anything the
// writer produces.

#include <gtest/gtest.h>

#include "table/table.h"
#include "util/csv.h"
#include "util/random.h"

namespace unidetect {
namespace {

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, ParserNeverCrashesOnRandomBytes) {
  Rng rng(GetParam());
  static const char kAlphabet[] = "ab,\"\n\r \t;x1.\\";
  for (int trial = 0; trial < 400; ++trial) {
    std::string soup;
    const size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      soup.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    auto parsed = ParseCsv(soup);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsCorruption());
      continue;
    }
    // Any successful parse yields rectangular-izable data.
    auto table = Table::FromCsv(*parsed, "fuzz");
    if (table.ok()) {
      EXPECT_EQ(table->num_rows(), parsed->rows.size());
    }
  }
}

TEST_P(CsvFuzzTest, WriterOutputAlwaysReparses) {
  Rng rng(GetParam() + 1000);
  static const char kCellAlphabet[] = "ab,\"\n\r \t;x1.\\'|";
  for (int trial = 0; trial < 200; ++trial) {
    CsvData data;
    const size_t cols = 1 + rng.NextBounded(4);
    for (size_t c = 0; c < cols; ++c) {
      data.header.push_back("c" + std::to_string(c));
    }
    const size_t rows = rng.NextBounded(6);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < cols; ++c) {
        std::string cell;
        const size_t len = rng.NextBounded(12);
        for (size_t i = 0; i < len; ++i) {
          cell.push_back(
              kCellAlphabet[rng.NextBounded(sizeof(kCellAlphabet) - 1)]);
        }
        row.push_back(std::move(cell));
      }
      data.rows.push_back(std::move(row));
    }
    CsvOptions exact;
    exact.trim_fields = false;
    auto reparsed = ParseCsv(WriteCsv(data), exact);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->header, data.header);
    // Writer-then-parser must preserve every cell byte-for-byte, except
    // rows that are entirely empty (the parser drops blank records).
    size_t non_empty_rows = 0;
    for (const auto& row : data.rows) {
      bool empty = true;
      for (const auto& cell : row) {
        if (!cell.empty()) empty = false;
      }
      if (!empty || row.size() > 1) ++non_empty_rows;
    }
    ASSERT_LE(reparsed->rows.size(), data.rows.size());
    size_t j = 0;
    for (const auto& row : data.rows) {
      bool empty_single = row.size() == 1 && row[0].empty();
      if (empty_single) continue;
      ASSERT_LT(j, reparsed->rows.size());
      EXPECT_EQ(reparsed->rows[j], row);
      ++j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace unidetect
