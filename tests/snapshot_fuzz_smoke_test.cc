// Bounded-time deterministic fuzz smoke for the snapshot decoders: the
// loader's contract is that arbitrary bytes produce Status::Corruption
// (or NotImplemented for newer versions) or a valid model — never a
// crash, a bad_alloc from a crafted count, or an out-of-bounds read.
// Seeded mutations keep every run identical; seeds that once crashed the
// decoder are frozen as golden fixtures (tests/golden/fuzz_*.udsnap) and
// replayed here as regression tests. Labelled "fuzz" in ctest so CI can
// run the slice alone.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "learn/model.h"
#include "model_format/delta_snapshot.h"
#include "model_format/model_snapshot.h"
#include "model_format/snapshot_v2.h"
#include "server/wire.h"
#include "table/table.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace unidetect {
namespace {

Model BuildModel() {
  ModelOptions options;
  options.min_support = 1;
  Model model(options);
  Rng rng(61);
  for (uint64_t subset = 0; subset < 4; ++subset) {
    const FeatureKey key{subset * 17 + 3};
    for (size_t i = 0; i < 40; ++i) {
      const double pre = rng.Uniform(0.0, 10.0);
      model.AddObservation(key, pre, rng.Uniform(0.0, pre));
    }
  }
  const AnnotatedCorpus corpus = GenerateCorpus(WebCorpusSpec(6, 67));
  for (const auto& table : corpus.corpus.tables) {
    model.mutable_token_index()->AddTable(table);
    model.mutable_pattern_index()->AddTable(table);
  }
  model.Finalize();
  return model;
}

// The decode contract under fuzzing: success or a typed error, nothing
// else. Any crash (SIGSEGV/SIGBUS from an OOB read, std::bad_alloc from
// an unvalidated count, an assert) fails the whole binary, which is the
// point of the smoke.
void ExpectDecodesOrRejects(const std::string& bytes) {
  for (SnapshotValidation validation :
       {SnapshotValidation::kFull, SnapshotValidation::kDeferPayload}) {
    auto decoded = DecodeModelSnapshot(bytes, validation);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsCorruption() ||
                  decoded.status().IsNotImplemented())
          << "unexpected status class: " << decoded.status();
    }
  }
}

// One seeded mutation of `base`. The mutation menu is weighted toward
// the decoder's attack surface: the header, the section table's u64
// offset/length fields (including near-2^64 values that only an
// overflow-checked bounds compare rejects), and truncation.
std::string Mutate(const std::string& base, Rng& rng) {
  std::string bytes = base;
  switch (rng.NextBounded(6)) {
    case 0: {  // single bit flip anywhere
      const size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << rng.NextBounded(8)));
      break;
    }
    case 1: {  // short random overwrite
      const size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      const size_t len =
          std::min(bytes.size() - pos, size_t{1} + rng.NextBounded(8));
      for (size_t i = 0; i < len; ++i) {
        bytes[pos + i] = static_cast<char>(rng.NextBounded(256));
      }
      break;
    }
    case 2: {  // perturb a section-table u64 with a hostile value
      if (bytes.size() < 16 + 24) break;
      const uint64_t entry = rng.NextBounded((bytes.size() - 16) / 24);
      // offset field at +8, length field at +16 within the entry.
      const size_t pos = 16 + static_cast<size_t>(entry) * 24 +
                         (rng.NextBounded(2) ? 8 : 16);
      static constexpr uint64_t kHostile[] = {
          0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFF0ull, 0x8000000000000000ull,
          0x100000000ull, 0ull};
      const uint64_t value =
          kHostile[rng.NextBounded(std::size(kHostile))];
      if (pos + 8 <= bytes.size()) std::memcpy(&bytes[pos], &value, 8);
      break;
    }
    case 3: {  // truncate
      bytes.resize(static_cast<size_t>(rng.NextBounded(bytes.size())));
      break;
    }
    case 4: {  // huge section_count (the historical bad_alloc shape)
      if (bytes.size() < 16) break;
      const uint32_t counts[] = {0xFFFFFFFFu, 0x10000000u, 0u,
                                 0xAAAAAAAAu};
      const uint32_t value = counts[rng.NextBounded(std::size(counts))];
      std::memcpy(&bytes[12], &value, 4);
      break;
    }
    default: {  // swap two section-table entries (breaks id ordering)
      if (bytes.size() < 16 + 2 * 24) break;
      const uint64_t entries = (bytes.size() - 16) / 24;
      if (entries < 2) break;
      const size_t a = 16 + static_cast<size_t>(rng.NextBounded(entries)) * 24;
      const size_t b = 16 + static_cast<size_t>(rng.NextBounded(entries)) * 24;
      if (a + 24 <= bytes.size() && b + 24 <= bytes.size()) {
        char tmp[24];
        std::memcpy(tmp, &bytes[a], 24);
        std::memcpy(&bytes[a], &bytes[b], 24);
        std::memcpy(&bytes[b], tmp, 24);
      }
      break;
    }
  }
  return bytes;
}

// The delta read surface on top of the plain decode contract: the
// manifest finder and the artifact-id hash must also return a typed
// error or a value — a hostile manifest must never size an allocation
// or drive a chain walk.
void ExpectDeltaReadersSurvive(const std::string& bytes) {
  ExpectDecodesOrRejects(bytes);
  auto manifest = FindDeltaManifest(bytes);
  if (!manifest.ok()) {
    EXPECT_TRUE(manifest.status().IsCorruption() ||
                manifest.status().IsNotImplemented())
        << "unexpected status class: " << manifest.status();
  }
  auto id = SnapshotArtifactId(bytes);
  if (!id.ok()) {
    EXPECT_TRUE(id.status().IsCorruption())
        << "unexpected status class: " << id.status();
  }
}

// Delta-targeted mutations on top of the generic menu: the manifest
// payload rides in the last section of the container, so hostile chain
// hashes and layer counts (depth) live in the file's tail. Half the
// time we also forge the section CRC so the poisoned values survive the
// integrity pass and reach the manifest decoder itself.
std::string MutateDelta(const std::string& base, Rng& rng) {
  if (rng.NextBounded(2) == 0) return Mutate(base, rng);
  std::string bytes = base;
  static constexpr uint64_t kHostile[] = {
      0xFFFFFFFFFFFFFFFFull, 0x8000000000000000ull, 0x100000000ull,
      0xDEADBEEFDEADBEEFull, 0ull, 1ull};
  switch (rng.NextBounded(3)) {
    case 0: {  // poison a u64 in the manifest payload (file tail)
      const size_t tail = std::min(bytes.size(), size_t{64});
      const size_t pos = bytes.size() - tail +
                         static_cast<size_t>(rng.NextBounded(tail));
      const uint64_t value = kHostile[rng.NextBounded(std::size(kHostile))];
      if (pos + 8 <= bytes.size()) std::memcpy(&bytes[pos], &value, 8);
      if (rng.NextBounded(2) == 0 && bytes.size() >= 16) {
        // Re-seal the manifest section's CRC so the poisoned chain
        // hashes / layer counts survive the integrity pass and reach
        // the manifest decoder itself.
        uint32_t count = 0;
        std::memcpy(&count, &bytes[12], 4);
        for (uint32_t e = 0;
             e < count && 16 + (e + 1) * size_t{24} <= bytes.size(); ++e) {
          const size_t entry = 16 + e * size_t{24};
          uint32_t id = 0;
          uint64_t offset = 0, length = 0;
          std::memcpy(&id, &bytes[entry], 4);
          std::memcpy(&offset, &bytes[entry + 8], 8);
          std::memcpy(&length, &bytes[entry + 16], 8);
          if (id != 13 || offset > bytes.size() ||
              length > bytes.size() - offset) {
            continue;
          }
          const uint32_t crc = Crc32(
              std::string_view(bytes).substr(offset, length));
          std::memcpy(&bytes[entry + 4], &crc, 4);
        }
      }
      break;
    }
    case 1: {  // truncate inside the manifest section
      const size_t cut = 1 + static_cast<size_t>(rng.NextBounded(
                                 std::min(bytes.size(), size_t{48})));
      bytes.resize(bytes.size() - cut);
      break;
    }
    default: {  // rewrite a section-table id to or from the manifest id
      if (bytes.size() < 16 + 24) break;
      const uint64_t entry = rng.NextBounded((bytes.size() - 16) / 24);
      const size_t pos = 16 + static_cast<size_t>(entry) * 24;
      const uint32_t id = rng.NextBounded(2) ? 13u : rng.NextBounded(32);
      if (pos + 4 <= bytes.size()) std::memcpy(&bytes[pos], &id, 4);
      break;
    }
  }
  return bytes;
}

void RunSmoke(const std::string& base, uint64_t seed, int rounds) {
  ASSERT_FALSE(base.empty());
  // Sanity: the unmutated snapshot decodes in both validation modes.
  for (SnapshotValidation validation :
       {SnapshotValidation::kFull, SnapshotValidation::kDeferPayload}) {
    auto decoded = DecodeModelSnapshot(base, validation);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
  }
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    ExpectDecodesOrRejects(Mutate(base, rng));
  }
}

TEST(SnapshotFuzzSmokeTest, MutatedF32SnapshotsNeverCrash) {
  RunSmoke(EncodeModelSnapshotV2(BuildModel(), ObservationEncoding::kF32),
           /*seed=*/1001, /*rounds=*/300);
}

TEST(SnapshotFuzzSmokeTest, MutatedF16SnapshotsNeverCrash) {
  RunSmoke(EncodeModelSnapshotV2(BuildModel(), ObservationEncoding::kF16),
           /*seed=*/2002, /*rounds=*/300);
}

TEST(SnapshotFuzzSmokeTest, MutatedV1SnapshotsNeverCrash) {
  RunSmoke(EncodeModelSnapshotV1(BuildModel()), /*seed=*/3003,
           /*rounds=*/300);
}

// Delta artifacts widen the attack surface: the manifest's chain hashes
// and depth (layer count) are operator-supplied bytes that gate layer
// stacking. Every reader on the path — plain decode, manifest find,
// artifact id — must survive the mutation menu.
TEST(SnapshotFuzzSmokeTest, MutatedDeltaSnapshotsNeverCrash) {
  DeltaManifest manifest;
  manifest.base_id = 0x1234567890ABCDEFull;
  manifest.parent_id = 0x1234567890ABCDEFull;
  manifest.depth = 1;
  const std::string base = EncodeModelSnapshotV2(
      BuildModel(), ObservationEncoding::kF32, &manifest);
  // Sanity: the unmutated delta round-trips through every reader.
  ASSERT_TRUE(DecodeModelSnapshot(base, SnapshotValidation::kFull).ok());
  ASSERT_TRUE(FindDeltaManifest(base)->has_value());
  ASSERT_TRUE(SnapshotArtifactId(base).ok());
  Rng rng(4004);
  for (int i = 0; i < 300; ++i) {
    ExpectDeltaReadersSurvive(MutateDelta(base, rng));
  }
}

// --- UDWIRE frames (server/wire.h) ---------------------------------
//
// The network front end decodes peer-controlled bytes on every
// connection, so its frame parser and payload decoders share the fuzz
// contract: a typed error (InvalidArgument for a non-UDWIRE prefix,
// Corruption for hostile frames/payloads) or a value — never a crash or
// a crafted-count allocation.

std::string BuildRequestFrame() {
  wire::DetectRequest request;
  request.request_id = 0xFEEDFACE;
  request.deadline_ms = 1500;
  request.options.has_override = true;
  request.options.alpha = 0.25;
  request.options.detect_mask = 0x1F;
  Table table("fuzz_table");
  UNIDETECT_CHECK(
      table.AddColumn(Column("name", {"alpha", "beta", "gamma"})).ok());
  UNIDETECT_CHECK(table.AddColumn(Column("value", {"1", "2", "3"})).ok());
  request.tables.push_back(std::move(table));
  return wire::EncodeDetectRequest(request);
}

std::string BuildResponseFrame() {
  Finding finding;
  finding.table_name = "fuzz_table";
  finding.column = 1;
  finding.rows = {0, 2};
  finding.value = "gamma";
  finding.score = 0.125;
  finding.explanation = "fuzz seed finding";
  return wire::EncodeOkResponseFrame(/*request_id=*/7, /*generation=*/3,
                                     {{finding}, {}});
}

void ExpectWireDecodersSurvive(const std::string& bytes) {
  auto parsed = wire::TryParseFrame(bytes, /*max_payload=*/64u << 20);
  if (!parsed.ok()) {
    EXPECT_TRUE(parsed.status().IsCorruption() ||
                parsed.status().IsInvalidArgument())
        << "unexpected status class: " << parsed.status();
    return;
  }
  if (!parsed->has_value()) return;  // partial frame: would read more
  const wire::FrameView frame = **parsed;
  if (frame.type == wire::FrameType::kDetectRequest) {
    auto decoded = wire::DecodeDetectRequestPayload(frame.payload);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsCorruption())
          << "unexpected status class: " << decoded.status();
    }
  } else {
    auto decoded = wire::DecodeDetectResponsePayload(frame.payload);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsCorruption())
          << "unexpected status class: " << decoded.status();
    }
  }
}

// Frame-targeted mutations: the header's length field and type byte,
// the payload's length-prefixed counts, truncation, and byte soup.
std::string MutateFrame(const std::string& base, Rng& rng) {
  std::string bytes = base;
  switch (rng.NextBounded(6)) {
    case 0: {  // single bit flip anywhere
      const size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << rng.NextBounded(8)));
      break;
    }
    case 1: {  // hostile payload length in the header
      static constexpr uint32_t kHostile[] = {0xFFFFFFFFu, 0x80000000u,
                                              (64u << 20) + 1, 0u, 1u};
      const uint32_t value = kHostile[rng.NextBounded(std::size(kHostile))];
      if (bytes.size() >= wire::kHeaderBytes) {
        std::memcpy(&bytes[8], &value, 4);
      }
      break;
    }
    case 2: {  // corrupt the type or reserved bytes
      const size_t pos = 4 + static_cast<size_t>(rng.NextBounded(4));
      if (pos < bytes.size()) {
        bytes[pos] = static_cast<char>(rng.NextBounded(256));
      }
      break;
    }
    case 3: {  // truncate (header prefixes, split payloads)
      bytes.resize(static_cast<size_t>(rng.NextBounded(bytes.size())));
      break;
    }
    case 4: {  // poison a u32 count inside the payload
      if (bytes.size() <= wire::kHeaderBytes + 4) break;
      const size_t span = bytes.size() - wire::kHeaderBytes - 4;
      const size_t pos =
          wire::kHeaderBytes + static_cast<size_t>(rng.NextBounded(span));
      static constexpr uint32_t kHostile[] = {0xFFFFFFFFu, 0x10000000u,
                                              0xAAAAAAAAu, 0x10001u};
      const uint32_t value = kHostile[rng.NextBounded(std::size(kHostile))];
      std::memcpy(&bytes[pos], &value, 4);
      break;
    }
    default: {  // random overwrite anywhere
      const size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      const size_t len =
          std::min(bytes.size() - pos, size_t{1} + rng.NextBounded(8));
      for (size_t i = 0; i < len; ++i) {
        bytes[pos + i] = static_cast<char>(rng.NextBounded(256));
      }
      break;
    }
  }
  return bytes;
}

TEST(SnapshotFuzzSmokeTest, MutatedUdwireRequestFramesNeverCrash) {
  const std::string base = BuildRequestFrame();
  // Sanity: the unmutated frame parses and decodes.
  auto parsed = wire::TryParseFrame(base, 64u << 20);
  ASSERT_TRUE(parsed.ok() && parsed->has_value());
  ASSERT_TRUE(wire::DecodeDetectRequestPayload((**parsed).payload).ok());
  Rng rng(5005);
  for (int i = 0; i < 400; ++i) {
    ExpectWireDecodersSurvive(MutateFrame(base, rng));
  }
}

TEST(SnapshotFuzzSmokeTest, MutatedUdwireResponseFramesNeverCrash) {
  const std::string base = BuildResponseFrame();
  auto parsed = wire::TryParseFrame(base, 64u << 20);
  ASSERT_TRUE(parsed.ok() && parsed->has_value());
  ASSERT_TRUE(wire::DecodeDetectResponsePayload((**parsed).payload).ok());
  Rng rng(6006);
  for (int i = 0; i < 400; ++i) {
    ExpectWireDecodersSurvive(MutateFrame(base, rng));
  }
}

// Replays every frozen crasher. Each fixture is a full input file that
// once took the decoder down (e.g. a 16-byte header whose section_count
// of 2^32-1 drove a multi-GB reserve) and must now produce a typed
// error.
TEST(SnapshotFuzzSmokeTest, GoldenCrashersStayFixed) {
  const std::filesystem::path golden(UNIDETECT_GOLDEN_DIR);
  int replayed = 0;
  int replayed_delta = 0;
  for (const auto& entry : std::filesystem::directory_iterator(golden)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("fuzz_", 0) != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    SCOPED_TRACE(name);
    if (name.rfind("fuzz_delta_", 0) == 0) {
      // Delta crashers attack the manifest, which the plain decoder
      // skips (a CRC-valid hostile manifest decodes as an ordinary
      // model). The frozen contract is therefore: the manifest reader
      // rejects with a typed Corruption, and the plain decoders still
      // never crash.
      ExpectDeltaReadersSurvive(bytes);
      auto manifest = FindDeltaManifest(bytes);
      ASSERT_FALSE(manifest.ok()) << name << " manifest decoded";
      EXPECT_TRUE(manifest.status().IsCorruption())
          << name << ": " << manifest.status();
      ++replayed_delta;
      continue;
    }
    for (SnapshotValidation validation :
         {SnapshotValidation::kFull, SnapshotValidation::kDeferPayload}) {
      auto decoded = DecodeModelSnapshot(bytes, validation);
      ASSERT_FALSE(decoded.ok()) << name << " decoded successfully";
      EXPECT_TRUE(decoded.status().IsCorruption())
          << name << ": " << decoded.status();
    }
    ++replayed;
  }
  // The suite must fail loudly if the fixtures go missing.
  EXPECT_GE(replayed, 3);
  EXPECT_GE(replayed_delta, 3);
}

}  // namespace
}  // namespace unidetect
