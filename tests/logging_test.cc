#include "util/logging.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, SuppressedMessagesAreCheap) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Streams below the threshold must not crash or emit.
  for (int i = 0; i < 1000; ++i) {
    UNIDETECT_LOG(Debug) << "suppressed " << i;
  }
  SetLogLevel(before);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  UNIDETECT_CHECK(1 + 1 == 2);  // must not abort
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(UNIDETECT_CHECK(false), "CHECK failed");
}

}  // namespace
}  // namespace unidetect
