// Background compactor (offline/compactor.h): folding a served chain
// into a fresh base must be bit-identical to the Model::Merge fold,
// swap in atomically via the generation CAS, and leave detection
// results byte-identical. The tsan preset runs this suite (Compactor is
// in the CMakePresets.json tsan test filter).

#include "offline/compactor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "learn/trainer.h"
#include "model_format/model_snapshot.h"
#include "model_format/snapshot_v2.h"
#include "offline/delta_build.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace unidetect {
namespace {

// A fresh on-disk chain per test (compaction swaps services around, so
// no sharing with other suites).
struct Fixture {
  std::string dir;
  std::string base_path;
  std::vector<std::string> delta_paths;
};

Fixture BuildChain(const std::string& name, size_t num_deltas,
                   uint64_t seed) {
  SetLogLevel(LogLevel::kWarning);
  Fixture f;
  f.dir = testing::TempDir() + "/" + name;
  std::filesystem::create_directories(f.dir);
  f.base_path = f.dir + "/base.udsnap";
  Trainer trainer;
  const Model base =
      trainer.Train(GenerateCorpus(WebCorpusSpec(200, seed)).corpus);
  UNIDETECT_CHECK(base.Save(f.base_path).ok());
  std::string parent;
  for (size_t i = 0; i < num_deltas; ++i) {
    const std::string shard = f.dir + "/shard" + std::to_string(i);
    UNIDETECT_CHECK(
        SaveCorpusToDirectory(
            GenerateCorpus(WebCorpusSpec(40, seed + 1 + i)).corpus, shard)
            .ok());
    DeltaBuildSpec spec;
    spec.base_path = f.base_path;
    spec.parent_path = parent;
    spec.input_dirs = {shard};
    spec.out_path = f.dir + "/delta" + std::to_string(i) + ".udsnap";
    UNIDETECT_CHECK(BuildDeltaSnapshot(spec).ok());
    parent = spec.out_path;
    f.delta_paths.push_back(spec.out_path);
  }
  return f;
}

std::string AllFindingsJson(const DetectionService::BatchResult& result) {
  std::string out;
  for (const auto& findings : result.per_table) {
    out += FindingsToJson(findings);
    out += '\n';
  }
  return out;
}

UniDetectOptions LooseOptions() {
  UniDetectOptions options;
  options.alpha = 1.0;
  return options;
}

TEST(CompactorTest, FoldIsBitIdenticalToMergeAndSwapsIn) {
  const Fixture f = BuildChain("compactor_fold", 2, 9001);
  auto service = DetectionService::Create(f.base_path, LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  for (const std::string& path : f.delta_paths) {
    ASSERT_TRUE((*service)->ApplyDelta(path).ok());
  }
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(15, 9005));
  const std::string before =
      AllFindingsJson((*service)->DetectBatch(test.corpus.tables));

  CompactorOptions options;
  options.output_path = f.dir + "/compacted.udsnap";
  Compactor compactor(service->get(), options);
  const auto compacted = compactor.CompactOnce();
  ASSERT_TRUE(compacted.ok()) << compacted.status();
  EXPECT_TRUE(*compacted);

  // The correctness oracle: the written base must be bit-identical to
  // the in-process Model::Merge fold of the same three artifacts.
  auto base = LoadModelFromFile(f.base_path, SnapshotValidation::kFull);
  ASSERT_TRUE(base.ok());
  Model merged(base->options());
  merged.Merge(*base);
  for (const std::string& path : f.delta_paths) {
    auto delta = LoadModelFromFile(path, SnapshotValidation::kFull);
    ASSERT_TRUE(delta.ok());
    merged.Merge(*delta);
  }
  merged.Finalize();
  auto written = ReadFileToString(options.output_path);
  ASSERT_TRUE(written.ok()) << written.status();
  EXPECT_EQ(*written, EncodeModelSnapshotV2(merged));

  // Serving moved to the compacted single layer, results unchanged.
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.delta_layers, 0u);
  EXPECT_EQ(stats.compactions, 1u);
  const DetectionService::LayerSet layers = (*service)->Layers();
  ASSERT_EQ(layers.paths.size(), 1u);
  EXPECT_EQ(layers.paths[0], options.output_path);
  EXPECT_EQ(before,
            AllFindingsJson((*service)->DetectBatch(test.corpus.tables)));

  const CompactorStats cstats = compactor.stats();
  EXPECT_EQ(cstats.attempts, 1u);
  EXPECT_EQ(cstats.compactions, 1u);
  EXPECT_EQ(cstats.lost_races, 0u);
  EXPECT_EQ(cstats.failures, 0u);
}

TEST(CompactorTest, NothingToDoBelowTrigger) {
  const Fixture f = BuildChain("compactor_trigger", 1, 9101);
  auto service = DetectionService::Create(f.base_path, LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  CompactorOptions options;
  options.output_path = f.dir + "/compacted.udsnap";
  options.trigger_delta_layers = 2;
  Compactor compactor(service->get(), options);

  // Bare base: nothing to fold.
  auto idle = compactor.CompactOnce();
  ASSERT_TRUE(idle.ok()) << idle.status();
  EXPECT_FALSE(*idle);

  // One delta, trigger at two: still nothing.
  ASSERT_TRUE((*service)->ApplyDelta(f.delta_paths[0]).ok());
  auto below = compactor.CompactOnce();
  ASSERT_TRUE(below.ok()) << below.status();
  EXPECT_FALSE(*below);
  EXPECT_EQ(compactor.stats().attempts, 0u);
  EXPECT_EQ((*service)->Stats().delta_layers, 1u);
}

TEST(CompactorTest, InMemoryChainIsRefused) {
  Trainer trainer;
  auto model = std::make_shared<const Model>(
      trainer.Train(GenerateCorpus(WebCorpusSpec(60, 9201)).corpus));
  DetectionService service(model, LooseOptions());
  CompactorOptions options;
  options.output_path = testing::TempDir() + "/compactor_mem.udsnap";
  options.trigger_delta_layers = 0;
  Compactor compactor(&service, options);
  // trigger 0 would fold even a bare base, but a memory-backed layer
  // has no file to re-read.
  const auto result = compactor.CompactOnce();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(*result);  // single layer: nothing stacked, nothing to do
}

// Background mode under concurrent serving: deltas land, the poll loop
// folds them away, batches stream throughout. tsan proves the absence
// of data races; the assertions prove the chain converges to one layer
// with results intact.
TEST(CompactorTest, BackgroundLoopCompactsWhileServing) {
  const Fixture f = BuildChain("compactor_bg", 2, 9301);
  auto service = DetectionService::Create(f.base_path, LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(5, 9305));
  const std::string expected_gen1 =
      AllFindingsJson((*service)->DetectBatch(test.corpus.tables));

  CompactorOptions options;
  options.output_path = f.dir + "/compacted.udsnap";
  options.poll_interval = std::chrono::milliseconds(5);
  Compactor compactor(service->get(), options);
  compactor.Start();
  compactor.Start();  // idempotent

  std::thread client([&] {
    for (int i = 0; i < 10; ++i) {
      (void)(*service)->DetectBatch(test.corpus.tables, nullptr,
                                    /*num_threads=*/2);
    }
  });
  for (const std::string& path : f.delta_paths) {
    ASSERT_TRUE((*service)->ApplyDelta(path).ok());
  }
  client.join();

  // Wait (bounded) for the loop to fold both deltas away.
  for (int i = 0; i < 1000 && (*service)->Stats().delta_layers > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  compactor.Stop();
  compactor.Stop();  // idempotent

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.delta_layers, 0u);
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_GE(compactor.stats().compactions, 1u);
  // The compacted chain serves the full fold (base + both deltas) —
  // different from generation 1, identical to the layered answer.
  const std::string after =
      AllFindingsJson((*service)->DetectBatch(test.corpus.tables));
  auto probe = DetectionService::Create(f.base_path, LooseOptions());
  ASSERT_TRUE(probe.ok());
  for (const std::string& path : f.delta_paths) {
    ASSERT_TRUE((*probe)->ApplyDelta(path).ok());
  }
  EXPECT_EQ(after,
            AllFindingsJson((*probe)->DetectBatch(test.corpus.tables)));
  (void)expected_gen1;
}

}  // namespace
}  // namespace unidetect
