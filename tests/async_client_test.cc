// AsyncUdwireClient tests (DESIGN.md §16.8): the pipelined multiplexing
// client against both a scripted fake server (exact control over
// response order and timing) and a real sharded DetectionServer. Pins:
//
//   * completions are matched by wire request id, so a server that
//     answers out of order still completes every caller correctly;
//   * the per-request client-side deadline fires as a typed
//     kDeadlineExceeded exactly once, and a late server response for
//     that id is dropped, not double-delivered;
//   * a server close fails every outstanding request with kUnavailable
//     exactly once, and later Detect() calls complete immediately;
//   * 64+ requests in flight on one connection against a real server
//     all complete OK (the tsan leg runs this test — the pending-map
//     and callback paths must be race-free).

#include "server/client.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "learn/trainer.h"
#include "server/server.h"
#include "server/wire.h"
#include "serving/detection_service.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace unidetect {
namespace {

// ---------------------------------------------------------------------
// Scripted fake server: one listener, one accepted connection, a
// caller-provided session body that reads requests and writes whatever
// frames (in whatever order) the test wants.

class FakeUdwireServer {
 public:
  /// `session` runs on the server thread with the accepted fd; the
  /// connection closes when it returns.
  explicit FakeUdwireServer(std::function<void(int fd)> session) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    UNIDETECT_CHECK(listen_fd_ >= 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    // Trusted sockaddr ABI cast. NOLINTNEXTLINE(unsafe-bytes)
    UNIDETECT_CHECK(bind(listen_fd_,
                         reinterpret_cast<const struct sockaddr*>(&addr),
                         sizeof(addr)) == 0);
    UNIDETECT_CHECK(listen(listen_fd_, 1) == 0);
    struct sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    // NOLINTNEXTLINE(unsafe-bytes) — same trusted cast.
    UNIDETECT_CHECK(getsockname(listen_fd_,
                                reinterpret_cast<struct sockaddr*>(&bound),
                                &bound_len) == 0);
    port_ = ntohs(bound.sin_port);
    thread_ = std::thread([this, session = std::move(session)] {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      session(fd);
      close(fd);
    });
  }

  ~FakeUdwireServer() {
    if (thread_.joinable()) thread_.join();
    close(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Blocking-reads `n` complete request frames off `fd`.
std::vector<wire::DetectRequest> ReadRequests(int fd, size_t n) {
  std::vector<wire::DetectRequest> requests;
  std::string rx;
  char buf[16 << 10];
  while (requests.size() < n) {
    auto parsed = wire::TryParseFrame(rx, wire::kAbsoluteMaxPayload);
    UNIDETECT_CHECK(parsed.ok());
    if (parsed->has_value()) {
      const wire::FrameView frame = **parsed;
      auto request = wire::DecodeDetectRequestPayload(frame.payload);
      UNIDETECT_CHECK(request.ok());
      requests.push_back(std::move(request).ValueOrDie());
      rx.erase(0, frame.frame_bytes);
      continue;
    }
    const ssize_t r = read(fd, buf, sizeof(buf));
    UNIDETECT_CHECK(r > 0);
    rx.append(buf, static_cast<size_t>(r));
  }
  return requests;
}

void SendOkResponse(int fd, uint64_t request_id) {
  const std::string frame = wire::EncodeOkResponseFrame(request_id, 1, {});
  UNIDETECT_CHECK(
      send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) ==
      static_cast<ssize_t>(frame.size()));
}

wire::DetectRequest TinyRequest() {
  wire::DetectRequest request;
  return request;  // no tables: the fake server never detects anything
}

struct Gather {
  Mutex mu;
  CondVar cv;
  std::vector<wire::DetectResponse> responses;

  void Push(wire::DetectResponse response) {
    MutexLock lock(&mu);
    responses.push_back(std::move(response));
    cv.NotifyAll();
  }
  void AwaitCount(size_t n) {
    MutexLock lock(&mu);
    while (responses.size() < n) cv.Wait(mu);
  }
};

TEST(AsyncClientTest, OutOfOrderCompletionsMatchByRequestId) {
  constexpr size_t kRequests = 5;
  FakeUdwireServer server([](int fd) {
    // Answer in reverse arrival order.
    const auto requests = ReadRequests(fd, kRequests);
    for (size_t i = requests.size(); i-- > 0;) {
      SendOkResponse(fd, requests[i].request_id);
    }
    // Hold the connection until the client has seen everything.
    char buf[1];
    (void)read(fd, buf, sizeof(buf));
  });

  auto client = AsyncUdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  Gather gather;
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < kRequests; ++i) {
    ids.push_back((*client)->Detect(
        TinyRequest(),
        [&gather](wire::DetectResponse r) { gather.Push(std::move(r)); }));
  }
  gather.AwaitCount(kRequests);

  // Every submitted id completed exactly once, as kOk, despite the
  // reversed delivery order.
  std::set<uint64_t> completed;
  {
    MutexLock lock(&gather.mu);
    for (const wire::DetectResponse& response : gather.responses) {
      EXPECT_EQ(response.code, wire::WireCode::kOk) << response.error;
      completed.insert(response.request_id);
    }
  }
  EXPECT_EQ(completed, std::set<uint64_t>(ids.begin(), ids.end()));
  EXPECT_EQ((*client)->pending(), 0u);
  client->reset();  // unblocks the fake server's final read
}

TEST(AsyncClientTest, ClientDeadlineFiresTypedAndLateResponseIsDropped) {
  struct Sync {
    Mutex mu;
    CondVar cv;
    bool deadline_seen = false;
  } sync;
  FakeUdwireServer server([&sync](int fd) {
    const auto requests = ReadRequests(fd, 1);
    // Respond only after the client-side deadline has already fired.
    {
      MutexLock lock(&sync.mu);
      while (!sync.deadline_seen) sync.cv.Wait(sync.mu);
    }
    SendOkResponse(fd, requests[0].request_id);
    char buf[1];
    (void)read(fd, buf, sizeof(buf));
  });

  auto client = AsyncUdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  std::atomic<int> fired{0};
  Gather gather;
  (*client)->Detect(
      TinyRequest(),
      [&](wire::DetectResponse r) {
        fired.fetch_add(1);
        gather.Push(std::move(r));
      },
      /*timeout_ms=*/50);
  gather.AwaitCount(1);
  {
    MutexLock lock(&gather.mu);
    EXPECT_EQ(gather.responses[0].code, wire::WireCode::kDeadlineExceeded);
  }
  EXPECT_EQ((*client)->pending(), 0u);

  // Now let the server send the (late) response; it must be dropped —
  // the callback count stays 1 and the connection stays healthy enough
  // to notice the drop without crashing.
  {
    MutexLock lock(&sync.mu);
    sync.deadline_seen = true;
    sync.cv.NotifyAll();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_FALSE((*client)->broken());
  client->reset();
}

TEST(AsyncClientTest, ServerCloseFailsAllPendingExactlyOnce) {
  constexpr size_t kRequests = 4;
  FakeUdwireServer server([](int fd) {
    const auto requests = ReadRequests(fd, kRequests);
    // Answer one, then slam the connection on the other three.
    SendOkResponse(fd, requests[0].request_id);
  });

  auto client = AsyncUdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  Gather gather;
  for (size_t i = 0; i < kRequests; ++i) {
    (*client)->Detect(TinyRequest(), [&gather](wire::DetectResponse r) {
      gather.Push(std::move(r));
    });
  }
  gather.AwaitCount(kRequests);

  size_t ok = 0, unavailable = 0;
  {
    MutexLock lock(&gather.mu);
    for (const wire::DetectResponse& response : gather.responses) {
      if (response.code == wire::WireCode::kOk) ++ok;
      if (response.code == wire::WireCode::kUnavailable) ++unavailable;
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(unavailable, kRequests - 1);
  EXPECT_EQ((*client)->pending(), 0u);
  EXPECT_TRUE((*client)->broken());

  // A submit after the break completes inline, typed, exactly once.
  std::atomic<int> late_fired{0};
  (*client)->Detect(TinyRequest(), [&](wire::DetectResponse r) {
    EXPECT_EQ(r.code, wire::WireCode::kUnavailable);
    late_fired.fetch_add(1);
  });
  EXPECT_EQ(late_fired.load(), 1);
}

// ---------------------------------------------------------------------
// Against a real server.

const std::string& BasePath() {
  static const std::string* path = [] {
    SetLogLevel(LogLevel::kWarning);
    const std::string dir =
        testing::TempDir() + "/async_client." + std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    auto* out = new std::string(dir + "/base.udsnap");
    Trainer trainer;
    const Model base =
        trainer.Train(GenerateCorpus(WebCorpusSpec(200, 8101)).corpus);
    UNIDETECT_CHECK(base.Save(*out).ok());
    return out;
  }();
  return *path;
}

UniDetectOptions LooseOptions() {
  UniDetectOptions options;
  options.alpha = 1.0;
  return options;
}

std::string PerTableJson(const std::vector<std::vector<Finding>>& per_table) {
  std::string out;
  for (const auto& findings : per_table) {
    out += FindingsToJson(findings);
    out += '\n';
  }
  return out;
}

TEST(AsyncClientTest, SixtyFourInFlightOnOneConnectionAllCompleteOk) {
  auto service = DetectionService::Create(BasePath(), LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions options;
  options.io_threads = 2;
  options.coalescer.base_options = LooseOptions();
  // Brief linger so in-flight requests pile up and batch across the
  // pipelined stream.
  options.coalescer.max_batch_delay = std::chrono::milliseconds(5);
  DetectionServer server(service->get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = AsyncUdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  constexpr size_t kInFlight = 64;
  const std::vector<Table> tables =
      GenerateCorpus(WebCorpusSpec(1, 8201)).corpus.tables;
  Gather gather;
  for (size_t i = 0; i < kInFlight; ++i) {
    wire::DetectRequest request;
    request.tables = tables;
    (*client)->Detect(std::move(request),
                      [&gather](wire::DetectResponse response) {
                        gather.Push(std::move(response));
                      });
  }
  gather.AwaitCount(kInFlight);

  const auto direct = (*service)->DetectBatch(tables);
  std::set<uint64_t> completed;
  {
    MutexLock lock(&gather.mu);
    for (const wire::DetectResponse& response : gather.responses) {
      ASSERT_EQ(response.code, wire::WireCode::kOk) << response.error;
      completed.insert(response.request_id);
      EXPECT_EQ(PerTableJson(response.per_table),
                PerTableJson(direct.per_table));
    }
  }
  EXPECT_EQ(completed.size(), kInFlight) << "every id completed exactly once";
  EXPECT_EQ((*client)->pending(), 0u);
  server.Stop();
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesOk), kInFlight);
}

TEST(AsyncClientTest, DetectSyncRoundTripsAgainstRealServer) {
  auto service = DetectionService::Create(BasePath(), LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions options;
  options.coalescer.base_options = LooseOptions();
  DetectionServer server(service->get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = AsyncUdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<Table> tables =
      GenerateCorpus(WebCorpusSpec(2, 8301)).corpus.tables;
  wire::DetectRequest request;
  request.tables = tables;
  const wire::DetectResponse response =
      (*client)->DetectSync(std::move(request));
  ASSERT_EQ(response.code, wire::WireCode::kOk) << response.error;
  const auto direct = (*service)->DetectBatch(tables);
  EXPECT_EQ(PerTableJson(response.per_table), PerTableJson(direct.per_table));
  server.Stop();
}

}  // namespace
}  // namespace unidetect
