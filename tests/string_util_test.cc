#include "util/string_util.h"

#include <gtest/gtest.h>

#include <sstream>

namespace unidetect {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TokenizeCellTest, SplitsOnSeparatorsDropsEmpties) {
  EXPECT_EQ(TokenizeCell("Keane, Mr. Andrew"),
            (std::vector<std::string>{"Keane", "Mr.", "Andrew"}));
  EXPECT_EQ(TokenizeCell("  spaced   out  "),
            (std::vector<std::string>{"spaced", "out"}));
  EXPECT_TRUE(TokenizeCell("").empty());
  EXPECT_TRUE(TokenizeCell(" ,;: ").empty());
}

TEST(TokenizeCellTest, KeepsHyphensAndDots) {
  // Call signs and decimals survive as single tokens.
  EXPECT_EQ(TokenizeCell("WALA-TV"), (std::vector<std::string>{"WALA-TV"}));
  EXPECT_EQ(TokenizeCell("3.14"), (std::vector<std::string>{"3.14"}));
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t a b \r\n"), "a b");
}

TEST(CaseTest, UpperLower) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("TokenIndex v1", "TokenIndex"));
  EXPECT_FALSE(StartsWith("Token", "TokenIndex"));
  EXPECT_TRUE(EndsWith("file.model", ".model"));
  EXPECT_FALSE(EndsWith(".model", "file.model"));
}

TEST(ParseNumericTest, PlainNumbers) {
  EXPECT_DOUBLE_EQ(*ParseNumeric("42"), 42.0);
  EXPECT_DOUBLE_EQ(*ParseNumeric("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*ParseNumeric("  7.25  "), 7.25);
  EXPECT_DOUBLE_EQ(*ParseNumeric("+10"), 10.0);
}

TEST(ParseNumericTest, ThousandsSeparators) {
  EXPECT_DOUBLE_EQ(*ParseNumeric("8,011"), 8011.0);
  EXPECT_DOUBLE_EQ(*ParseNumeric("1,234,567"), 1234567.0);
  // The decimal-slip value of Figure 4(e) parses as a small float.
  EXPECT_DOUBLE_EQ(*ParseNumeric("8.716"), 8.716);
}

TEST(ParseNumericTest, Percentages) {
  EXPECT_DOUBLE_EQ(*ParseNumeric("43.2%"), 43.2);
  EXPECT_DOUBLE_EQ(*ParseNumeric("43.2 %"), 43.2);
}

TEST(ParseNumericTest, Rejections) {
  EXPECT_FALSE(ParseNumeric("").has_value());
  EXPECT_FALSE(ParseNumeric("abc").has_value());
  EXPECT_FALSE(ParseNumeric("12abc").has_value());
  EXPECT_FALSE(ParseNumeric("1,,2").has_value());
  EXPECT_FALSE(ParseNumeric(",12").has_value());
  EXPECT_FALSE(ParseNumeric("12,").has_value());
  EXPECT_FALSE(ParseNumeric("1.2.3").has_value());
  EXPECT_FALSE(ParseNumeric("%").has_value());
}

TEST(LooksLikeIntegerTest, Basic) {
  EXPECT_TRUE(LooksLikeInteger("42"));
  EXPECT_TRUE(LooksLikeInteger("-42"));
  EXPECT_TRUE(LooksLikeInteger("61,044"));
  EXPECT_FALSE(LooksLikeInteger("4.2"));
  EXPECT_FALSE(LooksLikeInteger("abc"));
  EXPECT_FALSE(LooksLikeInteger(""));
  EXPECT_FALSE(LooksLikeInteger("-"));
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
  EXPECT_EQ(FormatDouble(100.0, 0), "100");
}

TEST(StrCatTest, MixedPieces) {
  EXPECT_EQ(StrCat("a", std::string("b"), std::string_view("c"), 'd'), "abcd");
  EXPECT_EQ(StrCat("n=", 42, " m=", size_t{7}, " k=", -3), "n=42 m=7 k=-3");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrCatTest, DoublesMatchOstreamDefaultFormat) {
  // StrCat explanations replaced ostringstream formatting in the
  // detectors; outputs must stay byte-identical across every double
  // shape the LR scores and metric values can take.
  for (double v : {0.0, 1.0, 0.25, 2.0 / 3.0, 1e-7, 123456.0, 1234567.0,
                   0.000123456789, 3.5e20, -0.0817, 17.125, 1e6}) {
    std::ostringstream os;
    os << v;
    EXPECT_EQ(StrCat(v), os.str()) << "v=" << v;
  }
}

TEST(StrAppendTest, AppendsInPlace) {
  std::string s = "LR=";
  StrAppend(&s, 0.5, " rows=", 12u);
  EXPECT_EQ(s, "LR=0.5 rows=12");
}

}  // namespace
}  // namespace unidetect
