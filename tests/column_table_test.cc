#include "table/column.h"
#include "table/table.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

Column MakeColumn(std::vector<std::string> cells) {
  return Column("c", std::move(cells));
}

TEST(ColumnTest, TypeInferenceMajority) {
  EXPECT_EQ(MakeColumn({"1", "2", "3"}).type(), ColumnType::kInteger);
  EXPECT_EQ(MakeColumn({"1", "2.5", "3"}).type(), ColumnType::kFloat);
  EXPECT_EQ(MakeColumn({"a", "b", "c"}).type(), ColumnType::kString);
  EXPECT_EQ(MakeColumn({"2015-04-01", "2015-05-26", "2016-01-01"}).type(),
            ColumnType::kDate);
  EXPECT_EQ(MakeColumn({"A1", "B2", "C3"}).type(), ColumnType::kMixedAlnum);
}

TEST(ColumnTest, NumericColumnToleratesFewStrings) {
  // "Unknown" markers in numeric columns do not flip the type.
  Column col = MakeColumn({"1", "2", "3", "4", "5", "6", "7", "8", "9", "n/a"});
  EXPECT_EQ(col.type(), ColumnType::kInteger);
}

TEST(ColumnTest, MixedColumnIsString) {
  Column col = MakeColumn({"1", "2", "a", "b", "c", "d"});
  EXPECT_EQ(col.type(), ColumnType::kString);
}

TEST(ColumnTest, EmptyColumnUnknown) {
  EXPECT_EQ(MakeColumn({}).type(), ColumnType::kUnknown);
  EXPECT_EQ(MakeColumn({"", " "}).type(), ColumnType::kUnknown);
}

TEST(ColumnTest, NumericValuesAlignedWithRows) {
  Column col = MakeColumn({"10", "x", "", "20"});
  EXPECT_EQ(col.NumericValues(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(col.NumericRows(), (std::vector<size_t>{0, 3}));
  // 3 non-empty cells, 2 numeric.
  EXPECT_NEAR(col.NumericFraction(), 2.0 / 3.0, 1e-12);
}

TEST(ColumnTest, NumericValuesParseCommasAndPercent) {
  Column col = MakeColumn({"8,011", "43.2%", "8.716"});
  EXPECT_EQ(col.NumericValues(),
            (std::vector<double>{8011.0, 43.2, 8.716}));
}

TEST(ColumnTest, SetCellInvalidatesCaches) {
  Column col = MakeColumn({"1", "2", "3"});
  EXPECT_EQ(col.type(), ColumnType::kInteger);
  col.SetCell(0, "abc");
  col.SetCell(1, "def");
  EXPECT_EQ(col.type(), ColumnType::kString);
  EXPECT_EQ(col.NumericValues().size(), 1u);
}

TEST(ColumnTest, AppendInvalidatesCaches) {
  Column col = MakeColumn({"1"});
  EXPECT_EQ(col.NumericValues().size(), 1u);
  col.Append("2");
  EXPECT_EQ(col.NumericValues().size(), 2u);
}

TEST(ColumnTest, NumDistinct) {
  EXPECT_EQ(MakeColumn({"a", "b", "a", "c"}).NumDistinct(), 3u);
  EXPECT_EQ(MakeColumn({}).NumDistinct(), 0u);
}

TEST(ColumnTest, WithoutRows) {
  Column col = MakeColumn({"a", "b", "c", "d"});
  Column reduced = col.WithoutRows({1, 3});
  EXPECT_EQ(reduced.cells(), (std::vector<std::string>{"a", "c"}));
  // Unsorted and out-of-range rows are tolerated.
  Column reduced2 = col.WithoutRows({3, 0, 99});
  EXPECT_EQ(reduced2.cells(), (std::vector<std::string>{"b", "c"}));
}

TEST(TableTest, AddColumnEnforcesLength) {
  Table table("t");
  EXPECT_TRUE(table.AddColumn(Column("a", {"1", "2"})).ok());
  Status st = table.AddColumn(Column("b", {"1"}));
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(table.num_columns(), 1u);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, ColumnIndexByName) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column("a", {"1"})).ok());
  ASSERT_TRUE(table.AddColumn(Column("b", {"2"})).ok());
  EXPECT_EQ(*table.ColumnIndex("b"), 1u);
  EXPECT_TRUE(table.ColumnIndex("z").status().IsNotFound());
}

TEST(TableTest, WithoutRowsDropsFromAllColumns) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column("a", {"1", "2", "3"})).ok());
  ASSERT_TRUE(table.AddColumn(Column("b", {"x", "y", "z"})).ok());
  Table reduced = table.WithoutRows({1});
  EXPECT_EQ(reduced.num_rows(), 2u);
  EXPECT_EQ(reduced.column(0).cell(1), "3");
  EXPECT_EQ(reduced.column(1).cell(1), "z");
}

TEST(TableTest, FromCsvPadsShortRows) {
  CsvData csv;
  csv.header = {"a", "b"};
  csv.rows = {{"1", "2"}, {"3"}};
  auto table = Table::FromCsv(csv, "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_columns(), 2u);
  EXPECT_EQ(table->column(1).cell(1), "");
}

TEST(TableTest, FromCsvNoColumnsFails) {
  CsvData csv;
  EXPECT_FALSE(Table::FromCsv(csv).ok());
}

TEST(TableTest, CsvRoundTrip) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column("a", {"1", "2"})).ok());
  ASSERT_TRUE(table.AddColumn(Column("b", {"x", "y"})).ok());
  auto round = Table::FromCsv(table.ToCsv(), "t2");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->column(0).cells(), table.column(0).cells());
  EXPECT_EQ(round->column(1).name(), "b");
}

}  // namespace
}  // namespace unidetect
