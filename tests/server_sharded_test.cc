// Multi-reactor loopback tests (DESIGN.md §16.7): a DetectionServer
// with io_threads > 1 on an ephemeral 127.0.0.1 port. Pins the sharding
// contracts:
//
//   * responses served through an N-shard server are byte-identical to
//     direct in-process DetectBatch calls — sharding changes who reads
//     the socket, never the bytes;
//   * both accept paths work: SO_REUSEPORT per-shard listeners and the
//     round-robin accept handoff (which spreads connections exactly and
//     counts kAcceptHandoffs);
//   * Stop() drains every admitted request across all shards — no
//     response is lost because its connection lived on a shard other
//     than the accepting one;
//   * metrics aggregate coherently: per-shard accept counters sum to
//     the global counter, /statz reports the shard table, and
//     GET /metrics speaks well-formed Prometheus text exposition;
//   * the per-connection in-flight cap refuses the overflow request
//     (typed kOverloaded) while the connection and its admitted
//     requests proceed.

#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "learn/trainer.h"
#include "server/client.h"
#include "server/wire.h"
#include "serving/detection_service.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace unidetect {
namespace {

// Per-process base snapshot (ctest runs cases as concurrent processes).
const std::string& BasePath() {
  static const std::string* path = [] {
    SetLogLevel(LogLevel::kWarning);
    const std::string dir = testing::TempDir() + "/server_sharded." +
                            std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    auto* out = new std::string(dir + "/base.udsnap");
    Trainer trainer;
    const Model base =
        trainer.Train(GenerateCorpus(WebCorpusSpec(200, 7101)).corpus);
    UNIDETECT_CHECK(base.Save(*out).ok());
    return out;
  }();
  return *path;
}

UniDetectOptions LooseOptions() {
  UniDetectOptions options;
  options.alpha = 1.0;
  return options;
}

std::unique_ptr<DetectionService> MakeService() {
  auto service = DetectionService::Create(BasePath(), LooseOptions());
  UNIDETECT_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

std::vector<Table> RequestTables(size_t n, uint64_t seed) {
  return GenerateCorpus(WebCorpusSpec(n, seed)).corpus.tables;
}

std::string PerTableJson(const std::vector<std::vector<Finding>>& per_table) {
  std::string out;
  for (const auto& findings : per_table) {
    out += FindingsToJson(findings);
    out += '\n';
  }
  return out;
}

bool WaitFor(const std::function<bool()>& done) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!done()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

ServerOptions ShardedOptions(size_t io_threads) {
  ServerOptions options;
  options.io_threads = io_threads;
  options.coalescer.base_options = LooseOptions();
  return options;
}

TEST(ShardedServerTest, FourShardResponsesMatchDirectBatch) {
  auto service = MakeService();
  DetectionServer server(service.get(), ShardedOptions(4));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.io_threads(), 4u);

  // Several connections so the kernel (or round-robin) actually spreads
  // them across shards; each runs its own request sequence.
  constexpr size_t kConnections = 6;
  for (size_t c = 0; c < kConnections; ++c) {
    auto client = UdwireClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status();
    for (uint64_t i = 0; i < 2; ++i) {
      wire::DetectRequest request;
      request.request_id = c * 100 + i;
      request.tables = RequestTables(2, 7200 + c * 10 + i);
      auto response = client->Detect(request);
      ASSERT_TRUE(response.ok()) << response.status();
      EXPECT_EQ(response->request_id, request.request_id);
      ASSERT_EQ(response->code, wire::WireCode::kOk) << response->error;
      const auto direct = service->DetectBatch(request.tables);
      EXPECT_EQ(PerTableJson(response->per_table),
                PerTableJson(direct.per_table))
          << "sharded response must be byte-identical to the direct call";
    }
  }
  server.Stop();
  EXPECT_EQ(server.metrics().Count(ServerMetric::kRequests),
            kConnections * 2);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesOk),
            kConnections * 2);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesError), 0u);
}

TEST(ShardedServerTest, ReusePortModeStartsWithPerShardListeners) {
  auto service = MakeService();
  ServerOptions options = ShardedOptions(3);
  options.accept_mode = ServerOptions::AcceptMode::kReusePort;
  DetectionServer server(service.get(), options);
  // Linux has had SO_REUSEPORT since 3.9; pinning kReusePort must not
  // fall back silently.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.accept_handoff());
  EXPECT_EQ(server.io_threads(), 3u);

  auto client = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  wire::DetectRequest request;
  request.request_id = 5;
  request.tables = RequestTables(1, 7301);
  auto response = client->Detect(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, wire::WireCode::kOk) << response->error;
  server.Stop();
}

TEST(ShardedServerTest, HandoffSpreadsConnectionsRoundRobin) {
  auto service = MakeService();
  ServerOptions options = ShardedOptions(3);
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.accept_handoff());

  // Six sequential connections across three shards land exactly two per
  // shard; four of the six leave shard 0 (rr cursor starts at 0).
  std::vector<UdwireClient> clients;
  for (size_t c = 0; c < 6; ++c) {
    auto client = UdwireClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status();
    clients.push_back(std::move(client).ValueOrDie());
  }
  ASSERT_TRUE(WaitFor([&] {
    return server.metrics().Count(ServerMetric::kConnectionsAccepted) == 6;
  }));
  EXPECT_EQ(server.metrics().Count(ServerMetric::kAcceptHandoffs), 4u);

  // A handed-off connection must still serve requests (its state lives
  // on the target shard's loop thread).
  for (UdwireClient& client : clients) {
    wire::DetectRequest request;
    request.request_id = 7;
    request.tables = RequestTables(1, 7401);
    auto response = client.Detect(request);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, wire::WireCode::kOk) << response->error;
  }
  server.Stop();
}

TEST(ShardedServerTest, StopDrainsAdmittedRequestsOnEveryShard) {
  auto service = MakeService();
  ServerOptions options = ShardedOptions(4);
  // A long linger so the batch is still pending when Stop() begins: the
  // drain (not luck) must complete these.
  options.coalescer.max_batch_delay = std::chrono::milliseconds(300);
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 5;
  struct Gather {
    Mutex mu;
    std::vector<wire::DetectResponse> responses;
  } gather;
  std::vector<std::unique_ptr<AsyncUdwireClient>> clients;
  for (size_t c = 0; c < kClients; ++c) {
    auto client = AsyncUdwireClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status();
    clients.push_back(std::move(client).ValueOrDie());
    for (size_t i = 0; i < kPerClient; ++i) {
      wire::DetectRequest request;
      request.tables = RequestTables(1, 7500 + c * 10 + i);
      clients.back()->Detect(std::move(request),
                             [&gather](wire::DetectResponse response) {
                               MutexLock lock(&gather.mu);
                               gather.responses.push_back(std::move(response));
                             });
    }
  }
  // Every request decoded and submitted before the shutdown starts.
  ASSERT_TRUE(WaitFor([&] {
    return server.metrics().Count(ServerMetric::kRequests) ==
           kClients * kPerClient;
  }));
  server.Stop();

  ASSERT_TRUE(WaitFor([&] {
    MutexLock lock(&gather.mu);
    return gather.responses.size() == kClients * kPerClient;
  }));
  MutexLock lock(&gather.mu);
  for (const wire::DetectResponse& response : gather.responses) {
    EXPECT_EQ(response.code, wire::WireCode::kOk)
        << "drain must complete every admitted request: " << response.error;
  }
}

TEST(ShardedServerTest, MetricsAggregateAcrossShards) {
  auto service = MakeService();
  ServerOptions options = ShardedOptions(3);
  options.accept_mode = ServerOptions::AcceptMode::kHandoff;  // deterministic
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<UdwireClient> clients;
  for (size_t c = 0; c < 6; ++c) {
    auto client = UdwireClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status();
    clients.push_back(std::move(client).ValueOrDie());
    wire::DetectRequest request;
    request.request_id = c;
    request.tables = RequestTables(1, 7600 + c);
    auto response = clients.back().Detect(request);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->code, wire::WireCode::kOk) << response->error;
  }

  const std::string statz = server.StatzJson();
  EXPECT_NE(statz.find("\"io_threads\":3"), std::string::npos) << statz;
  EXPECT_NE(statz.find("\"accept_mode\":\"handoff\""), std::string::npos);
  // Handoff round-robin: exactly two accepts per shard, and the shard
  // table must sum to the global counter.
  EXPECT_NE(statz.find("\"io_shards\":[{\"accepted\":2,\"open_connections\":2"
                       "},{\"accepted\":2,\"open_connections\":2},"
                       "{\"accepted\":2,\"open_connections\":2}]"),
            std::string::npos)
      << statz;
  EXPECT_EQ(server.metrics().Count(ServerMetric::kConnectionsAccepted), 6u);
  server.Stop();
}

TEST(ShardedServerTest, PrometheusMetricsEndpointSpeaksTextExposition) {
  auto service = MakeService();
  DetectionServer server(service.get(), ShardedOptions(2));
  ASSERT_TRUE(server.Start().ok());

  // One served request so the latency histogram has a sample.
  auto client = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  wire::DetectRequest request;
  request.request_id = 1;
  request.tables = RequestTables(1, 7701);
  auto response = client->Detect(request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->code, wire::WireCode::kOk) << response->error;

  auto fetched = HttpFetch("127.0.0.1", server.port(), "GET", "/metrics");
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_NE(fetched->find("200 OK"), std::string::npos);
  EXPECT_NE(fetched->find("text/plain"), std::string::npos);
  // Counters follow the _total convention with TYPE headers.
  EXPECT_NE(fetched->find("# TYPE unidetect_requests_total counter"),
            std::string::npos);
  EXPECT_NE(fetched->find("unidetect_requests_total 1"), std::string::npos);
  EXPECT_NE(fetched->find("unidetect_responses_ok_total 1"),
            std::string::npos);
  // Histogram: TYPE header, cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(
      fetched->find("# TYPE unidetect_request_latency_microseconds histogram"),
      std::string::npos);
  EXPECT_NE(fetched->find("unidetect_request_latency_microseconds_bucket{le="),
            std::string::npos);
  EXPECT_NE(fetched->find(
                "unidetect_request_latency_microseconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(fetched->find("unidetect_request_latency_microseconds_count 1"),
            std::string::npos);
  EXPECT_NE(fetched->find("unidetect_request_latency_microseconds_sum "),
            std::string::npos);
  // Per-shard series carry shard labels; both shards are present.
  EXPECT_NE(fetched->find("unidetect_shard_accepted_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(fetched->find("unidetect_shard_accepted_total{shard=\"1\"}"),
            std::string::npos);
  // The serving tier is on the same page.
  EXPECT_NE(fetched->find("unidetect_service_requests_total 1"),
            std::string::npos);
  server.Stop();
}

TEST(ShardedServerTest, PerConnectionInFlightCapShedsTypedOverload) {
  auto service = MakeService();
  ServerOptions options = ShardedOptions(1);
  options.max_in_flight_per_connection = 1;
  // Linger long enough that request 1 is still in flight while the
  // pipelined 2..8 arrive: they must shed deterministically.
  options.coalescer.max_batch_delay = std::chrono::milliseconds(200);
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto client = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  constexpr uint64_t kBurst = 8;
  std::string burst;
  for (uint64_t i = 1; i <= kBurst; ++i) {
    wire::DetectRequest request;
    request.request_id = i;
    request.tables = RequestTables(1, 7800);
    burst += wire::EncodeDetectRequest(request);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());

  std::map<uint64_t, wire::WireCode> outcomes;
  for (uint64_t i = 0; i < kBurst; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    outcomes[response->request_id] = response->code;
  }
  ASSERT_EQ(outcomes.size(), kBurst);
  size_t ok = 0, shed = 0;
  for (const auto& [id, code] : outcomes) {
    if (code == wire::WireCode::kOk) {
      ++ok;
      EXPECT_EQ(id, 1u) << "the first request owns the in-flight slot";
    } else {
      ++shed;
      EXPECT_EQ(code, wire::WireCode::kOverloaded);
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(shed, kBurst - 1);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kShedConnectionCap),
            kBurst - 1);

  // The connection survived the shedding: a follow-up request succeeds.
  wire::DetectRequest after;
  after.request_id = 99;
  after.tables = RequestTables(1, 7801);
  auto response = client->Detect(after);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, wire::WireCode::kOk) << response->error;
  server.Stop();
}

TEST(ShardedServerTest, SingleShardReportsSingleAcceptMode) {
  auto service = MakeService();
  DetectionServer server(service.get(), ShardedOptions(1));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.io_threads(), 1u);
  EXPECT_FALSE(server.accept_handoff());
  const std::string statz = server.StatzJson();
  EXPECT_NE(statz.find("\"io_threads\":1"), std::string::npos);
  EXPECT_NE(statz.find("\"accept_mode\":\"single\""), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace unidetect
