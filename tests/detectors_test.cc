// Integration tests: detectors running against a model trained on a real
// generated corpus, with planted errors of every class.

#include <gtest/gtest.h>

#include <memory>

#include "corpus/generator.h"
#include "detect/fd_detector.h"
#include "detect/outlier_detector.h"
#include "detect/spelling_detector.h"
#include "detect/unidetect.h"
#include "detect/uniqueness_detector.h"
#include "learn/trainer.h"
#include "util/random.h"
#include "util/string_util.h"

namespace unidetect {
namespace {

// One shared model for the whole suite (training is the slow part).
const Model& SharedModel() {
  static const Model* model = [] {
    Trainer trainer;
    return new Model(
        trainer.Train(GenerateCorpus(WebCorpusSpec(6000, 6001)).corpus));
  }();
  return *model;
}

// Single-layer stack over the shared model, for direct detector tests.
const ModelStack& SharedStack() {
  static const ModelStack* stack =
      new ModelStack(ModelStack::Borrow(&SharedModel()));
  return *stack;
}

Table PartsTable() {
  Table table("parts");
  auto add = [&](const char* name, std::vector<std::string> cells) {
    ASSERT_TRUE(table.AddColumn(Column(name, std::move(cells))).ok());
  };
  add("Part No.", {"KV118-552B2K7", "MP241-118A3T9", "BX770-031C4R2",
                   "KV118-552B2K7", "LN402-877D1Q5", "RW655-209E8S3",
                   "TC903-446F2U1", "GH128-335G7V6", "DM519-602H4W8",
                   "PS284-771J9X2", "QA067-148K3Y5", "VB836-925L6Z4"});
  add("City", {"Chicago", "Boston", "Denver", "Chicagoo", "Seattle",
               "Atlanta", "Houston", "Phoenix", "Toronto", "Montreal",
               "Vancouver", "Dublin"});
  add("Price", {"2497000", "2815.5", "2641", "2702.25", "2588", "2776.4",
                "2694", "2745.75", "2611.3", "2838", "2569.9", "2723.6"});
  return table;
}

TEST(OutlierDetectorTest, FlagsScaleError) {
  OutlierDetector detector(&SharedStack());
  std::vector<Finding> findings;
  detector.Detect(PartsTable(), &findings);
  bool found = false;
  for (const auto& finding : findings) {
    if (finding.column == 2 && finding.rows == std::vector<size_t>{0}) {
      found = true;
      EXPECT_LT(finding.score, 0.05);
      EXPECT_EQ(finding.value, "2497000");
    }
  }
  EXPECT_TRUE(found);
}

TEST(OutlierDetectorTest, SilentOnCleanGaussian) {
  Table table("clean");
  std::vector<std::string> cells;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    cells.push_back(FormatDouble(rng.Normal(100, 5), 2));
  }
  ASSERT_TRUE(table.AddColumn(Column("v", std::move(cells))).ok());
  OutlierDetector detector(&SharedStack());
  std::vector<Finding> findings;
  detector.Detect(table, &findings);
  for (const auto& finding : findings) {
    EXPECT_GT(finding.score, 0.05) << finding.explanation;
  }
}

TEST(SpellingDetectorTest, FlagsTypoPair) {
  SpellingDetector detector(&SharedStack());
  std::vector<Finding> findings;
  detector.Detect(PartsTable(), &findings);
  bool found = false;
  for (const auto& finding : findings) {
    if (finding.column == 1 &&
        finding.value.find("Chicagoo") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpellingDetectorTest, DictionarySuppressesKnownWordPairs) {
  // "Bromine"/"Bromide" are both real words; with a dictionary holding
  // them, the finding is refuted (the +Dict variant of Section 4.3).
  Table table("chem");
  ASSERT_TRUE(table
                  .AddColumn(Column("Species",
                                    {"Bromine", "Bromide", "Oxygen",
                                     "Nitrogen", "Helium", "Argon", "Xenon",
                                     "Krypton"}))
                  .ok());
  Dictionary dict;
  for (const char* word :
       {"bromine", "bromide", "oxygen", "nitrogen", "helium", "argon",
        "xenon", "krypton"}) {
    dict.AddWord(word);
  }
  SpellingDetector with_dict(&SharedStack(), &dict);
  SpellingDetector without_dict(&SharedStack());
  std::vector<Finding> suppressed;
  std::vector<Finding> raw;
  with_dict.Detect(table, &suppressed);
  without_dict.Detect(table, &raw);
  EXPECT_TRUE(suppressed.empty());
  // Without the dictionary the close pair may or may not clear the LR
  // bar, but the dictionary variant must never emit more findings.
  EXPECT_LE(suppressed.size(), raw.size());
}

TEST(UniquenessDetectorTest, FlagsDuplicateId) {
  UniquenessDetector detector(&SharedStack());
  std::vector<Finding> findings;
  detector.Detect(PartsTable(), &findings);
  bool found = false;
  for (const auto& finding : findings) {
    if (finding.column == 0) {
      found = true;
      EXPECT_EQ(finding.value, "KV118-552B2K7");
      EXPECT_LT(finding.score, 0.05);
    }
  }
  EXPECT_TRUE(found);
}

TEST(UniquenessDetectorTest, TolerantOfChanceNameDuplicates) {
  // A roster where two people share a name: common strings, prevalence
  // high -> the corpus statistics refuse to call it an error outright
  // (LR well above the ID-column case).
  Table table("roster");
  ASSERT_TRUE(table
                  .AddColumn(Column(
                      "Name", {"Smith, Mr. James", "Jones, Mrs. Mary",
                               "Kelly, Mr. James", "Kelly, Mr. James",
                               "Brown, Dr. Anna", "Lee, Ms. Sarah",
                               "Wilson, Mr. John", "Clark, Mrs. Ruth",
                               "Adams, Mr. Peter", "Hall, Ms. Jane",
                               "Young, Mr. Alan", "King, Mrs. Eve"}))
                  .ok());
  UniquenessDetector detector(&SharedStack());
  std::vector<Finding> findings;
  detector.Detect(table, &findings);
  // Either nothing is flagged, or the confidence is far weaker than an
  // ID-column duplicate would get.
  for (const auto& finding : findings) {
    EXPECT_GT(finding.score, 0.005) << finding.explanation;
  }
}

TEST(FdDetectorTest, FlagsConflictingPair) {
  Table table("routes");
  std::vector<std::string> shields;
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    shields.push_back(std::to_string(700 + i));
    names.push_back("Route " + std::to_string(700 + i));
  }
  shields[7] = "703";  // duplicate shield, conflicting name: Figure 13
  ASSERT_TRUE(table.AddColumn(Column("Shield", shields)).ok());
  ASSERT_TRUE(table.AddColumn(Column("Name", names)).ok());
  FdDetector detector(&SharedStack());
  std::vector<Finding> findings;
  detector.Detect(table, &findings);
  bool found = false;
  for (const auto& finding : findings) {
    if ((finding.column == 0 && finding.column2 == 1) ||
        (finding.column == 1 && finding.column2 == 0)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(UniDetectFacadeTest, RankedUnionAcrossClasses) {
  UniDetectOptions options;
  options.alpha = 0.3;
  UniDetect detector(&SharedModel(), options);
  const std::vector<Finding> findings = detector.DetectTable(PartsTable());
  ASSERT_GE(findings.size(), 3u);
  // Sorted ascending by LR.
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].score, findings[i].score);
  }
  // All four planted anomalies appear in some class.
  bool outlier = false;
  bool spelling = false;
  bool uniqueness = false;
  for (const auto& finding : findings) {
    outlier |= finding.error_class == ErrorClass::kOutlier;
    spelling |= finding.error_class == ErrorClass::kSpelling;
    uniqueness |= finding.error_class == ErrorClass::kUniqueness;
  }
  EXPECT_TRUE(outlier);
  EXPECT_TRUE(spelling);
  EXPECT_TRUE(uniqueness);
}

TEST(UniDetectFacadeTest, AlphaFilters) {
  UniDetectOptions strict;
  strict.alpha = 1e-9;
  UniDetect detector(&SharedModel(), strict);
  EXPECT_TRUE(detector.DetectTable(PartsTable()).empty());
}

TEST(UniDetectFacadeTest, ClassTogglesRespected) {
  UniDetectOptions options;
  options.alpha = 1.0;
  options.set_detect(ErrorClass::kOutlier, false);
  options.set_detect(ErrorClass::kFd, false);
  options.set_detect(ErrorClass::kUniqueness, false);
  UniDetect detector(&SharedModel(), options);
  for (const auto& finding : detector.DetectTable(PartsTable())) {
    EXPECT_EQ(finding.error_class, ErrorClass::kSpelling);
  }
}

TEST(UniDetectFacadeTest, CorpusRunSetsTableIndices) {
  Corpus corpus;
  corpus.tables.push_back(PartsTable());
  corpus.tables.push_back(PartsTable());
  UniDetectOptions options;
  options.alpha = 0.3;
  UniDetect detector(&SharedModel(), options);
  const std::vector<Finding> findings = detector.DetectCorpus(corpus);
  bool saw_second_table = false;
  for (const auto& finding : findings) {
    EXPECT_LT(finding.table_index, 2u);
    saw_second_table |= finding.table_index == 1;
  }
  EXPECT_TRUE(saw_second_table);
}

TEST(UniDetectFacadeTest, ParallelCorpusScanIsDeterministic) {
  const AnnotatedCorpus corpus = GenerateCorpus(WebCorpusSpec(60, 4444));
  UniDetectOptions options;
  options.alpha = 1.0;
  UniDetect detector(&SharedModel(), options);
  const auto serial = detector.DetectCorpus(corpus.corpus, 1);
  const auto parallel = detector.DetectCorpus(corpus.corpus, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].table_index, parallel[i].table_index);
    EXPECT_EQ(serial[i].column, parallel[i].column);
    EXPECT_DOUBLE_EQ(serial[i].score, parallel[i].score);
  }
}

}  // namespace
}  // namespace unidetect
