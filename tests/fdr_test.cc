#include "detect/fdr.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

Finding WithScore(double score) {
  Finding finding;
  finding.score = score;
  return finding;
}

TEST(FdrTest, KeepsBhPrefix) {
  // m = 4, q = 0.1: thresholds 0.025, 0.05, 0.075, 0.1.
  std::vector<Finding> ranked = {WithScore(0.01), WithScore(0.04),
                                 WithScore(0.09), WithScore(0.5)};
  const auto kept = ControlFdr(ranked, 0.1);
  // k=1: 0.01 <= 0.025 ok; k=2: 0.04 <= 0.05 ok; k=3: 0.09 > 0.075;
  // k=4: 0.5 > 0.1 -> keep 2.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[1].score, 0.04);
}

TEST(FdrTest, LargestKWinsEvenAfterGap) {
  // BH keeps through a violation if a later k satisfies its threshold.
  std::vector<Finding> ranked = {WithScore(0.020), WithScore(0.060),
                                 WithScore(0.074), WithScore(0.099)};
  const auto kept = ControlFdr(ranked, 0.1);
  // k=2 fails (0.060 > 0.05) but k=4 passes (0.099 <= 0.1): keep all 4.
  EXPECT_EQ(kept.size(), 4u);
}

TEST(FdrTest, NothingSignificantKeepsNothing) {
  std::vector<Finding> ranked = {WithScore(0.5), WithScore(0.9)};
  EXPECT_TRUE(ControlFdr(ranked, 0.05).empty());
}

TEST(FdrTest, EmptyInput) {
  EXPECT_TRUE(ControlFdr({}, 0.05).empty());
}

TEST(FdrTest, ExplicitHypothesisCountTightens) {
  std::vector<Finding> ranked = {WithScore(0.04)};
  // With m = 1 the threshold is q; with m = 100 it is q/100.
  EXPECT_EQ(ControlFdr(ranked, 0.05, 1).size(), 1u);
  EXPECT_TRUE(ControlFdr(ranked, 0.05, 100).empty());
}

TEST(FdrTest, StricterQKeepsFewer) {
  std::vector<Finding> ranked;
  for (int i = 1; i <= 50; ++i) {
    ranked.push_back(WithScore(0.002 * i));
  }
  const size_t loose = ControlFdr(ranked, 0.2).size();
  const size_t strict = ControlFdr(ranked, 0.02).size();
  EXPECT_GE(loose, strict);
  EXPECT_GT(loose, 0u);
}

}  // namespace
}  // namespace unidetect
