// FindingsCache unit tests: exact LRU semantics, the byte bound, the
// deterministic eviction order, and fingerprint sensitivity — the
// properties the serving tier's memoization correctness rests on.

#include "serving/findings_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "table/column.h"
#include "table/table.h"

namespace unidetect {
namespace {

Key128 MakeKey(uint64_t n) { return Key128{n, ~n}; }

Table MakeTable(
    const std::string& name,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        columns) {
  Table table(name);
  for (const auto& [column_name, cells] : columns) {
    EXPECT_TRUE(table.AddColumn(Column(column_name, cells)).ok());
  }
  return table;
}

std::vector<Finding> MakeFindings(size_t count, const std::string& tag) {
  std::vector<Finding> findings(count);
  for (size_t i = 0; i < count; ++i) {
    findings[i].table_name = tag;
    findings[i].value = tag + "-value-" + std::to_string(i);
    findings[i].score = 0.25;
    findings[i].rows = {i, i + 1};
  }
  return findings;
}

TEST(FindingsCacheTest, HitReturnsTheInsertedFindings) {
  FindingsCache cache(1 << 20);
  ASSERT_TRUE(cache.enabled());
  const auto findings = MakeFindings(3, "t1");
  cache.Insert(MakeKey(1), findings);

  auto hit = cache.Lookup(MakeKey(1));
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), findings.size());
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ((*hit)[i].value, findings[i].value);
    EXPECT_EQ((*hit)[i].rows, findings[i].rows);
  }
  EXPECT_FALSE(cache.Lookup(MakeKey(2)).has_value());
  const FindingsCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(FindingsCacheTest, EvictionFollowsRecencyOrder) {
  // Learn the (platform-dependent) cost of one entry, then budget for
  // exactly two: inserting a third must evict precisely the
  // least-recently-used one.
  uint64_t per_entry = 0;
  {
    FindingsCache probe(1 << 20);
    probe.Insert(MakeKey(9), MakeFindings(1, "a"));
    per_entry = probe.stats().resident_bytes;
    ASSERT_GT(per_entry, 0u);
  }
  const uint64_t budget = 2 * per_entry + per_entry / 2;
  FindingsCache cache(budget);
  cache.Insert(MakeKey(1), MakeFindings(1, "a"));
  cache.Insert(MakeKey(2), MakeFindings(1, "b"));
  EXPECT_EQ(cache.stats().entries, 2u);
  // Touch key 1 so key 2 becomes the cold end.
  ASSERT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  cache.Insert(MakeKey(3), MakeFindings(1, "c"));

  EXPECT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(2)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().resident_bytes, budget);
}

TEST(FindingsCacheTest, OversizedEntryIsNotInserted) {
  FindingsCache cache(256);
  cache.Insert(MakeKey(1), MakeFindings(64, "huge"));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(FindingsCacheTest, ClearDropsEntriesKeepsCounters) {
  FindingsCache cache(1 << 20);
  cache.Insert(MakeKey(1), MakeFindings(2, "x"));
  ASSERT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FindingsCacheTest, DisabledCacheCountsNothing) {
  FindingsCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(MakeKey(1), MakeFindings(1, "x"));
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
  const FindingsCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(FingerprintTest, SensitiveToEveryKeyComponent) {
  const std::vector<std::string> prices = {"9.99", "5.00", "1.25"};
  const Table table =
      MakeTable("orders", {{"qty", {"1", "2", "3"}}, {"price", prices}});
  UniDetectOptions options;
  const Key128 base = FingerprintTable(table, 1, options);

  // Generation.
  EXPECT_NE(base, FingerprintTable(table, 2, options));
  // Options that change detection output.
  UniDetectOptions strict = options;
  strict.alpha = options.alpha / 2;
  EXPECT_NE(base, FingerprintTable(table, 1, strict));
  // Table name.
  EXPECT_NE(base, FingerprintTable(
                      MakeTable("orders2", {{"qty", {"1", "2", "3"}},
                                            {"price", prices}}),
                      1, options));
  // Cell content.
  EXPECT_NE(base, FingerprintTable(
                      MakeTable("orders", {{"qty", {"1", "2", "4"}},
                                           {"price", prices}}),
                      1, options));
  // Cell framing: moving a boundary must change the hash even though the
  // concatenated bytes are identical.
  EXPECT_NE(base, FingerprintTable(
                      MakeTable("orders", {{"qty", {"12", "", "3"}},
                                           {"price", prices}}),
                      1, options));
  // And equal inputs fingerprint equally.
  EXPECT_EQ(base, FingerprintTable(
                      MakeTable("orders", {{"qty", {"1", "2", "3"}},
                                           {"price", prices}}),
                      1, options));
}

}  // namespace
}  // namespace unidetect
