// Validation of the server metrics registry (server/metrics.h).
//
// The counter table follows the enum-with-COUNT-sentinel idiom: the
// enum is the source of truth, kServerMetricEntries mirrors it in
// exactly enum order, and these tests fail when the two sides drift —
// an entry added to one side but not the other, a duplicated or
// reordered row, or a duplicated wire name. Keeping the validation in a
// test (rather than trusting review) makes adding a counter a safe
// two-line change.

#include "server/metrics.h"

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace unidetect {
namespace {

// The entry array must be sized by the sentinel — adding an enum value
// without a table row fails here at compile time.
static_assert(kServerMetricEntries.size() ==
                  static_cast<size_t>(ServerMetric::COUNT),
              "kServerMetricEntries must have one row per ServerMetric");

TEST(ServerMetricTableTest, EntriesAreInEnumOrderAndComplete) {
  for (size_t i = 0; i < kServerMetricEntries.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(kServerMetricEntries[i].metric), i)
        << "row " << i << " ('" << kServerMetricEntries[i].name
        << "') is out of enum order — the table must mirror the enum "
           "exactly, with no duplicated or skipped entries";
  }
}

TEST(ServerMetricTableTest, NamesAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const ServerMetricEntry& entry : kServerMetricEntries) {
    EXPECT_FALSE(entry.name.empty());
    EXPECT_TRUE(seen.insert(std::string(entry.name)).second)
        << "duplicate metric name '" << entry.name << "'";
    for (const char c : entry.name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_' || (c >= '0' && c <= '9'))
          << "metric name '" << entry.name
          << "' must be snake_case (it is the /statz JSON key)";
    }
  }
}

TEST(ServerMetricTableTest, NameLookupMatchesTable) {
  for (const ServerMetricEntry& entry : kServerMetricEntries) {
    EXPECT_EQ(ServerMetricName(entry.metric), entry.name);
  }
}

TEST(MetricsRegistryTest, CountersStartZeroAndAccumulate) {
  MetricsRegistry registry;
  for (const ServerMetricEntry& entry : kServerMetricEntries) {
    EXPECT_EQ(registry.Count(entry.metric), 0u);
  }
  registry.Add(ServerMetric::kRequests);
  registry.Add(ServerMetric::kRequests, 4);
  registry.Add(ServerMetric::kBatchedTables, 100);
  EXPECT_EQ(registry.Count(ServerMetric::kRequests), 5u);
  EXPECT_EQ(registry.Count(ServerMetric::kBatchedTables), 100u);
  EXPECT_EQ(registry.Count(ServerMetric::kBatches), 0u);
}

TEST(MetricsRegistryTest, CountersAreThreadSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.Add(ServerMetric::kRequests);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.Count(ServerMetric::kRequests),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, PercentilesAreUpperBounds) {
  LatencyHistogram histogram;
  // 90 fast samples (~8us bucket), 10 slow (~1024us bucket).
  for (int i = 0; i < 90; ++i) histogram.Observe(7);
  for (int i = 0; i < 10; ++i) histogram.Observe(1000);
  EXPECT_EQ(histogram.count(), 100u);
  const LatencyBuckets buckets = histogram.Snapshot();
  const double p50 =
      LatencyPercentileUpperBound(buckets, histogram.count(), 0.50);
  const double p99 =
      LatencyPercentileUpperBound(buckets, histogram.count(), 0.99);
  EXPECT_LE(p50, 8.0);       // half the samples were ~7us
  EXPECT_GE(p99, 1000.0);    // the tail lives in the 512..1024 bucket
  EXPECT_LE(p99, 1024.0);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToBucketZero) {
  LatencyHistogram histogram;
  histogram.Observe(-5);  // a clock that went backwards must not crash
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.Snapshot()[0], 1u);
}

TEST(MetricsRegistryTest, RecentQpsReflectsMarkedRequests) {
  MetricsRegistry registry;
  const auto now = std::chrono::steady_clock::now();
  // 100 requests stamped into a completed (past) second.
  for (int i = 0; i < 100; ++i) {
    registry.MarkRequest(now - std::chrono::seconds(2));
  }
  const double qps = registry.RecentQps(now);
  EXPECT_GT(qps, 0.0);
  EXPECT_LE(qps, 100.0);
}

TEST(MetricsRegistryTest, QueueDepthGaugeReadsBack) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.queue_depth(), 0u);
  registry.set_queue_depth(17);
  EXPECT_EQ(registry.queue_depth(), 17u);
  registry.set_queue_depth(0);
  EXPECT_EQ(registry.queue_depth(), 0u);
}

}  // namespace
}  // namespace unidetect
