#include "synthesis/string_program.h"

#include <gtest/gtest.h>

#include "synthesis/fd_synthesis_detector.h"

namespace unidetect {
namespace {

Column Col(const char* name, std::vector<std::string> cells) {
  return Column(name, std::move(cells));
}

SynthesisOptions Loose() {
  SynthesisOptions options;
  options.min_rows = 4;
  return options;
}

TEST(StringProgramTest, ApplyAndDescribe) {
  StringProgram program;
  program.prefix = "Route ";
  program.suffix = "!";
  EXPECT_EQ(*program.Apply("42"), "Route 42!");
  EXPECT_EQ(program.Describe(), "\"Route \" + x + \"!\"");

  StringProgram token;
  token.transform = TransformKind::kTokenAt;
  token.separator = ' ';
  token.token_index = 1;
  EXPECT_EQ(*token.Apply("John Smith"), "Smith");
  EXPECT_FALSE(token.Apply("Single").has_value());

  StringProgram upper;
  upper.transform = TransformKind::kUpperCase;
  EXPECT_EQ(*upper.Apply("abc"), "ABC");
}

TEST(SynthesizeTest, RouteNamesFromShields) {
  // Figure 13: shield "748" -> "Malaysia Federal Route 748".
  Column lhs = Col("shield", {"736", "737", "738", "739", "740"});
  Column rhs = Col("name", {"Malaysia Federal Route 736",
                            "Malaysia Federal Route 737",
                            "Malaysia Federal Route 738",
                            "Malaysia Federal Route 739",
                            "Malaysia Federal Route 740"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_TRUE(result.violating_rows.empty());
  EXPECT_EQ(*result.program.Apply("748"), "Malaysia Federal Route 748");
}

TEST(SynthesizeTest, DetectsProgramViolations) {
  // One corrupted dependent cell (Figure 13's "738" -> "Route 748").
  Column lhs = Col("shield", {"736", "737", "738", "739", "740", "741"});
  Column rhs = Col("name", {"Route 736", "Route 737", "Route 748",
                            "Route 739", "Route 740", "Route 741"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.coverage, 5.0 / 6.0, 1e-12);
  EXPECT_EQ(result.violating_rows, (std::vector<size_t>{2}));
}

TEST(SynthesizeTest, SurvivesCorruptedSeedRow) {
  // The corrupted row is the FIRST example: candidate voting must still
  // recover the majority program.
  Column lhs = Col("shield", {"736", "737", "738", "739", "740", "741"});
  Column rhs = Col("name", {"Route 999", "Route 737", "Route 738",
                            "Route 739", "Route 740", "Route 741"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.violating_rows, (std::vector<size_t>{0}));
}

TEST(SynthesizeTest, TitleFromCountry) {
  // Figure 14: country -> "Mr Gay <country>".
  Column lhs = Col("country", {"Denmark", "Finland", "France", "India",
                               "Mexico"});
  Column rhs = Col("title", {"Mr Gay Denmark", "Mr Gay Finland",
                             "Mr Gay France", "Mr Gay India",
                             "Mr Gay Mexico"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.program.prefix, "Mr Gay ");
}

TEST(SynthesizeTest, TokenExtraction) {
  // Last name from "First Last".
  Column lhs = Col("full", {"John Smith", "Mary Jones", "Alan Brown",
                            "Ruth Clark", "Peter Adams"});
  Column rhs = Col("last", {"Smith", "Jones", "Brown", "Clark", "Adams"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.program.transform, TransformKind::kTokenAt);
  EXPECT_EQ(result.program.token_index, 1u);
}

TEST(SynthesizeTest, IntegerScaling) {
  // Points = 3 * wins (league standings).
  Column lhs = Col("wins", {"0", "4", "7", "11", "13", "2"});
  Column rhs = Col("points", {"0", "12", "21", "33", "39", "6"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.program.transform, TransformKind::kScaleInt);
  EXPECT_EQ(result.program.factor, 3);
  EXPECT_EQ(*result.program.Apply("20"), "60");
}

TEST(SynthesizeTest, NoRelationshipFindsNothing) {
  Column lhs = Col("a", {"x1", "x2", "x3", "x4", "x5"});
  Column rhs = Col("b", {"orange", "apple", "plum", "grape", "melon"});
  EXPECT_FALSE(SynthesizeColumnProgram(lhs, rhs, Loose()).found);
}

TEST(SynthesizeTest, CoverageThresholdRespected) {
  // Program explains only 3/6 rows: below the default 0.7 floor.
  Column lhs = Col("a", {"1", "2", "3", "4", "5", "6"});
  Column rhs = Col("b", {"v1", "v2", "v3", "zz", "yy", "xx"});
  SynthesisOptions strict = Loose();
  strict.min_coverage = 0.7;
  EXPECT_FALSE(SynthesizeColumnProgram(lhs, rhs, strict).found);
  strict.min_coverage = 0.4;
  EXPECT_TRUE(SynthesizeColumnProgram(lhs, rhs, strict).found);
}

TEST(SynthesizeTest, RequiresMinimumRows) {
  Column lhs = Col("a", {"1", "2"});
  Column rhs = Col("b", {"v1", "v2"});
  EXPECT_FALSE(SynthesizeColumnProgram(lhs, rhs).found);
}

TEST(SynthesizeTest, IdentityProgramPreferredWhenExact) {
  Column lhs = Col("a", {"x", "y", "z", "w", "v"});
  Column rhs = Col("b", {"x", "y", "z", "w", "v"});
  const SynthesisResult result = SynthesizeColumnProgram(lhs, rhs, Loose());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.program.transform, TransformKind::kIdentity);
  EXPECT_TRUE(result.program.prefix.empty());
  EXPECT_TRUE(result.program.suffix.empty());
}

}  // namespace
}  // namespace unidetect
