#include "metrics/dispersion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/random.h"
#include "util/simd.h"

namespace unidetect {
namespace {

TEST(DispersionTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 6}), 2.0);  // sample SD, N-1 denominator
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(DispersionTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(DispersionTest, MadMatchesPaperExample3) {
  // C- = {43, 22, 9, 5, 0.76, 0.32, 0.30}: median 5, MAD 4.68.
  const std::vector<double> c_minus = {43, 22, 9, 5, 0.76, 0.32, 0.30};
  EXPECT_DOUBLE_EQ(Median(c_minus), 5.0);
  EXPECT_NEAR(Mad(c_minus), 4.68, 1e-9);
  // C+ = {8011, 8.716, 9954, 11895, 11329, 11352, 11709}: median 11329
  // (note: the paper's prose says 11352, but the sorted middle of these
  // seven values is 11329; MAD below follows the actual median).
  const std::vector<double> c_plus = {8011, 8.716, 9954, 11895,
                                      11329, 11352, 11709};
  EXPECT_DOUBLE_EQ(Median(c_plus), 11329.0);
}

TEST(DispersionTest, ScoreMadMatchesPaperExample4) {
  const std::vector<double> c_minus = {43, 22, 9, 5, 0.76, 0.32, 0.30};
  // (43 - 5) / 4.68 = 8.12.
  EXPECT_NEAR(ScoreMad(43, c_minus), 8.12, 0.01);
}

TEST(DispersionTest, ScoreSd) {
  const std::vector<double> values = {2, 4, 6};
  EXPECT_DOUBLE_EQ(ScoreSd(6, values), 1.0);
  EXPECT_DOUBLE_EQ(ScoreSd(4, values), 0.0);
  // Constant column: no outliers by dispersion.
  EXPECT_DOUBLE_EQ(ScoreSd(99, {5, 5, 5}), 0.0);
}

TEST(DispersionTest, ScoreMadIqrFallback) {
  // MAD = 0 (majority identical) but IQR > 0: the fallback keeps the
  // score finite and nonzero.
  const std::vector<double> values = {5, 5, 5, 5, 5, 1, 2, 3, 9};
  EXPECT_DOUBLE_EQ(Mad(values), 0.0);
  const double score = ScoreMad(9, values);
  EXPECT_GT(score, 0.0);
  EXPECT_TRUE(std::isfinite(score));
  // Fully constant column scores 0.
  EXPECT_DOUBLE_EQ(ScoreMad(9, {5, 5, 5, 5}), 0.0);
}

TEST(DispersionTest, Iqr) {
  EXPECT_DOUBLE_EQ(Iqr({1, 2, 3, 4, 5}), 2.0);
  EXPECT_DOUBLE_EQ(Iqr({7}), 0.0);
}

TEST(DispersionTest, MaxMadFindsTheOutlier) {
  const std::vector<double> values = {10, 11, 12, 10.5, 11.5, 9000};
  const MaxScore result = MaxMadScore(values);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.index, 5u);
  EXPECT_GT(result.score, 100.0);
}

TEST(DispersionTest, MaxScoreInvalidForTinyColumns) {
  EXPECT_FALSE(MaxMadScore({1, 2}).valid);
  EXPECT_FALSE(MaxSdScore({}).valid);
}

TEST(DispersionTest, MaxScoresMatchReferenceWithSimdOnAndOff) {
  // The SIMD argmax rewrite of MaxMadScore / MaxSdScore must reproduce
  // the per-element reference scan bit for bit — including NaN inputs,
  // exact ties, zero-dispersion columns, and the IQR fallback — with the
  // vector path forced on and off.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::vector<double>> columns = {
      {10, 11, 12, 10.5, 11.5, 9000},
      {5, 5, 5, 5, 5, 5, 5, 5, 5},                    // zero MAD and SD
      {5, 5, 5, 5, 5, 1, 2, 3, 9},                    // IQR fallback
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},    // > one lane
      {-4, 4, -4, 4, -4, 4, -4, 4, -4},               // exact ties
      {nan, 1, 2, 3, 4, 5, 6, 7, 8},                  // NaN leading
      {1, 2, nan, 4, 5, nan, 7, 8, 9, 10, 11, nan},   // NaN interior
  };
  for (const auto& values : columns) {
    const MaxScore mad_want = MaxMadScoreReference(values);
    const MaxScore sd_want = MaxSdScoreReference(values);
    for (bool enabled : {true, false}) {
      simd::SetSimdEnabled(enabled);
      const MaxScore mad = MaxMadScore(values);
      const MaxScore sd = MaxSdScore(values);
      EXPECT_EQ(mad.valid, mad_want.valid);
      EXPECT_EQ(mad.index, mad_want.index);
      EXPECT_EQ(sd.valid, sd_want.valid);
      EXPECT_EQ(sd.index, sd_want.index);
      auto same_bits = [](double a, double b) {
        return std::memcmp(&a, &b, sizeof(a)) == 0;
      };
      EXPECT_TRUE(same_bits(mad.score, mad_want.score)) << mad.score;
      EXPECT_TRUE(same_bits(sd.score, sd_want.score)) << sd.score;
    }
    simd::SetSimdEnabled(true);
  }
}

TEST(DispersionTest, MaxScoresMatchReferenceOnRandomColumns) {
  Rng rng(0xD15B);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 3 + rng.NextBounded(200);
    std::vector<double> values(n);
    for (double& v : values) v = rng.Normal(100.0, 25.0);
    const MaxScore mad_want = MaxMadScoreReference(values);
    const MaxScore sd_want = MaxSdScoreReference(values);
    const MaxScore mad = MaxMadScore(values);
    const MaxScore sd = MaxSdScore(values);
    EXPECT_EQ(mad.index, mad_want.index);
    EXPECT_DOUBLE_EQ(mad.score, mad_want.score);
    EXPECT_EQ(sd.index, sd_want.index);
    EXPECT_DOUBLE_EQ(sd.score, sd_want.score);
  }
}

TEST(DispersionTest, SkewnessSigns) {
  EXPECT_GT(Skewness({1, 1, 1, 1, 100}), 1.0);
  EXPECT_LT(Skewness({-100, 1, 1, 1, 1}), -1.0);
  EXPECT_NEAR(Skewness({1, 2, 3, 4, 5}), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(Skewness({1, 2}), 0.0);     // undefined -> 0
  EXPECT_DOUBLE_EQ(Skewness({3, 3, 3, 3}), 0.0);  // zero variance -> 0
}

TEST(DispersionTest, LogTransformFitsLogNormalNotUniform) {
  std::vector<double> lognormal;
  std::vector<double> uniform;
  for (int i = 1; i <= 200; ++i) {
    lognormal.push_back(std::exp(0.02 * i * i / 200.0 + i * 0.04));
    uniform.push_back(static_cast<double>(i));
  }
  EXPECT_TRUE(LogTransformFitsBetter(lognormal));
  EXPECT_FALSE(LogTransformFitsBetter(uniform));
  // Non-positive values disqualify the transform outright.
  EXPECT_FALSE(LogTransformFitsBetter({-1, 10, 1000, 100000}));
}

}  // namespace
}  // namespace unidetect
