// High-precision property (the paper's central requirement): on a CLEAN
// corpus — no injected errors, only natural phenomena like chance name
// duplicates, heavy-tailed numerics, and inherently-close string
// families — a strict significance level must produce very few findings.
// "A supposedly-intelligent feature [must not] become a nuisance."

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "util/logging.h"

namespace unidetect {
namespace {

const Model& SharedModel() {
  static const Model* model = [] {
    SetLogLevel(LogLevel::kWarning);
    Trainer trainer;
    return new Model(
        trainer.Train(GenerateCorpus(WebCorpusSpec(5000, 123)).corpus));
  }();
  return *model;
}

class CleanCorpusTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CleanCorpusTest, StrictAlphaStaysQuiet) {
  // A fresh clean sample from the same distribution, different seed.
  const AnnotatedCorpus clean =
      GenerateCorpus(WebCorpusSpec(300, GetParam()));
  UniDetectOptions options;
  options.alpha = 0.002;  // strict significance for background scanning
  options.use_dictionary = true;
  UniDetect detector(&SharedModel(), options);
  const std::vector<Finding> findings = detector.DetectCorpus(clean.corpus);
  // Well under one finding per ten clean tables.
  EXPECT_LT(findings.size(), clean.corpus.tables.size() / 10)
      << "first: " << (findings.empty() ? "" : findings[0].explanation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanCorpusTest,
                         ::testing::Values(9001, 9002, 9003));

TEST(CleanCorpusTest, LooseAlphaFindsMoreThanStrict) {
  const AnnotatedCorpus clean = GenerateCorpus(WebCorpusSpec(200, 9004));
  UniDetectOptions strict;
  strict.alpha = 0.002;
  UniDetectOptions loose;
  loose.alpha = 0.2;
  const size_t strict_count =
      UniDetect(&SharedModel(), strict).DetectCorpus(clean.corpus).size();
  const size_t loose_count =
      UniDetect(&SharedModel(), loose).DetectCorpus(clean.corpus).size();
  EXPECT_LE(strict_count, loose_count);
}

}  // namespace
}  // namespace unidetect
