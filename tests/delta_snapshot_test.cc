// Delta artifact framing (model_format/delta_snapshot.h): manifest
// payload round-trip and strictness, content-committing artifact ids,
// and the old-reader compatibility guarantee (a delta decodes as a
// plain model anywhere a model is accepted).

#include "model_format/delta_snapshot.h"

#include <gtest/gtest.h>

#include <string>

#include "corpus/generator.h"
#include "learn/trainer.h"
#include "model_format/model_snapshot.h"
#include "model_format/snapshot_v2.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace unidetect {
namespace {

Model TrainSmallModel(uint64_t seed) {
  SetLogLevel(LogLevel::kWarning);
  Trainer trainer;
  return trainer.Train(GenerateCorpus(WebCorpusSpec(60, seed)).corpus);
}

TEST(DeltaSnapshotTest, ManifestPayloadRoundTrips) {
  DeltaManifest manifest;
  manifest.base_id = 0x1122334455667788ULL;
  manifest.parent_id = 0x99aabbccddeeff00ULL;
  manifest.depth = 2;
  const std::string payload = EncodeDeltaManifestPayload(manifest);
  EXPECT_EQ(payload.size(), 32u);
  const auto decoded = DecodeDeltaManifestPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->base_id, manifest.base_id);
  EXPECT_EQ(decoded->parent_id, manifest.parent_id);
  EXPECT_EQ(decoded->depth, manifest.depth);
}

TEST(DeltaSnapshotTest, ManifestDecodeIsStrict) {
  DeltaManifest manifest;
  manifest.base_id = 7;
  manifest.parent_id = 7;
  manifest.depth = 1;
  const std::string good = EncodeDeltaManifestPayload(manifest);

  // Truncation and trailing garbage.
  EXPECT_TRUE(DecodeDeltaManifestPayload(
                  std::string_view(good).substr(0, 31))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DecodeDeltaManifestPayload(good + "x").status().IsCorruption());

  // Hostile depth: 0 and beyond the bound are both Corruption before
  // any caller sizes anything by them.
  for (const uint64_t depth : {uint64_t{0}, kMaxDeltaDepth + 1}) {
    DeltaManifest bad = manifest;
    bad.depth = depth;
    bad.parent_id = depth == 1 ? bad.base_id : 123;
    EXPECT_TRUE(DecodeDeltaManifestPayload(EncodeDeltaManifestPayload(bad))
                    .status()
                    .IsCorruption())
        << "depth " << depth;
  }

  // Depth 1 must point its parent at the base.
  DeltaManifest mismatched = manifest;
  mismatched.parent_id = 8;
  EXPECT_TRUE(
      DecodeDeltaManifestPayload(EncodeDeltaManifestPayload(mismatched))
          .status()
          .IsCorruption());

  // Newer manifest version: NotImplemented, not Corruption.
  std::string newer = good;
  newer[0] = 2;
  EXPECT_TRUE(
      DecodeDeltaManifestPayload(newer).status().IsNotImplemented());

  // Nonzero reserved field.
  std::string reserved = good;
  reserved[4] = 1;
  EXPECT_TRUE(DecodeDeltaManifestPayload(reserved).status().IsCorruption());
}

TEST(DeltaSnapshotTest, ArtifactIdCommitsToContent) {
  const Model model = TrainSmallModel(301);
  const std::string bytes = EncodeModelSnapshotV2(model);
  const auto id = SnapshotArtifactId(bytes);
  ASSERT_TRUE(id.ok()) << id.status();
  // Deterministic.
  EXPECT_EQ(*SnapshotArtifactId(bytes), *id);
  // Any payload flip changes a section CRC in the table, so the id —
  // computed over header + table only — still moves.
  std::string tampered = bytes;
  tampered[tampered.size() - 1] ^= 0x01;
  // Recompute the CRC the way an attacker would NOT be able to without
  // rewriting the table: just flipping payload bytes leaves the table
  // unchanged, so the id stays equal but decode fails; flipping table
  // bytes changes the id. Both directions covered:
  EXPECT_EQ(*SnapshotArtifactId(tampered), *id);  // payload flip
  std::string table_tampered = bytes;
  table_tampered[20] ^= 0x01;  // inside the section table
  EXPECT_NE(*SnapshotArtifactId(table_tampered), *id);
  // Not a container at all.
  EXPECT_TRUE(SnapshotArtifactId("not a snapshot").status().IsCorruption());
}

TEST(DeltaSnapshotTest, FindManifestAndOldReaderCompatibility) {
  const Model model = TrainSmallModel(302);

  // A plain base carries no manifest.
  const std::string base_bytes = EncodeModelSnapshotV2(model);
  const auto none = FindDeltaManifest(base_bytes);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_FALSE(none->has_value());

  // A delta carries one, and it round-trips through the container.
  DeltaManifest manifest;
  manifest.base_id = 42;
  manifest.parent_id = 42;
  manifest.depth = 1;
  const std::string delta_bytes = EncodeModelSnapshotV2(
      model, ObservationEncoding::kPreserve, &manifest);
  const auto found = FindDeltaManifest(delta_bytes);
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ((*found)->base_id, 42u);
  EXPECT_EQ((*found)->depth, 1u);

  // Old-reader guarantee: section 13 is CRC-checked and skipped, so the
  // delta decodes as a plain model identical to the base encoding's.
  const auto decoded =
      DecodeModelSnapshot(delta_bytes, SnapshotValidation::kFull);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(EncodeModelSnapshotV2(*decoded), base_bytes);

  // A corrupted manifest payload is caught by its CRC even under
  // deferred validation (the manifest is never trusted raw).
  std::string corrupted = delta_bytes;
  corrupted[corrupted.size() - 8] ^= 0xff;  // inside the manifest payload
  EXPECT_TRUE(FindDeltaManifest(corrupted).status().IsCorruption());
}

TEST(DeltaSnapshotTest, ReadSnapshotIdentityFromDisk) {
  const Model model = TrainSmallModel(303);
  DeltaManifest manifest;
  manifest.base_id = 9;
  manifest.parent_id = 9;
  manifest.depth = 1;
  const std::string path = testing::TempDir() + "/identity_delta.udsnap";
  ASSERT_TRUE(WriteStringToFile(path, EncodeModelSnapshotV2(
                                          model,
                                          ObservationEncoding::kPreserve,
                                          &manifest))
                  .ok());
  const auto identity = ReadSnapshotIdentity(path);
  ASSERT_TRUE(identity.ok()) << identity.status();
  ASSERT_TRUE(identity->manifest.has_value());
  EXPECT_EQ(identity->manifest->base_id, 9u);
  EXPECT_NE(identity->artifact_id, 0u);
  EXPECT_TRUE(
      ReadSnapshotIdentity("/nonexistent/x.udsnap").status().IsIOError());
}

}  // namespace
}  // namespace unidetect
