#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace unidetect {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value of a tiny range is hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(5.0, 1.0), 5.0);
  }
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(17);
  const uint64_t n = 100;
  size_t low_half = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Zipf(n, 1.1);
    EXPECT_LT(v, n);
    if (v < n / 2) ++low_half;
  }
  // Zipf mass concentrates on small ranks.
  EXPECT_GT(low_half, 3500u);
}

TEST(RngTest, ZipfDegenerate) {
  Rng rng(17);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PickWeightedHonorsZeroWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.PickWeighted(weights), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, StringsHaveRequestedShape) {
  Rng rng(31);
  const std::string alpha = rng.AlphaString(12);
  EXPECT_EQ(alpha.size(), 12u);
  for (char c : alpha) EXPECT_TRUE(c >= 'a' && c <= 'z');
  const std::string digits = rng.DigitString(8);
  EXPECT_EQ(digits.size(), 8u);
  EXPECT_NE(digits[0], '0');  // no leading zero for length > 1
  for (char c : digits) EXPECT_TRUE(c >= '0' && c <= '9');
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(37);
  Rng child = a.Fork();
  // The fork advances the parent, and the two streams differ.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace unidetect
