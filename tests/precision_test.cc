#include "eval/precision.h"

#include <gtest/gtest.h>

#include "detect/finding.h"

namespace unidetect {
namespace {

GroundTruth OneTruth() {
  GroundTruth truth;
  InjectedError error;
  error.error_class = ErrorClass::kOutlier;
  error.table_index = 0;
  error.column = 0;
  error.row = 1;
  truth.errors.push_back(error);
  return truth;
}

Finding At(size_t table, size_t column, size_t row, double score) {
  Finding finding;
  finding.error_class = ErrorClass::kOutlier;
  finding.table_index = table;
  finding.column = column;
  finding.rows = {row};
  finding.score = score;
  return finding;
}

TEST(PrecisionTest, CountsHitsWithinK) {
  const GroundTruth truth = OneTruth();
  std::vector<Finding> ranked = {At(0, 0, 1, 0.1), At(0, 0, 5, 0.2),
                                 At(1, 0, 1, 0.3)};
  const PrecisionCurve curve =
      EvaluatePrecision("m", ranked, truth, {1, 2, 3});
  EXPECT_DOUBLE_EQ(curve.precision[0], 1.0);
  EXPECT_DOUBLE_EQ(curve.precision[1], 0.5);
  EXPECT_NEAR(curve.precision[2], 1.0 / 3.0, 1e-12);
}

TEST(PrecisionTest, ShortListsPenalized) {
  const GroundTruth truth = OneTruth();
  std::vector<Finding> ranked = {At(0, 0, 1, 0.1)};
  const PrecisionCurve curve =
      EvaluatePrecision("m", ranked, truth, {1, 10});
  EXPECT_DOUBLE_EQ(curve.precision[0], 1.0);
  // 1 true among a forced top-10 window.
  EXPECT_DOUBLE_EQ(curve.precision[1], 0.1);
}

TEST(PrecisionTest, EmptyListIsZero) {
  const PrecisionCurve curve =
      EvaluatePrecision("m", {}, OneTruth(), {10});
  EXPECT_DOUBLE_EQ(curve.precision[0], 0.0);
}

TEST(PrecisionTest, DefaultKsSpanTo100) {
  const auto ks = DefaultKs();
  ASSERT_EQ(ks.size(), 10u);
  EXPECT_EQ(ks.front(), 10u);
  EXPECT_EQ(ks.back(), 100u);
}

TEST(FilterByClassTest, KeepsOrderWithinClass) {
  std::vector<Finding> findings = {At(0, 0, 1, 0.1), At(1, 0, 1, 0.2)};
  findings[1].error_class = ErrorClass::kSpelling;
  const auto outliers = FilterByClass(findings, ErrorClass::kOutlier);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].table_index, 0u);
}

TEST(SortFindingsTest, AscendingScoreDeterministicTies) {
  std::vector<Finding> findings = {At(2, 0, 0, 0.5), At(1, 0, 0, 0.5),
                                   At(0, 0, 0, 0.1)};
  SortFindings(&findings);
  EXPECT_DOUBLE_EQ(findings[0].score, 0.1);
  EXPECT_EQ(findings[1].table_index, 1u);  // tie broken by table index
  EXPECT_EQ(findings[2].table_index, 2u);
}

}  // namespace
}  // namespace unidetect
