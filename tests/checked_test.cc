// Tests for the overflow-checked arithmetic helpers that guard every
// wire-derived length/offset/count on the snapshot decode path.

#include "util/checked.h"

#include <cstdint>
#include <limits>

#include "gtest/gtest.h"

namespace unidetect {
namespace {

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

TEST(CheckedAddTest, InRangeSumsPassThrough) {
  auto sum = CheckedAdd<uint64_t>(40, 2);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.ValueOrDie(), 42u);

  auto edge = CheckedAdd<uint64_t>(kU64Max - 1, 1);
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge.ValueOrDie(), kU64Max);

  auto zero = CheckedAdd<uint64_t>(0, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.ValueOrDie(), 0u);
}

TEST(CheckedAddTest, WrapIsTypedCorruption) {
  // The attack this guards: offset + length wrapping below the buffer
  // size so a later `end <= size` compare passes.
  auto wrapped = CheckedAdd<uint64_t>(kU64Max, 1, "section extent");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_TRUE(wrapped.status().IsCorruption());
  EXPECT_NE(wrapped.status().ToString().find("section extent"),
            std::string::npos);

  EXPECT_FALSE(CheckedAdd<uint64_t>(kU64Max - 1, 2).ok());
  EXPECT_FALSE(CheckedAdd<uint32_t>(0xFFFFFFFFu, 1).ok());
}

TEST(CheckedMulTest, InRangeProductsPassThrough) {
  auto prod = CheckedMul<uint64_t>(6, 7);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod.ValueOrDie(), 42u);

  auto by_zero = CheckedMul<uint64_t>(kU64Max, 0);
  ASSERT_TRUE(by_zero.ok());
  EXPECT_EQ(by_zero.ValueOrDie(), 0u);

  auto edge = CheckedMul<uint64_t>(kU64Max / 2, 2);
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge.ValueOrDie(), kU64Max - 1);
}

TEST(CheckedMulTest, OverflowIsTypedCorruption) {
  // The attack this guards: count * sizeof(T) wrapping to a small byte
  // length that passes the bounds compare while the count stays huge.
  auto wrapped = CheckedMul<uint64_t>(kU64Max / 4 + 1, 4, "bulk section");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_TRUE(wrapped.status().IsCorruption());
  EXPECT_NE(wrapped.status().ToString().find("bulk section"),
            std::string::npos);

  EXPECT_FALSE(CheckedMul<uint64_t>(kU64Max, 2).ok());
  EXPECT_FALSE(CheckedMul<uint32_t>(0x10000u, 0x10000u).ok());
}

TEST(CheckedCastTest, FittingValuesPassThrough) {
  auto narrow = CheckedCast<uint32_t>(uint64_t{0xFFFFFFFFull});
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow.ValueOrDie(), 0xFFFFFFFFu);

  auto same = CheckedCast<uint64_t>(kU64Max);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same.ValueOrDie(), kU64Max);

  auto widen = CheckedCast<uint64_t>(uint32_t{7});
  ASSERT_TRUE(widen.ok());
  EXPECT_EQ(widen.ValueOrDie(), 7u);
}

TEST(CheckedCastTest, TruncationIsTypedCorruption) {
  // The attack this guards: a u64 length truncating through a 32-bit
  // size_t to a small in-bounds lie.
  auto truncated =
      CheckedCast<uint32_t>(uint64_t{0x100000000ull}, "token count");
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.status().IsCorruption());
  EXPECT_NE(truncated.status().ToString().find("token count"),
            std::string::npos);

  EXPECT_FALSE(CheckedCast<uint16_t>(uint64_t{0x10000ull}).ok());
}

TEST(CheckedTest, ComposesWithAssignOrReturn) {
  auto parse = [](uint64_t count, uint64_t elem) -> Result<uint64_t> {
    UNIDETECT_ASSIGN_OR_RETURN(const uint64_t bytes,
                               CheckedMul<uint64_t>(count, elem, "payload"));
    return CheckedAdd<uint64_t>(bytes, 16, "payload end");
  };
  auto ok = parse(10, 8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 96u);
  auto bad = parse(kU64Max / 2, 3);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsCorruption());
}

}  // namespace
}  // namespace unidetect
