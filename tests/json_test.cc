#include "util/json.h"

#include <gtest/gtest.h>

#include "detect/finding_json.h"

namespace unidetect {
namespace {

TEST(JsonStringTest, PlainAndEscapes) {
  EXPECT_EQ(JsonString("plain"), "\"plain\"");
  EXPECT_EQ(JsonString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonString("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonString("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonString("new\nline"), "\"new\\nline\"");
  EXPECT_EQ(JsonString(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(JsonString(""), "\"\"");
}

TEST(FindingJsonTest, RoundShape) {
  Finding finding;
  finding.error_class = ErrorClass::kOutlier;
  finding.table_index = 3;
  finding.table_name = "t\"x";
  finding.column = 1;
  finding.rows = {7, 9};
  finding.value = "8.716";
  finding.score = 0.25;
  finding.explanation = "why";
  const std::string json = FindingToJson(finding);
  EXPECT_NE(json.find("\"class\":\"outlier\""), std::string::npos);
  EXPECT_NE(json.find("\"table\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":[7,9]"), std::string::npos);
  EXPECT_NE(json.find("\"t\\\"x\""), std::string::npos);
  EXPECT_EQ(json.find("column2"), std::string::npos);  // absent when unset

  finding.column2 = 4;
  EXPECT_NE(FindingToJson(finding).find("\"column2\":4"), std::string::npos);
}

TEST(FindingJsonTest, ArrayForm) {
  Finding a;
  a.value = "x";
  Finding b;
  b.value = "y";
  const std::string json = FindingsToJson({a, b});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"y\""), std::string::npos);
  EXPECT_EQ(FindingsToJson({}), "[]");
}

}  // namespace
}  // namespace unidetect
