#include "model_format/model_snapshot.h"

#include <gtest/gtest.h>

#include <string>

#include "corpus/generator.h"
#include "learn/model.h"
#include "learn/trainer.h"
#include "util/binary_io.h"
#include "util/random.h"
#include "util/status.h"

namespace unidetect {
namespace {

// A small trained model exercising every snapshot section: subset stats
// (with deliberate pre-value ties, the re-sort hazard), token index, and
// pattern index.
const Model& SnapshotModel() {
  static const Model* const model = [] {
    ModelOptions options;
    options.min_support = 1;
    auto* m = new Model(options);
    Rng rng(17);
    for (uint64_t subset = 0; subset < 8; ++subset) {
      const FeatureKey key{subset};
      for (int i = 0; i < 64; ++i) {
        const double pre = rng.Uniform(0.0, 10.0);
        m->AddObservation(key, pre, rng.Uniform(0.0, pre));
      }
      // Tied pre values with distinct posts: a decoder that re-sorted
      // would be free to permute these and break bit-identity.
      m->AddObservation(key, 5.0, 1.0);
      m->AddObservation(key, 5.0, 2.0);
      m->AddObservation(key, 5.0, 3.0);
    }
    const AnnotatedCorpus corpus = GenerateCorpus(WebCorpusSpec(30, 23));
    for (const auto& table : corpus.corpus.tables) {
      m->mutable_token_index()->AddTable(table);
      m->mutable_pattern_index()->AddTable(table);
    }
    m->Finalize();
    return m;
  }();
  return *model;
}

TEST(ModelSnapshotTest, MagicSniff) {
  const std::string bytes = EncodeModelSnapshot(SnapshotModel());
  EXPECT_TRUE(LooksLikeModelSnapshot(bytes));
  EXPECT_FALSE(LooksLikeModelSnapshot(SnapshotModel().Serialize()));
  EXPECT_FALSE(LooksLikeModelSnapshot(""));
  EXPECT_FALSE(LooksLikeModelSnapshot("UDSNAP"));  // truncated magic
}

TEST(ModelSnapshotTest, EncodeDecodeEncodeIsBitIdentical) {
  const std::string first = EncodeModelSnapshot(SnapshotModel());
  auto decoded = DecodeModelSnapshot(first);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const std::string second = EncodeModelSnapshot(*decoded);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second);  // EQ on the strings would dump megabytes
}

TEST(ModelSnapshotTest, SaveLoadSaveIsBitIdentical) {
  const Model& model = SnapshotModel();
  const std::string path_a = testing::TempDir() + "/snapshot_a.model";
  const std::string path_b = testing::TempDir() + "/snapshot_b.model";
  ASSERT_TRUE(model.Save(path_a).ok());
  auto loaded = Model::Load(path_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->Save(path_b).ok());
  auto bytes_a = ReadFileToString(path_a);
  auto bytes_b = ReadFileToString(path_b);
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_TRUE(*bytes_a == *bytes_b);
}

TEST(ModelSnapshotTest, DecodedModelAnswersIdenticalQueries) {
  const Model& model = SnapshotModel();
  auto decoded = DecodeModelSnapshot(EncodeModelSnapshot(model));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_subsets(), model.num_subsets());
  EXPECT_EQ(decoded->num_observations(), model.num_observations());
  EXPECT_EQ(decoded->token_index().num_tokens(),
            model.token_index().num_tokens());
  EXPECT_EQ(decoded->pattern_index().num_columns(),
            model.pattern_index().num_columns());
  Rng probe(29);
  for (int i = 0; i < 200; ++i) {
    const FeatureKey key{static_cast<uint64_t>(probe.UniformInt(0, 7))};
    const double theta1 = probe.Uniform(0.0, 10.0);
    const double theta2 = probe.Uniform(0.0, theta1);
    EXPECT_DOUBLE_EQ(
        model.LikelihoodRatio(ErrorClass::kOutlier, key, theta1, theta2),
        decoded->LikelihoodRatio(ErrorClass::kOutlier, key, theta1, theta2));
  }
}

TEST(ModelSnapshotTest, LegacyTextModelStillLoads) {
  const Model& model = SnapshotModel();
  const std::string path = testing::TempDir() + "/legacy_text.model";
  ASSERT_TRUE(WriteStringToFile(path, model.Serialize()).ok());
  auto loaded = Model::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_subsets(), model.num_subsets());
  EXPECT_EQ(loaded->num_observations(), model.num_observations());
}

TEST(ModelSnapshotTest, UnknownFormatIsCorruption) {
  const std::string path = testing::TempDir() + "/not_a_model.bin";
  ASSERT_TRUE(WriteStringToFile(path, "neither magic\n").ok());
  auto loaded = Model::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

// ---------------------------------------------------------------------
// Loader robustness: every malformed input must come back as a typed
// error — never a crash, hang, or huge allocation (asan/ubsan presets
// run this file too).

TEST(ModelSnapshotRobustnessTest, TruncationAtEveryStrideIsAnError) {
  const std::string bytes = EncodeModelSnapshot(SnapshotModel());
  // Every prefix short of the full snapshot must fail; stepping by a
  // prime keeps the sweep dense but affordable, and the boundary cases
  // (empty, header edge, table edge) are hit explicitly.
  std::vector<size_t> lengths = {0, 1, 7, 8, 9, 15, 16, 17, 39, 40};
  for (size_t len = 41; len < bytes.size(); len += 131) lengths.push_back(len);
  lengths.push_back(bytes.size() - 1);
  for (const size_t len : lengths) {
    if (len >= bytes.size()) continue;
    auto decoded = DecodeModelSnapshot(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsCorruption())
        << "prefix " << len << ": " << decoded.status();
  }
}

TEST(ModelSnapshotRobustnessTest, BitFlipsAreDetected) {
  const std::string pristine = EncodeModelSnapshot(SnapshotModel());
  // Flip one bit at a sweep of positions. CRC catches payload flips;
  // header/table flips trip magic, version, or bounds checks. A flip
  // may legally decode only if it lands in an ignored spot — the format
  // has none, so every flip must surface as a typed error.
  for (size_t pos = 0; pos < pristine.size();
       pos += 1 + pristine.size() / 512) {
    std::string mutated = pristine;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    auto decoded = DecodeModelSnapshot(mutated);
    if (decoded.ok()) {
      // The only bit the checksum cannot see is inside the CRC fields
      // themselves... and a flipped CRC mismatches its payload. Nothing
      // may decode.
      FAIL() << "bit flip at byte " << pos << " went unnoticed";
    }
    EXPECT_TRUE(decoded.status().IsCorruption() ||
                decoded.status().IsNotImplemented())
        << "byte " << pos << ": " << decoded.status();
  }
}

TEST(ModelSnapshotRobustnessTest, WrongMagicIsCorruption) {
  std::string bytes = EncodeModelSnapshot(SnapshotModel());
  bytes[0] = 'X';
  auto decoded = DecodeModelSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ModelSnapshotRobustnessTest, FutureVersionIsNotImplemented) {
  std::string bytes = EncodeModelSnapshot(SnapshotModel());
  // The u32 format version sits directly after the 8-byte magic.
  std::string patched_version;
  AppendU32(&patched_version, kSnapshotVersion + 1);
  bytes.replace(kSnapshotMagic.size(), 4, patched_version);
  auto decoded = DecodeModelSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsNotImplemented()) << decoded.status();
  // The message tells the operator it is the reader that is stale.
  EXPECT_NE(decoded.status().message().find("newer"), std::string::npos);
}

TEST(ModelSnapshotRobustnessTest, ZeroLengthSectionIsCorruption) {
  std::string bytes = EncodeModelSnapshot(SnapshotModel());
  // First section-table entry: {u32 id, u32 crc, u64 offset, u64 length}
  // at offset 16; zero its length field (bytes 16+16 .. 16+24).
  for (size_t i = 0; i < 8; ++i) bytes[16 + 16 + i] = '\0';
  auto decoded = DecodeModelSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(ModelSnapshotRobustnessTest, MissingSectionIsCorruption) {
  // A structurally valid snapshot with zero sections must be rejected
  // for missing the required ones (not crash on empty lookups).
  std::string bytes;
  bytes.append(kSnapshotMagic);
  AppendU32(&bytes, kSnapshotVersion);
  AppendU32(&bytes, 0);  // section count
  auto decoded = DecodeModelSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

}  // namespace
}  // namespace unidetect
