// Structural properties of metric functions under their natural
// perturbations, checked over every generated archetype:
//
//   UR:  removing duplicates can only raise the uniqueness ratio.
//   MPD: removing a value can only remove pairs, so the minimum
//        pair-wise distance never decreases.
//   FR:  dropping all violating rows makes the FD hold exactly.
//
// These are the facts behind the LR test's "perturbation moves the
// metric toward clean" precondition.

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "learn/candidates.h"
#include "metrics/metric_functions.h"

namespace unidetect {
namespace {

class ArchetypePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchetypePropertyTest, PerturbationsMoveMetricsTowardClean) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  for (size_t rows : {12u, 30u, 80u}) {
    const AnnotatedTable t =
        GenerateTable(static_cast<Archetype>(GetParam()), rows, rng);
    for (size_t c = 0; c < t.table.num_columns(); ++c) {
      const Column& column = t.table.column(c);

      const UrProfile ur = ComputeUrProfile(column);
      if (ur.valid) {
        EXPECT_GE(ur.ur_perturbed + 1e-12, ur.ur) << column.name();
        EXPECT_LE(ur.ur, 1.0 + 1e-12);
        // Dropping every duplicate restores exact uniqueness.
        EXPECT_DOUBLE_EQ(ur.ur_perturbed, 1.0) << column.name();
      }

      const MpdProfile mpd = ComputeMpdProfile(column);
      if (mpd.valid) {
        EXPECT_GE(mpd.mpd_perturbed, mpd.mpd) << column.name();
        EXPECT_NE(mpd.value_a, mpd.value_b);
        EXPECT_GT(mpd.mpd, 0u);  // distinct values have distance >= 1
      }

      for (size_t r = 0; r < t.table.num_columns(); ++r) {
        if (r == c) continue;
        const FrProfile fr = ComputeFrProfile(column, t.table.column(r));
        if (fr.valid) {
          EXPECT_LE(fr.fr, 1.0 + 1e-12);
          EXPECT_DOUBLE_EQ(fr.fr_perturbed, 1.0);
          EXPECT_EQ(fr.violating_rows.empty(), fr.violating_groups == 0);
        }
      }
    }
  }
}

TEST_P(ArchetypePropertyTest, CandidateExtractionIsConsistent) {
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));
  const AnnotatedTable t =
      GenerateTable(static_cast<Archetype>(GetParam()), 40, rng);
  ModelOptions options;
  TokenIndex index;
  for (size_t c = 0; c < t.table.num_columns(); ++c) {
    const Column& column = t.table.column(c);
    const OutlierCandidate outlier = ExtractOutlierCandidate(column, options);
    if (outlier.valid) {
      EXPECT_LT(outlier.row, column.size());
      EXPECT_EQ(column.cell(outlier.row), outlier.cell);
      // Removing the most outlying value cannot raise max-MAD above the
      // original (the removed value defined the maximum or tied it).
      EXPECT_LE(outlier.theta2, outlier.theta1 + 1e-9);
    }
    const UniquenessCandidate uniq =
        ExtractUniquenessCandidate(column, c, index, options);
    if (uniq.valid) {
      const size_t epsilon = options.epsilon.AllowedRows(column.size());
      EXPECT_LE(uniq.dropped_rows.size(), epsilon);
      for (size_t row : uniq.dropped_rows) EXPECT_LT(row, column.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchetypes, ArchetypePropertyTest,
                         ::testing::Range(0, kNumArchetypes));

}  // namespace
}  // namespace unidetect
