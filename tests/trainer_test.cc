#include "learn/trainer.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "learn/candidates.h"

namespace unidetect {
namespace {

Corpus SmallCorpus(size_t tables = 200, uint64_t seed = 21) {
  return GenerateCorpus(WebCorpusSpec(tables, seed)).corpus;
}

TEST(TrainerTest, ProducesObservationsForEveryClass) {
  Trainer trainer;
  const Model model = trainer.Train(SmallCorpus());
  EXPECT_GT(model.num_subsets(), 10u);
  EXPECT_GT(model.num_observations(), 200u);
  EXPECT_GT(model.token_index().num_tables(), 0u);
  EXPECT_GT(model.token_index().num_tokens(), 100u);
}

TEST(TrainerTest, ThreadCountDoesNotChangeStatistics) {
  const Corpus corpus = SmallCorpus();
  TrainerOptions one;
  one.num_threads = 1;
  TrainerOptions four;
  four.num_threads = 4;
  const Model a = Trainer(one).Train(corpus);
  const Model b = Trainer(four).Train(corpus);
  EXPECT_EQ(a.num_subsets(), b.num_subsets());
  EXPECT_EQ(a.num_observations(), b.num_observations());
  EXPECT_EQ(a.token_index().num_tokens(), b.token_index().num_tokens());

  // LR queries agree on a real candidate.
  const Column probe("Hometown",
                     {"London", "Paris", "Paris", "Berlin", "Madrid", "Rome",
                      "Tokyo", "Delhi", "Oslo", "Cairo"});
  const auto cand =
      ExtractUniquenessCandidate(probe, 0, a.token_index(), a.options());
  if (cand.valid) {
    EXPECT_DOUBLE_EQ(a.LikelihoodRatio(ErrorClass::kUniqueness, cand.key,
                                       cand.theta1, cand.theta2),
                     b.LikelihoodRatio(ErrorClass::kUniqueness, cand.key,
                                       cand.theta1, cand.theta2));
  }
}

TEST(TrainerTest, FdPairCapLimitsWork) {
  TrainerOptions options;
  options.max_fd_pairs_per_table = 2;
  const Model capped = Trainer(options).Train(SmallCorpus(50));
  TrainerOptions uncapped_options;
  uncapped_options.max_fd_pairs_per_table = 100;
  const Model uncapped = Trainer(uncapped_options).Train(SmallCorpus(50));
  EXPECT_LT(capped.num_observations(), uncapped.num_observations());
}

TEST(TrainerTest, ModelOptionsArePropagated) {
  TrainerOptions options;
  options.model.min_support = 77;
  options.model.featurize.enabled = false;
  const Model model = Trainer(options).Train(SmallCorpus(30));
  EXPECT_EQ(model.options().min_support, 77u);
  EXPECT_FALSE(model.options().featurize.enabled);
  // With featurization off there is at most one subset per error class.
  EXPECT_LE(model.num_subsets(), 4u);
}

}  // namespace
}  // namespace unidetect
