#include "metrics/metric_functions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/simd.h"

namespace unidetect {
namespace {

// ---------------------------------------------------------------------------
// Uniqueness ratio.

TEST(UrProfileTest, AllUnique) {
  Column col("c", {"a", "b", "c", "d"});
  const UrProfile profile = ComputeUrProfile(col);
  ASSERT_TRUE(profile.valid);
  EXPECT_DOUBLE_EQ(profile.ur, 1.0);
  EXPECT_DOUBLE_EQ(profile.ur_perturbed, 1.0);
  EXPECT_TRUE(profile.duplicate_rows.empty());
}

TEST(UrProfileTest, OneDuplicatePair) {
  Column col("c", {"a", "b", "a", "c"});
  const UrProfile profile = ComputeUrProfile(col);
  ASSERT_TRUE(profile.valid);
  EXPECT_DOUBLE_EQ(profile.ur, 0.75);
  EXPECT_DOUBLE_EQ(profile.ur_perturbed, 1.0);
  EXPECT_EQ(profile.duplicate_rows, (std::vector<size_t>{2}));
}

TEST(UrProfileTest, TripleValueDropsTwoRows) {
  Column col("c", {"a", "a", "a", "b"});
  const UrProfile profile = ComputeUrProfile(col);
  EXPECT_DOUBLE_EQ(profile.ur, 0.5);
  EXPECT_EQ(profile.duplicate_rows, (std::vector<size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(profile.ur_perturbed, 1.0);
}

TEST(UrProfileTest, EmptyCellsIgnored) {
  Column col("c", {"a", "", "a", "  "});
  const UrProfile profile = ComputeUrProfile(col);
  ASSERT_TRUE(profile.valid);
  EXPECT_DOUBLE_EQ(profile.ur, 0.5);  // 1 distinct / 2 non-empty
  EXPECT_EQ(profile.duplicate_rows, (std::vector<size_t>{2}));
}

TEST(UrProfileTest, AllEmptyInvalid) {
  Column col("c", {"", " "});
  EXPECT_FALSE(ComputeUrProfile(col).valid);
}

// ---------------------------------------------------------------------------
// Minimum pair-wise distance.

TEST(MpdProfileTest, PaperExample1Shape) {
  // "Kevin Doeling"/"Kevin Dowling" are the closest pair; removing one
  // jumps the MPD to the distance between unrelated names.
  Column col("cast", {"Kevin Doeling", "Kevin Dowling", "Alan Myerson",
                      "Rob Morrow", "Jane Lynch"});
  const MpdProfile profile = ComputeMpdProfile(col);
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.mpd, 1u);
  EXPECT_TRUE((profile.value_a == "Kevin Doeling" &&
               profile.value_b == "Kevin Dowling") ||
              (profile.value_a == "Kevin Dowling" &&
               profile.value_b == "Kevin Doeling"));
  EXPECT_GT(profile.mpd_perturbed, 5u);
  EXPECT_TRUE(profile.drop_row == profile.row_a ||
              profile.drop_row == profile.row_b);
}

TEST(MpdProfileTest, InherentlyClosePairsKeepMpdLow) {
  // Roman-numeral series: removing one value leaves other distance-1
  // pairs (Figure 2(h)); the perturbed MPD stays small.
  Column col("event", {"Super Bowl XX", "Super Bowl XXI", "Super Bowl XXII",
                       "Super Bowl XXV", "Super Bowl XXVI"});
  const MpdProfile profile = ComputeMpdProfile(col);
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.mpd, 1u);
  EXPECT_LE(profile.mpd_perturbed, 2u);
}

TEST(MpdProfileTest, NumericColumnsInvalid) {
  Column ints("c", {"1", "2", "3", "4"});
  EXPECT_FALSE(ComputeMpdProfile(ints).valid);
  Column dates("c", {"2015-04-01", "2015-05-26", "2015-06-02"});
  EXPECT_FALSE(ComputeMpdProfile(dates).valid);
}

TEST(MpdProfileTest, NeedsThreeDistinctValues) {
  Column col("c", {"abc", "abd", "abc", "abd"});
  EXPECT_FALSE(ComputeMpdProfile(col).valid);
}

TEST(MpdProfileTest, DistanceCapApplies) {
  Column col("c", {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                   "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
                   "cccccccccccccccccccccccccccccc"});
  MpdOptions options;
  options.distance_cap = 5;
  const MpdProfile profile = ComputeMpdProfile(col, options);
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.mpd, 6u);  // cap + 1 means "far"
}

TEST(MpdProfileTest, DiffTokenLengthLongVsShort) {
  Column long_tokens("c", {"Kevin Doeling", "Kevin Dowling", "Alan Myerson",
                           "Rob Morrow"});
  Column short_tokens("c", {"Super Bowl XXI", "Super Bowl XXII",
                            "Super Bowl XXV", "Super Bowl XL"});
  const MpdProfile lp = ComputeMpdProfile(long_tokens);
  const MpdProfile sp = ComputeMpdProfile(short_tokens);
  ASSERT_TRUE(lp.valid);
  ASSERT_TRUE(sp.valid);
  EXPECT_GT(lp.avg_diff_token_length, 5.0);  // "Doeling"/"Dowling"
  EXPECT_LT(sp.avg_diff_token_length, 5.0);  // "XXI"/"XXII"
}

// ---------------------------------------------------------------------------
// FD compliance ratio.

TEST(FrProfileTest, ExactFd) {
  Column lhs("city", {"London", "Paris", "London", "Paris"});
  Column rhs("country", {"UK", "France", "UK", "France"});
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  ASSERT_TRUE(profile.valid);
  EXPECT_DOUBLE_EQ(profile.fr, 1.0);
  EXPECT_TRUE(profile.violating_rows.empty());
  EXPECT_EQ(profile.violating_groups, 0u);
}

TEST(FrProfileTest, OneViolatingGroup) {
  Column lhs("city", {"London", "Paris", "London", "Berlin"});
  Column rhs("country", {"UK", "France", "England", "Germany"});
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  ASSERT_TRUE(profile.valid);
  // Distinct pairs: (London,UK), (London,England), (Paris,France),
  // (Berlin,Germany): 2 of 4 conform... the London group contributes two
  // conflicting pairs, so FR = 2/4.
  EXPECT_DOUBLE_EQ(profile.fr, 0.5);
  EXPECT_EQ(profile.violating_groups, 1u);
  // Majority tie resolved toward the first-seen rhs: row 2 is dropped.
  EXPECT_EQ(profile.violating_rows, (std::vector<size_t>{2}));
  EXPECT_DOUBLE_EQ(profile.fr_perturbed, 1.0);
}

TEST(FrProfileTest, MajorityRhsKept) {
  Column lhs("k", {"a", "a", "a", "b"});
  Column rhs("v", {"1", "2", "2", "9"});
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  ASSERT_TRUE(profile.valid);
  // "2" has majority support in group "a"; row 0 (value "1") is dropped.
  EXPECT_EQ(profile.violating_rows, (std::vector<size_t>{0}));
}

TEST(FrProfileTest, PaperFigure4cRatio) {
  // FR("ID" -> "Awardee") = 4/6 in the paper's example: 6 distinct pairs,
  // 4 in conforming groups. Reconstruct an equivalent shape.
  Column lhs("id", {"1", "2", "3", "3", "4", "5", "5"});
  Column rhs("awardee", {"A", "B", "C", "C2", "D", "E", "E2"});
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  ASSERT_TRUE(profile.valid);
  // Pairs: 1A 2B 3C 3C2 4D 5E 5E2 -> 7 distinct, 3 conforming (1A,2B,4D).
  EXPECT_NEAR(profile.fr, 3.0 / 7.0, 1e-12);
  EXPECT_EQ(profile.violating_groups, 2u);
}

TEST(FrProfileTest, ConstantLhsInvalid) {
  Column lhs("k", {"a", "a", "a"});
  Column rhs("v", {"1", "2", "3"});
  EXPECT_FALSE(ComputeFrProfile(lhs, rhs).valid);
}

TEST(FrProfileTest, EmptyCellsSkipped) {
  Column lhs("k", {"a", "", "a", "b"});
  Column rhs("v", {"1", "9", "2", "3"});
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.violating_groups, 1u);
}

TEST(FrProfileTest, ViolatingRowsSorted) {
  Column lhs("k", {"a", "b", "a", "b", "a"});
  Column rhs("v", {"1", "7", "2", "8", "1"});
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  ASSERT_TRUE(profile.valid);
  EXPECT_TRUE(std::is_sorted(profile.violating_rows.begin(),
                             profile.violating_rows.end()));
}

// ---------------------------------------------------------------------------
// Single-pass closest pair vs the three-scan reference.

void ExpectSameMpdProfile(const Column& column, const MpdOptions& options,
                          const std::string& context) {
  const MpdProfile fast = ComputeMpdProfile(column, options);
  const MpdProfile ref = ComputeMpdProfileReference(column, options);
  ASSERT_EQ(fast.valid, ref.valid) << context;
  if (!fast.valid) return;
  EXPECT_EQ(fast.mpd, ref.mpd) << context;
  EXPECT_EQ(fast.mpd_perturbed, ref.mpd_perturbed) << context;
  EXPECT_EQ(fast.row_a, ref.row_a) << context;
  EXPECT_EQ(fast.row_b, ref.row_b) << context;
  EXPECT_EQ(fast.value_a, ref.value_a) << context;
  EXPECT_EQ(fast.value_b, ref.value_b) << context;
  EXPECT_EQ(fast.drop_row, ref.drop_row) << context;
  EXPECT_DOUBLE_EQ(fast.avg_diff_token_length, ref.avg_diff_token_length)
      << context;
}

class MpdEquivalencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MpdEquivalencePropertyTest, SinglePassMatchesThreeScans) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 3 + rng.NextBounded(40);
    std::vector<std::string> cells;
    const int flavor = static_cast<int>(rng.NextBounded(4));
    for (size_t i = 0; i < n; ++i) {
      switch (flavor) {
        case 0:  // random short strings, many near-collisions
          cells.push_back(rng.AlphaString(1 + rng.NextBounded(5)));
          break;
        case 1:  // equal-length ids (length-gap prefilter never fires)
          cells.push_back(rng.AlphaString(8));
          break;
        case 2: {  // clustered values: common prefix + small suffix edit
          std::string s = "prefix-" + rng.AlphaString(3);
          cells.push_back(std::move(s));
          break;
        }
        default:  // wide length spread, stresses the sorted-order break
          cells.push_back(rng.AlphaString(rng.NextBounded(30)));
          break;
      }
    }
    const Column column("c", cells);
    MpdOptions options;
    // Small caps exercise the cap+1 clamp paths; the default cap the
    // common ones.
    options.distance_cap = trial % 3 == 0 ? 2 : 20;
    ExpectSameMpdProfile(column, options,
                         "seed=" + std::to_string(GetParam()) +
                             " trial=" + std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpdEquivalencePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(MpdEquivalenceTest, AllPairsBeyondCap) {
  // No pair within the cap: both implementations must report the first
  // two distinct values with mpd = cap + 1.
  Column column("c", {"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd"});
  MpdOptions options;
  options.distance_cap = 3;
  ExpectSameMpdProfile(column, options, "beyond-cap");
  const MpdProfile fast = ComputeMpdProfile(column, options);
  ASSERT_TRUE(fast.valid);
  EXPECT_EQ(fast.mpd, 4u);
  EXPECT_EQ(fast.value_a, "aaaaaaaa");
  EXPECT_EQ(fast.value_b, "bbbbbbbb");
}

TEST(MpdEquivalenceTest, TieOnMinimumPicksFirstPair) {
  // Two distance-1 pairs; the reference's in-order scan reports the
  // lexicographically-first one.
  Column column("c", {"gamma", "gamme", "delto", "delta"});
  ExpectSameMpdProfile(column, MpdOptions{}, "ties");
  const MpdProfile fast = ComputeMpdProfile(column);
  ASSERT_TRUE(fast.valid);
  EXPECT_EQ(fast.mpd, 1u);
  EXPECT_EQ(fast.value_a, "gamma");
  EXPECT_EQ(fast.value_b, "gamme");
}

TEST(MpdEquivalenceTest, SimdPrefilterMatchesReferenceWithSimdOnAndOff) {
  // The chunked SIMD prefilter (util/simd.h MpdPrefilterMask) must leave
  // every profile field identical to the reference with the vector path
  // forced on and off — including dethrone-heavy columns (many
  // progressively closer pairs, which re-mask mid-chunk) and columns
  // larger than one 64-candidate chunk.
  Rng rng(0xE017);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t n = 70 + rng.NextBounded(80);  // > one prefilter chunk
    std::vector<std::string> cells;
    for (size_t i = 0; i < n; ++i) {
      // Near-duplicates around a handful of stems create repeated
      // dethrones as the scan tightens the best distance.
      std::string s = "stem" + std::to_string(rng.NextBounded(6)) +
                      rng.AlphaString(1 + rng.NextBounded(6));
      if (rng.NextBounded(3) == 0) s[rng.NextBounded(s.size())] = 'q';
      cells.push_back(std::move(s));
    }
    const Column column("c", cells);
    MpdOptions options;
    options.distance_cap = trial % 2 == 0 ? 20 : 3;
    for (bool enabled : {true, false}) {
      simd::SetSimdEnabled(enabled);
      ExpectSameMpdProfile(column, options,
                           "trial=" + std::to_string(trial) +
                               " simd=" + std::to_string(enabled));
    }
    simd::SetSimdEnabled(true);
  }
}

TEST(MpdEquivalenceTest, LongStringsUseBandedFallback) {
  // Values longer than 64 chars leave the bit-parallel kernel's word
  // width and must fall back to the banded DP.
  const std::string base(70, 'x');
  std::string typo = base;
  typo[35] = 'y';
  Column column("c", {base + "a", typo + "a", base + "zzz", "short"});
  ExpectSameMpdProfile(column, MpdOptions{}, "long-strings");
  const MpdProfile fast = ComputeMpdProfile(column);
  ASSERT_TRUE(fast.valid);
  EXPECT_EQ(fast.mpd, 1u);
}

}  // namespace
}  // namespace unidetect
