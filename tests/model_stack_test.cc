// ModelStack: the layered read path (learn/model_stack.h). The keystone
// invariant of the base+delta design lives here: for every detector,
// detection over a stack of K layers is byte-identical to detection over
// the single Model::Merge fold of the same layers, at any K and thread
// count. The tsan preset runs this suite (ModelStack is in the
// CMakePresets.json tsan test filter).

#include "learn/model_stack.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "util/logging.h"

namespace unidetect {
namespace {

std::shared_ptr<const Model> TrainLayer(size_t tables, uint64_t seed) {
  SetLogLevel(LogLevel::kWarning);
  Trainer trainer;
  return std::make_shared<const Model>(
      trainer.Train(GenerateCorpus(WebCorpusSpec(tables, seed)).corpus));
}

// The write-side fold the stack is checked against: same Merge the
// offline pipeline and the compactor use.
Model FoldLayers(const std::vector<std::shared_ptr<const Model>>& layers) {
  Model merged(layers.front()->options());
  for (const auto& layer : layers) merged.Merge(*layer);
  merged.Finalize();
  return merged;
}

// Every detector on, loose alpha, dictionary derived from the token
// prevalence — the widest read surface the stack must reproduce.
UniDetectOptions AllDetectorOptions() {
  UniDetectOptions options;
  options.alpha = 1.0;
  options.set_detect(ErrorClass::kPattern, true);
  options.use_dictionary = true;
  return options;
}

std::string DetectAllJson(const UniDetect& detector, const Corpus& corpus,
                          size_t num_threads) {
  std::string out;
  for (const Finding& finding : detector.DetectCorpus(corpus, num_threads)) {
    out += FindingToJson(finding);
    out += '\n';
  }
  return out;
}

// Base + K small deltas, trained over disjoint synthetic corpora. The
// first layer is the big one, as in production.
std::vector<std::shared_ptr<const Model>> MakeLayers(size_t num_deltas) {
  std::vector<std::shared_ptr<const Model>> layers;
  layers.push_back(TrainLayer(400, 7001));
  for (size_t i = 0; i < num_deltas; ++i) {
    layers.push_back(TrainLayer(80, 7100 + i));
  }
  return layers;
}

TEST(ModelStackTest, SingleLayerMatchesFlatModel) {
  const auto layers = MakeLayers(0);
  const UniDetectOptions options = AllDetectorOptions();
  const UniDetect flat(layers[0].get(), options);
  const UniDetect stacked(std::make_shared<const ModelStack>(layers),
                          options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(30, 7777));
  EXPECT_EQ(DetectAllJson(flat, test.corpus, 1),
            DetectAllJson(stacked, test.corpus, 1));
}

// The keystone property at every K the acceptance criteria name: the
// layered stack answers byte-identically to the merged single-shot
// model, serial and parallel.
TEST(ModelStackTest, StackMatchesMergedFoldAtEveryDepth) {
  const auto all_layers = MakeLayers(5);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(30, 7778));
  const UniDetectOptions options = AllDetectorOptions();
  for (const size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
    const std::vector<std::shared_ptr<const Model>> layers(
        all_layers.begin(), all_layers.begin() + 1 + k);
    const Model merged = FoldLayers(layers);
    const UniDetect flat(&merged, options);
    const UniDetect stacked(std::make_shared<const ModelStack>(layers),
                            options);
    const std::string expected = DetectAllJson(flat, test.corpus, 1);
    EXPECT_EQ(expected, DetectAllJson(stacked, test.corpus, 1))
        << "K=" << k << " serial";
    EXPECT_EQ(expected, DetectAllJson(stacked, test.corpus, 4))
        << "K=" << k << " parallel";
    // The fold itself must be thread-count invariant too.
    EXPECT_EQ(expected, DetectAllJson(flat, test.corpus, 4))
        << "K=" << k << " flat parallel";
  }
}

TEST(ModelStackTest, AggregatesSumAcrossLayers) {
  const auto layers = MakeLayers(2);
  const ModelStack stack(layers);
  uint64_t observations = 0;
  for (const auto& layer : layers) observations += layer->num_observations();
  EXPECT_EQ(stack.num_observations(), observations);
  EXPECT_EQ(stack.num_layers(), 3u);
  // Support for any subset present in several layers is the summed size
  // — spot-check against the fold, which concatenates observations.
  const Model merged = FoldLayers(layers);
  merged.ForEachSubsetSorted([&](FeatureKey key, const SubsetStats& stats) {
    EXPECT_EQ(stack.SubsetSupport(key), stats.size());
  });
}

TEST(ModelStackTest, BorrowAndWithDeltaLayer) {
  const auto layers = MakeLayers(1);
  // Borrow: non-owning single-layer stack over a caller-kept model.
  const ModelStack borrowed = ModelStack::Borrow(layers[0].get());
  EXPECT_EQ(borrowed.num_layers(), 1u);
  EXPECT_EQ(borrowed.num_observations(), layers[0]->num_observations());
  // WithDelta: functional extension, original stack untouched.
  const ModelStack extended = borrowed.WithDelta(layers[1]);
  EXPECT_EQ(borrowed.num_layers(), 1u);
  EXPECT_EQ(extended.num_layers(), 2u);
  EXPECT_EQ(extended.num_observations(),
            layers[0]->num_observations() + layers[1]->num_observations());
}

}  // namespace
}  // namespace unidetect
