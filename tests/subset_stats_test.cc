#include "learn/subset_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/simd.h"

namespace unidetect {
namespace {

SubsetStats MakeStats(std::vector<std::pair<double, double>> pairs) {
  SubsetStats stats;
  for (auto [pre, post] : pairs) stats.Add(pre, post);
  stats.Finalize();
  return stats;
}

TEST(SubsetStatsTest, CountSurprisingHigherDirection) {
  // max-MAD style: suspicious = high pre, clean = low post.
  SubsetStats stats = MakeStats({{10, 2}, {8, 7}, {5, 4}, {12, 1}, {3, 3}});
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                  /*theta1=*/8, /*theta2=*/2),
            2u);  // (10,2) and (12,1)
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                  8, 7),
            3u);  // adds (8,7)
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                  100, 0),
            0u);
}

TEST(SubsetStatsTest, CountSurprisingLowerDirection) {
  // MPD/UR style: suspicious = low pre, clean = high post.
  SubsetStats stats = MakeStats({{1, 9}, {1, 1}, {2, 2}, {3, 9}, {9, 9}});
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                  /*theta1=*/1, /*theta2=*/9),
            1u);  // only (1,9)
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                  3, 9),
            2u);  // (1,9) and (3,9)
}

TEST(SubsetStatsTest, TailCountsInclusive) {
  SubsetStats stats = MakeStats({{1, 0}, {2, 0}, {2, 0}, {5, 0}});
  EXPECT_EQ(stats.CountPreSuspiciousTail(
                SurpriseDirection::kHigherMoreSurprising, 2),
            3u);  // pre >= 2
  EXPECT_EQ(stats.CountPreSuspiciousTail(
                SurpriseDirection::kLowerMoreSurprising, 2),
            3u);  // pre <= 2
  EXPECT_EQ(stats.CountPreCleanTail(
                SurpriseDirection::kHigherMoreSurprising, 2),
            3u);  // pre <= 2
  EXPECT_EQ(stats.CountPreCleanTail(
                SurpriseDirection::kLowerMoreSurprising, 2),
            3u);  // pre >= 2
}

TEST(SubsetStatsTest, PointCountsQuantize) {
  SubsetStats stats = MakeStats({{1.02, 2.04}, {1.04, 2.01}, {1.3, 2.0}});
  EXPECT_EQ(stats.CountPointPair(1.0, 2.0, 0.1), 2u);
  EXPECT_EQ(stats.CountPointPre(1.3, 0.1), 1u);
}

TEST(SubsetStatsTest, SmallSubsetsBuildNoTree) {
  // Below kTreeMinSize neither Finalize() nor any snapshot load path
  // materializes the merge-sort tree: tree_owned_ stays unallocated
  // (OwnedBytes counts only the observation arrays) and CountSurprising
  // falls through to the linear scan with identical answers.
  SubsetStats small;
  Rng rng(91);
  for (size_t i = 0; i + 1 < SubsetStats::kTreeMinSize; ++i) {
    const double pre = rng.Uniform(0.0, 10.0);
    small.Add(pre, rng.Uniform(0.0, pre));
  }
  small.Finalize();
  ASSERT_LT(small.size(), SubsetStats::kTreeMinSize);
  EXPECT_EQ(SubsetStats::TreeLevelsFor(small.size()), 0u);
  EXPECT_EQ(small.tree_levels(), 0u);
  EXPECT_TRUE(small.tree_data().empty());
  // The decode paths (exact-capacity arrays) show the missing tree in
  // the byte accounting: observations only, no tree storage.
  auto decoded = SubsetStats::FromSortedArraysWithTree(
      std::vector<float>(small.pres().begin(), small.pres().end()),
      std::vector<float>(small.posts().begin(), small.posts().end()), {});
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->OwnedBytes(), 2 * small.size() * sizeof(float));
  for (double theta1 : {0.5, 2.0, 5.0, 9.5}) {
    EXPECT_EQ(small.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                    theta1, 1.0),
              small.CountSurprisingLinear(
                  SurpriseDirection::kHigherMoreSurprising, theta1, 1.0));
  }

  // One more observation crosses the threshold and the tree appears.
  SubsetStats large;
  Rng rng2(92);
  for (size_t i = 0; i < SubsetStats::kTreeMinSize; ++i) {
    const double pre = rng2.Uniform(0.0, 10.0);
    large.Add(pre, rng2.Uniform(0.0, pre));
  }
  large.Finalize();
  EXPECT_EQ(large.tree_levels(),
            SubsetStats::TreeLevelsFor(SubsetStats::kTreeMinSize));
  EXPECT_GT(large.tree_levels(), 0u);
  EXPECT_EQ(large.tree_data().size(), large.tree_levels() * large.size());
}

TEST(SubsetStatsTest, MergeThenFinalize) {
  SubsetStats a;
  a.Add(1, 2);
  SubsetStats b;
  b.Add(3, 4);
  a.Merge(b);
  a.Finalize();
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.CountPreSuspiciousTail(
                SurpriseDirection::kHigherMoreSurprising, 0),
            2u);
}

TEST(SubsetStatsTest, SerializationRoundTripExact) {
  // Values chosen to be inexact in binary: the round trip must preserve
  // boundary equality (the bug class fixed by max_digits10).
  SubsetStats stats;
  stats.Add(10.0 / 13.0, 10.0 / 11.0);
  stats.Add(20.0 / 21.0, 1.0);
  stats.Finalize();
  std::string text;
  stats.SerializeTo(&text);
  auto restored = SubsetStats::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                      10.0 / 13.0, 10.0 / 11.0),
            stats.CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                  10.0 / 13.0, 10.0 / 11.0));
  EXPECT_EQ(restored->CountPreSuspiciousTail(
                SurpriseDirection::kLowerMoreSurprising, 20.0 / 21.0),
            2u);
}

TEST(SubsetStatsTest, DeserializeRejectsTruncation) {
  EXPECT_FALSE(SubsetStats::Deserialize("3 1 2 3").ok());
  EXPECT_FALSE(SubsetStats::Deserialize("").ok());
}

// Property: the numerator is monotone — widening either threshold can
// only add observations (this is the structural fact behind Theorem 1).
class SubsetStatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubsetStatsPropertyTest, NumeratorMonotone) {
  Rng rng(GetParam());
  SubsetStats stats;
  for (int i = 0; i < 500; ++i) {
    stats.Add(rng.Uniform(0, 100), rng.Uniform(0, 100));
  }
  stats.Finalize();
  for (int trial = 0; trial < 100; ++trial) {
    const double t1 = rng.Uniform(0, 100);
    const double t2 = rng.Uniform(0, 100);
    const double t1_wider = t1 - rng.Uniform(0, 10);   // lower theta1
    const double t2_wider = t2 + rng.Uniform(0, 10);   // higher theta2
    // Higher-surprising direction: num(theta1, theta2) grows when theta1
    // shrinks or theta2 grows.
    EXPECT_LE(stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1, t2),
              stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1_wider, t2));
    EXPECT_LE(stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1, t2),
              stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1, t2_wider));
    // Tails are monotone in theta2.
    EXPECT_GE(stats.CountPreSuspiciousTail(
                  SurpriseDirection::kHigherMoreSurprising, t2),
              stats.CountPreSuspiciousTail(
                  SurpriseDirection::kHigherMoreSurprising, t2_wider));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetStatsPropertyTest,
                         ::testing::Values(11, 22, 33));

// Property: the merge-sort-tree dominance count agrees with the linear
// reference scan for every direction, on sizes straddling the tree-build
// threshold, with thetas both random and snapped to stored values (the
// inclusive-boundary cases).
class TreeVsLinearPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeVsLinearPropertyTest, TreeCountMatchesLinear) {
  Rng rng(GetParam());
  for (const size_t n : {3u, 63u, 64u, 65u, 127u, 500u, 1000u}) {
    SubsetStats stats;
    std::vector<std::pair<double, double>> raw;
    for (size_t i = 0; i < n; ++i) {
      // Quantized values create heavy ties, stressing the inclusive
      // bounds on both axes.
      const double pre = std::round(rng.Uniform(0, 40)) / 4.0;
      const double post = std::round(rng.Uniform(0, 40)) / 4.0;
      raw.emplace_back(pre, post);
      stats.Add(pre, post);
    }
    stats.Finalize();
    for (int trial = 0; trial < 50; ++trial) {
      double t1 = rng.Uniform(-1, 11);
      double t2 = rng.Uniform(-1, 11);
      if (trial % 2 == 0) {
        const auto& hit = raw[rng.NextBounded(raw.size())];
        t1 = hit.first;
        t2 = hit.second;
      }
      for (const auto dir : {SurpriseDirection::kHigherMoreSurprising,
                             SurpriseDirection::kLowerMoreSurprising}) {
        EXPECT_EQ(stats.CountSurprising(dir, t1, t2),
                  stats.CountSurprisingLinear(dir, t1, t2))
            << "n=" << n << " t1=" << t1 << " t2=" << t2
            << " dir=" << static_cast<int>(dir);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeVsLinearPropertyTest,
                         ::testing::Values(7, 77, 777));

// Property: the SIMD leaf scans inside CountSurprising are bit-identical
// to the pure-scalar linear oracle with the vector path forced on and
// off, including non-finite thetas and sizes that leave ragged,
// unaligned leaf blocks.
TEST(SubsetStatsSimdTest, CountSurprisingMatchesLinearWithSimdOnAndOff) {
  Rng rng(0x51D);
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const size_t n : {1u, 63u, 64u, 65u, 127u, 129u, 500u, 1001u}) {
    SubsetStats stats;
    for (size_t i = 0; i < n; ++i) {
      stats.Add(std::round(rng.Uniform(0, 40)) / 4.0,
                std::round(rng.Uniform(0, 40)) / 4.0);
    }
    stats.Finalize();
    std::vector<std::pair<double, double>> thetas = {
        {5.0, 5.0}, {-1.0, 11.0}, {inf, -inf}, {nan, 5.0}, {5.0, nan}};
    for (int trial = 0; trial < 20; ++trial) {
      thetas.emplace_back(rng.Uniform(-1, 11), rng.Uniform(-1, 11));
    }
    for (const auto& [t1, t2] : thetas) {
      for (const auto dir : {SurpriseDirection::kHigherMoreSurprising,
                             SurpriseDirection::kLowerMoreSurprising}) {
        const uint64_t want = stats.CountSurprisingLinear(dir, t1, t2);
        for (bool enabled : {true, false}) {
          simd::SetSimdEnabled(enabled);
          EXPECT_EQ(stats.CountSurprising(dir, t1, t2), want)
              << "n=" << n << " t1=" << t1 << " t2=" << t2
              << " simd=" << enabled;
        }
        simd::SetSimdEnabled(true);
      }
    }
  }
}

// Property: a half-precision store quantized from an f32 subset answers
// every query exactly like an f32 store holding the dequantized values
// (widening is exact), through both the tree and linear paths.
TEST(SubsetStatsSimdTest, HalfStoreMatchesDequantizedF32Store) {
  Rng rng(0xF16F16);
  for (const size_t n : {5u, 63u, 64u, 200u, 600u}) {
    SubsetStats f32;
    for (size_t i = 0; i < n; ++i) {
      f32.Add(rng.Uniform(-100, 100), rng.Uniform(-100, 100));
    }
    f32.Finalize();

    auto quantize = [](std::span<const float> values) {
      std::vector<uint16_t> out;
      out.reserve(values.size());
      for (float v : values) out.push_back(simd::FloatToHalf(v));
      return out;
    };
    auto result = SubsetStats::FromSortedHalfArraysWithTree(
        quantize(f32.pres()), quantize(f32.posts()),
        quantize(f32.tree_data()));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const SubsetStats half = std::move(result).ValueOrDie();
    ASSERT_TRUE(half.half());
    EXPECT_EQ(half.size(), n);
    EXPECT_GT(half.OwnedBytes(), 0u);

    // An f32 store holding the exactly-widened values is the oracle.
    std::vector<float> wide_pres;
    std::vector<float> wide_posts;
    std::vector<float> wide_tree;
    for (size_t i = 0; i < n; ++i) {
      wide_pres.push_back(half.PreAt(i));
      wide_posts.push_back(half.PostAt(i));
    }
    for (uint16_t v : half.tree_data_f16()) {
      wide_tree.push_back(simd::HalfToFloat(v));
    }
    auto wide_result = SubsetStats::FromSortedArraysWithTree(
        std::move(wide_pres), std::move(wide_posts), std::move(wide_tree));
    ASSERT_TRUE(wide_result.ok()) << wide_result.status().ToString();
    const SubsetStats wide = std::move(wide_result).ValueOrDie();

    for (int trial = 0; trial < 40; ++trial) {
      const double t1 = rng.Uniform(-110, 110);
      const double t2 = rng.Uniform(-110, 110);
      for (const auto dir : {SurpriseDirection::kHigherMoreSurprising,
                             SurpriseDirection::kLowerMoreSurprising}) {
        const uint64_t want = wide.CountSurprising(dir, t1, t2);
        EXPECT_EQ(half.CountSurprising(dir, t1, t2), want);
        EXPECT_EQ(half.CountSurprisingLinear(dir, t1, t2), want);
        simd::SetSimdEnabled(false);
        EXPECT_EQ(half.CountSurprising(dir, t1, t2), want);
        simd::SetSimdEnabled(true);
      }
    }
  }
}

TEST(SubsetStatsSimdTest, HalfFactoryRejectsUnsortedInput) {
  // 2.0, then 1.0: sorted by bit pattern but not by dequantized value
  // would be caught too; this is plainly descending.
  auto result = SubsetStats::FromSortedHalfArraysWithTree(
      {simd::FloatToHalf(2.0f), simd::FloatToHalf(1.0f)},
      {simd::FloatToHalf(0.0f), simd::FloatToHalf(1.0f)}, {});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace unidetect
