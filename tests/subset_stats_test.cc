#include "learn/subset_stats.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace unidetect {
namespace {

SubsetStats MakeStats(std::vector<std::pair<double, double>> pairs) {
  SubsetStats stats;
  for (auto [pre, post] : pairs) stats.Add(pre, post);
  stats.Finalize();
  return stats;
}

TEST(SubsetStatsTest, CountSurprisingHigherDirection) {
  // max-MAD style: suspicious = high pre, clean = low post.
  SubsetStats stats = MakeStats({{10, 2}, {8, 7}, {5, 4}, {12, 1}, {3, 3}});
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                  /*theta1=*/8, /*theta2=*/2),
            2u);  // (10,2) and (12,1)
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                  8, 7),
            3u);  // adds (8,7)
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kHigherMoreSurprising,
                                  100, 0),
            0u);
}

TEST(SubsetStatsTest, CountSurprisingLowerDirection) {
  // MPD/UR style: suspicious = low pre, clean = high post.
  SubsetStats stats = MakeStats({{1, 9}, {1, 1}, {2, 2}, {3, 9}, {9, 9}});
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                  /*theta1=*/1, /*theta2=*/9),
            1u);  // only (1,9)
  EXPECT_EQ(stats.CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                  3, 9),
            2u);  // (1,9) and (3,9)
}

TEST(SubsetStatsTest, TailCountsInclusive) {
  SubsetStats stats = MakeStats({{1, 0}, {2, 0}, {2, 0}, {5, 0}});
  EXPECT_EQ(stats.CountPreSuspiciousTail(
                SurpriseDirection::kHigherMoreSurprising, 2),
            3u);  // pre >= 2
  EXPECT_EQ(stats.CountPreSuspiciousTail(
                SurpriseDirection::kLowerMoreSurprising, 2),
            3u);  // pre <= 2
  EXPECT_EQ(stats.CountPreCleanTail(
                SurpriseDirection::kHigherMoreSurprising, 2),
            3u);  // pre <= 2
  EXPECT_EQ(stats.CountPreCleanTail(
                SurpriseDirection::kLowerMoreSurprising, 2),
            3u);  // pre >= 2
}

TEST(SubsetStatsTest, PointCountsQuantize) {
  SubsetStats stats = MakeStats({{1.02, 2.04}, {1.04, 2.01}, {1.3, 2.0}});
  EXPECT_EQ(stats.CountPointPair(1.0, 2.0, 0.1), 2u);
  EXPECT_EQ(stats.CountPointPre(1.3, 0.1), 1u);
}

TEST(SubsetStatsTest, MergeThenFinalize) {
  SubsetStats a;
  a.Add(1, 2);
  SubsetStats b;
  b.Add(3, 4);
  a.Merge(b);
  a.Finalize();
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.CountPreSuspiciousTail(
                SurpriseDirection::kHigherMoreSurprising, 0),
            2u);
}

TEST(SubsetStatsTest, SerializationRoundTripExact) {
  // Values chosen to be inexact in binary: the round trip must preserve
  // boundary equality (the bug class fixed by max_digits10).
  SubsetStats stats;
  stats.Add(10.0 / 13.0, 10.0 / 11.0);
  stats.Add(20.0 / 21.0, 1.0);
  stats.Finalize();
  std::string text;
  stats.SerializeTo(&text);
  auto restored = SubsetStats::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                      10.0 / 13.0, 10.0 / 11.0),
            stats.CountSurprising(SurpriseDirection::kLowerMoreSurprising,
                                  10.0 / 13.0, 10.0 / 11.0));
  EXPECT_EQ(restored->CountPreSuspiciousTail(
                SurpriseDirection::kLowerMoreSurprising, 20.0 / 21.0),
            2u);
}

TEST(SubsetStatsTest, DeserializeRejectsTruncation) {
  EXPECT_FALSE(SubsetStats::Deserialize("3 1 2 3").ok());
  EXPECT_FALSE(SubsetStats::Deserialize("").ok());
}

// Property: the numerator is monotone — widening either threshold can
// only add observations (this is the structural fact behind Theorem 1).
class SubsetStatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubsetStatsPropertyTest, NumeratorMonotone) {
  Rng rng(GetParam());
  SubsetStats stats;
  for (int i = 0; i < 500; ++i) {
    stats.Add(rng.Uniform(0, 100), rng.Uniform(0, 100));
  }
  stats.Finalize();
  for (int trial = 0; trial < 100; ++trial) {
    const double t1 = rng.Uniform(0, 100);
    const double t2 = rng.Uniform(0, 100);
    const double t1_wider = t1 - rng.Uniform(0, 10);   // lower theta1
    const double t2_wider = t2 + rng.Uniform(0, 10);   // higher theta2
    // Higher-surprising direction: num(theta1, theta2) grows when theta1
    // shrinks or theta2 grows.
    EXPECT_LE(stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1, t2),
              stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1_wider, t2));
    EXPECT_LE(stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1, t2),
              stats.CountSurprising(
                  SurpriseDirection::kHigherMoreSurprising, t1, t2_wider));
    // Tails are monotone in theta2.
    EXPECT_GE(stats.CountPreSuspiciousTail(
                  SurpriseDirection::kHigherMoreSurprising, t2),
              stats.CountPreSuspiciousTail(
                  SurpriseDirection::kHigherMoreSurprising, t2_wider));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetStatsPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace unidetect
