#include "offline/shard_plan.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/corpus_io.h"
#include "offline/build_journal.h"
#include "offline/offline_build.h"
#include "offline/streaming_reader.h"
#include "table/table.h"

namespace unidetect {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string WriteCorpusDir(const std::string& name, size_t num_tables,
                           uint64_t seed) {
  const std::string dir = FreshDir(name);
  const Corpus corpus = GenerateCorpus(WebCorpusSpec(num_tables, seed)).corpus;
  EXPECT_TRUE(SaveCorpusToDirectory(corpus, dir).ok());
  return dir;
}

TEST(ShardPlanTest, SerializeParseRoundTrip) {
  const std::string dir = WriteCorpusDir("offline_plan_rt", 9, 3);
  TrainerOptions options;
  options.model.pseudocount = 0.12345678901234567;
  options.max_fd_pairs_per_table = 11;
  auto plan = PlanShards({dir}, options, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->shards.size(), 4u);
  ASSERT_EQ(plan->num_files(), 9u);

  const std::string text = SerializeShardPlan(*plan);
  auto reparsed = ParseShardPlan(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  // Exact round-trip, doubles included: the re-serialized manifest is
  // byte-identical, so options can never drift across resumes.
  EXPECT_EQ(SerializeShardPlan(*reparsed), text);
  EXPECT_EQ(reparsed->trainer.model.pseudocount, options.model.pseudocount);
  EXPECT_EQ(reparsed->trainer.max_fd_pairs_per_table, 11u);
}

TEST(ShardPlanTest, ShardsAreContiguousAndBalanced) {
  const std::string dir = WriteCorpusDir("offline_plan_bal", 10, 7);
  auto plan = PlanShards({dir}, TrainerOptions{}, 3);
  ASSERT_TRUE(plan.ok());
  // 10 files over 3 shards: first 10 % 3 = 1 shard gets the extra file
  // (the ParallelFor partition rule).
  ASSERT_EQ(plan->shards.size(), 3u);
  EXPECT_EQ(plan->shards[0].files.size(), 4u);
  EXPECT_EQ(plan->shards[1].files.size(), 3u);
  EXPECT_EQ(plan->shards[2].files.size(), 3u);

  // Concatenated shard files == the sorted directory listing.
  auto listed = ListCsvFiles(dir);
  ASSERT_TRUE(listed.ok());
  std::vector<std::string> planned;
  for (const Shard& shard : plan->shards) {
    for (const ShardFile& file : shard.files) planned.push_back(file.path);
  }
  EXPECT_EQ(planned, *listed);
}

TEST(ShardPlanTest, ClampsShardCountToFileCount) {
  const std::string dir = WriteCorpusDir("offline_plan_clamp", 2, 1);
  auto plan = PlanShards({dir}, TrainerOptions{}, 50);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->shards.size(), 2u);
}

TEST(ShardPlanTest, ExtendAppendsWithoutTouchingOldShards) {
  const std::string dir_a = WriteCorpusDir("offline_plan_ext_a", 6, 2);
  const std::string dir_b = WriteCorpusDir("offline_plan_ext_b", 4, 4);
  auto plan = PlanShards({dir_a}, TrainerOptions{}, 2);
  ASSERT_TRUE(plan.ok());
  const std::string before = SerializeShardPlan(*plan);

  ASSERT_TRUE(ExtendShardPlan(&*plan, {dir_b}, 2).ok());
  ASSERT_EQ(plan->shards.size(), 4u);
  ASSERT_EQ(plan->input_dirs.size(), 2u);
  EXPECT_EQ(plan->num_files(), 10u);
  // The original shards survive extension byte-for-byte.
  auto original = ParseShardPlan(before);
  ASSERT_TRUE(original.ok());
  for (size_t s = 0; s < 2; ++s) {
    ASSERT_EQ(plan->shards[s].files.size(), original->shards[s].files.size());
    for (size_t f = 0; f < plan->shards[s].files.size(); ++f) {
      EXPECT_EQ(plan->shards[s].files[f].path,
                original->shards[s].files[f].path);
      EXPECT_EQ(plan->shards[s].files[f].crc32,
                original->shards[s].files[f].crc32);
    }
  }
}

TEST(ShardPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseShardPlan("not a manifest").ok());
  EXPECT_FALSE(ParseShardPlan("UDPLAN v2\n").ok());
}

TEST(ShardPlanTest, ParseRejectsCountsLargerThanManifest) {
  // Declared entry counts drive reserve() calls; a crafted manifest
  // claiming billions of shards must fail typed before the allocation,
  // not with std::bad_alloc. Every entry needs at least one line of
  // text, so any count beyond the manifest size is a lie.
  const std::string dir = WriteCorpusDir("offline_plan_huge", 2, 9);
  auto plan = PlanShards({dir}, TrainerOptions{}, 2);
  ASSERT_TRUE(plan.ok());
  const std::string text = SerializeShardPlan(*plan);
  for (const char* field : {"inputs ", "shards "}) {
    const size_t pos = text.find(field);
    ASSERT_NE(pos, std::string::npos) << field;
    std::string mutated = text;
    const size_t value_pos = pos + std::string(field).size();
    mutated.replace(value_pos, mutated.find('\n', value_pos) - value_pos,
                    "99999999999999999");
    auto parsed = ParseShardPlan(mutated);
    ASSERT_FALSE(parsed.ok()) << field;
    EXPECT_TRUE(parsed.status().IsCorruption()) << parsed.status();
  }
}

TEST(BuildJournalTest, RecordLookupReopen) {
  const std::string path = FreshDir("offline_journal") + "/journal.txt";
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  {
    auto journal = BuildJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Record(BuildStage::kIndex, 0, 0xAAAA).ok());
    ASSERT_TRUE(journal->Record(BuildStage::kObservations, 0, 0xBBBB).ok());
    // A rebuild supersedes the earlier entry.
    ASSERT_TRUE(journal->Record(BuildStage::kIndex, 0, 0xCCCC).ok());
  }
  auto reopened = BuildJournal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_entries(), 2u);
  uint32_t crc = 0;
  ASSERT_TRUE(reopened->Lookup(BuildStage::kIndex, 0, &crc));
  EXPECT_EQ(crc, 0xCCCCu);
  ASSERT_TRUE(reopened->Lookup(BuildStage::kObservations, 0, &crc));
  EXPECT_EQ(crc, 0xBBBBu);
  EXPECT_FALSE(reopened->Lookup(BuildStage::kIndex, 1, &crc));
}

TEST(BuildJournalTest, ToleratesTornTrailingLine) {
  const std::string path = FreshDir("offline_journal_torn") + "/journal.txt";
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  {
    auto journal = BuildJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Record(BuildStage::kIndex, 3, 42).ok());
  }
  {
    // Simulate a crash mid-append: a truncated entry with no newline.
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << "obs 4";
  }
  auto reopened = BuildJournal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_entries(), 1u);
  uint32_t crc = 0;
  EXPECT_TRUE(reopened->Lookup(BuildStage::kIndex, 3, &crc));
  EXPECT_EQ(crc, 42u);
  // And the next Record appends cleanly after the torn bytes.
  ASSERT_TRUE(reopened->Record(BuildStage::kObservations, 5, 7).ok());
  auto again = BuildJournal::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_entries(), 2u);
}

TEST(StreamingReaderTest, VisitsPlannedTablesInOrder) {
  const std::string dir = WriteCorpusDir("offline_stream", 5, 6);
  auto plan = PlanShards({dir}, TrainerOptions{}, 1);
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> names;
  ASSERT_TRUE(StreamShardTables(plan->shards[0], [&](Table&& table) {
                names.push_back(table.name());
              }).ok());
  ASSERT_EQ(names.size(), 5u);
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i],
              std::filesystem::path(plan->shards[0].files[i].path)
                  .stem()
                  .string());
  }
}

TEST(StreamingReaderTest, AbortsWhenInputDriftsFromPlan) {
  const std::string dir = WriteCorpusDir("offline_stream_drift", 3, 8);
  auto plan = PlanShards({dir}, TrainerOptions{}, 1);
  ASSERT_TRUE(plan.ok());
  {
    std::ofstream edit(plan->shards[0].files[1].path, std::ios::app);
    edit << "tampered,row,after,planning\n";
  }
  const Status status =
      StreamShardTables(plan->shards[0], [](Table&&) {});
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
}

TEST(OfflineBuildTest, PlanRefusesToOverwriteManifest) {
  const std::string dir = WriteCorpusDir("offline_replan_corpus", 4, 9);
  const std::string build_dir = FreshDir("offline_replan_build");
  ASSERT_TRUE(PlanOfflineBuild({dir}, TrainerOptions{}, 2, build_dir).ok());
  const Status again = PlanOfflineBuild({dir}, TrainerOptions{}, 2, build_dir);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists) << again.ToString();
}

}  // namespace
}  // namespace unidetect
