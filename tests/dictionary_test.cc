#include "detect/dictionary.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

TEST(DictionaryTest, CaseInsensitiveMembership) {
  Dictionary dict;
  dict.AddWord("London");
  EXPECT_TRUE(dict.Contains("london"));
  EXPECT_TRUE(dict.Contains("LONDON"));
  EXPECT_FALSE(dict.Contains("paris"));
}

TEST(DictionaryTest, AllWordsKnown) {
  Dictionary dict;
  dict.AddWord("new");
  dict.AddWord("york");
  EXPECT_TRUE(dict.AllWordsKnown("New York"));
  EXPECT_FALSE(dict.AllWordsKnown("New Jersey"));
  // Cells with no alphabetic token >= 3 chars carry no dictionary
  // evidence; they are NOT "all known".
  EXPECT_FALSE(dict.AllWordsKnown("42"));
  EXPECT_FALSE(dict.AllWordsKnown("A1"));
}

TEST(DictionaryTest, ShortAndNonAlphaTokensIgnored) {
  Dictionary dict;
  dict.AddWord("doe");
  dict.AddWord("john");
  // "Jr" (2 chars) and "III" would be ignored... "III" is alphabetic and
  // 3 chars, so it must be known; "42" is skipped.
  EXPECT_FALSE(dict.AllWordsKnown("John Doe III"));
  dict.AddWord("iii");
  EXPECT_TRUE(dict.AllWordsKnown("John Doe III 42"));
}

TEST(DictionaryTest, FromTokenIndexThresholds) {
  TokenIndex index;
  auto add_tables = [&](const std::string& cell, int count) {
    for (int i = 0; i < count; ++i) {
      Table table("t");
      ASSERT_TRUE(table.AddColumn(Column("c", {cell})).ok());
      index.AddTable(table);
    }
  };
  add_tables("frequent", 30);
  add_tables("rare", 2);
  add_tables("A1B2", 50);  // non-alphabetic: excluded regardless of count
  add_tables("ab", 50);    // too short
  const Dictionary dict = Dictionary::FromTokenIndex(index, 20);
  EXPECT_TRUE(dict.Contains("frequent"));
  EXPECT_FALSE(dict.Contains("rare"));
  EXPECT_FALSE(dict.Contains("a1b2"));
  EXPECT_FALSE(dict.Contains("ab"));
  EXPECT_EQ(dict.size(), 1u);
}

}  // namespace
}  // namespace unidetect
