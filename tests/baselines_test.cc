#include <gtest/gtest.h>

#include "baselines/constraint_baselines.h"
#include "baselines/outlier_baselines.h"
#include "baselines/spelling_baselines.h"

namespace unidetect {
namespace {

Table OneColumnTable(std::vector<std::string> cells,
                     const char* name = "col") {
  Table table("t");
  EXPECT_TRUE(table.AddColumn(Column(name, std::move(cells))).ok());
  return table;
}

// ---------------------------------------------------------------------------
// Outlier baselines.

TEST(MaxMadBaselineTest, FlagsExtremeWithNegatedScore) {
  MaxMadBaseline baseline;
  std::vector<Finding> findings;
  baseline.Detect(
      OneColumnTable({"10", "11", "12", "10.5", "11.5", "13", "12.5", "9000"}),
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rows, (std::vector<size_t>{7}));
  EXPECT_LT(findings[0].score, -10.0);  // negated MAD score
}

TEST(MaxSdBaselineTest, SkipsTinyColumns) {
  MaxSdBaseline baseline;
  std::vector<Finding> findings;
  baseline.Detect(OneColumnTable({"1", "2", "900"}), &findings);
  EXPECT_TRUE(findings.empty());  // < 8 numeric values
}

TEST(DbodBaselineTest, ScoresDetachedExtreme) {
  DbodBaseline baseline;
  std::vector<Finding> findings;
  baseline.Detect(
      OneColumnTable({"1", "2", "3", "4", "5", "6", "7", "1000"}), &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rows, (std::vector<size_t>{7}));
  // DBOD = (1000 - 7) / (1000 - 1).
  EXPECT_NEAR(-findings[0].score, 993.0 / 999.0, 1e-9);
}

TEST(DbodBaselineTest, FlagsDetachedMinimumToo) {
  DbodBaseline baseline;
  std::vector<Finding> findings;
  baseline.Detect(
      OneColumnTable({"-1000", "1", "2", "3", "4", "5", "6", "7"}),
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rows, (std::vector<size_t>{0}));
}

TEST(LofBaselineTest, ComputeLofIsolatesOutlier) {
  std::vector<double> values = {1, 1.1, 1.2, 0.9, 1.05, 0.95, 1.15, 50};
  const std::vector<double> lof = LofBaseline::ComputeLof(values, 3);
  ASSERT_EQ(lof.size(), values.size());
  size_t best = 0;
  for (size_t i = 1; i < lof.size(); ++i) {
    if (lof[i] > lof[best]) best = i;
  }
  EXPECT_EQ(best, 7u);
  EXPECT_GT(lof[7], 2.0);
  // Inliers sit near density 1.
  EXPECT_LT(lof[0], 2.0);
}

TEST(LofBaselineTest, TooFewPointsGivesZeros) {
  const std::vector<double> lof = LofBaseline::ComputeLof({1, 2}, 5);
  for (double v : lof) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Spelling baselines.

TEST(FuzzyClusterTest, RanksCloserPairsFirst) {
  FuzzyClusterBaseline baseline;
  std::vector<Finding> findings;
  baseline.Detect(OneColumnTable({"Mississippi", "Mississipi", "Ohio",
                                  "Texas", "Nevada"}),
                  &findings);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_NE(findings[0].value.find("Mississipi"), std::string::npos);
}

TEST(FuzzyClusterTest, IgnoresNumericColumns) {
  FuzzyClusterBaseline baseline;
  std::vector<Finding> findings;
  baseline.Detect(OneColumnTable({"100", "101", "102", "103"}), &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(WordFrequencyTest, BestCorrectionFindsPopularNeighbor) {
  TokenIndex index;
  for (int i = 0; i < 100; ++i) {
    Table table("t");
    ASSERT_TRUE(table.AddColumn(Column("c", {"chicago"})).ok());
    index.AddTable(table);
  }
  const WordFrequency frequency(index);
  EXPECT_EQ(frequency.Count("chicago"), 100u);
  EXPECT_EQ(frequency.BestCorrection("chicagoo", 50), "chicago");
  EXPECT_EQ(frequency.BestCorrection("chicgo", 50), "chicago");
  EXPECT_EQ(frequency.BestCorrection("hcicago", 50), "chicago");  // transpose
  EXPECT_EQ(frequency.BestCorrection("zzz", 50), "");
  // A word never corrects to itself.
  EXPECT_EQ(frequency.BestCorrection("chicago", 50), "");
}

TEST(SpellerBaselineTest, FlagsRareTokenWithPopularNeighbor) {
  TokenIndex index;
  for (int i = 0; i < 100; ++i) {
    Table table("t");
    ASSERT_TRUE(table.AddColumn(Column("c", {"london paris berlin"})).ok());
    index.AddTable(table);
  }
  const WordFrequency frequency(index);
  SpellerBaseline baseline(&frequency);
  std::vector<Finding> findings;
  baseline.Detect(OneColumnTable({"londn", "paris", "berlin"}), &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rows, (std::vector<size_t>{0}));
}

TEST(SpellerBaselineTest, AddressOnlyRestrictsColumns) {
  TokenIndex index;
  for (int i = 0; i < 100; ++i) {
    Table table("t");
    ASSERT_TRUE(table.AddColumn(Column("c", {"london"})).ok());
    index.AddTable(table);
  }
  const WordFrequency frequency(index);
  SpellerOptions options;
  options.address_only = true;
  SpellerBaseline baseline(&frequency, options);

  Table with_city("t");
  ASSERT_TRUE(with_city.AddColumn(Column("City", {"londn", "london"})).ok());
  Table without("t");
  ASSERT_TRUE(without.AddColumn(Column("Notes", {"londn", "london"})).ok());
  std::vector<Finding> findings;
  baseline.Detect(without, &findings);
  EXPECT_TRUE(findings.empty());
  baseline.Detect(with_city, &findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(OovBaselineTest, FlagsUnknownTokensOnly) {
  TokenIndex index;
  for (int i = 0; i < 50; ++i) {
    Table table("t");
    ASSERT_TRUE(table.AddColumn(Column("c", {"common words here"})).ok());
    index.AddTable(table);
  }
  OovBaseline baseline(&index, "GloVe", 10);
  std::vector<Finding> findings;
  baseline.Detect(OneColumnTable({"common", "xqzvkw", "words"}), &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rows, (std::vector<size_t>{1}));
}

// ---------------------------------------------------------------------------
// Uniqueness / FD baselines.

TEST(UniqueRowRatioTest, FlagsAlmostUniqueOnly) {
  UniqueRowRatioBaseline baseline(0.9);
  std::vector<Finding> findings;
  // 9/10 distinct -> flagged.
  baseline.Detect(OneColumnTable({"a", "b", "c", "d", "e", "f", "g", "h",
                                  "i", "a"}),
                  &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NEAR(-findings[0].score, 0.9, 1e-9);
  // Fully unique -> nothing to flag.
  findings.clear();
  baseline.Detect(OneColumnTable({"a", "b", "c", "d", "e", "f", "g", "h"}),
                  &findings);
  EXPECT_TRUE(findings.empty());
  // Mostly duplicated -> below threshold.
  findings.clear();
  baseline.Detect(OneColumnTable({"a", "a", "a", "b", "b", "b", "c", "c"}),
                  &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(UniqueValueRatioTest, RobustToFrequencyOutliers) {
  // One value repeated many times, the rest singletons: unique-VALUE
  // ratio stays high (9/10 distinct values are singletons) even though
  // unique-ROW ratio is low.
  std::vector<std::string> cells = {"x", "x", "x", "x", "x", "x", "x",
                                    "x", "x", "x"};
  for (int i = 0; i < 9; ++i) cells.push_back("v" + std::to_string(i));
  UniqueValueRatioBaseline uvr(0.85);
  UniqueRowRatioBaseline urr(0.85);
  std::vector<Finding> uvr_findings;
  std::vector<Finding> urr_findings;
  uvr.Detect(OneColumnTable(cells), &uvr_findings);
  urr.Detect(OneColumnTable(cells), &urr_findings);
  EXPECT_EQ(uvr_findings.size(), 1u);
  EXPECT_TRUE(urr_findings.empty());
}

Table FdTable() {
  Table table("t");
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
  for (int i = 0; i < 10; ++i) {
    lhs.push_back("k" + std::to_string(i));
    rhs.push_back("v" + std::to_string(i / 2));  // 2 lhs per rhs value
  }
  lhs[9] = "k0";  // duplicate key with conflicting value
  EXPECT_TRUE(table.AddColumn(Column("lhs", lhs)).ok());
  EXPECT_TRUE(table.AddColumn(Column("rhs", rhs)).ok());
  return table;
}

TEST(UniqueProjectionRatioTest, FlagsNearFd) {
  UniqueProjectionRatioBaseline baseline(0.8);
  std::vector<Finding> findings;
  baseline.Detect(FdTable(), &findings);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].column, 0u);
  EXPECT_EQ(findings[0].column2, 1u);
  // |pi_X| = 9 distinct lhs, |pi_XY| = 10 distinct pairs -> 0.9.
  EXPECT_NEAR(-findings[0].score, 0.9, 1e-9);
}

TEST(ConformingRowRatioTest, CountsConformingRows) {
  ConformingRowRatioBaseline baseline(0.5);
  std::vector<Finding> findings;
  baseline.Detect(FdTable(), &findings);
  ASSERT_GE(findings.size(), 1u);
  // Rows 0 and 9 (the conflicting k0 group) do not conform: 8/10.
  EXPECT_NEAR(-findings[0].score, 0.8, 1e-9);
}

TEST(ConformingPairRatioTest, QuadraticPenaltyIsMild) {
  ConformingPairRatioBaseline baseline(0.5);
  std::vector<Finding> findings;
  baseline.Detect(FdTable(), &findings);
  ASSERT_GE(findings.size(), 1u);
  // 2 conflicting ordered pairs out of 100 -> 0.98.
  EXPECT_NEAR(-findings[0].score, 0.98, 1e-9);
}

TEST(ApproximateFdTest, ExactFdNotFlagged) {
  Table table("t");
  ASSERT_TRUE(table
                  .AddColumn(Column("city", {"a", "b", "a", "b", "c", "d",
                                             "c", "d"}))
                  .ok());
  ASSERT_TRUE(table
                  .AddColumn(Column("country", {"1", "2", "1", "2", "3", "4",
                                                "3", "4"}))
                  .ok());
  UniqueProjectionRatioBaseline baseline(0.5);
  std::vector<Finding> findings;
  baseline.Detect(table, &findings);
  EXPECT_TRUE(findings.empty());  // no violating rows anywhere
}

TEST(BaselineCorpusRunTest, RanksBestFirstAcrossTables) {
  Corpus corpus;
  corpus.tables.push_back(
      OneColumnTable({"1", "2", "3", "4", "5", "6", "7", "50"}));
  corpus.tables.push_back(
      OneColumnTable({"1", "2", "3", "4", "5", "6", "7", "5000"}));
  MaxMadBaseline baseline;
  const std::vector<Finding> ranked = baseline.DetectCorpus(corpus);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].table_index, 1u);  // larger score ranks first
  EXPECT_EQ(ranked[1].table_index, 0u);
}

}  // namespace
}  // namespace unidetect
