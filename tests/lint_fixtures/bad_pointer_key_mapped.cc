// Lint fixture: pointer-key findings (expected: 3) over mapped-region
// base pointers. Not part of the build; scanned textually by
// lint_passes_test.
//
// The hazard this pins down: spans decoded zero-copy from a mapped
// snapshot (util/mmap_file.h) are identified by addresses inside the
// mapping, and mmap placement changes run to run (ASLR), so any
// container ordered or hashed on those addresses iterates in a
// different order every execution. MmapRegion deletes operator< for
// exactly this reason; key on the subset's FeatureKey or the section
// offset instead.

#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>

namespace fixture {

struct MappedDirectory {
  // pointer-key: subsets keyed by their mapped base address.
  std::map<const float*, std::size_t> subset_by_base;
  // pointer-key: ordered set of mapped section starts.
  std::set<const std::byte*> section_starts;
  // pointer-key: hashed mapping base -> reference count.
  std::unordered_map<const void*, int> region_refs;
};

}  // namespace fixture
