// Lint fixture: decoding a socket receive buffer by struct overlay —
// the shape the network front end must never take (expected:
// 2 wire-reinterpret, 1 wire-pointer-arith, 1 wire-memcpy, and one
// suppressed wire-reinterpret for the justified sockaddr ABI cast).
// Frame decoding belongs behind util/binary_io.h's bounded cursor, as
// in src/server/wire.cc. Not part of the build; scanned textually by
// lint_passes_test.

#include <cstdint>
#include <cstring>

struct sockaddr;
struct sockaddr_in {
  unsigned short sin_family;
};
int bind(int fd, const sockaddr* addr, unsigned len);

namespace fixture {

struct FrameHeader {
  char magic[4];
  uint8_t type;
  uint8_t reserved[3];
  uint32_t payload_len;
};

// Overlaying a received buffer with the header struct trusts the peer's
// bytes for alignment, endianness and length all at once.
uint32_t PayloadLen(const char* rx_buffer) {
  const FrameHeader* header = reinterpret_cast<const FrameHeader*>(rx_buffer);
  return header->payload_len;
}

// Walking the payload via a reinterpreted pointer: same problem plus
// unbounded pointer arithmetic.
uint8_t PayloadByte(const char* rx_buffer, size_t i) {
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(rx_buffer);
  return *(payload + i);
}

// memcpy out of the wire buffer without a bounds-checked cursor.
uint64_t RequestId(const char* rx_buffer) {
  uint64_t id = 0;
  std::memcpy(&id, rx_buffer, sizeof(id));
  return id;
}

// The one justified escape: sockaddr_in -> sockaddr is the BSD socket
// ABI contract, a trusted in-memory cast, not wire decoding.
int BindLoopback(int fd, sockaddr_in* addr) {
  // NOLINTNEXTLINE(unsafe-bytes)
  return bind(fd, reinterpret_cast<const sockaddr*>(addr), sizeof(*addr));
}

}  // namespace fixture
