// Lint fixture: banned-source (5) and pointer-key (2) findings.
// Not part of the build; scanned textually by lint_passes_test.

#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_set>

namespace fixture {

int UnseededNoise() {
  return std::rand();  // banned-source: rand
}

void Reseed() {
  // banned-source twice: srand and the wall-clock seed.
  std::srand(static_cast<unsigned>(std::time(nullptr)));
}

double HardwareNoise() {
  std::random_device rd;  // banned-source: random_device
  std::mt19937 gen(rd());  // banned-source: mt19937
  return static_cast<double>(gen());
}

struct ByAddress {
  std::map<const char*, int> hits;   // pointer-key: map keyed on pointer
  std::unordered_set<void*> seen;    // pointer-key: hashed pointer
};

}  // namespace fixture
