// Lint fixture: mutable-global (2) and mutable-static (1) findings.
// Not part of the build; scanned textually by lint_passes_test.

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace fixture {

int g_call_count = 0;                // mutable-global
std::vector<std::string> g_names;    // mutable-global
std::atomic<int> g_atomic_ok{0};     // synchronized: allowed
std::mutex g_mu;                     // synchronization primitive: allowed
const int kConstant = 7;             // immutable: allowed
static constexpr double kPi = 3.14;  // immutable: allowed

int NextId() {
  static int counter = 0;  // mutable-static
  return ++counter;
}

const std::string& CachedName() {
  static const std::string kName = "fixture";  // const static: allowed
  return kName;
}

}  // namespace fixture
