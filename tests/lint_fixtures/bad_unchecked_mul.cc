// Lint fixture: unchecked arithmetic on wire-derived integers
// (expected: 1 unchecked-add, 2 unchecked-mul, 1 narrowing-cast). Not
// part of the build; scanned textually by lint_passes_test.

#include <cstdint>

namespace fixture {

struct Reader {
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);
};

bool ParseTable(Reader& reader) {
  uint32_t count = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  if (!reader.ReadU32(&count) || !reader.ReadU64(&offset) ||
      !reader.ReadU64(&length)) {
    return false;
  }
  const uint64_t table_bytes = count * 24;       // wraps on crafted count
  const uint64_t end = offset + length;          // wraps on crafted pair
  const size_t n = static_cast<size_t>(length);  // truncates on 32-bit
  uint64_t copy = length;                        // taint propagates
  const uint64_t doubled = copy * 2;
  (void)table_bytes;
  (void)end;
  (void)n;
  (void)doubled;
  return true;
}

}  // namespace fixture
