// Lint fixture: known-good patterns the determinism linter must accept.
// Not part of the build; scanned textually by lint_passes_test.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::atomic<int> g_requests{0};  // synchronized: allowed
std::mutex g_mu;                 // synchronization primitive: allowed
const int kConstant = 7;         // immutable: allowed

// Unordered iteration is fine when the appended-to output is sorted
// before leaving the enclosing block.
std::vector<std::string> SortedKeys(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : counts) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Numeric accumulation over unordered iteration is not an append.
int SumValues(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}

const std::string& CachedName() {
  static const std::string kName = "fixture";  // const static: allowed
  return kName;
}

}  // namespace fixture
