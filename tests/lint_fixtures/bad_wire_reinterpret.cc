// Lint fixture: raw byte reinterpretation outside the safe-cursor
// modules (expected: 2 wire-reinterpret, 2 wire-pointer-arith,
// 1 wire-memcpy). Not part of the build; scanned textually by
// lint_passes_test.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace fixture {

// An overlay read straight off a mapped snapshot: the canonical shape
// the unsafe-bytes pass exists to reject.
float FirstFloat(std::string_view bytes) {
  const float* values = reinterpret_cast<const float*>(bytes.data());
  return values[0];
}

uint32_t WalkTable(std::string_view bytes, size_t i) {
  const uint32_t* table = reinterpret_cast<const uint32_t*>(bytes.data());
  return *(table + i);
}

uint64_t CopyOut(std::string_view bytes) {
  uint64_t value = 0;
  std::memcpy(&value, bytes.data(), sizeof(value));
  return value;
}

}  // namespace fixture
