// Lint fixture: unordered-iteration findings (expected: 3).
// Not part of the build; scanned textually by lint_passes_test.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// Range-for appending to a vector, never sorted: hash order escapes.
std::vector<int> CollectValues(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<int> out;
  for (const auto& [key, value] : counts) {
    out.push_back(value);
  }
  return out;
}

// Range-for appending to a string.
std::string SerializeKeys(const std::unordered_set<std::string>& keys) {
  std::string out;
  for (const auto& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

// Iterator-style loop over an unordered container.
int IteratorLoop(const std::unordered_map<std::string, int>& counts,
                 std::vector<int>* sink) {
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    sink->push_back(it->second);
  }
  return 0;
}

}  // namespace fixture
