// Lint fixture: the approved shape — wire-derived integers flow through
// checked helpers, and the bounds-check idioms the taint pass must keep
// unflagged (expected: no findings). Not part of the build; scanned
// textually by lint_passes_test.

#include <cstdint>
#include <string_view>

namespace fixture {

struct Reader {
  bool ReadU64(uint64_t* out);
};

uint64_t CheckedAdd64(uint64_t a, uint64_t b);
uint64_t CheckedMul64(uint64_t a, uint64_t b);

bool ParseSection(Reader& reader, std::string_view bytes) {
  uint64_t offset = 0;
  uint64_t length = 0;
  if (!reader.ReadU64(&offset) || !reader.ReadU64(&length)) return false;
  // Comparisons and subtraction stay unflagged: this is how bounds
  // checks are written, and they cannot wrap upward.
  if (offset > bytes.size() || length > bytes.size() - offset) return false;
  // Checked helpers contain no operator tokens, so routing the tainted
  // values through them passes the lint with no escapes.
  const uint64_t end = CheckedAdd64(offset, length);
  const uint64_t padded = CheckedMul64(length, 2);
  return end <= bytes.size() && padded >= length;
}

}  // namespace fixture
