// Lint fixture: NOLINT escapes (expected: 1 finding, 2 suppressed).
// Not part of the build; scanned textually by lint_passes_test.

#include <string>
#include <unordered_map>

namespace fixture {

std::string Dump(const std::unordered_map<std::string, int>& counts) {
  std::string out;
  // The consumer re-sorts these lines, so hash order never escapes.
  for (const auto& [key, value] : counts) {  // NOLINT(determinism)
    out += key;
  }
  return out;
}

int g_unsuppressed = 0;  // stays a mutable-global finding

// NOLINTNEXTLINE(determinism)
int g_suppressed_counter = 0;

}  // namespace fixture
