// Lint fixture: pointer-key findings (expected: 3) over a findings-cache
// shape. Not part of the build; scanned textually by
// lint_passes_test.
//
// The hazard this pins down: a memoization cache keyed on the address of
// the request object (the Table, a Column, or the cache's own node)
// looks correct under test — the same pointer hits — but its iteration
// and therefore its eviction order follow allocation addresses, which
// differ run to run (ASLR, allocator state). The real cache
// (serving/findings_cache.h) keys on a content fingerprint (Key128) and
// evicts in LRU list order for exactly this reason.

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Table;
struct Column;
struct Finding;

struct PointerKeyedFindingsCache {
  // pointer-key: results memoized by the request table's address.
  std::unordered_map<const Table*, std::vector<Finding>> by_table;
  // pointer-key: per-column scores keyed by column address; ordered
  // iteration walks allocation order, so eviction scans do too.
  std::map<const Column*, double> column_scores;

  struct Entry {
    std::uint64_t key;
    std::vector<Finding> findings;
  };
  std::list<Entry> lru;
  // pointer-key: index into the LRU by node address instead of by the
  // entry's content key.
  std::unordered_map<const Entry*, std::list<Entry>::iterator> index;
};

}  // namespace fixture
