#include "corpus/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "corpus/data_pools.h"
#include "metrics/metric_functions.h"

namespace unidetect {
namespace {

TEST(DataPoolsTest, PoolsNonEmptyAndConsistent) {
  EXPECT_GE(FirstNames().size(), 100u);
  EXPECT_GE(LastNames().size(), 100u);
  EXPECT_GE(Cities().size(), 80u);
  // The extended pool is large enough for the birthday-paradox regime.
  EXPECT_GE(ExtendedCities().size(), 2000u);
  for (const auto& entry : Cities()) {
    EXPECT_FALSE(entry.city.empty());
    EXPECT_FALSE(entry.country.empty());
  }
}

TEST(DataPoolsTest, RomanNumerals) {
  EXPECT_EQ(RomanNumeral(1), "I");
  EXPECT_EQ(RomanNumeral(4), "IV");
  EXPECT_EQ(RomanNumeral(9), "IX");
  EXPECT_EQ(RomanNumeral(20), "XX");
  EXPECT_EQ(RomanNumeral(21), "XXI");
  EXPECT_EQ(RomanNumeral(49), "XLIX");
  EXPECT_EQ(RomanNumeral(58), "LVIII");
}

TEST(DataPoolsTest, RareTownNameIsCloseToSource) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const CityEntry town = RareTownName(rng);
    EXPECT_FALSE(town.city.empty());
    EXPECT_FALSE(town.country.empty());
  }
}

TEST(GenerateTableTest, EveryArchetypeProducesConsistentMetadata) {
  Rng rng(11);
  for (int a = 0; a < kNumArchetypes; ++a) {
    const AnnotatedTable t =
        GenerateTable(static_cast<Archetype>(a), 25, rng);
    EXPECT_GT(t.table.num_columns(), 0u) << "archetype " << a;
    EXPECT_GT(t.table.num_rows(), 0u) << "archetype " << a;
    ASSERT_EQ(t.meta.size(), t.table.num_columns()) << "archetype " << a;
    for (const auto& meta : t.meta) {
      if (meta.fd_partner >= 0) {
        EXPECT_LT(static_cast<size_t>(meta.fd_partner),
                  t.table.num_columns());
      }
      // Synthesizable implies an FD partner to synthesize from.
      if (meta.synthesizable) {
        EXPECT_GE(meta.fd_partner, 0);
      }
    }
  }
}

TEST(GenerateTableTest, IntendedUniqueColumnsAreUnique) {
  Rng rng(13);
  for (int a = 0; a < kNumArchetypes; ++a) {
    const AnnotatedTable t =
        GenerateTable(static_cast<Archetype>(a), 40, rng);
    for (size_t c = 0; c < t.meta.size(); ++c) {
      if (!t.meta[c].intended_unique) continue;
      const Column& column = t.table.column(c);
      EXPECT_EQ(column.NumDistinct(), column.size())
          << "archetype " << a << " column " << column.name();
    }
  }
}

TEST(GenerateTableTest, FdPartnersActuallyHold) {
  Rng rng(17);
  for (int a = 0; a < kNumArchetypes; ++a) {
    const AnnotatedTable t =
        GenerateTable(static_cast<Archetype>(a), 40, rng);
    for (size_t c = 0; c < t.meta.size(); ++c) {
      if (t.meta[c].fd_partner < 0) continue;
      const Column& lhs =
          t.table.column(static_cast<size_t>(t.meta[c].fd_partner));
      const Column& rhs = t.table.column(c);
      const FrProfile profile = ComputeFrProfile(lhs, rhs);
      if (profile.valid) {
        EXPECT_DOUBLE_EQ(profile.fr, 1.0)
            << "archetype " << a << ": " << lhs.name() << " -> "
            << rhs.name();
      }
    }
  }
}

TEST(GenerateCorpusTest, Deterministic) {
  CorpusSpec spec = WebCorpusSpec(50, 99);
  const AnnotatedCorpus a = GenerateCorpus(spec);
  const AnnotatedCorpus b = GenerateCorpus(spec);
  ASSERT_EQ(a.corpus.tables.size(), b.corpus.tables.size());
  for (size_t i = 0; i < a.corpus.tables.size(); ++i) {
    ASSERT_EQ(a.corpus.tables[i].num_columns(),
              b.corpus.tables[i].num_columns());
    for (size_t c = 0; c < a.corpus.tables[i].num_columns(); ++c) {
      EXPECT_EQ(a.corpus.tables[i].column(c).cells(),
                b.corpus.tables[i].column(c).cells());
    }
  }
}

TEST(GenerateCorpusTest, SeedChangesContent) {
  const AnnotatedCorpus a = GenerateCorpus(WebCorpusSpec(20, 1));
  const AnnotatedCorpus b = GenerateCorpus(WebCorpusSpec(20, 2));
  bool any_difference = false;
  for (size_t i = 0; i < a.corpus.tables.size() && !any_difference; ++i) {
    if (a.corpus.tables[i].num_rows() != b.corpus.tables[i].num_rows() ||
        a.corpus.tables[i].name() != b.corpus.tables[i].name()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateCorpusTest, MetadataAlignedWithTables) {
  const AnnotatedCorpus corpus = GenerateCorpus(WikiCorpusSpec(100, 5));
  ASSERT_EQ(corpus.column_meta.size(), corpus.corpus.tables.size());
  for (size_t i = 0; i < corpus.corpus.tables.size(); ++i) {
    EXPECT_EQ(corpus.column_meta[i].size(),
              corpus.corpus.tables[i].num_columns());
  }
}

TEST(GenerateCorpusTest, PresetShapesFollowTable2) {
  // WEB/WIKI are short web tables; Enterprise tables are much taller.
  const CorpusStats web = GenerateCorpus(WebCorpusSpec(300, 1)).corpus.Stats();
  const CorpusStats wiki =
      GenerateCorpus(WikiCorpusSpec(300, 2)).corpus.Stats();
  const CorpusStats enterprise =
      GenerateCorpus(EnterpriseCorpusSpec(100, 3)).corpus.Stats();
  EXPECT_GT(enterprise.avg_rows_per_table, 3 * web.avg_rows_per_table);
  EXPECT_GT(enterprise.avg_rows_per_table, 3 * wiki.avg_rows_per_table);
  EXPECT_GT(web.avg_columns_per_table, 1.5);
  EXPECT_LT(web.avg_columns_per_table, 8.0);
}

TEST(GenerateCorpusTest, RowsWithinSpecBounds) {
  CorpusSpec spec = WebCorpusSpec(200, 4);
  const AnnotatedCorpus corpus = GenerateCorpus(spec);
  for (const auto& table : corpus.corpus.tables) {
    // Some archetypes (chemicals, contestants) cap rows by pool size.
    EXPECT_LE(table.num_rows(), spec.rows.max_rows);
    EXPECT_GE(table.num_rows(), 1u);
  }
}

}  // namespace
}  // namespace unidetect
