// DetectionService::ApplyDelta: chain-hash validation, atomic layer
// swaps, findings-cache self-invalidation across delta application, and
// the ApplyDelta-while-DetectBatch race. The tsan preset runs this
// suite (ApplyDelta is in the CMakePresets.json tsan test filter).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include <unistd.h>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "learn/trainer.h"
#include "model_format/model_snapshot.h"
#include "offline/delta_build.h"
#include "serving/detection_service.h"
#include "util/logging.h"

namespace unidetect {
namespace {

// One on-disk chain shared by the whole suite: a base snapshot trained
// over corpus A and two deltas trained over corpora B and C, built
// through the real delta builder.
struct Chain {
  std::string base_path;
  std::string delta1_path;
  std::string delta2_path;
};

const Chain& SharedChain() {
  static const Chain* chain = [] {
    SetLogLevel(LogLevel::kWarning);
    auto* c = new Chain();
    // ctest runs each case as its own process, concurrently — the
    // fixture directory must be per-process or parallel cases clobber
    // each other's artifacts mid-build.
    const std::string dir = testing::TempDir() + "/apply_delta_chain." +
                            std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    c->base_path = dir + "/base.udsnap";
    c->delta1_path = dir + "/delta1.udsnap";
    c->delta2_path = dir + "/delta2.udsnap";

    Trainer trainer;
    const Model base =
        trainer.Train(GenerateCorpus(WebCorpusSpec(300, 8101)).corpus);
    UNIDETECT_CHECK(base.Save(c->base_path).ok());

    const std::string shard1 = dir + "/shard1";
    const std::string shard2 = dir + "/shard2";
    UNIDETECT_CHECK(SaveCorpusToDirectory(
              GenerateCorpus(WebCorpusSpec(60, 8102)).corpus, shard1)
              .ok());
    UNIDETECT_CHECK(SaveCorpusToDirectory(
              GenerateCorpus(WebCorpusSpec(60, 8103)).corpus, shard2)
              .ok());

    DeltaBuildSpec spec1;
    spec1.base_path = c->base_path;
    spec1.input_dirs = {shard1};
    spec1.out_path = c->delta1_path;
    UNIDETECT_CHECK(BuildDeltaSnapshot(spec1).ok());

    DeltaBuildSpec spec2;
    spec2.base_path = c->base_path;
    spec2.parent_path = c->delta1_path;
    spec2.input_dirs = {shard2};
    spec2.out_path = c->delta2_path;
    UNIDETECT_CHECK(BuildDeltaSnapshot(spec2).ok());
    return c;
  }();
  return *chain;
}

std::string AllFindingsJson(const DetectionService::BatchResult& result) {
  std::string out;
  for (const auto& findings : result.per_table) {
    out += FindingsToJson(findings);
    out += '\n';
  }
  return out;
}

UniDetectOptions LooseOptions() {
  UniDetectOptions options;
  options.alpha = 1.0;
  return options;
}

TEST(ApplyDeltaTest, StacksLayersAndMatchesMergedFold) {
  const Chain& chain = SharedChain();
  auto service = DetectionService::Create(chain.base_path, LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  EXPECT_EQ((*service)->generation(), 1u);

  ASSERT_TRUE((*service)->ApplyDelta(chain.delta1_path).ok());
  ASSERT_TRUE((*service)->ApplyDelta(chain.delta2_path).ok());
  EXPECT_EQ((*service)->generation(), 3u);
  {
    const ServiceStats stats = (*service)->Stats();
    EXPECT_EQ(stats.applied_deltas, 2u);
    EXPECT_EQ(stats.delta_layers, 2u);
    EXPECT_GT(stats.delta_resident_bytes, 0u);
    EXPECT_EQ(stats.compactions, 0u);
  }
  const DetectionService::LayerSet layers = (*service)->Layers();
  ASSERT_EQ(layers.paths.size(), 3u);
  EXPECT_EQ(layers.paths[0], chain.base_path);
  EXPECT_EQ(layers.paths[2], chain.delta2_path);

  // Keystone, through the serving surface: the layered response is
  // byte-identical to a service over the Model::Merge fold of the same
  // three artifacts, serial and parallel.
  auto base = LoadModelFromFile(chain.base_path, SnapshotValidation::kFull);
  ASSERT_TRUE(base.ok());
  Model merged(base->options());
  merged.Merge(*base);
  for (const std::string& path : {chain.delta1_path, chain.delta2_path}) {
    auto delta = LoadModelFromFile(path, SnapshotValidation::kFull);
    ASSERT_TRUE(delta.ok());
    merged.Merge(*delta);
  }
  merged.Finalize();
  DetectionService folded(std::make_shared<const Model>(std::move(merged)),
                          LooseOptions());
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(25, 8110));
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    EXPECT_EQ(AllFindingsJson(
                  (*service)->DetectBatch(test.corpus.tables, nullptr,
                                          threads)),
              AllFindingsJson(folded.DetectBatch(test.corpus.tables, nullptr,
                                                 threads)))
        << threads << " thread(s)";
  }
}

TEST(ApplyDeltaTest, RefusesBrokenChains) {
  const Chain& chain = SharedChain();
  auto service = DetectionService::Create(chain.base_path, LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  // Out of order: delta2 expects delta1 below it.
  EXPECT_TRUE(
      (*service)->ApplyDelta(chain.delta2_path).IsInvalidArgument());
  // A base is not a delta.
  EXPECT_TRUE((*service)->ApplyDelta(chain.base_path).IsInvalidArgument());
  // Correct order works...
  ASSERT_TRUE((*service)->ApplyDelta(chain.delta1_path).ok());
  // ...and double-apply is rejected (parent is now delta1, not base).
  EXPECT_TRUE(
      (*service)->ApplyDelta(chain.delta1_path).IsInvalidArgument());
  // A delta is not a base: full Reload refuses it.
  const Status reload = (*service)->Reload(chain.delta1_path);
  EXPECT_TRUE(reload.IsInvalidArgument());
  EXPECT_EQ((*service)->generation(), 2u);

  // Wrong chain entirely: a delta built against a different base.
  const std::string other_dir = testing::TempDir() + "/apply_delta_other." +
                                std::to_string(::getpid());
  std::filesystem::create_directories(other_dir);
  const std::string other_base = other_dir + "/base.udsnap";
  Trainer trainer;
  const Model other =
      trainer.Train(GenerateCorpus(WebCorpusSpec(60, 8120)).corpus);
  ASSERT_TRUE(other.Save(other_base).ok());
  const std::string shard = other_dir + "/shard";
  ASSERT_TRUE(SaveCorpusToDirectory(
                  GenerateCorpus(WebCorpusSpec(20, 8121)).corpus, shard)
                  .ok());
  DeltaBuildSpec spec;
  spec.base_path = other_base;
  spec.input_dirs = {shard};
  spec.out_path = other_dir + "/delta.udsnap";
  ASSERT_TRUE(BuildDeltaSnapshot(spec).ok());
  EXPECT_TRUE((*service)->ApplyDelta(spec.out_path).IsInvalidArgument());
}

TEST(ApplyDeltaTest, InMemoryBaseAcceptsNoDeltas) {
  const Chain& chain = SharedChain();
  Trainer trainer;
  auto model = std::make_shared<const Model>(
      trainer.Train(GenerateCorpus(WebCorpusSpec(60, 8130)).corpus));
  DetectionService service(model, LooseOptions());
  EXPECT_TRUE(service.ApplyDelta(chain.delta1_path).IsInvalidArgument());
}

TEST(ApplyDeltaTest, CacheSelfInvalidatesAcrossDelta) {
  const Chain& chain = SharedChain();
  auto service = DetectionService::Create(chain.base_path, LooseOptions(),
                                          /*findings_cache_bytes=*/8 << 20);
  ASSERT_TRUE(service.ok()) << service.status();
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(10, 8140));

  // Warm the cache, prove it hits.
  (void)(*service)->DetectBatch(test.corpus.tables);
  (void)(*service)->DetectBatch(test.corpus.tables);
  {
    const ServiceStats stats = (*service)->Stats();
    EXPECT_EQ(stats.cache_hits, test.corpus.tables.size());
    EXPECT_EQ(stats.cache_misses, test.corpus.tables.size());
  }

  // The delta lands: keys embed the generation, so the warm batch must
  // miss (stale entries linger until evicted but can never be served).
  ASSERT_TRUE((*service)->ApplyDelta(chain.delta1_path).ok());
  const auto after = (*service)->DetectBatch(test.corpus.tables);
  {
    const ServiceStats stats = (*service)->Stats();
    EXPECT_EQ(stats.cache_hits, test.corpus.tables.size());
    EXPECT_EQ(stats.cache_misses, 2 * test.corpus.tables.size());
  }
  // Re-warmed: the new generation's entries hit again, identically.
  const auto rewarmed = (*service)->DetectBatch(test.corpus.tables);
  EXPECT_EQ(AllFindingsJson(after), AllFindingsJson(rewarmed));
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.cache_hits, 2 * test.corpus.tables.size());
}

TEST(ApplyDeltaTest, ReloadIfGenerationIsCompareAndSwap) {
  const Chain& chain = SharedChain();
  auto service = DetectionService::Create(chain.base_path, LooseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE((*service)->ApplyDelta(chain.delta1_path).ok());
  const uint64_t captured = (*service)->generation();

  // The chain moves after capture...
  ASSERT_TRUE((*service)->ApplyDelta(chain.delta2_path).ok());
  // ...so the conditional swap must refuse, leaving layers intact.
  const Status stale =
      (*service)->ReloadIfGeneration(chain.base_path, captured);
  EXPECT_TRUE(stale.IsAlreadyExists());
  EXPECT_EQ((*service)->Layers().ids.size(), 3u);
  {
    const ServiceStats stats = (*service)->Stats();
    EXPECT_EQ(stats.failed_reloads, 0u);  // a lost race is not a failure
    EXPECT_EQ(stats.compactions, 0u);
  }

  // With the right generation it swaps, and retiring two delta layers
  // counts as a compaction.
  ASSERT_TRUE(
      (*service)
          ->ReloadIfGeneration(chain.base_path, (*service)->generation())
          .ok());
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.delta_layers, 0u);
}

// The race the layered design must survive: deltas keep landing while
// batches stream on other threads. Each batch pins one engine, so every
// response equals the response of whichever layer chain served it.
TEST(ApplyDeltaTest, ApplyDeltaRacesDetectBatchSafely) {
  const Chain& chain = SharedChain();
  auto created = DetectionService::Create(chain.base_path, LooseOptions());
  ASSERT_TRUE(created.ok()) << created.status();
  DetectionService& service = **created;
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(6, 8150));

  // Pre-compute the only three possible responses (gen 1, 2, 3).
  std::vector<std::string> valid;
  valid.push_back(AllFindingsJson(service.DetectBatch(test.corpus.tables)));
  {
    auto probe = DetectionService::Create(chain.base_path, LooseOptions());
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE((*probe)->ApplyDelta(chain.delta1_path).ok());
    valid.push_back(
        AllFindingsJson((*probe)->DetectBatch(test.corpus.tables)));
    ASSERT_TRUE((*probe)->ApplyDelta(chain.delta2_path).ok());
    valid.push_back(
        AllFindingsJson((*probe)->DetectBatch(test.corpus.tables)));
  }

  std::thread applier([&] {
    ASSERT_TRUE(service.ApplyDelta(chain.delta1_path).ok());
    ASSERT_TRUE(service.ApplyDelta(chain.delta2_path).ok());
  });
  std::vector<std::thread> clients;
  // One flag per client; vector<bool> would bit-pack the flags into a
  // shared word and the concurrent writes would themselves be a race.
  std::array<std::atomic<bool>, 3> all_valid{};
  for (size_t c = 0; c < all_valid.size(); ++c) {
    clients.emplace_back([&, c] {
      bool ok = true;
      for (int i = 0; i < 6; ++i) {
        const std::string got = AllFindingsJson(service.DetectBatch(
            test.corpus.tables, nullptr, /*num_threads=*/2));
        bool matched = false;
        for (const std::string& expected : valid) {
          matched |= got == expected;
        }
        ok &= matched;
      }
      all_valid[c] = ok;
    });
  }
  applier.join();
  for (auto& client : clients) client.join();
  for (size_t c = 0; c < all_valid.size(); ++c) {
    EXPECT_TRUE(all_valid[c]) << "client " << c;
  }
  EXPECT_EQ(service.Stats().delta_layers, 2u);
}

}  // namespace
}  // namespace unidetect
