#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace unidetect {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const size_t n = 1000;
  std::vector<std::atomic<int>> touched(n);
  ParallelFor(pool, n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelForTest, ShardsAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> ranges(4, {0, 0});
  ParallelFor(pool, 10, [&](size_t shard, size_t begin, size_t end) {
    ranges[shard] = {begin, end};
  });
  // 10 over 4 threads: chunk = 3 -> shards [0,3) [3,6) [6,9) [9,10).
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{3, 6}));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{6, 9}));
  EXPECT_EQ(ranges[3], (std::pair<size_t, size_t>{9, 10}));
}

TEST(ParallelForTest, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  ParallelFor(pool, 2, [&](size_t, size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [&](size_t, size_t, size_t) { FAIL(); });
}

}  // namespace
}  // namespace unidetect
