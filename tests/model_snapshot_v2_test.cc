// UDSNAP v2 flat-layout tests: v1/v2 equivalence, the zero-copy mmap
// read path (ModelView / Model::Load), deferred validation semantics,
// the small-subset no-tree rule, and loader robustness against corrupt
// files read through the mapped path. The asan/ubsan presets run this
// file; the tsan preset filter includes both suite names.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "detect/unidetect.h"
#include "learn/model.h"
#include "learn/trainer.h"
#include "model_format/model_snapshot.h"
#include "model_format/model_view.h"
#include "model_format/snapshot_v2.h"
#include "util/binary_io.h"
#include "util/random.h"
#include "util/status.h"

namespace unidetect {
namespace {

// A hand-built model exercising every v2 section, with per-subset sizes
// straddling kTreeMinSize so both the tree and the linear-scan paths
// serialize. Tied pre values keep the re-sort hazard in play.
Model BuildModel(size_t observations_per_subset) {
  ModelOptions options;
  options.min_support = 1;
  Model model(options);
  Rng rng(61);
  for (uint64_t subset = 0; subset < 6; ++subset) {
    const FeatureKey key{subset * 17 + 3};
    for (size_t i = 0; i + 3 < observations_per_subset; ++i) {
      const double pre = rng.Uniform(0.0, 10.0);
      model.AddObservation(key, pre, rng.Uniform(0.0, pre));
    }
    model.AddObservation(key, 5.0, 1.0);
    model.AddObservation(key, 5.0, 2.0);
    model.AddObservation(key, 5.0, 3.0);
  }
  const AnnotatedCorpus corpus = GenerateCorpus(WebCorpusSpec(20, 67));
  for (const auto& table : corpus.corpus.tables) {
    model.mutable_token_index()->AddTable(table);
    model.mutable_pattern_index()->AddTable(table);
  }
  model.Finalize();
  return model;
}

const Model& LargeModel() {
  static const Model* const model = new Model(BuildModel(200));
  return *model;
}

// One section-table row of an encoded snapshot, located by id.
struct Section {
  bool found = false;
  size_t table_pos = 0;  // byte offset of this entry in the table
  uint64_t offset = 0;
  uint64_t length = 0;
};

Section FindSection(const std::string& bytes, SnapshotSection id) {
  Section out;
  BinaryReader reader(bytes);
  std::string_view magic;
  uint32_t version = 0;
  uint32_t count = 0;
  EXPECT_TRUE(reader.ReadBytes(8, &magic) && reader.ReadU32(&version) &&
              reader.ReadU32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t entry_id = 0;
    uint32_t crc = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    EXPECT_TRUE(reader.ReadU32(&entry_id) && reader.ReadU32(&crc) &&
                reader.ReadU64(&offset) && reader.ReadU64(&length));
    if (entry_id == static_cast<uint32_t>(id)) {
      out.found = true;
      out.table_pos = 16 + i * 24;
      out.offset = offset;
      out.length = length;
      return out;
    }
  }
  return out;
}

void ExpectIdenticalQueries(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_subsets(), b.num_subsets());
  ASSERT_EQ(a.num_observations(), b.num_observations());
  EXPECT_EQ(a.token_index().num_tokens(), b.token_index().num_tokens());
  EXPECT_EQ(a.pattern_index().num_columns(), b.pattern_index().num_columns());
  Rng probe(73);
  for (int i = 0; i < 300; ++i) {
    const FeatureKey key{static_cast<uint64_t>(probe.UniformInt(0, 7)) * 17 +
                         3};
    const double theta1 = probe.Uniform(0.0, 10.0);
    const double theta2 = probe.Uniform(0.0, theta1);
    EXPECT_DOUBLE_EQ(
        a.LikelihoodRatio(ErrorClass::kOutlier, key, theta1, theta2),
        b.LikelihoodRatio(ErrorClass::kOutlier, key, theta1, theta2));
    EXPECT_DOUBLE_EQ(
        a.LikelihoodRatio(ErrorClass::kSpelling, key, theta2, theta1),
        b.LikelihoodRatio(ErrorClass::kSpelling, key, theta2, theta1));
  }
}

TEST(SnapshotV2Test, DefaultWriterEmitsVersionTwo) {
  const std::string v2 = EncodeModelSnapshot(LargeModel());
  const std::string v1 = EncodeModelSnapshotV1(LargeModel());
  EXPECT_TRUE(LooksLikeModelSnapshot(v2));
  EXPECT_TRUE(LooksLikeModelSnapshot(v1));
  EXPECT_EQ(SnapshotVersionOf(v2), 2u);
  EXPECT_EQ(SnapshotVersionOf(v1), 1u);
  // The flat layout carries the v2 sections and none of the v1 inline
  // payloads (the shared options section excepted).
  EXPECT_TRUE(FindSection(v2, SnapshotSection::kOptions).found);
  EXPECT_TRUE(FindSection(v2, SnapshotSection::kStringPool).found);
  EXPECT_TRUE(FindSection(v2, SnapshotSection::kSubsetIndex).found);
  EXPECT_TRUE(FindSection(v2, SnapshotSection::kObservations).found);
  EXPECT_TRUE(FindSection(v2, SnapshotSection::kTreeLevels).found);
  EXPECT_FALSE(FindSection(v2, SnapshotSection::kSubsets).found);
  EXPECT_FALSE(FindSection(v2, SnapshotSection::kTokenIndex).found);
}

TEST(SnapshotV2Test, SectionOffsetsAre64ByteAligned) {
  const std::string bytes = EncodeModelSnapshot(LargeModel());
  for (const SnapshotSection id :
       {SnapshotSection::kOptions, SnapshotSection::kStringPool,
        SnapshotSection::kSubsetIndex, SnapshotSection::kObservations,
        SnapshotSection::kTreeLevels, SnapshotSection::kTokenIndex2,
        SnapshotSection::kPatternIndex2}) {
    const Section section = FindSection(bytes, id);
    ASSERT_TRUE(section.found);
    EXPECT_EQ(section.offset % 64, 0u)
        << "section " << static_cast<uint32_t>(id);
  }
}

TEST(SnapshotV2Test, V1AndV2DecodeEquivalently) {
  auto from_v1 = DecodeModelSnapshot(EncodeModelSnapshotV1(LargeModel()));
  auto from_v2 = DecodeModelSnapshot(EncodeModelSnapshot(LargeModel()));
  ASSERT_TRUE(from_v1.ok()) << from_v1.status();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status();
  ExpectIdenticalQueries(*from_v1, *from_v2);
  ExpectIdenticalQueries(LargeModel(), *from_v2);
}

TEST(SnapshotV2Test, V1AndV2ProduceIdenticalFindings) {
  Trainer trainer;
  const Model trained =
      trainer.Train(GenerateCorpus(WebCorpusSpec(150, 79)).corpus);
  auto from_v1 = DecodeModelSnapshot(EncodeModelSnapshotV1(trained));
  auto from_v2 = DecodeModelSnapshot(EncodeModelSnapshot(trained));
  ASSERT_TRUE(from_v1.ok()) << from_v1.status();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status();

  UniDetectOptions options;
  options.alpha = 1.0;
  const UniDetect detect_v1(&*from_v1, options);
  const UniDetect detect_v2(&*from_v2, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(25, 83));
  for (const auto& table : test.corpus.tables) {
    EXPECT_EQ(FindingsToJson(detect_v1.DetectTable(table)),
              FindingsToJson(detect_v2.DetectTable(table)))
        << "table " << table.name();
  }
}

TEST(SnapshotV2Test, MappedLoadIsZeroCopyAndResaveIsBitIdentical) {
  const std::string path_a = testing::TempDir() + "/v2_mmap_a.model";
  const std::string path_b = testing::TempDir() + "/v2_mmap_b.model";
  ASSERT_TRUE(LargeModel().Save(path_a).ok());

  auto loaded = Model::Load(path_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto bytes_a = ReadFileToString(path_a);
  ASSERT_TRUE(bytes_a.ok());
  // The loaded model borrows from the mapping: subset storage owns no
  // heap bytes and the whole file is accounted as mapped.
  EXPECT_EQ(loaded->mapped_bytes(), bytes_a->size());
  const SubsetStats* stats = loaded->FindSubset(FeatureKey{3});
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->borrowed());
  EXPECT_EQ(stats->OwnedBytes(), 0u);

  ExpectIdenticalQueries(LargeModel(), *loaded);

  ASSERT_TRUE(loaded->Save(path_b).ok());
  auto bytes_b = ReadFileToString(path_b);
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_TRUE(*bytes_a == *bytes_b);
}

TEST(SnapshotV2Test, SmallSubsetsCarryNoTree) {
  // Every subset below kTreeMinSize: the writer emits no tree section at
  // all and neither decode path allocates or borrows tree storage.
  const Model small = BuildModel(SubsetStats::kTreeMinSize / 2);
  const std::string bytes = EncodeModelSnapshot(small);
  EXPECT_TRUE(FindSection(bytes, SnapshotSection::kObservations).found);
  EXPECT_FALSE(FindSection(bytes, SnapshotSection::kTreeLevels).found);

  auto decoded = DecodeModelSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const std::string path = testing::TempDir() + "/v2_small.model";
  ASSERT_TRUE(small.Save(path).ok());
  auto mapped = Model::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  for (const Model* m : {&*decoded, &*mapped}) {
    const SubsetStats* stats = m->FindSubset(FeatureKey{3});
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->tree_levels(), 0u);
    EXPECT_TRUE(stats->tree_data().empty());
    // The tree-free path still answers exactly like the reference scan.
    for (double theta1 : {1.0, 4.0, 5.0, 9.0}) {
      EXPECT_EQ(stats->CountSurprising(
                    SurpriseDirection::kHigherMoreSurprising, theta1, 2.0),
                stats->CountSurprisingLinear(
                    SurpriseDirection::kHigherMoreSurprising, theta1, 2.0));
    }
  }
  ExpectIdenticalQueries(small, *mapped);
}

TEST(SnapshotV2Test, LargeSubsetsLoadSerializedTreeVerbatim) {
  const std::string path = testing::TempDir() + "/v2_tree.model";
  ASSERT_TRUE(LargeModel().Save(path).ok());
  auto mapped = Model::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  const SubsetStats* original = LargeModel().FindSubset(FeatureKey{3});
  const SubsetStats* loaded = mapped->FindSubset(FeatureKey{3});
  ASSERT_NE(original, nullptr);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->tree_levels(),
            SubsetStats::TreeLevelsFor(loaded->size()));
  ASSERT_EQ(loaded->tree_data().size(), original->tree_data().size());
  for (size_t i = 0; i < original->tree_data().size(); ++i) {
    ASSERT_EQ(loaded->tree_data()[i], original->tree_data()[i]) << i;
  }
}

TEST(SnapshotV2Test, F16EncodingEmitsHalfSectionsAtHalfTheBulkBytes) {
  const std::string f32 = EncodeModelSnapshot(LargeModel());
  const std::string f16 =
      EncodeModelSnapshotV2(LargeModel(), ObservationEncoding::kF16);
  // The f16 variant swaps the bulk sections for their binary16 twins and
  // carries exactly half the observation payload bytes.
  EXPECT_FALSE(FindSection(f16, SnapshotSection::kObservations).found);
  EXPECT_FALSE(FindSection(f16, SnapshotSection::kTreeLevels).found);
  const Section obs16 = FindSection(f16, SnapshotSection::kObservationsF16);
  const Section tree16 = FindSection(f16, SnapshotSection::kTreeLevelsF16);
  ASSERT_TRUE(obs16.found);
  ASSERT_TRUE(tree16.found);
  EXPECT_EQ(obs16.length * 2,
            FindSection(f32, SnapshotSection::kObservations).length);
  EXPECT_EQ(tree16.length * 2,
            FindSection(f32, SnapshotSection::kTreeLevels).length);
  EXPECT_LT(f16.size(), f32.size());
}

TEST(SnapshotV2Test, F16DecodeMatchesDequantizedF32Queries) {
  const std::string f16 =
      EncodeModelSnapshotV2(LargeModel(), ObservationEncoding::kF16);
  auto half = DecodeModelSnapshot(f16);
  ASSERT_TRUE(half.ok()) << half.status();
  const SubsetStats* stats = half->FindSubset(FeatureKey{3});
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->half());

  // --f32 dequantization: the widened model answers every query exactly
  // like the half store (widening binary16 -> f32 is exact).
  const std::string widened =
      EncodeModelSnapshotV2(*half, ObservationEncoding::kF32);
  ASSERT_TRUE(FindSection(widened, SnapshotSection::kObservations).found);
  auto wide = DecodeModelSnapshot(widened);
  ASSERT_TRUE(wide.ok()) << wide.status();
  const SubsetStats* wide_stats = wide->FindSubset(FeatureKey{3});
  ASSERT_NE(wide_stats, nullptr);
  EXPECT_FALSE(wide_stats->half());
  ExpectIdenticalQueries(*half, *wide);
}

TEST(SnapshotV2Test, F16MappedLoadIsZeroCopyAndResaveIsBitIdentical) {
  const std::string path_a = testing::TempDir() + "/v2_f16_a.model";
  const std::string path_b = testing::TempDir() + "/v2_f16_b.model";
  const std::string f16 =
      EncodeModelSnapshotV2(LargeModel(), ObservationEncoding::kF16);
  ASSERT_TRUE(WriteStringToFile(path_a, f16).ok());

  auto mapped = Model::Load(path_a);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->mapped_bytes(), f16.size());
  const SubsetStats* stats = mapped->FindSubset(FeatureKey{3});
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->half());
  EXPECT_TRUE(stats->borrowed());
  EXPECT_EQ(stats->OwnedBytes(), 0u);

  // Borrowed (mapped) and owned decodes answer identically.
  auto owned = DecodeModelSnapshot(f16);
  ASSERT_TRUE(owned.ok()) << owned.status();
  ExpectIdenticalQueries(*owned, *mapped);

  // kPreserve keeps the half storage: save -> load -> save is
  // bit-identical, the same canonical-packing promise the f32 path has.
  ASSERT_TRUE(mapped->Save(path_b).ok());
  auto bytes_b = ReadFileToString(path_b);
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_TRUE(f16 == *bytes_b);
}

TEST(SnapshotV2Test, F16MissingTreeSectionFailsLoudly) {
  // Strip the f16 tree section id to an unknown one: the subset index
  // still promises tree floats, so the parse must fail rather than skip.
  std::string f16 =
      EncodeModelSnapshotV2(LargeModel(), ObservationEncoding::kF16);
  const Section tree16 = FindSection(f16, SnapshotSection::kTreeLevelsF16);
  ASSERT_TRUE(tree16.found);
  const uint32_t unknown_id = 13;
  f16[tree16.table_pos] = static_cast<char>(unknown_id);
  auto decoded = DecodeModelSnapshot(f16);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotV2Test, EmptyModelAndEmptyPoolRoundTrip) {
  // No observations, no tokens, no patterns: the bulk sections are
  // absent, the pool holds zero strings, and the file still round-trips
  // bit-identically through both decode paths.
  Model empty;
  empty.Finalize();
  const std::string bytes = EncodeModelSnapshot(empty);
  EXPECT_FALSE(FindSection(bytes, SnapshotSection::kObservations).found);
  EXPECT_FALSE(FindSection(bytes, SnapshotSection::kTreeLevels).found);

  auto decoded = DecodeModelSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_subsets(), 0u);
  EXPECT_TRUE(EncodeModelSnapshot(*decoded) == bytes);

  const std::string path = testing::TempDir() + "/v2_empty.model";
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  auto mapped = Model::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->num_subsets(), 0u);
  EXPECT_EQ(mapped->mapped_bytes(), bytes.size());
}

TEST(SnapshotV2Test, DeferredValidationSkipsOnlyBulkPayloads) {
  const std::string pristine = EncodeModelSnapshot(LargeModel());

  // A flip inside the serialized tree levels: full validation catches it
  // via the section CRC; deferred validation (the serving reload path)
  // deliberately does not read those bytes.
  const Section tree = FindSection(pristine, SnapshotSection::kTreeLevels);
  ASSERT_TRUE(tree.found);
  std::string tree_flip = pristine;
  tree_flip[static_cast<size_t>(tree.offset) + tree.length / 2] ^= 0x01;
  auto full = DecodeModelSnapshot(tree_flip, SnapshotValidation::kFull);
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.status().IsCorruption()) << full.status();
  auto deferred =
      DecodeModelSnapshot(tree_flip, SnapshotValidation::kDeferPayload);
  EXPECT_TRUE(deferred.ok()) << deferred.status();

  // A flip in the subset index is metadata: both modes must reject it.
  const Section index = FindSection(pristine, SnapshotSection::kSubsetIndex);
  ASSERT_TRUE(index.found);
  std::string index_flip = pristine;
  index_flip[static_cast<size_t>(index.offset) + index.length - 1] ^= 0x01;
  for (const SnapshotValidation mode :
       {SnapshotValidation::kFull, SnapshotValidation::kDeferPayload}) {
    auto decoded = DecodeModelSnapshot(index_flip, mode);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
  }
}

TEST(SnapshotV2Test, MisalignedSectionOffsetIsCorruption) {
  const std::string pristine = EncodeModelSnapshot(LargeModel());
  const Section pool = FindSection(pristine, SnapshotSection::kStringPool);
  ASSERT_TRUE(pool.found);
  {
    // Offset knocked off the 64-byte grid.
    std::string mutated = pristine;
    std::string patched;
    AppendU64(&patched, pool.offset + 8);
    mutated.replace(pool.table_pos + 8, 8, patched);
    auto decoded = DecodeModelSnapshot(mutated);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
  }
  {
    // Aligned but not canonically packed (points at the previous slot).
    std::string mutated = pristine;
    std::string patched;
    AppendU64(&patched, pool.offset - 64);
    mutated.replace(pool.table_pos + 8, 8, patched);
    auto decoded = DecodeModelSnapshot(mutated);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
  }
}

TEST(SnapshotV2Test, OverflowingSectionExtentIsCorruption) {
  // A crafted (offset, length) pair near 2^64: the sum wraps to a small
  // value, so a naive `offset + length <= size` bounds compare passes
  // and the decoder hands out a span far past the mapped region. The
  // extent must be computed overflow-checked and rejected as typed
  // Corruption before any bounds compare.
  const std::string pristine = EncodeModelSnapshot(LargeModel());
  const Section pool = FindSection(pristine, SnapshotSection::kStringPool);
  ASSERT_TRUE(pool.found);
  const uint64_t hostile_offsets[] = {0xFFFFFFFFFFFFFFF0ull,
                                      0x8000000000000000ull};
  for (const uint64_t offset : hostile_offsets) {
    std::string mutated = pristine;
    std::string patched;
    AppendU64(&patched, offset);
    AppendU64(&patched, 0x40);  // offset + length wraps past 2^64
    mutated.replace(pool.table_pos + 8, 16, patched);
    auto decoded = DecodeModelSnapshot(mutated);
    ASSERT_FALSE(decoded.ok()) << "offset " << offset << " decoded";
    EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
  }
}

TEST(SnapshotV2Test, HugeSectionCountIsCorruptionNotBadAlloc) {
  // section_count drives an entries.reserve(); a 2^32-1 count must be
  // rejected against the actual file size before the allocation, not
  // after a multi-GB std::bad_alloc.
  std::string mutated = EncodeModelSnapshot(LargeModel());
  std::string patched;
  AppendU32(&patched, 0xFFFFFFFFu);
  mutated.replace(kSnapshotMagic.size() + 4, 4, patched);
  auto decoded = DecodeModelSnapshot(mutated);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(SnapshotV2Test, CorruptFilesFailTypedThroughTheMmapLoader) {
  // The robustness sweeps above run in memory; this one drives the real
  // serving path — Model::Load over a mapped file — and must come back
  // as a typed error for every corruption, never a crash (asan/ubsan
  // presets run this test over the actual mmap'd reads).
  const std::string pristine = EncodeModelSnapshot(LargeModel());
  const std::string path = testing::TempDir() + "/v2_corrupt.model";

  std::vector<size_t> lengths = {0, 8, 15, 16, 40, 64, pristine.size() - 1};
  for (size_t len = 128; len < pristine.size(); len += pristine.size() / 7) {
    lengths.push_back(len);
  }
  for (const size_t len : lengths) {
    ASSERT_TRUE(WriteStringToFile(path, pristine.substr(0, len)).ok());
    auto loaded = Model::Load(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
    EXPECT_TRUE(loaded.status().IsCorruption())
        << "prefix " << len << ": " << loaded.status();
  }

  for (size_t pos = 0; pos < pristine.size();
       pos += 1 + pristine.size() / 64) {
    std::string mutated = pristine;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
    auto loaded = Model::Load(path);
    ASSERT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " loaded";
    EXPECT_TRUE(loaded.status().IsCorruption() ||
                loaded.status().IsNotImplemented())
        << "byte " << pos << ": " << loaded.status();
  }
}

TEST(SnapshotV2Test, FutureVersionFailsThroughTheMmapLoader) {
  std::string bytes = EncodeModelSnapshot(LargeModel());
  std::string patched;
  AppendU32(&patched, kSnapshotVersion + 1);
  bytes.replace(kSnapshotMagic.size(), 4, patched);
  const std::string path = testing::TempDir() + "/v2_future.model";
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  auto loaded = Model::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotImplemented()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("newer"), std::string::npos);
}

// ---------------------------------------------------------------------
// ModelView: the serving-side read handle.

TEST(ModelViewTest, OpenV2DefaultsToZeroCopy) {
  const std::string path = testing::TempDir() + "/view_v2.model";
  ASSERT_TRUE(LargeModel().Save(path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());

  auto view = ModelView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_TRUE(view->zero_copy());
  EXPECT_EQ(view->mapped_bytes(), bytes->size());
  // Borrowed subset storage keeps the private heap footprint to the
  // index vector, far below the mapped observation payload.
  EXPECT_LT(view->resident_bytes(), view->mapped_bytes());
  ExpectIdenticalQueries(LargeModel(), view->model());
}

TEST(ModelViewTest, OpenV1AndLegacyTextDecodeIntoOwnedStorage) {
  const std::string v1_path = testing::TempDir() + "/view_v1.model";
  const std::string text_path = testing::TempDir() + "/view_text.model";
  ASSERT_TRUE(
      WriteStringToFile(v1_path, EncodeModelSnapshotV1(LargeModel())).ok());
  ASSERT_TRUE(WriteStringToFile(text_path, LargeModel().Serialize()).ok());
  for (const std::string& path : {v1_path, text_path}) {
    auto view = ModelView::Open(path);
    ASSERT_TRUE(view.ok()) << path << ": " << view.status();
    EXPECT_FALSE(view->zero_copy()) << path;
    EXPECT_EQ(view->mapped_bytes(), 0u) << path;
    ExpectIdenticalQueries(LargeModel(), view->model());
  }
}

TEST(ModelViewTest, OpenMissingFileFails) {
  auto view = ModelView::Open(testing::TempDir() + "/no_such.model");
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsIOError()) << view.status();
}

TEST(ModelViewTest, FullValidationCatchesWhatDeferredDefers) {
  const std::string pristine = EncodeModelSnapshot(LargeModel());
  const Section obs = FindSection(pristine, SnapshotSection::kObservations);
  ASSERT_TRUE(obs.found);
  std::string mutated = pristine;
  // Flip a byte in the posts half of the last subset's observations:
  // invisible to deferred structural checks, caught by the full CRC.
  mutated[static_cast<size_t>(obs.offset) + obs.length - 1] ^= 0x01;
  const std::string path = testing::TempDir() + "/view_flip.model";
  ASSERT_TRUE(WriteStringToFile(path, mutated).ok());

  auto deferred = ModelView::Open(path);
  EXPECT_TRUE(deferred.ok()) << deferred.status();
  auto full = ModelView::Open(path, SnapshotValidation::kFull);
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.status().IsCorruption()) << full.status();
}

}  // namespace
}  // namespace unidetect
