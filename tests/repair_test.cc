#include "repair/repair.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

// A model whose token index knows "dowling" is prevalent and "doeling"
// is not; no metric observations needed for repair logic.
const Model& RepairModel() {
  static const Model* model = [] {
    auto* m = new Model(ModelOptions{});
    for (int i = 0; i < 50; ++i) {
      Table table("t");
      EXPECT_TRUE(
          table.AddColumn(Column("c", {"Kevin Dowling", "Chicago"})).ok());
      m->mutable_token_index()->AddTable(table);
    }
    m->Finalize();
    return m;
  }();
  return *model;
}

Finding MakeFinding(ErrorClass cls, size_t column, std::vector<size_t> rows,
                    size_t column2 = Finding::kNoColumn) {
  Finding finding;
  finding.error_class = cls;
  finding.column = column;
  finding.column2 = column2;
  finding.rows = std::move(rows);
  return finding;
}

TEST(RepairTest, SpellingPrefersPrevalentForm) {
  Table table("cast");
  ASSERT_TRUE(table
                  .AddColumn(Column("Name", {"Kevin Doeling", "Kevin Dowling",
                                             "Alan Myerson"}))
                  .ok());
  Repairer repairer(&RepairModel());
  const auto suggestions = repairer.Suggest(
      table, MakeFinding(ErrorClass::kSpelling, 0, {0, 1}));
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].action, RepairAction::kReplace);
  EXPECT_EQ(suggestions[0].row, 0u);
  EXPECT_EQ(suggestions[0].current, "Kevin Doeling");
  EXPECT_EQ(suggestions[0].suggested, "Kevin Dowling");
}

TEST(RepairTest, OutlierScaleSlipUndone) {
  Table table("m");
  ASSERT_TRUE(table
                  .AddColumn(Column("Reading", {"2.497", "2815", "2641",
                                                "2702", "2588", "2776"}))
                  .ok());
  Repairer repairer(&RepairModel());
  const auto suggestions =
      repairer.Suggest(table, MakeFinding(ErrorClass::kOutlier, 0, {0}));
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].suggested, "2497");
}

TEST(RepairTest, OutlierWithNoPlausibleScaleFixIsSilent) {
  Table table("m");
  ASSERT_TRUE(table
                  .AddColumn(Column("Reading", {"123456", "2815", "2641",
                                                "2702", "2588", "2776"}))
                  .ok());
  Repairer repairer(&RepairModel());
  // 123456 / 1000 = 123.5 and /100 = 1234.6: both still far outside the
  // ~2700 cluster.
  EXPECT_TRUE(
      repairer.Suggest(table, MakeFinding(ErrorClass::kOutlier, 0, {0}))
          .empty());
}

TEST(RepairTest, UniquenessSuggestsRemoval) {
  Table table("ids");
  ASSERT_TRUE(
      table.AddColumn(Column("Id", {"A1", "B2", "A1", "C3"})).ok());
  Repairer repairer(&RepairModel());
  const auto suggestions = repairer.Suggest(
      table, MakeFinding(ErrorClass::kUniqueness, 0, {2}));
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].action, RepairAction::kRemoveRow);
  EXPECT_EQ(suggestions[0].row, 2u);
}

TEST(RepairTest, FdMajorityRepair) {
  Table table("cities");
  ASSERT_TRUE(table
                  .AddColumn(Column("City", {"London", "London", "London",
                                             "Paris", "Paris", "Berlin",
                                             "Berlin", "Rome"}))
                  .ok());
  ASSERT_TRUE(table
                  .AddColumn(Column("Country", {"UK", "UK", "England",
                                                "France", "France", "Germany",
                                                "Germany", "Italy"}))
                  .ok());
  Repairer repairer(&RepairModel());
  const auto suggestions =
      repairer.Suggest(table, MakeFinding(ErrorClass::kFd, 0, {2}, 1));
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].column, 1u);
  EXPECT_EQ(suggestions[0].current, "England");
  EXPECT_EQ(suggestions[0].suggested, "UK");
}

TEST(RepairTest, FdSynthesisExactRepair) {
  // Figure 13: the program reconstructs "Route 738" for shield "738".
  Table table("routes");
  std::vector<std::string> shields;
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    shields.push_back(std::to_string(730 + i));
    names.push_back("Route " + std::to_string(730 + i));
  }
  names[3] = "Route 999";  // corrupted dependent cell
  ASSERT_TRUE(table.AddColumn(Column("Shield", shields)).ok());
  ASSERT_TRUE(table.AddColumn(Column("Name", names)).ok());
  Repairer repairer(&RepairModel());
  const auto suggestions =
      repairer.Suggest(table, MakeFinding(ErrorClass::kFd, 0, {3}, 1));
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].suggested, "Route 733");
  EXPECT_NE(suggestions[0].rationale.find("programmatic"),
            std::string::npos);
}

TEST(RepairTest, PatternFindingsHaveNoAutomaticFix) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column("d", {"2001-01-01", "2001-Jan-01"})).ok());
  Repairer repairer(&RepairModel());
  EXPECT_TRUE(
      repairer.Suggest(table, MakeFinding(ErrorClass::kPattern, 0, {1}))
          .empty());
}

}  // namespace
}  // namespace unidetect
