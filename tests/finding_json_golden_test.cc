// Pins the Finding JSON wire format byte for byte against
// tests/golden/findings.json. The key order documented in
// finding_json.h is a contract with downstream consumers; a diff here
// means that contract changed and the golden file (and every consumer)
// must be updated deliberately.

#include "detect/finding_json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/binary_io.h"

namespace unidetect {
namespace {

std::vector<Finding> GoldenFindings() {
  std::vector<Finding> findings;
  {
    Finding f;
    f.error_class = ErrorClass::kOutlier;
    f.table_index = 3;
    f.table_name = "sales \"2024\"";
    f.column = 1;
    f.rows = {7};
    f.value = "8.716";
    f.score = 0.0003;
    f.explanation = "max-MAD 8.1 -> 3.5, LR=0.0003";
    findings.push_back(f);
  }
  {
    Finding f;
    f.error_class = ErrorClass::kFd;
    f.table_index = 0;
    f.table_name = "cities";
    f.column = 2;
    f.column2 = 4;
    f.rows = {5, 9};
    f.value = "Portland";
    f.score = 0.0125;
    f.explanation = "FD city -> state broken";
    findings.push_back(f);
  }
  {
    Finding f;
    f.error_class = ErrorClass::kSpelling;
    f.table_index = 12;
    f.table_name = "roster";
    f.column = 0;
    f.rows = {2, 11};
    f.value = "Doeling";
    f.score = 0.00041;
    f.explanation = "closest pair \"Doeling\"/\"Dowling\"";
    findings.push_back(f);
  }
  {
    // Default-constructed edge case: empty rows, empty strings, LR 1.
    Finding f;
    f.error_class = ErrorClass::kUniqueness;
    f.table_index = 12;
    f.table_name = "roster";
    findings.push_back(f);
  }
  return findings;
}

TEST(FindingJsonGoldenTest, MatchesGoldenFile) {
  auto golden =
      ReadFileToString(std::string(UNIDETECT_GOLDEN_DIR) + "/findings.json");
  ASSERT_TRUE(golden.ok()) << golden.status();
  std::string expected = std::move(golden).ValueOrDie();
  // Tolerate a trailing newline in the checked-in file; nothing else.
  while (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(FindingsToJson(GoldenFindings()), expected);
}

}  // namespace
}  // namespace unidetect
