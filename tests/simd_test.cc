// Property tests for the portable SIMD kernels (util/simd.h): the
// dispatched implementation must be BIT-identical to the scalar
// reference on every input — random data plus the adversarial corners
// (NaN/Inf/denormal values, odd lengths, unaligned tails) — with the
// vector path forced on and off via SetSimdEnabled().

#include "util/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace unidetect {
namespace simd {
namespace {

// Restores the detected dispatch level when a test scope ends.
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) { SetSimdEnabled(enabled); }
  ~ScopedSimd() { SetSimdEnabled(true); }
};

bool SameBitsF64(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

// The interesting lengths: empty, sub-lane, exact lane multiples, and
// one-off-a-lane tails for both 4-wide and 8-wide kernels.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                           15, 16, 17, 31, 32, 33, 63, 64, 65, 257};

std::vector<float> RandomFloats(Rng& rng, size_t n, bool adversarial) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.Normal(0.0, 100.0));
    if (!adversarial) continue;
    switch (rng.NextBounded(8)) {
      case 0:
        v[i] = std::numeric_limits<float>::quiet_NaN();
        break;
      case 1:
        v[i] = std::numeric_limits<float>::infinity();
        break;
      case 2:
        v[i] = -std::numeric_limits<float>::infinity();
        break;
      case 3:
        v[i] = std::numeric_limits<float>::denorm_min() *
               static_cast<float>(rng.NextBounded(5));
        break;
      default:
        break;
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Counting kernels.

TEST(SimdCountTest, MatchesScalarOnRandomAndAdversarialInputs) {
  Rng rng(0xC0047);
  const float thetas[] = {0.0f, 1.5f, -273.0f,
                          std::numeric_limits<float>::infinity(),
                          std::numeric_limits<float>::quiet_NaN()};
  for (bool adversarial : {false, true}) {
    for (size_t n : kLengths) {
      std::vector<float> v = RandomFloats(rng, n, adversarial);
      for (float theta : thetas) {
        const uint64_t le = CountLessEqualF32Scalar(v.data(), n, theta);
        const uint64_t ge = CountGreaterEqualF32Scalar(v.data(), n, theta);
        ScopedSimd on(true);
        EXPECT_EQ(CountLessEqualF32(v.data(), n, theta), le) << n;
        EXPECT_EQ(CountGreaterEqualF32(v.data(), n, theta), ge) << n;
        SetSimdEnabled(false);
        EXPECT_EQ(CountLessEqualF32(v.data(), n, theta), le) << n;
        EXPECT_EQ(CountGreaterEqualF32(v.data(), n, theta), ge) << n;
      }
    }
  }
}

TEST(SimdCountTest, UnalignedTailPointers) {
  Rng rng(0xA1167ED);
  // Slice at every offset into an aligned buffer: the kernels take raw
  // pointers, so the vector loads must be unaligned-safe.
  std::vector<float> buffer = RandomFloats(rng, 96, /*adversarial=*/true);
  for (size_t offset = 0; offset < 9; ++offset) {
    for (size_t n : {size_t{7}, size_t{8}, size_t{33}, size_t{80}}) {
      const float* base = buffer.data() + offset;
      ScopedSimd on(true);
      EXPECT_EQ(CountLessEqualF32(base, n, 10.0f),
                CountLessEqualF32Scalar(base, n, 10.0f));
      EXPECT_EQ(CountGreaterEqualF32(base, n, -10.0f),
                CountGreaterEqualF32Scalar(base, n, -10.0f));
    }
  }
}

TEST(SimdCountTest, F16MatchesScalarAndWidenedF32) {
  Rng rng(0xF16);
  for (size_t n : kLengths) {
    std::vector<uint16_t> halves(n);
    std::vector<float> widened(n);
    for (size_t i = 0; i < n; ++i) {
      halves[i] = static_cast<uint16_t>(rng.NextBounded(65536));
      widened[i] = HalfToFloat(halves[i]);
    }
    for (float theta : {0.0f, 3.25f, -1e4f}) {
      const uint64_t le = CountLessEqualF16Scalar(halves.data(), n, theta);
      const uint64_t ge = CountGreaterEqualF16Scalar(halves.data(), n, theta);
      // The scalar f16 kernel must agree with the f32 kernel over the
      // exactly-widened values (widening preserves order and NaN-ness).
      EXPECT_EQ(le, CountLessEqualF32Scalar(widened.data(), n, theta));
      EXPECT_EQ(ge, CountGreaterEqualF32Scalar(widened.data(), n, theta));
      ScopedSimd on(true);
      EXPECT_EQ(CountLessEqualF16(halves.data(), n, theta), le) << n;
      EXPECT_EQ(CountGreaterEqualF16(halves.data(), n, theta), ge) << n;
      SetSimdEnabled(false);
      EXPECT_EQ(CountLessEqualF16(halves.data(), n, theta), le) << n;
      EXPECT_EQ(CountGreaterEqualF16(halves.data(), n, theta), ge) << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispersion argmax kernel.

std::vector<double> RandomDoubles(Rng& rng, size_t n, bool adversarial) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng.Normal(50.0, 10.0);
    if (!adversarial) continue;
    switch (rng.NextBounded(10)) {
      case 0:
        v[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        v[i] = std::numeric_limits<double>::infinity();
        break;
      case 2:
        v[i] = -std::numeric_limits<double>::infinity();
        break;
      case 3:
        v[i] = std::numeric_limits<double>::denorm_min();
        break;
      case 4:
        // Force exact ties: duplicated magnitudes around the center.
        v[i] = (i % 2 == 0) ? 40.0 : 60.0;
        break;
      default:
        break;
    }
  }
  return v;
}

void ExpectArgMaxMatches(const std::vector<double>& v, double center,
                         double denom) {
  const ArgMaxResult want =
      ArgMaxAbsDeviationScalar(v.data(), v.size(), center, denom);
  for (bool enabled : {true, false}) {
    ScopedSimd scoped(enabled);
    const ArgMaxResult got =
        ArgMaxAbsDeviation(v.data(), v.size(), center, denom);
    EXPECT_EQ(got.index, want.index) << "n=" << v.size();
    EXPECT_TRUE(SameBitsF64(got.score, want.score))
        << "n=" << v.size() << " got=" << got.score
        << " want=" << want.score;
  }
}

TEST(SimdArgMaxTest, MatchesScalarOnRandomAndAdversarialInputs) {
  Rng rng(0xA26);
  for (bool adversarial : {false, true}) {
    for (size_t n : kLengths) {
      if (n == 0) continue;  // kernel requires n >= 1
      std::vector<double> v = RandomDoubles(rng, n, adversarial);
      ExpectArgMaxMatches(v, 50.0, 7.5);
      ExpectArgMaxMatches(v, 0.0, 1.0);
      // Degenerate denominators route to the scalar path internally but
      // must still agree with the reference bit for bit.
      ExpectArgMaxMatches(v, 50.0, 0.0);
      ExpectArgMaxMatches(v, 50.0, -3.0);
      ExpectArgMaxMatches(v, 50.0,
                          std::numeric_limits<double>::quiet_NaN());
    }
  }
}

TEST(SimdArgMaxTest, NanSeedAndTieBreakCorners) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN at index 0 wins outright: no later comparison against it succeeds.
  ExpectArgMaxMatches({nan, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}, 0.0,
                      1.0);
  // Later NaNs are never selected.
  ExpectArgMaxMatches({1.0, nan, 2.0, nan, 3.0, nan, 2.0, 1.0, nan}, 0.0,
                      1.0);
  // Exact ties across lane boundaries: smallest index must win.
  ExpectArgMaxMatches({5.0, -5.0, 5.0, -5.0, 5.0, -5.0, 5.0, -5.0, 5.0},
                      0.0, 1.0);
  // The maximum in the scalar tail only wins by strict improvement.
  ExpectArgMaxMatches({9.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 9.0}, 0.0,
                      1.0);
}

// ---------------------------------------------------------------------------
// MPD prefilter kernel.

TEST(SimdMpdPrefilterTest, MatchesScalarOnRandomInputs) {
  Rng rng(0x3DD);
  for (size_t count : {size_t{0}, size_t{1}, size_t{5}, size_t{8},
                       size_t{13}, size_t{16}, size_t{37}, size_t{64}}) {
    for (int trial = 0; trial < 50; ++trial) {
      const int32_t len_a = static_cast<int32_t>(rng.NextBounded(40));
      const uint64_t sig_a = rng.Next() & rng.Next();  // sparse-ish classes
      std::vector<int32_t> lengths(count);
      std::vector<uint64_t> sigs(count);
      for (size_t i = 0; i < count; ++i) {
        lengths[i] = len_a + static_cast<int32_t>(rng.NextBounded(8));
        sigs[i] = rng.Next() & rng.Next();
      }
      const int32_t bound = static_cast<int32_t>(rng.NextBounded(6));
      const uint64_t want = MpdPrefilterMaskScalar(
          lengths.data(), sigs.data(), count, len_a, sig_a, bound);
      for (bool enabled : {true, false}) {
        ScopedSimd scoped(enabled);
        EXPECT_EQ(MpdPrefilterMask(lengths.data(), sigs.data(), count, len_a,
                                   sig_a, bound),
                  want)
            << "count=" << count << " bound=" << bound;
      }
    }
  }
}

TEST(SimdMpdPrefilterTest, BoundaryBounds) {
  // All-ones signatures and extreme bounds: mask must be all-pass /
  // all-fail in lockstep with the scalar gates.
  std::vector<int32_t> lengths = {3, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<uint64_t> sigs(lengths.size(), ~uint64_t{0});
  for (int32_t bound : {0, 1, 64, 1 << 20}) {
    const uint64_t want = MpdPrefilterMaskScalar(
        lengths.data(), sigs.data(), lengths.size(), 3, 0, bound);
    ScopedSimd on(true);
    EXPECT_EQ(MpdPrefilterMask(lengths.data(), sigs.data(), lengths.size(), 3,
                               0, bound),
              want);
  }
}

// ---------------------------------------------------------------------------
// binary16 conversions.

TEST(SimdHalfTest, RoundTripIsIdentityForEveryNonNanPattern) {
  for (uint32_t bits = 0; bits < 65536; ++bits) {
    const uint16_t half = static_cast<uint16_t>(bits);
    const float widened = HalfToFloat(half);
    if (std::isnan(widened)) {
      // NaN payloads canonicalize; the result must still be a NaN half.
      const uint16_t back = FloatToHalf(widened);
      EXPECT_TRUE((back & 0x7c00) == 0x7c00 && (back & 0x03ff) != 0)
          << std::hex << bits;
      continue;
    }
    EXPECT_EQ(FloatToHalf(widened), half) << std::hex << bits;
  }
}

TEST(SimdHalfTest, WideningIsExactAtKnownPoints) {
  EXPECT_EQ(HalfToFloat(0x0000), 0.0f);
  EXPECT_TRUE(std::signbit(HalfToFloat(0x8000)));
  EXPECT_EQ(HalfToFloat(0x3C00), 1.0f);
  EXPECT_EQ(HalfToFloat(0xC000), -2.0f);
  EXPECT_EQ(HalfToFloat(0x7BFF), 65504.0f);          // largest finite
  EXPECT_EQ(HalfToFloat(0x0400), 0x1p-14f);          // smallest normal
  EXPECT_EQ(HalfToFloat(0x0001), 0x1p-24f);          // smallest subnormal
  EXPECT_EQ(HalfToFloat(0x03FF), 0x1.FF8p-15f);      // largest subnormal
  EXPECT_EQ(HalfToFloat(0x7C00), std::numeric_limits<float>::infinity());
  EXPECT_EQ(HalfToFloat(0xFC00), -std::numeric_limits<float>::infinity());
}

TEST(SimdHalfTest, NarrowingRoundsToNearestEvenAndSaturates) {
  // Exactly halfway between 1.0 (mantissa 0, even) and 1.0 + 2^-10.
  EXPECT_EQ(FloatToHalf(1.0f + 0x1p-11f), 0x3C00);
  // Just above halfway rounds up.
  EXPECT_EQ(FloatToHalf(1.0f + 0x1p-11f + 0x1p-20f), 0x3C01);
  // Halfway between consecutive odd/even mantissas rounds to even (up).
  EXPECT_EQ(FloatToHalf(HalfToFloat(0x3C01) + 0x1p-11f), 0x3C02);
  // Below the subnormal midpoint flushes to zero; above it rounds up.
  EXPECT_EQ(FloatToHalf(0x1p-25f), 0x0000);
  EXPECT_EQ(FloatToHalf(0x1p-25f + 0x1p-40f), 0x0001);
  // Saturation: 65520 is the f16 overflow threshold under RNE.
  EXPECT_EQ(FloatToHalf(65519.0f), 0x7BFF);
  EXPECT_EQ(FloatToHalf(65520.0f), 0x7C00);
  EXPECT_EQ(FloatToHalf(-65520.0f), 0xFC00);
  EXPECT_EQ(FloatToHalf(std::numeric_limits<float>::max()), 0x7C00);
}

TEST(SimdHalfTest, NarrowingIsMonotone) {
  // Monotonicity is what lets the f16 encoder quantize sorted arrays
  // and merge-sort trees in place: order never inverts. Sweep an
  // ascending grid spanning subnormals through saturation.
  uint16_t prev = FloatToHalf(-std::numeric_limits<float>::infinity());
  for (int step = -2048; step <= 2048; ++step) {
    const float value = static_cast<float>(step) * 33.3f;
    const uint16_t half = FloatToHalf(value);
    // Compare as signed magnitudes: flip the sign bit encoding.
    auto ordered = [](uint16_t h) {
      return (h & 0x8000) ? (0x8000 - (h & 0x7fff)) : (0x8000 + h);
    };
    EXPECT_GE(ordered(half), ordered(prev)) << value;
    prev = half;
  }
}

TEST(SimdDispatchTest, LevelNameAndToggle) {
  // The initial level may already be kScalar (UNIDETECT_DISABLE_SIMD is
  // applied at first use); SetSimdEnabled overrides in both directions
  // and always lands back on the same detected hardware level.
  EXPECT_NE(SimdLevelName(ActiveSimdLevel()), nullptr);
  SetSimdEnabled(true);
  const SimdLevel hardware = ActiveSimdLevel();
  EXPECT_NE(SimdLevelName(hardware), nullptr);
  SetSimdEnabled(false);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  SetSimdEnabled(true);
  EXPECT_EQ(ActiveSimdLevel(), hardware);
}

}  // namespace
}  // namespace simd
}  // namespace unidetect
