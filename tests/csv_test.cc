#include "util/csv.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

TEST(CsvParseTest, HeaderAndRows) {
  auto result = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(result->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, NoHeaderOption) {
  CsvOptions options;
  options.has_header = false;
  auto result = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->header.empty());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST(CsvParseTest, QuotedFields) {
  auto result = ParseCsv("name,notes\n\"Keane, Mr. Andrew\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "Keane, Mr. Andrew");
  EXPECT_EQ(result->rows[0][1], "said \"hi\"");
}

TEST(CsvParseTest, EmbeddedNewlineInQuotes) {
  auto result = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto result = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST(CsvParseTest, TrimsUnquotedOnly) {
  auto result = ParseCsv("a,b\n  x  ,\"  y  \"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], "x");
  EXPECT_EQ(result->rows[0][1], "  y  ");
}

TEST(CsvParseTest, MissingFinalNewline) {
  auto result = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST(CsvParseTest, UnterminatedQuoteIsCorruption) {
  auto result = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(CsvParseTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto result = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST(CsvWriteTest, RoundTrip) {
  CsvData data;
  data.header = {"name", "note"};
  data.rows = {{"Keane, Mr. Andrew", "said \"hi\""}, {"plain", "multi\nline"}};
  const std::string text = WriteCsv(data);
  auto reparsed = ParseCsv(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, data.header);
  // Quoted fields keep interior whitespace exactly.
  CsvOptions no_trim;
  no_trim.trim_fields = false;
  auto exact = ParseCsv(text, no_trim);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->rows, data.rows);
}

TEST(CsvFileTest, ReadMissingFileFails) {
  auto result = ReadCsvFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(CsvFileTest, WriteThenRead) {
  const std::string path = testing::TempDir() + "/unidetect_csv_test.csv";
  CsvData data;
  data.header = {"x"};
  data.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(WriteCsvFile(path, data).ok());
  auto result = ReadCsvFile(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

}  // namespace
}  // namespace unidetect
