#include "learn/candidates.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

ModelOptions TestOptions() {
  ModelOptions options;
  options.min_column_rows = 4;
  return options;
}

TEST(OutlierCandidateTest, FindsTheExtremeValue) {
  Column col("c", {"10", "11", "12", "10.5", "11.5", "9000"});
  const OutlierCandidate cand = ExtractOutlierCandidate(col, TestOptions());
  ASSERT_TRUE(cand.valid);
  EXPECT_EQ(cand.row, 5u);
  EXPECT_EQ(cand.cell, "9000");
  EXPECT_DOUBLE_EQ(cand.value, 9000.0);
  EXPECT_GT(cand.theta1, cand.theta2);  // removal cleans the column
}

TEST(OutlierCandidateTest, RejectsNonNumericAndTiny) {
  EXPECT_FALSE(
      ExtractOutlierCandidate(Column("c", {"a", "b", "c", "d", "e"}),
                              TestOptions())
          .valid);
  EXPECT_FALSE(
      ExtractOutlierCandidate(Column("c", {"1", "2"}), TestOptions()).valid);
  // Mostly-text columns with a few numbers are not outlier targets.
  EXPECT_FALSE(ExtractOutlierCandidate(
                   Column("c", {"1", "2", "x", "y", "z", "w"}), TestOptions())
                   .valid);
}

TEST(SpellingCandidateTest, ThetasComeFromProfile) {
  Column col("c", {"Chicago", "Chicagoo", "Boston", "Denver", "Seattle"});
  const SpellingCandidate cand = ExtractSpellingCandidate(col, TestOptions());
  ASSERT_TRUE(cand.valid);
  EXPECT_DOUBLE_EQ(cand.theta1, 1.0);
  EXPECT_GT(cand.theta2, cand.theta1);
}

TEST(UniquenessCandidateTest, EpsilonCapsTheDrop) {
  ModelOptions options = TestOptions();
  options.epsilon.min_rows = 1;
  options.epsilon.fraction = 0.0;
  // Three duplicate rows but epsilon = 1: only one may be dropped, and
  // theta2 is the partially-cleaned UR.
  Column col("c", {"a", "a", "a", "b", "c", "d"});
  TokenIndex index;
  const UniquenessCandidate cand =
      ExtractUniquenessCandidate(col, 0, index, options);
  ASSERT_TRUE(cand.valid);
  EXPECT_EQ(cand.dropped_rows.size(), 1u);
  EXPECT_DOUBLE_EQ(cand.theta1, 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(cand.theta2, 4.0 / 5.0);
}

TEST(UniquenessCandidateTest, FullDropReachesOne) {
  ModelOptions options = TestOptions();
  Column col("c", {"a", "a", "b", "c", "d", "e"});
  TokenIndex index;
  const UniquenessCandidate cand =
      ExtractUniquenessCandidate(col, 0, index, options);
  ASSERT_TRUE(cand.valid);
  EXPECT_DOUBLE_EQ(cand.theta2, 1.0);
}

TEST(FdCandidateTest, ViolatingRowsDropped) {
  ModelOptions options = TestOptions();
  Column lhs("k", {"a", "a", "b", "b", "c", "d"});
  Column rhs("v", {"1", "2", "3", "3", "4", "5"});
  const FdCandidate cand =
      ExtractFdCandidate(lhs, rhs, TokenIndex(), options);
  ASSERT_TRUE(cand.valid);
  EXPECT_EQ(cand.violating_groups, 1u);
  EXPECT_EQ(cand.dropped_rows.size(), 1u);
  EXPECT_LT(cand.theta1, 1.0);
  EXPECT_DOUBLE_EQ(cand.theta2, 1.0);
}

TEST(FdCandidateTest, CleanPairHasNoDrops) {
  ModelOptions options = TestOptions();
  Column lhs("k", {"a", "a", "b", "b"});
  Column rhs("v", {"1", "1", "2", "2"});
  const FdCandidate cand =
      ExtractFdCandidate(lhs, rhs, TokenIndex(), options);
  ASSERT_TRUE(cand.valid);
  EXPECT_TRUE(cand.dropped_rows.empty());
  EXPECT_DOUBLE_EQ(cand.theta1, 1.0);
}

TEST(CandidateKeysTest, MatchDirectFeaturization) {
  // The extraction layer must produce exactly the keys the featurizers
  // produce — train/serve consistency.
  ModelOptions options = TestOptions();
  Column col("c", {"10", "11", "12", "13", "900"});
  const OutlierCandidate cand = ExtractOutlierCandidate(col, options);
  ASSERT_TRUE(cand.valid);
  EXPECT_TRUE(cand.key == OutlierFeatures(col, options.featurize));
}

}  // namespace
}  // namespace unidetect
