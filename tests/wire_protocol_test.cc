// UDWIRE v1 protocol tests (server/wire.h): encode/decode round trips
// preserve every byte, and the decoders uphold the untrusted-bytes
// contract — truncated, oversized, or garbage frames produce typed
// errors (never a crash, never an unbounded allocation). The mutation
// sweep in tests/snapshot_fuzz_smoke_test.cc replays the same decoders
// under a seeded corruption menu; these tests pin the specific shapes.

#include "server/wire.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/http.h"
#include "table/table.h"
#include "util/string_util.h"

namespace unidetect {
namespace wire {
namespace {

Table MakeTable(const std::string& name, size_t rows) {
  Table table(name);
  std::vector<std::string> ids, values;
  for (size_t i = 0; i < rows; ++i) {
    ids.push_back(std::to_string(i));
    values.push_back("v" + std::to_string(i * 7 % 13));
  }
  EXPECT_TRUE(table.AddColumn(Column("id", ids)).ok());
  EXPECT_TRUE(table.AddColumn(Column("value", values)).ok());
  return table;
}

DetectRequest MakeRequest() {
  DetectRequest request;
  request.request_id = 0xABCDEF0123456789ull;
  request.deadline_ms = 250;
  request.options.has_override = true;
  request.options.alpha = 0.01;
  request.options.fdr_q = 0.05;
  request.options.detect_mask = 0x1F;
  request.options.use_dictionary = true;
  request.tables.push_back(MakeTable("alpha", 5));
  request.tables.push_back(MakeTable("beta", 3));
  return request;
}

// A complete encoded frame, parsed back to its payload view.
std::string_view PayloadOf(const std::string& frame) {
  auto parsed = TryParseFrame(frame, kAbsoluteMaxPayload);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->has_value());
  return (*parsed)->payload;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(WireProtocolTest, RequestRoundTripIsCellExact) {
  const DetectRequest request = MakeRequest();
  const std::string frame = EncodeDetectRequest(request);
  auto decoded = DecodeDetectRequestPayload(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_TRUE(decoded->options.has_override);
  EXPECT_EQ(decoded->options.alpha, request.options.alpha);
  EXPECT_EQ(decoded->options.fdr_q, request.options.fdr_q);
  EXPECT_EQ(decoded->options.detect_mask, request.options.detect_mask);
  EXPECT_EQ(decoded->options.use_dictionary, request.options.use_dictionary);

  // Cell-exact: the wire carries length-prefixed strings, not a CSV
  // re-serialization, so every byte of every cell survives.
  ASSERT_EQ(decoded->tables.size(), request.tables.size());
  for (size_t t = 0; t < request.tables.size(); ++t) {
    const Table& in = request.tables[t];
    const Table& out = decoded->tables[t];
    EXPECT_EQ(out.name(), in.name());
    ASSERT_EQ(out.num_columns(), in.num_columns());
    for (size_t c = 0; c < in.num_columns(); ++c) {
      EXPECT_EQ(out.column(c).name(), in.column(c).name());
      EXPECT_EQ(out.column(c).cells(), in.column(c).cells());
    }
  }
}

TEST(WireProtocolTest, HostileCellBytesSurviveRoundTrip) {
  Table table("hostile");
  ASSERT_TRUE(
      table
          .AddColumn(Column("c", {std::string("a\0b", 3), "comma,quote\"",
                                  "\r\n", std::string(1000, 'x')}))
          .ok());
  DetectRequest request;
  request.request_id = 1;
  request.tables.push_back(table);
  auto decoded =
      DecodeDetectRequestPayload(PayloadOf(EncodeDetectRequest(request)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tables[0].column(0).cells(), table.column(0).cells());
}

TEST(WireProtocolTest, OkResponseRoundTrip) {
  Finding finding;
  finding.error_class = ErrorClass::kSpelling;
  finding.table_name = "alpha";
  finding.table_index = 1;
  finding.column = 2;
  finding.rows = {3, 9};
  finding.value = "Mississippi|Missisippi";
  finding.score = 0.00042;
  finding.explanation = "edit distance 1 at length 11";
  std::vector<std::vector<Finding>> per_table = {{finding}, {}};

  const std::string frame = EncodeOkResponseFrame(7, 42, per_table);
  auto decoded = DecodeDetectResponsePayload(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->code, WireCode::kOk);
  EXPECT_EQ(decoded->generation, 42u);
  ASSERT_EQ(decoded->per_table.size(), 2u);
  ASSERT_EQ(decoded->per_table[0].size(), 1u);
  EXPECT_TRUE(decoded->per_table[1].empty());
  const Finding& out = decoded->per_table[0][0];
  EXPECT_EQ(out.error_class, finding.error_class);
  EXPECT_EQ(out.table_name, finding.table_name);
  EXPECT_EQ(out.table_index, finding.table_index);
  EXPECT_EQ(out.column, finding.column);
  EXPECT_EQ(out.column2, finding.column2);
  EXPECT_EQ(out.rows, finding.rows);
  EXPECT_EQ(out.value, finding.value);
  EXPECT_EQ(out.score, finding.score);
  EXPECT_EQ(out.explanation, finding.explanation);
}

TEST(WireProtocolTest, ErrorResponseRoundTrip) {
  const std::string frame = EncodeErrorResponseFrame(
      9, WireCode::kOverloaded, "admission queue full");
  auto decoded = DecodeDetectResponsePayload(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 9u);
  EXPECT_EQ(decoded->code, WireCode::kOverloaded);
  EXPECT_EQ(decoded->error, "admission queue full");
  EXPECT_TRUE(decoded->per_table.empty());
}

// ---------------------------------------------------------------------------
// Incremental framing

TEST(WireProtocolTest, PartialFramesAskForMoreBytes) {
  const std::string frame = EncodeDetectRequest(MakeRequest());
  // Every proper prefix — including a partial header — is "need more",
  // not an error.
  for (const size_t cut : {size_t{0}, size_t{1}, size_t{3},
                           kHeaderBytes - 1, kHeaderBytes,
                           frame.size() - 1}) {
    auto parsed = TryParseFrame(std::string_view(frame).substr(0, cut),
                                kAbsoluteMaxPayload);
    ASSERT_TRUE(parsed.ok()) << "prefix of " << cut << " bytes";
    EXPECT_FALSE(parsed->has_value()) << "prefix of " << cut << " bytes";
  }
  auto whole = TryParseFrame(frame, kAbsoluteMaxPayload);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(whole->has_value());
  EXPECT_EQ((*whole)->frame_bytes, frame.size());
}

TEST(WireProtocolTest, NonUdwirePrefixIsInvalidArgument) {
  // The protocol-sniff contract: bytes that can never extend the magic
  // come back InvalidArgument, which the server uses to fall through to
  // the HTTP adapter.
  auto parsed = TryParseFrame("GET /healthz HTTP/1.1\r\n", 1024);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(WireProtocolTest, OversizedPayloadRejectedWithoutAllocation) {
  // A hostile length just under 4 GiB must be refused from the header
  // alone — before any buffering or allocation.
  std::string header = "UDW1";
  header.push_back('\x01');            // type: detect request
  header.append(3, '\0');              // reserved
  header.append("\xff\xff\xff\xfe");   // u32 payload length
  auto parsed = TryParseFrame(header, /*max_payload=*/1u << 20);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(WireProtocolTest, UnknownFrameTypeAndReservedBytesRejected) {
  std::string frame = EncodeDetectRequest(MakeRequest());
  std::string bad_type = frame;
  bad_type[4] = '\x09';
  EXPECT_FALSE(TryParseFrame(bad_type, kAbsoluteMaxPayload).ok());

  std::string bad_reserved = frame;
  bad_reserved[6] = '\x01';
  EXPECT_FALSE(TryParseFrame(bad_reserved, kAbsoluteMaxPayload).ok());
}

// ---------------------------------------------------------------------------
// Hostile payloads: typed errors, never crashes

TEST(WireProtocolTest, TruncatedPayloadsAreTypedErrors) {
  const std::string frame = EncodeDetectRequest(MakeRequest());
  const std::string_view payload = PayloadOf(frame);
  // Chop the payload at every length: each truncation must decode to a
  // typed error (the frame said N bytes; fewer cannot satisfy it).
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeDetectRequestPayload(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "truncated at " << cut;
  }
}

TEST(WireProtocolTest, TrailingGarbageIsRejected) {
  const std::string frame = EncodeDetectRequest(MakeRequest());
  std::string padded(PayloadOf(frame));
  padded.append("junk");
  auto decoded = DecodeDetectRequestPayload(padded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(WireProtocolTest, HostileTableCountRejectedByBounds) {
  // request_id + deadline + flags + a table count far beyond what the
  // remaining bytes could encode: the count guard must fire before any
  // reserve/allocate.
  std::string payload;
  payload.append(8, '\0');             // request_id
  payload.append(4, '\0');             // deadline_ms
  payload.push_back('\0');             // flags
  payload.append("\xff\xff\xff\x7f"); // table count ~2^31
  auto decoded = DecodeDetectRequestPayload(payload);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(WireProtocolTest, HostileDeadlineRejected) {
  DetectRequest request = MakeRequest();
  request.deadline_ms = 0x7FFFFFFF;  // far past the one-hour bound
  const std::string frame = EncodeDetectRequest(request);
  auto decoded = DecodeDetectRequestPayload(PayloadOf(frame));
  EXPECT_FALSE(decoded.ok());
}

TEST(WireProtocolTest, GarbagePayloadNeverCrashes) {
  // A deterministic pseudo-random byte soup at several lengths; the only
  // contract is "typed error or valid decode", never a crash.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (const size_t len : {size_t{1}, size_t{13}, size_t{64}, size_t{257},
                           size_t{4096}}) {
    std::string payload;
    payload.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      payload.push_back(static_cast<char>(state >> 56));
    }
    (void)DecodeDetectRequestPayload(payload);
    (void)DecodeDetectResponsePayload(payload);
  }
}

// ---------------------------------------------------------------------------
// HTTP adapter framing

TEST(HttpAdapterTest, SingleContentLengthFramesTheBody) {
  auto parsed = http::TryParseRequest(
      "POST /detect HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody",
      http::Limits{});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->has_value());
  EXPECT_EQ((*parsed)->body, "body");
}

TEST(HttpAdapterTest, DuplicateContentLengthIsRejected) {
  // RFC 9112 §6.3: repeated Content-Length makes framing ambiguous
  // (CL/CL smuggling behind a proxy that picks the other value), so any
  // second occurrence — even an identical one — is a typed error.
  for (const char* second : {"Content-Length: 9\r\n", "Content-Length: 4\r\n"}) {
    const std::string raw = StrCat(
        "POST /detect HTTP/1.1\r\nContent-Length: 4\r\n", second, "\r\nbody");
    auto parsed = http::TryParseRequest(raw, http::Limits{});
    EXPECT_FALSE(parsed.ok()) << raw;
    EXPECT_TRUE(parsed.status().IsCorruption());
  }
}

// ---------------------------------------------------------------------------
// Options plumbing

TEST(WireProtocolTest, RequestOptionsKeyGroupsCompatibleRequests) {
  RequestOptions defaults;
  RequestOptions also_defaults;
  EXPECT_EQ(RequestOptionsKey(defaults), RequestOptionsKey(also_defaults));

  RequestOptions strict;
  strict.has_override = true;
  strict.alpha = 1e-4;
  strict.detect_mask = 0x1F;
  EXPECT_NE(RequestOptionsKey(defaults), RequestOptionsKey(strict));

  RequestOptions strict_copy = strict;
  EXPECT_EQ(RequestOptionsKey(strict), RequestOptionsKey(strict_copy));

  strict_copy.detect_mask = 0x01;
  EXPECT_NE(RequestOptionsKey(strict), RequestOptionsKey(strict_copy));
}

TEST(WireProtocolTest, ApplyRequestOptionsOverridesOnlyNamedFields) {
  UniDetectOptions base;
  base.alpha = 0.05;
  base.pattern_pmi_threshold = -7.0;  // not a per-request field; must survive

  RequestOptions no_override;
  const UniDetectOptions same = ApplyRequestOptions(base, no_override);
  EXPECT_EQ(same.alpha, base.alpha);
  EXPECT_EQ(same.pattern_pmi_threshold, base.pattern_pmi_threshold);

  RequestOptions strict;
  strict.has_override = true;
  strict.alpha = 1e-4;
  strict.detect_mask = 0x03;
  const UniDetectOptions applied = ApplyRequestOptions(base, strict);
  EXPECT_EQ(applied.alpha, 1e-4);
  EXPECT_EQ(applied.pattern_pmi_threshold, base.pattern_pmi_threshold);
  EXPECT_TRUE(applied.detect[0]);
  EXPECT_TRUE(applied.detect[1]);
  EXPECT_FALSE(applied.detect[2]);
}

}  // namespace
}  // namespace wire
}  // namespace unidetect
