#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace unidetect {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad column");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad column");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 8; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    UNIDETECT_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(Result<int>(7).ValueOr(0), 7);
  EXPECT_EQ(Result<int>(Status::NotFound("x")).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace unidetect
