#include "learn/model.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace unidetect {
namespace {

FeatureKey KeyFor(ErrorClass c) {
  return FeatureKey{static_cast<uint64_t>(c)};
}

ModelOptions SmallSupportOptions() {
  ModelOptions options;
  options.min_support = 4;
  return options;
}

TEST(EpsilonPolicyTest, MaxOfFloorAndFraction) {
  EpsilonPolicy policy;
  policy.min_rows = 2;
  policy.fraction = 0.02;
  EXPECT_EQ(policy.AllowedRows(10), 2u);
  EXPECT_EQ(policy.AllowedRows(100), 2u);
  EXPECT_EQ(policy.AllowedRows(1000), 20u);
  EXPECT_EQ(policy.AllowedRows(101), 3u);  // ceil(2.02)
}

TEST(DirectionOfTest, PerClass) {
  EXPECT_EQ(DirectionOf(ErrorClass::kOutlier),
            SurpriseDirection::kHigherMoreSurprising);
  EXPECT_EQ(DirectionOf(ErrorClass::kSpelling),
            SurpriseDirection::kLowerMoreSurprising);
  EXPECT_EQ(DirectionOf(ErrorClass::kUniqueness),
            SurpriseDirection::kLowerMoreSurprising);
  EXPECT_EQ(DirectionOf(ErrorClass::kFd),
            SurpriseDirection::kLowerMoreSurprising);
}

TEST(ModelTest, UnmovedPerturbationIsNeverSurprising) {
  Model model(SmallSupportOptions());
  model.Finalize();
  // Outliers: post must be strictly below pre.
  EXPECT_DOUBLE_EQ(
      model.LikelihoodRatio(ErrorClass::kOutlier, KeyFor(ErrorClass::kOutlier),
                            5.0, 5.0),
      1.0);
  EXPECT_DOUBLE_EQ(
      model.LikelihoodRatio(ErrorClass::kOutlier, KeyFor(ErrorClass::kOutlier),
                            5.0, 6.0),
      1.0);
  // Spelling: post must be strictly above pre.
  EXPECT_DOUBLE_EQ(model.LikelihoodRatio(ErrorClass::kSpelling,
                                         KeyFor(ErrorClass::kSpelling), 3.0,
                                         3.0),
                   1.0);
}

TEST(ModelTest, UnknownSubsetYieldsNoEvidence) {
  Model model(SmallSupportOptions());
  model.Finalize();
  EXPECT_DOUBLE_EQ(
      model.LikelihoodRatio(ErrorClass::kOutlier, FeatureKey{12345}, 10.0, 1.0),
      1.0);
}

TEST(ModelTest, MinSupportGatesThinSubsets) {
  ModelOptions options;
  options.min_support = 10;
  Model model(options);
  const FeatureKey key = KeyFor(ErrorClass::kOutlier);
  for (int i = 0; i < 5; ++i) model.AddObservation(key, 2.0, 1.5);
  model.Finalize();
  EXPECT_DOUBLE_EQ(
      model.LikelihoodRatio(ErrorClass::kOutlier, key, 10.0, 1.0), 1.0);
}

TEST(ModelTest, SurprisingTransitionGetsSmallRatio) {
  Model model(SmallSupportOptions());
  const FeatureKey key = KeyFor(ErrorClass::kOutlier);
  // 200 ordinary columns: pre in [5, 6), post in [4, 5), uncorrelated.
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    model.AddObservation(key, rng.Uniform(5.0, 6.0), rng.Uniform(4.0, 5.0));
  }
  model.Finalize();
  // A candidate whose max-MAD collapses from 50 to 2 is highly
  // surprising; one that moves 5.5 -> 4.5 is ordinary.
  const double surprising =
      model.LikelihoodRatio(ErrorClass::kOutlier, key, 50.0, 2.0);
  const double ordinary =
      model.LikelihoodRatio(ErrorClass::kOutlier, key, 5.5, 4.5);
  EXPECT_LT(surprising, 0.05);
  EXPECT_GT(ordinary, 0.15);
  EXPECT_LT(surprising, ordinary);
}

// Theorem 1 (monotonicity): theta1 >= theta1' and theta2 <= theta2'
// implies r(C) <= r(C'), for the smoothed range-based ratio.
class ModelMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelMonotonicityTest, Theorem1HoldsOnRandomModels) {
  Rng rng(GetParam());
  ModelOptions options;
  options.min_support = 1;
  Model model(options);
  const FeatureKey key = KeyFor(ErrorClass::kOutlier);
  for (int i = 0; i < 400; ++i) {
    const double pre = rng.Uniform(0, 50);
    model.AddObservation(key, pre, rng.Uniform(0, pre));
  }
  model.Finalize();
  for (int trial = 0; trial < 200; ++trial) {
    double theta1 = rng.Uniform(1, 50);
    double theta2 = rng.Uniform(0, theta1);
    double theta1_weaker = theta1 - rng.Uniform(0, theta1 - theta2);
    double theta2_weaker = theta2 + rng.Uniform(0, theta1_weaker - theta2);
    if (theta1_weaker <= theta2_weaker) continue;
    const double strong =
        model.LikelihoodRatio(ErrorClass::kOutlier, key, theta1, theta2);
    const double weak = model.LikelihoodRatio(ErrorClass::kOutlier, key,
                                              theta1_weaker, theta2_weaker);
    EXPECT_LE(strong, weak + 1e-12)
        << "theta1=" << theta1 << " theta2=" << theta2
        << " theta1'=" << theta1_weaker << " theta2'=" << theta2_weaker;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelMonotonicityTest,
                         ::testing::Values(7, 77, 777));

TEST(ModelTest, PointSmoothingModeCounts) {
  ModelOptions options;
  options.min_support = 1;
  options.smoothing = SmoothingMode::kPoint;
  options.point_grid = 0.5;
  Model model(options);
  const FeatureKey key = KeyFor(ErrorClass::kOutlier);
  model.AddObservation(key, 8.0, 3.5);
  model.AddObservation(key, 8.0, 3.5);
  model.AddObservation(key, 3.5, 3.0);
  model.Finalize();
  // Point mode: num = #{(8.0, 3.5)} = 2, den = #{pre == 3.5} = 1.
  const double lr = model.LikelihoodRatio(ErrorClass::kOutlier, key, 8.0, 3.5);
  EXPECT_DOUBLE_EQ(lr, (2.0 + 1.0) / (1.0 + 2.0));
}

TEST(ModelTest, CleanTailDenominatorMode) {
  ModelOptions options;
  options.min_support = 1;
  options.denominator = DenominatorMode::kCleanTail;
  Model model(options);
  const FeatureKey key = KeyFor(ErrorClass::kOutlier);
  model.AddObservation(key, 10.0, 1.0);
  model.AddObservation(key, 2.0, 1.5);
  model.AddObservation(key, 1.0, 0.5);
  model.Finalize();
  // Clean tail for high-direction: den = #{pre <= theta2 = 2.0} = 2.
  const double lr = model.LikelihoodRatio(ErrorClass::kOutlier, key, 9.0, 2.0);
  EXPECT_DOUBLE_EQ(lr, (1.0 + 1.0) / (2.0 + 2.0));
}

TEST(ModelTest, SaveLoadPreservesQueries) {
  ModelOptions options;
  options.min_support = 1;
  Model model(options);
  const FeatureKey key = KeyFor(ErrorClass::kUniqueness);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double pre = rng.Uniform(0.5, 1.0);
    model.AddObservation(key, pre, rng.Uniform(pre, 1.0));
  }
  model.mutable_token_index()->AddTable([] {
    Table table("t");
    EXPECT_TRUE(table.AddColumn(Column("c", {"alpha", "beta"})).ok());
    return table;
  }());
  model.Finalize();

  const std::string path = testing::TempDir() + "/unidetect_model_test.model";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = Model::Load(path);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_subsets(), model.num_subsets());
  EXPECT_EQ(loaded->num_observations(), model.num_observations());
  EXPECT_EQ(loaded->token_index().TableCount("alpha"), 1u);
  EXPECT_EQ(loaded->options().min_support, options.min_support);
  // Boundary-exact LR agreement (the float round-trip regression test).
  Rng probe(6);
  for (int i = 0; i < 100; ++i) {
    const double theta1 = probe.Uniform(0.5, 1.0);
    const double theta2 = probe.Uniform(theta1, 1.0);
    EXPECT_DOUBLE_EQ(
        model.LikelihoodRatio(ErrorClass::kUniqueness, key, theta1, theta2),
        loaded->LikelihoodRatio(ErrorClass::kUniqueness, key, theta1, theta2));
  }
}

TEST(ModelTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Model::Deserialize("").ok());
  EXPECT_FALSE(Model::Deserialize("WrongMagic\n").ok());
  EXPECT_FALSE(Model::Deserialize("UniDetectModel v1\nbad\n").ok());
}

TEST(ModelTest, LoadMissingFileIsIOError) {
  auto result = Model::Load("/nonexistent/dir/model.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

}  // namespace
}  // namespace unidetect
