// DetectCorpus must return byte-identical ranked findings regardless of
// thread count: parallel per-table detection may not perturb ordering,
// scores, or any formatted field of the output.

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "util/logging.h"

namespace unidetect {
namespace {

TEST(ThreadDeterminismTest, OneVsFourThreadsByteIdentical) {
  SetLogLevel(LogLevel::kWarning);
  Trainer trainer;
  const Model model =
      trainer.Train(GenerateCorpus(WebCorpusSpec(400, 91)).corpus);
  UniDetectOptions options;
  options.alpha = 1.0;
  options.detect_patterns = true;
  UniDetect detector(&model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(120, 92));

  const auto serial = detector.DetectCorpus(test.corpus, /*num_threads=*/1);
  const auto parallel = detector.DetectCorpus(test.corpus, /*num_threads=*/4);

  ASSERT_FALSE(serial.empty());
  // Comparing the JSON dumps covers every surfaced field at once --
  // ranking order, scores, rows, values, and explanation strings.
  EXPECT_EQ(FindingsToJson(serial), FindingsToJson(parallel));
}

}  // namespace
}  // namespace unidetect
