// DetectCorpus must return byte-identical ranked findings regardless of
// thread count: parallel per-table detection may not perturb ordering,
// scores, or any formatted field of the output.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "detect/unidetect.h"
#include "learn/trainer.h"
#include "util/logging.h"

namespace unidetect {
namespace {

TEST(ThreadDeterminismTest, OneVsFourThreadsByteIdentical) {
  SetLogLevel(LogLevel::kWarning);
  Trainer trainer;
  const Model model =
      trainer.Train(GenerateCorpus(WebCorpusSpec(400, 91)).corpus);
  UniDetectOptions options;
  options.alpha = 1.0;
  options.set_detect(ErrorClass::kPattern, true);
  UniDetect detector(&model, options);
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(120, 92));

  const auto serial = detector.DetectCorpus(test.corpus, /*num_threads=*/1);
  const auto parallel = detector.DetectCorpus(test.corpus, /*num_threads=*/4);

  ASSERT_FALSE(serial.empty());
  // Comparing the JSON dumps covers every surfaced field at once --
  // ranking order, scores, rows, values, and explanation strings.
  EXPECT_EQ(FindingsToJson(serial), FindingsToJson(parallel));
}

TEST(ThreadDeterminismTest, ProgressCallbackIsSerializedAndComplete) {
  SetLogLevel(LogLevel::kWarning);
  Trainer trainer;
  const Model model =
      trainer.Train(GenerateCorpus(WebCorpusSpec(60, 93)).corpus);
  UniDetect detector(&model, UniDetectOptions{});
  const AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(24, 94));

  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<size_t> dones;
    std::vector<size_t> totals;
    UniDetectOptions options;
    options.progress = [&](size_t done, size_t total) {
      // Calls are serialized under the progress mutex, so plain
      // vectors are safe to append to here.
      dones.push_back(done);
      totals.push_back(total);
    };
    UniDetect tracked(&model, options);
    tracked.DetectCorpus(test.corpus, threads);

    ASSERT_EQ(dones.size(), test.corpus.tables.size()) << threads;
    for (size_t i = 0; i < dones.size(); ++i) {
      EXPECT_EQ(dones[i], i + 1) << threads;  // strictly increasing 1..N
      EXPECT_EQ(totals[i], test.corpus.tables.size());
    }
  }
}

}  // namespace
}  // namespace unidetect
