#include "corpus/corpus_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "corpus/generator.h"

namespace unidetect {
namespace {

TEST(CorpusIoTest, SaveLoadRoundTrip) {
  const std::string dir = testing::TempDir() + "/unidetect_corpus_io";
  std::filesystem::remove_all(dir);

  const Corpus original = GenerateCorpus(WebCorpusSpec(12, 9)).corpus;
  ASSERT_TRUE(SaveCorpusToDirectory(original, dir).ok());

  auto loaded = LoadCorpusFromDirectory(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->tables.size(), original.tables.size());
  for (size_t i = 0; i < original.tables.size(); ++i) {
    const Table& a = original.tables[i];
    const Table& b = loaded->tables[i];
    ASSERT_EQ(a.num_columns(), b.num_columns()) << a.name();
    ASSERT_EQ(a.num_rows(), b.num_rows()) << a.name();
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.column(c).name(), b.column(c).name());
      EXPECT_EQ(a.column(c).cells(), b.column(c).cells());
    }
  }
}

TEST(CorpusIoTest, ParallelLoadMatchesSerial) {
  const std::string dir = testing::TempDir() + "/unidetect_corpus_par";
  std::filesystem::remove_all(dir);

  const Corpus original = GenerateCorpus(WebCorpusSpec(40, 17)).corpus;
  ASSERT_TRUE(SaveCorpusToDirectory(original, dir).ok());
  {
    // A junk file exercises the shard-safe skip path as well.
    std::ofstream bad(dir + "/zz_bad.csv");
    bad << "x\n\"unterminated\n";
  }

  auto serial = LoadCorpusFromDirectory(dir, /*num_threads=*/1);
  auto parallel = LoadCorpusFromDirectory(dir, /*num_threads=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->tables.size(), original.tables.size());
  ASSERT_EQ(parallel->tables.size(), serial->tables.size());
  for (size_t i = 0; i < serial->tables.size(); ++i) {
    const Table& a = serial->tables[i];
    const Table& b = parallel->tables[i];
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.num_columns(), b.num_columns()) << a.name();
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.column(c).name(), b.column(c).name());
      EXPECT_EQ(a.column(c).cells(), b.column(c).cells());
    }
  }
}

TEST(CorpusIoTest, MissingDirectoryIsNotFound) {
  auto result = LoadCorpusFromDirectory("/nonexistent/unidetect/dir");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(CorpusIoTest, JunkFilesAreSkippedNotFatal) {
  const std::string dir = testing::TempDir() + "/unidetect_corpus_junk";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream good(dir + "/a_good.csv");
    good << "x,y\n1,2\n";
    std::ofstream bad(dir + "/b_bad.csv");
    bad << "x\n\"unterminated\n";
    std::ofstream ignored(dir + "/notes.txt");
    ignored << "not a table";
  }
  auto loaded = LoadCorpusFromDirectory(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->tables.size(), 1u);
  EXPECT_EQ(loaded->tables[0].name(), "a_good");
}

TEST(CorpusIoTest, FileNamesSanitized) {
  const std::string dir = testing::TempDir() + "/unidetect_corpus_names";
  std::filesystem::remove_all(dir);
  Corpus corpus;
  Table table("we/ird name!");
  ASSERT_TRUE(table.AddColumn(Column("c", {"1"})).ok());
  corpus.tables.push_back(std::move(table));
  ASSERT_TRUE(SaveCorpusToDirectory(corpus, dir).ok());
  auto loaded = LoadCorpusFromDirectory(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->tables.size(), 1u);
}

}  // namespace
}  // namespace unidetect
