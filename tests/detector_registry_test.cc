#include "detect/detector_registry.h"

#include <gtest/gtest.h>

#include "detect/outlier_detector.h"
#include "detect/unidetect.h"
#include "learn/model_stack.h"

namespace unidetect {
namespace {

TEST(DetectorRegistryTest, BuiltinCoversEveryClass) {
  const DetectorRegistry& registry = DetectorRegistry::Builtin();
  const std::vector<ErrorClass> classes = registry.Classes();
  ASSERT_EQ(classes.size(), static_cast<size_t>(kNumErrorClasses));
  for (size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(classes[i], static_cast<ErrorClass>(i));  // ascending order
    EXPECT_TRUE(registry.Has(classes[i]));
  }
}

TEST(DetectorRegistryTest, DefaultsMatchThePaper) {
  const auto enables = DefaultDetectorEnables();
  EXPECT_TRUE(enables[static_cast<size_t>(ErrorClass::kOutlier)]);
  EXPECT_TRUE(enables[static_cast<size_t>(ErrorClass::kSpelling)]);
  EXPECT_TRUE(enables[static_cast<size_t>(ErrorClass::kUniqueness)]);
  EXPECT_TRUE(enables[static_cast<size_t>(ErrorClass::kFd)]);
  EXPECT_FALSE(enables[static_cast<size_t>(ErrorClass::kPattern)]);
}

TEST(DetectorRegistryTest, DuplicateRegistrationIsAlreadyExists) {
  DetectorRegistry registry;
  auto factory = [](const DetectorContext&) -> std::unique_ptr<Detector> {
    return nullptr;
  };
  ASSERT_TRUE(registry.Register(ErrorClass::kOutlier, true, factory).ok());
  const Status again = registry.Register(ErrorClass::kOutlier, true, factory);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.IsAlreadyExists());
}

TEST(DetectorRegistryTest, CreateProducesTheRegisteredClass) {
  const DetectorRegistry& registry = DetectorRegistry::Builtin();
  Model model;
  model.Finalize();
  UniDetectOptions options;
  const ModelStack stack = ModelStack::Borrow(&model);
  const DetectorContext context{&stack, nullptr, &options};
  for (ErrorClass cls : registry.Classes()) {
    const auto detector = registry.Create(cls, context);
    ASSERT_NE(detector, nullptr);
    EXPECT_EQ(detector->error_class(), cls);
  }
  EXPECT_EQ(DetectorRegistry().Create(ErrorClass::kOutlier, context), nullptr);
}

TEST(DetectorRegistryTest, CustomRegistryRestrictsTheFacade) {
  // A facade built over a partial registry runs only what it offers,
  // whatever the options say.
  DetectorRegistry registry;
  RegisterOutlierDetector(&registry);
  Model model;
  model.Finalize();
  UniDetectOptions options;
  options.alpha = 1.0;
  const UniDetect detector(&model, options, &registry);
  // No crash, and nothing but outlier findings can ever be produced;
  // with an empty model there are simply none.
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column("c", {"1", "2", "900"})).ok());
  EXPECT_TRUE(detector.DetectTable(table).empty());
}

}  // namespace
}  // namespace unidetect
