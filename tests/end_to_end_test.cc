// End-to-end pipeline tests: generate -> train -> inject -> detect ->
// evaluate, asserting the paper's headline qualitative claims at small
// scale (the bench binaries assert them at full scale).

#include <gtest/gtest.h>

#include "baselines/constraint_baselines.h"
#include "baselines/outlier_baselines.h"
#include "eval/harness.h"
#include "util/logging.h"

namespace unidetect {
namespace {

const Experiment& SharedExperiment() {
  static const Experiment* experiment = [] {
    SetLogLevel(LogLevel::kWarning);
    ExperimentConfig config;
    config.train_tables = 4000;
    config.model_cache_dir = "";  // no on-disk cache inside tests
    CorpusSpec spec = WebCorpusSpec(700, 4242);
    spec.name = "test-corpus";
    return new Experiment(BuildExperiment(spec, config));
  }();
  return *experiment;
}

TEST(EndToEndTest, InjectionProducedEnoughTruth) {
  EXPECT_GT(SharedExperiment().truth.errors.size(), 100u);
}

TEST(EndToEndTest, UniquenessBeatsRatioBaselines) {
  const Experiment& experiment = SharedExperiment();
  const PrecisionCurve uni =
      RunUniDetect(experiment, ErrorClass::kUniqueness);
  const PrecisionCurve baseline =
      RunBaseline(UniqueRowRatioBaseline(), experiment);
  // Compare precision@50 (index 4 in the default K grid).
  EXPECT_GT(uni.precision[4], baseline.precision[4]);
  EXPECT_GT(uni.precision[4], 0.7);
}

TEST(EndToEndTest, OutlierDetectionBeatsMaxSd) {
  const Experiment& experiment = SharedExperiment();
  const PrecisionCurve uni = RunUniDetect(experiment, ErrorClass::kOutlier);
  const PrecisionCurve sd = RunBaseline(MaxSdBaseline(), experiment);
  EXPECT_GT(uni.precision[4], sd.precision[4]);
}

TEST(EndToEndTest, DictionaryVariantAtLeastAsPrecise) {
  const Experiment& experiment = SharedExperiment();
  const PrecisionCurve plain =
      RunUniDetect(experiment, ErrorClass::kSpelling);
  const PrecisionCurve with_dict =
      RunUniDetect(experiment, ErrorClass::kSpelling, /*use_dictionary=*/true);
  EXPECT_GE(with_dict.precision[4] + 0.05, plain.precision[4]);
}

TEST(EndToEndTest, ModelRoundTripGivesIdenticalRankedList) {
  const Experiment& experiment = SharedExperiment();
  const std::string path =
      testing::TempDir() + "/unidetect_e2e_roundtrip.model";
  ASSERT_TRUE(experiment.model.Save(path).ok());
  auto loaded = Model::Load(path);
  ASSERT_TRUE(loaded.ok());

  UniDetectOptions options;
  options.alpha = 1.0;
  UniDetect original(&experiment.model, options);
  UniDetect restored(&*loaded, options);
  const auto a = original.DetectCorpus(experiment.test.corpus);
  const auto b = restored.DetectCorpus(experiment.test.corpus);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].table_index, b[i].table_index);
    EXPECT_EQ(a[i].column, b[i].column);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(EndToEndTest, FeaturizationAblationChangesBehaviour) {
  // The "no featurization" model is a different (weaker) instrument;
  // this asserts the ablation machinery produces a usable model at all,
  // and that featurization changes the subset structure.
  ExperimentConfig config;
  config.train_tables = 1500;
  config.model_cache_dir = "";
  config.model_options.featurize.enabled = false;
  const Model flat = TrainBackgroundModel(config);
  EXPECT_LE(flat.num_subsets(), 4u);
  EXPECT_GT(flat.num_observations(), 1000u);
}

TEST(EndToEndTest, FdrControlPrunesRankedList) {
  const Experiment& experiment = SharedExperiment();
  UniDetectOptions unfiltered;
  unfiltered.alpha = 1.0;
  UniDetectOptions controlled = unfiltered;
  controlled.fdr_q = 0.1;
  const auto all = UniDetect(&experiment.model, unfiltered)
                       .DetectCorpus(experiment.test.corpus);
  const auto kept = UniDetect(&experiment.model, controlled)
                        .DetectCorpus(experiment.test.corpus);
  ASSERT_LT(kept.size(), all.size());
  ASSERT_GT(kept.size(), 0u);
  // The FDR-kept prefix is strictly more precise than the full list (the
  // LR scores are not calibrated p-values, so BH's nominal q is not a
  // precision guarantee; the monotone improvement is).
  auto precision = [&](const std::vector<Finding>& findings) {
    size_t hits = 0;
    for (const auto& finding : findings) {
      if (experiment.truth.Matches(finding)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(findings.size());
  };
  EXPECT_GT(precision(kept), precision(all));
}

}  // namespace
}  // namespace unidetect
