// Loopback integration tests for the network front end (DESIGN.md §16):
// a real DetectionServer on an ephemeral 127.0.0.1 port, driven through
// UdwireClient and the HTTP helper. Pins the subsystem's contracts:
//
//   * a served UDWIRE response is byte-identical to a direct in-process
//     DetectBatch over the same tables — including when the coalescer
//     merged the request into a larger batch;
//   * overload and deadline outcomes are typed responses the client
//     reads (kOverloaded / kDeadlineExceeded), never silent drops —
//     every admitted-or-refused request completes its callback exactly
//     once;
//   * Reload/ApplyDelta churn under client load produces zero failed or
//     torn responses (the engine-snapshot pinning contract, end to end);
//   * hostile bytes at a live socket produce a typed kMalformed frame,
//     not a crash; the connection cap rejects typed-ly; Stop() is
//     graceful and idempotent.

#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "detect/finding_json.h"
#include "learn/trainer.h"
#include "offline/delta_build.h"
#include "server/client.h"
#include "server/coalescer.h"
#include "server/wire.h"
#include "serving/detection_service.h"
#include "util/logging.h"

namespace unidetect {
namespace {

// One on-disk base + delta shared by the whole suite, built through the
// real trainer and delta builder (per-process directory: ctest runs
// cases as concurrent processes).
struct Artifacts {
  std::string base_path;
  std::string delta_path;
};

const Artifacts& SharedArtifacts() {
  static const Artifacts* artifacts = [] {
    SetLogLevel(LogLevel::kWarning);
    auto* a = new Artifacts();
    const std::string dir = testing::TempDir() + "/server_integration." +
                            std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    a->base_path = dir + "/base.udsnap";
    a->delta_path = dir + "/delta.udsnap";

    Trainer trainer;
    const Model base =
        trainer.Train(GenerateCorpus(WebCorpusSpec(200, 9101)).corpus);
    UNIDETECT_CHECK(base.Save(a->base_path).ok());

    const std::string shard = dir + "/shard";
    UNIDETECT_CHECK(
        SaveCorpusToDirectory(GenerateCorpus(WebCorpusSpec(40, 9102)).corpus,
                              shard)
            .ok());
    DeltaBuildSpec spec;
    spec.base_path = a->base_path;
    spec.input_dirs = {shard};
    spec.out_path = a->delta_path;
    UNIDETECT_CHECK(BuildDeltaSnapshot(spec).ok());
    return a;
  }();
  return *artifacts;
}

UniDetectOptions LooseOptions() {
  UniDetectOptions options;
  options.alpha = 1.0;
  return options;
}

std::unique_ptr<DetectionService> MakeService() {
  auto service =
      DetectionService::Create(SharedArtifacts().base_path, LooseOptions());
  UNIDETECT_CHECK(service.ok());
  return std::move(service).ValueOrDie();
}

std::vector<Table> RequestTables(size_t n, uint64_t seed) {
  return GenerateCorpus(WebCorpusSpec(n, seed)).corpus.tables;
}

std::string PerTableJson(const std::vector<std::vector<Finding>>& per_table) {
  std::string out;
  for (const auto& findings : per_table) {
    out += FindingsToJson(findings);
    out += '\n';
  }
  return out;
}

// Polls until `done` returns true or ~10s pass; returns whether it did.
bool WaitFor(const std::function<bool()>& done) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!done()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ServerIntegrationTest, UdwireLoopbackMatchesDirectBatch) {
  auto service = MakeService();
  ServerOptions options;
  options.coalescer.base_options = LooseOptions();
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  for (uint64_t i = 0; i < 3; ++i) {
    wire::DetectRequest request;
    request.request_id = 100 + i;
    request.tables = RequestTables(2, 9200 + i);
    auto response = client->Detect(request);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->request_id, request.request_id);
    ASSERT_EQ(response->code, wire::WireCode::kOk) << response->error;
    EXPECT_EQ(response->generation, 1u);
    ASSERT_EQ(response->per_table.size(), request.tables.size());

    const auto direct = service->DetectBatch(request.tables);
    EXPECT_EQ(PerTableJson(response->per_table),
              PerTableJson(direct.per_table))
        << "served response must be byte-identical to the direct call";
  }
  server.Stop();
  EXPECT_EQ(server.metrics().Count(ServerMetric::kRequests), 3u);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesOk), 3u);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesError), 0u);
}

// Deterministic coalescing: queue three requests before the worker
// starts, then let it cut one batch. The sliced responses must still be
// byte-identical to per-request direct calls (table_index rebasing).
TEST(ServerIntegrationTest, CoalescedResponsesAreByteIdenticalToDirectCalls) {
  auto service = MakeService();
  MetricsRegistry metrics;
  CoalescerOptions options;
  options.base_options = LooseOptions();
  options.max_batch_delay = std::chrono::microseconds(500);
  RequestCoalescer coalescer(service.get(), &metrics, options);

  Mutex mu;
  std::vector<wire::DetectResponse> responses;
  std::vector<std::vector<Table>> request_tables;
  for (uint64_t i = 0; i < 3; ++i) {
    request_tables.push_back(RequestTables(2, 9300 + i));
  }
  for (uint64_t i = 0; i < 3; ++i) {
    wire::DetectRequest request;
    request.request_id = i;
    request.tables = request_tables[i];
    const auto admission = coalescer.Submit(
        std::move(request), [&mu, &responses](wire::DetectResponse response) {
          MutexLock lock(&mu);
          responses.push_back(std::move(response));
        });
    ASSERT_EQ(admission, RequestCoalescer::Admission::kAdmitted);
  }

  coalescer.Start();
  ASSERT_TRUE(WaitFor([&] {
    MutexLock lock(&mu);
    return responses.size() == 3;
  }));
  coalescer.Stop(/*drain=*/true);

  // All three shared one DetectBatch call.
  EXPECT_EQ(metrics.Count(ServerMetric::kBatches), 1u);
  EXPECT_EQ(metrics.Count(ServerMetric::kCoalescedRequests), 3u);
  EXPECT_EQ(metrics.Count(ServerMetric::kBatchedTables), 6u);
  EXPECT_EQ(metrics.Count(ServerMetric::kResponsesOk), 3u);

  MutexLock lock(&mu);
  for (const wire::DetectResponse& response : responses) {
    ASSERT_EQ(response.code, wire::WireCode::kOk) << response.error;
    ASSERT_LT(response.request_id, request_tables.size());
    const auto direct =
        service->DetectBatch(request_tables[response.request_id]);
    EXPECT_EQ(PerTableJson(response.per_table), PerTableJson(direct.per_table))
        << "request " << response.request_id;
  }
}

// Queue-full shedding is a typed response, and no submission — admitted
// or refused — ever goes unanswered.
TEST(ServerIntegrationTest, OverloadIsTypedAndNothingIsSilentlyDropped) {
  auto service = MakeService();
  MetricsRegistry metrics;
  CoalescerOptions options;
  options.queue_capacity = 2;
  RequestCoalescer coalescer(service.get(), &metrics, options);
  // The worker is never started: the queue fills and stays full.

  Mutex mu;
  std::vector<wire::DetectResponse> responses;
  auto capture = [&mu, &responses](wire::DetectResponse response) {
    MutexLock lock(&mu);
    responses.push_back(std::move(response));
  };

  for (uint64_t i = 0; i < 2; ++i) {
    wire::DetectRequest request;
    request.request_id = i;
    request.tables = RequestTables(1, 9400 + i);
    ASSERT_EQ(coalescer.Submit(std::move(request), capture),
              RequestCoalescer::Admission::kAdmitted);
  }
  wire::DetectRequest overflow;
  overflow.request_id = 99;
  overflow.tables = RequestTables(1, 9402);
  ASSERT_EQ(coalescer.Submit(std::move(overflow), capture),
            RequestCoalescer::Admission::kOverloaded);
  {
    // The refusal callback fired inline, before Submit returned.
    MutexLock lock(&mu);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].request_id, 99u);
    EXPECT_EQ(responses[0].code, wire::WireCode::kOverloaded);
    EXPECT_FALSE(responses[0].error.empty());
  }
  EXPECT_EQ(metrics.Count(ServerMetric::kShedOverload), 1u);
  EXPECT_EQ(coalescer.queue_depth(), 2u);

  // Stop without draining: the queued pair still completes, typed.
  coalescer.Stop(/*drain=*/false);
  MutexLock lock(&mu);
  ASSERT_EQ(responses.size(), 3u);
  for (size_t i = 1; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].code, wire::WireCode::kUnavailable);
  }
  EXPECT_EQ(metrics.Count(ServerMetric::kShedDraining), 2u);
}

TEST(ServerIntegrationTest, ExpiredDeadlineIsTypedAtDequeue) {
  auto service = MakeService();
  MetricsRegistry metrics;
  RequestCoalescer coalescer(service.get(), &metrics, CoalescerOptions{});

  Mutex mu;
  std::vector<wire::DetectResponse> responses;
  wire::DetectRequest request;
  request.request_id = 7;
  request.deadline_ms = 1;
  request.tables = RequestTables(1, 9500);
  // Submit before the worker exists, then outwait the deadline: the
  // request must expire at dequeue without burning a detector call.
  ASSERT_EQ(coalescer.Submit(std::move(request),
                             [&mu, &responses](wire::DetectResponse response) {
                               MutexLock lock(&mu);
                               responses.push_back(std::move(response));
                             }),
            RequestCoalescer::Admission::kAdmitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  coalescer.Start();
  ASSERT_TRUE(WaitFor([&] {
    MutexLock lock(&mu);
    return !responses.empty();
  }));
  coalescer.Stop(/*drain=*/true);

  MutexLock lock(&mu);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 7u);
  EXPECT_EQ(responses[0].code, wire::WireCode::kDeadlineExceeded);
  EXPECT_EQ(metrics.Count(ServerMetric::kExpiredDeadline), 1u);
  EXPECT_EQ(metrics.Count(ServerMetric::kBatches), 0u);
}

// Server-level admission invariant under a concurrent burst with a
// one-slot queue: every request gets exactly one typed answer — kOk or
// kOverloaded — and the counters account for all of them.
TEST(ServerIntegrationTest, BurstAgainstTinyQueueAnswersEveryRequest) {
  auto service = MakeService();
  ServerOptions options;
  options.coalescer.base_options = LooseOptions();
  options.coalescer.queue_capacity = 1;
  options.coalescer.max_batch_delay = std::chrono::microseconds(0);
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 8;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> overloaded_count{0};
  std::atomic<size_t> other_count{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = UdwireClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        other_count.fetch_add(1);
        return;
      }
      wire::DetectRequest request;
      request.request_id = c;
      request.tables = RequestTables(2, 9600 + c);
      auto response = client->Detect(request);
      if (!response.ok()) {
        other_count.fetch_add(1);
      } else if (response->code == wire::WireCode::kOk) {
        ok_count.fetch_add(1);
      } else if (response->code == wire::WireCode::kOverloaded) {
        overloaded_count.fetch_add(1);
      } else {
        other_count.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  server.Stop();

  EXPECT_EQ(other_count.load(), 0u);
  EXPECT_EQ(ok_count.load() + overloaded_count.load(), kClients);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kAdmitted) +
                server.metrics().Count(ServerMetric::kShedOverload),
            kClients);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesOk),
            ok_count.load());
}

// The acceptance gate: clients hammer the server while the service
// alternates ApplyDelta and Reload for 100 swap cycles. Zero failed and
// zero torn responses — every frame decodes, every code is kOk.
TEST(ServerIntegrationTest, ZeroTornResponsesAcross100ReloadCycles) {
  auto service = MakeService();
  ServerOptions options;
  options.coalescer.base_options = LooseOptions();
  options.coalescer.queue_capacity = 1024;
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 4;
  constexpr size_t kRequestsPerClient = 40;
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> failures{0};
  std::atomic<bool> churn_done{false};

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = UdwireClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      const std::vector<Table> tables = RequestTables(2, 9700 + c);
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        wire::DetectRequest request;
        request.request_id = c * 1000 + i;
        request.tables = tables;
        auto response = client->Detect(request);
        if (!response.ok() || response->code != wire::WireCode::kOk ||
            response->request_id != request.request_id ||
            response->per_table.size() != tables.size()) {
          failures.fetch_add(1);
        } else {
          ok_count.fetch_add(1);
        }
      }
    });
  }

  std::thread churn([&] {
    const Artifacts& artifacts = SharedArtifacts();
    for (int cycle = 0; cycle < 100; ++cycle) {
      // Chain after an even cycle: [base, delta]; Reload folds it back.
      const Status status = cycle % 2 == 0
                                ? service->ApplyDelta(artifacts.delta_path)
                                : service->Reload(artifacts.base_path);
      ASSERT_TRUE(status.ok()) << "cycle " << cycle << ": " << status;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    churn_done.store(true);
  });

  for (std::thread& thread : clients) thread.join();
  churn.join();
  server.Stop();

  EXPECT_TRUE(churn_done.load());
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ok_count.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kResponsesError), 0u);
  EXPECT_EQ(server.metrics().Count(ServerMetric::kShedOverload), 0u);
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.applied_deltas, 50u);
  EXPECT_EQ(stats.reloads, 50u);
}

TEST(ServerIntegrationTest, HttpRoutesServeHealthStatsAndDetection) {
  auto service = MakeService();
  ServerOptions options;
  options.coalescer.base_options = LooseOptions();
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto health = HttpFetch("127.0.0.1", server.port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_NE(health->find("200"), std::string::npos);
  EXPECT_NE(health->find("ok"), std::string::npos);

  auto detect = HttpFetch("127.0.0.1", server.port(), "POST", "/detect",
                          "id,amount\n1,10\n2,11\n3,9999999\n");
  ASSERT_TRUE(detect.ok()) << detect.status();
  EXPECT_NE(detect->find("200"), std::string::npos);
  EXPECT_NE(detect->find("\"findings\""), std::string::npos);
  EXPECT_NE(detect->find("\"generation\""), std::string::npos);

  auto statz = HttpFetch("127.0.0.1", server.port(), "GET", "/statz");
  ASSERT_TRUE(statz.ok()) << statz.status();
  EXPECT_NE(statz->find("200"), std::string::npos);
  // Every counter in the metric table is exported under its wire name.
  for (const ServerMetricEntry& entry : kServerMetricEntries) {
    EXPECT_NE(statz->find("\"" + std::string(entry.name) + "\""),
              std::string::npos)
        << "statz is missing counter '" << entry.name << "'";
  }
  EXPECT_NE(statz->find("\"service\""), std::string::npos);
  EXPECT_NE(statz->find("\"request_latency\""), std::string::npos);

  auto missing = HttpFetch("127.0.0.1", server.port(), "GET", "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_NE(missing->find("404"), std::string::npos);

  server.Stop();
  EXPECT_GE(server.metrics().Count(ServerMetric::kHttpRequests), 4u);
}

// A hostile frame (valid magic, absurd length) gets a typed kMalformed
// response before the server closes the connection — never a crash.
TEST(ServerIntegrationTest, HostileFrameGetsTypedMalformedResponse) {
  auto service = MakeService();
  DetectionServer server(service.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto client = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  std::string hostile = "UDW1";
  hostile.push_back(1);                          // kDetectRequest
  hostile.append(3, '\0');                       // reserved
  hostile.append(4, '\xff');                     // payload_len = 4GB-1
  ASSERT_TRUE(client->SendRaw(hostile).ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, wire::WireCode::kMalformed);
  server.Stop();
  EXPECT_GE(server.metrics().Count(ServerMetric::kProtocolErrors), 1u);
}

TEST(ServerIntegrationTest, ConnectionCapRejectsExtraConnections) {
  auto service = MakeService();
  ServerOptions options;
  options.max_connections = 1;
  DetectionServer server(service.get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto first = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  wire::DetectRequest request;
  request.request_id = 1;
  request.tables = RequestTables(1, 9800);
  auto response = first->Detect(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, wire::WireCode::kOk);

  // The second connect completes the TCP handshake (backlog), but the
  // server closes it on accept; its read sees EOF, never a response.
  auto second = UdwireClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(WaitFor([&] {
    return server.metrics().Count(ServerMetric::kConnectionsRejected) >= 1;
  }));
  EXPECT_FALSE(second->Detect(request).ok());
  server.Stop();
}

TEST(ServerIntegrationTest, StopIsGracefulAndIdempotent) {
  auto service = MakeService();
  DetectionServer server(service.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  auto client = UdwireClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  wire::DetectRequest request;
  request.request_id = 5;
  request.tables = RequestTables(1, 9900);
  auto response = client->Detect(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, wire::WireCode::kOk);

  server.Stop();
  server.Stop();  // idempotent

  // The listener is gone: a fresh connect must fail.
  EXPECT_FALSE(UdwireClient::Connect("127.0.0.1", port).ok());
}

}  // namespace
}  // namespace unidetect
