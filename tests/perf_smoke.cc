// Fast perf-smoke check (ctest label "perf"): asserts that the two
// optimized hot paths agree with their reference implementations on a
// freshly generated corpus. Runs in well under a second; CI executes it
// alongside the benchmark job so a correctness regression in either
// optimization fails fast without waiting for the full test suite.

#include <cstdio>
#include <cstdlib>

#include "corpus/generator.h"
#include "learn/subset_stats.h"
#include "metrics/metric_functions.h"
#include "util/logging.h"
#include "util/random.h"

namespace unidetect {
namespace {

#define SMOKE_CHECK(cond, ...)                        \
  do {                                                \
    if (!(cond)) {                                    \
      std::fprintf(stderr, "perf_smoke FAILED: ");    \
      std::fprintf(stderr, __VA_ARGS__);              \
      std::fprintf(stderr, "\n");                     \
      std::exit(1);                                   \
    }                                                 \
  } while (0)

void CheckLrCounts() {
  Rng rng(2024);
  SubsetStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.Add(rng.Uniform(0, 30), rng.Uniform(0, 30));
  }
  stats.Finalize();
  for (int trial = 0; trial < 2000; ++trial) {
    const double t1 = rng.Uniform(0, 30);
    const double t2 = rng.Uniform(0, 30);
    for (const auto dir : {SurpriseDirection::kHigherMoreSurprising,
                           SurpriseDirection::kLowerMoreSurprising}) {
      const uint64_t tree = stats.CountSurprising(dir, t1, t2);
      const uint64_t linear = stats.CountSurprisingLinear(dir, t1, t2);
      SMOKE_CHECK(tree == linear,
                  "CountSurprising mismatch: tree=%llu linear=%llu "
                  "t1=%f t2=%f dir=%d",
                  static_cast<unsigned long long>(tree),
                  static_cast<unsigned long long>(linear), t1, t2,
                  static_cast<int>(dir));
    }
  }
}

void CheckMpdProfiles() {
  const AnnotatedCorpus corpus = GenerateCorpus(WebCorpusSpec(40, 555));
  size_t checked = 0;
  for (const auto& table : corpus.corpus.tables) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const MpdProfile fast = ComputeMpdProfile(table.column(c));
      const MpdProfile ref = ComputeMpdProfileReference(table.column(c));
      SMOKE_CHECK(fast.valid == ref.valid, "valid mismatch in %s col %zu",
                  table.name().c_str(), c);
      if (!fast.valid) continue;
      ++checked;
      SMOKE_CHECK(fast.mpd == ref.mpd && fast.row_a == ref.row_a &&
                      fast.row_b == ref.row_b &&
                      fast.mpd_perturbed == ref.mpd_perturbed &&
                      fast.drop_row == ref.drop_row,
                  "MPD profile mismatch in %s col %zu: "
                  "mpd %zu/%zu rows (%zu,%zu)/(%zu,%zu)",
                  table.name().c_str(), c, fast.mpd, ref.mpd, fast.row_a,
                  fast.row_b, ref.row_a, ref.row_b);
    }
  }
  SMOKE_CHECK(checked > 20, "too few MPD-eligible columns: %zu", checked);
}

}  // namespace
}  // namespace unidetect

int main() {
  unidetect::SetLogLevel(unidetect::LogLevel::kWarning);
  unidetect::CheckLrCounts();
  unidetect::CheckMpdProfiles();
  std::printf("perf_smoke OK\n");
  return 0;
}
