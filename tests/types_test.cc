#include "table/types.h"

#include <gtest/gtest.h>

namespace unidetect {
namespace {

TEST(ClassifyValueTest, Empty) {
  EXPECT_EQ(ClassifyValue(""), ValueType::kEmpty);
  EXPECT_EQ(ClassifyValue("   "), ValueType::kEmpty);
}

TEST(ClassifyValueTest, Integers) {
  EXPECT_EQ(ClassifyValue("42"), ValueType::kInteger);
  EXPECT_EQ(ClassifyValue("-17"), ValueType::kInteger);
  EXPECT_EQ(ClassifyValue("61,044"), ValueType::kInteger);
}

TEST(ClassifyValueTest, Floats) {
  EXPECT_EQ(ClassifyValue("3.14"), ValueType::kFloat);
  EXPECT_EQ(ClassifyValue("8.716"), ValueType::kFloat);
  EXPECT_EQ(ClassifyValue("43.2%"), ValueType::kFloat);
}

TEST(ClassifyValueTest, Dates) {
  EXPECT_EQ(ClassifyValue("2015-04-01"), ValueType::kDate);
  EXPECT_EQ(ClassifyValue("04/01/2015"), ValueType::kDate);
  EXPECT_EQ(ClassifyValue("2015/4/1"), ValueType::kDate);
}

TEST(ClassifyValueTest, MixedAlnum) {
  EXPECT_EQ(ClassifyValue("KV214-310B8K2"), ValueType::kMixedAlnum);
  EXPECT_EQ(ClassifyValue("DN35828"), ValueType::kMixedAlnum);
  EXPECT_EQ(ClassifyValue("Gliese 163 b"), ValueType::kMixedAlnum);
}

TEST(ClassifyValueTest, Strings) {
  EXPECT_EQ(ClassifyValue("London"), ValueType::kString);
  EXPECT_EQ(ClassifyValue("Keane, Mr. Andrew"), ValueType::kString);
  EXPECT_EQ(ClassifyValue("H-O"), ValueType::kString);
}

TEST(LooksLikeDateTest, Accepts) {
  EXPECT_TRUE(LooksLikeDate("1999-12-31"));
  EXPECT_TRUE(LooksLikeDate("9/9/2020"));
  EXPECT_TRUE(LooksLikeDate("  2015-05-26  "));
}

TEST(LooksLikeDateTest, Rejects) {
  EXPECT_FALSE(LooksLikeDate("2015"));
  EXPECT_FALSE(LooksLikeDate("2015-04"));
  EXPECT_FALSE(LooksLikeDate("2015-04-01-02"));
  EXPECT_FALSE(LooksLikeDate("20155-04-01"));   // 5-digit year
  EXPECT_FALSE(LooksLikeDate("ab-cd-ef"));
  EXPECT_FALSE(LooksLikeDate("1-2-3"));          // no 4-digit year part
  EXPECT_FALSE(LooksLikeDate("2015-Apr-01"));    // letters
}

TEST(TypeNamesTest, AllDistinct) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInteger), "integer");
  EXPECT_STREQ(ValueTypeToString(ValueType::kMixedAlnum), "mixed-alnum");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kString), "string");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kUnknown), "unknown");
}

}  // namespace
}  // namespace unidetect
