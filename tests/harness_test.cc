#include "eval/harness.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/logging.h"

namespace unidetect {
namespace {

ExperimentConfig SmallConfig(const std::string& cache_dir) {
  SetLogLevel(LogLevel::kWarning);
  ExperimentConfig config;
  config.train_tables = 400;
  config.train_seed = 31;
  config.model_cache_dir = cache_dir;
  return config;
}

TEST(HarnessTest, ModelCacheRoundTrip) {
  const std::string dir = testing::TempDir() + "/unidetect_harness_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const ExperimentConfig config = SmallConfig(dir);
  const Model first = TrainBackgroundModel(config);
  // A cache file now exists...
  size_t cached_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".model") ++cached_files;
  }
  EXPECT_EQ(cached_files, 1u);
  // ...and the second call loads it with identical statistics.
  const Model second = TrainBackgroundModel(config);
  EXPECT_EQ(first.num_subsets(), second.num_subsets());
  EXPECT_EQ(first.num_observations(), second.num_observations());
}

TEST(HarnessTest, DifferentOptionsGetDifferentCacheEntries) {
  const std::string dir = testing::TempDir() + "/unidetect_harness_cache2";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ExperimentConfig a = SmallConfig(dir);
  ExperimentConfig b = a;
  b.model_options.featurize.enabled = false;
  (void)TrainBackgroundModel(a);
  (void)TrainBackgroundModel(b);
  size_t cached_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".model") ++cached_files;
  }
  EXPECT_EQ(cached_files, 2u);
}

TEST(HarnessTest, BuildExperimentInjectsAndNames) {
  ExperimentConfig config = SmallConfig("");
  CorpusSpec spec = WikiCorpusSpec(150, 77);
  spec.name = "harness-test";
  const Experiment experiment = BuildExperiment(spec, config);
  EXPECT_EQ(experiment.test.corpus.name, "harness-test");
  EXPECT_EQ(experiment.test.corpus.tables.size(), 150u);
  EXPECT_GT(experiment.truth.errors.size(), 0u);
}

TEST(HarnessTest, RunUniDetectNamesVariants) {
  ExperimentConfig config = SmallConfig("");
  CorpusSpec spec = WebCorpusSpec(120, 78);
  const Experiment experiment = BuildExperiment(spec, config);
  EXPECT_EQ(RunUniDetect(experiment, ErrorClass::kSpelling).method,
            "UniDetect");
  EXPECT_EQ(RunUniDetect(experiment, ErrorClass::kSpelling, true).method,
            "UniDetect+Dict");
  EXPECT_EQ(
      RunUniDetect(experiment, ErrorClass::kSpelling, false, "custom").method,
      "custom");
}

TEST(HarnessTest, SynthesizableFdTruthFilters) {
  GroundTruth truth;
  InjectedError plain;
  plain.error_class = ErrorClass::kFd;
  truth.errors.push_back(plain);
  InjectedError synth;
  synth.error_class = ErrorClass::kFd;
  synth.on_synthesizable_pair = true;
  truth.errors.push_back(synth);
  InjectedError spelling_on_synth;
  spelling_on_synth.error_class = ErrorClass::kSpelling;
  spelling_on_synth.on_synthesizable_pair = true;
  truth.errors.push_back(spelling_on_synth);

  const GroundTruth filtered = SynthesizableFdTruth(truth);
  EXPECT_EQ(filtered.errors.size(), 2u);
}

}  // namespace
}  // namespace unidetect
