#include "autodetect/pattern.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autodetect/pmi_detector.h"
#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "eval/injection.h"
#include "learn/trainer.h"

namespace unidetect {
namespace {

TEST(GeneralizePatternTest, CharacterClasses) {
  EXPECT_EQ(GeneralizePattern("2001-01-01"), "\\d+-\\d+-\\d+");
  EXPECT_EQ(GeneralizePattern("2001-Jan-01"), "\\d+-\\l+-\\d+");
  EXPECT_EQ(GeneralizePattern("abc123"), "\\l+\\d+");
  EXPECT_EQ(GeneralizePattern("  x  y  "), "\\l+ \\l+");
  EXPECT_EQ(GeneralizePattern("$1,234.56"), "$\\d+,\\d+.\\d+");
  EXPECT_EQ(GeneralizePattern(""), "");
}

TEST(GeneralizePatternTest, RunLengthCollapsed) {
  // "2001" and "85" share a pattern (the point of collapsing).
  EXPECT_EQ(GeneralizePattern("2001"), GeneralizePattern("85"));
  EXPECT_EQ(GeneralizePattern("abc"), GeneralizePattern("zzzzz"));
}

TEST(DistinctPatternsTest, FirstSeenOrderAndCap) {
  const std::vector<std::string> cells = {"2001-01-01", "2002-02-02",
                                          "2001-Jan-01", "", "abc"};
  const auto patterns = DistinctPatterns(cells);
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0], "\\d+-\\d+-\\d+");
  EXPECT_EQ(patterns[1], "\\d+-\\l+-\\d+");
  EXPECT_EQ(patterns[2], "\\l+");
  EXPECT_EQ(DistinctPatterns(cells, 2).size(), 2u);
}

Corpus PatternCorpus() {
  // 60 all-ISO date columns, 60 all-text-month columns: the two formats
  // never co-occur, so their PMI is strongly negative.
  Corpus corpus;
  for (int i = 0; i < 60; ++i) {
    Table iso("iso");
    EXPECT_TRUE(iso.AddColumn(Column("d", {"2001-01-01", "2002-03-04",
                                           "2003-05-06", "2004-07-08",
                                           "2005-09-10", "2006-11-12",
                                           "2007-01-02", "2008-03-04"}))
                    .ok());
    corpus.tables.push_back(std::move(iso));
    Table text("text");
    EXPECT_TRUE(text.AddColumn(Column("d", {"2001-Jan-01", "2002-Mar-04",
                                            "2003-May-06", "2004-Jul-08",
                                            "2005-Sep-10", "2006-Nov-12",
                                            "2007-Jan-02", "2008-Mar-04"}))
                    .ok());
    corpus.tables.push_back(std::move(text));
  }
  return corpus;
}

TEST(PatternIndexTest, CountsAndPmi) {
  PatternIndex index;
  index.AddCorpus(PatternCorpus());
  EXPECT_EQ(index.num_columns(), 120u);
  EXPECT_EQ(index.PatternCount("\\d+-\\d+-\\d+"), 60u);
  EXPECT_EQ(index.PatternCount("\\d+-\\l+-\\d+"), 60u);
  EXPECT_EQ(index.CoOccurrenceCount("\\d+-\\d+-\\d+", "\\d+-\\l+-\\d+"), 0u);
  // Never co-occurring frequent patterns: strongly negative PMI.
  EXPECT_LT(index.Pmi("\\d+-\\d+-\\d+", "\\d+-\\l+-\\d+"), -3.0);
  // Unseen pattern: no evidence.
  EXPECT_DOUBLE_EQ(index.Pmi("\\d+-\\d+-\\d+", "\\l+\\l+"), 0.0);
}

TEST(PmiDetectorTest, FlagsMinorityIncompatiblePattern) {
  PatternIndex index;
  index.AddCorpus(PatternCorpus());
  PmiDetector detector(index, /*pmi_threshold=*/-2.0);

  Table table("mixed");
  ASSERT_TRUE(table.AddColumn(Column("d", {"2001-01-01", "2002-03-04",
                                           "2003-05-06", "2004-07-08",
                                           "2005-09-10", "2006-11-12",
                                           "2007-01-02", "2001-Jan-01"}))
                  .ok());
  std::vector<Finding> findings;
  detector.Detect(table, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].error_class, ErrorClass::kPattern);
  EXPECT_EQ(findings[0].rows, (std::vector<size_t>{7}));
  EXPECT_EQ(findings[0].value, "2001-Jan-01");
  EXPECT_LT(findings[0].score, std::exp(-2.0));
}

TEST(PmiDetectorTest, SilentOnUniformColumn) {
  PatternIndex index;
  index.AddCorpus(PatternCorpus());
  PmiDetector detector(index);
  Table table("uniform");
  ASSERT_TRUE(table.AddColumn(Column("d", {"2001-01-01", "2002-03-04",
                                           "2003-05-06", "2004-07-08",
                                           "2005-09-10", "2006-11-12",
                                           "2007-01-02", "2008-08-08"}))
                  .ok());
  std::vector<Finding> findings;
  detector.Detect(table, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(PmiDetectorTest, LargeMinorityNotFlagged) {
  PatternIndex index;
  index.AddCorpus(PatternCorpus());
  PmiDetector detector(index);
  // 50/50 mixture: neither side is a clear minority.
  Table table("half");
  ASSERT_TRUE(table.AddColumn(Column("d", {"2001-01-01", "2002-03-04",
                                           "2003-05-06", "2004-07-08",
                                           "2001-Jan-01", "2002-Mar-04",
                                           "2003-May-06", "2004-Jul-08"}))
                  .ok());
  std::vector<Finding> findings;
  detector.Detect(table, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(PatternEndToEndTest, TrainedModelFindsInjectedFormatErrors) {
  // Train a model (its pattern index rides along), inject date-format
  // errors, and let the facade's optional fifth detector find them.
  Trainer trainer;
  const Model model =
      trainer.Train(GenerateCorpus(WebCorpusSpec(1500, 91)).corpus);
  EXPECT_GT(model.pattern_index().num_columns(), 1000u);

  AnnotatedCorpus test = GenerateCorpus(WebCorpusSpec(300, 92));
  InjectionSpec spec;
  spec.spelling_rate = spec.outlier_rate = 0.0;
  spec.uniqueness_rate = spec.fd_rate = 0.0;
  spec.pattern_rate = 0.6;
  const GroundTruth truth = InjectErrors(&test, spec);
  ASSERT_GT(truth.CountClass(ErrorClass::kPattern), 5u);

  UniDetectOptions options;
  options.alpha = 1.0;
  options.DisableAllClasses();
  options.set_detect(ErrorClass::kPattern, true);
  UniDetect detector(&model, options);
  const std::vector<Finding> findings = detector.DetectCorpus(test.corpus);
  ASSERT_GE(findings.size(), 5u);
  size_t hits = 0;
  const size_t top = std::min<size_t>(findings.size(), 20);
  for (size_t i = 0; i < top; ++i) {
    if (truth.Matches(findings[i])) ++hits;
  }
  // The injected format errors dominate the top of the ranked list.
  EXPECT_GE(hits * 10, top * 8) << "hits " << hits << " of " << top;
}

TEST(PatternIndexTest, SerializationRoundTrip) {
  PatternIndex index;
  index.AddCorpus(PatternCorpus());
  auto restored = PatternIndex::Deserialize(index.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_columns(), index.num_columns());
  EXPECT_EQ(restored->PatternCount("\\d+-\\d+-\\d+"), 60u);
  EXPECT_DOUBLE_EQ(restored->Pmi("\\d+-\\d+-\\d+", "\\d+-\\l+-\\d+"),
                   index.Pmi("\\d+-\\d+-\\d+", "\\d+-\\l+-\\d+"));
}

TEST(PatternIndexTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PatternIndex::Deserialize("").ok());
  EXPECT_FALSE(PatternIndex::Deserialize("Wrong v9 3\n").ok());
}

}  // namespace
}  // namespace unidetect
