// End-to-end properties of the sharded offline build pipeline: the
// acceptance criteria of DESIGN.md section 11. Everything here compares
// EncodeModelSnapshot() bytes — "equivalent" always means bit-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "learn/trainer.h"
#include "model_format/model_snapshot.h"
#include "offline/offline_build.h"
#include "offline/shard_builder.h"
#include "util/binary_io.h"
#include "util/random.h"

namespace unidetect {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string WriteCorpusDir(const std::string& name, size_t num_tables,
                           uint64_t seed) {
  const std::string dir = FreshDir(name);
  const Corpus corpus = GenerateCorpus(WebCorpusSpec(num_tables, seed)).corpus;
  EXPECT_TRUE(SaveCorpusToDirectory(corpus, dir).ok());
  return dir;
}

/// The reference the pipeline must reproduce bit-for-bit: load the same
/// directory the plan covers and train in one shot.
std::string SingleShotBytes(const std::vector<std::string>& dirs) {
  Corpus corpus;
  for (const std::string& dir : dirs) {
    auto loaded = LoadCorpusFromDirectory(dir);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    for (Table& table : loaded->tables) {
      corpus.tables.push_back(std::move(table));
    }
  }
  const Model model = Trainer().Train(corpus);
  return EncodeModelSnapshot(model);
}

std::string MergedBytes(const std::string& build_dir) {
  auto merged = MergeOfflineBuild(build_dir);
  EXPECT_TRUE(merged.ok()) << merged.status().ToString();
  return EncodeModelSnapshot(*merged);
}

TEST(OfflinePipelineTest, ShardedBuildMatchesSingleShotBitForBit) {
  const std::string dir = WriteCorpusDir("offline_eq_corpus", 30, 5);
  const std::string want = SingleShotBytes({dir});
  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    const std::string build_dir =
        FreshDir("offline_eq_build_" + std::to_string(shards));
    ASSERT_TRUE(
        PlanOfflineBuild({dir}, TrainerOptions{}, shards, build_dir).ok());
    OfflineBuildOptions options;
    options.num_threads = shards % 3 + 1;
    auto report = RunOfflineBuild(build_dir, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->completed);
    EXPECT_EQ(report->built, 2 * std::min(shards, size_t{30}));
    EXPECT_EQ(MergedBytes(build_dir), want)
        << shards << "-shard build diverged from single-shot training";
  }
}

TEST(OfflinePipelineTest, ThreadCountDoesNotChangeOutput) {
  const std::string dir = WriteCorpusDir("offline_threads_corpus", 24, 11);
  std::string first;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    const std::string build_dir =
        FreshDir("offline_threads_build_" + std::to_string(threads));
    ASSERT_TRUE(PlanOfflineBuild({dir}, TrainerOptions{}, 6, build_dir).ok());
    OfflineBuildOptions options;
    options.num_threads = threads;
    auto report = RunOfflineBuild(build_dir, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string bytes = MergedBytes(build_dir);
    if (first.empty()) {
      first = bytes;
    } else {
      EXPECT_EQ(bytes, first) << threads << " threads diverged";
    }
  }
}

TEST(OfflinePipelineTest, MergeIsOrderInsensitiveAndAssociative) {
  const std::string dir = WriteCorpusDir("offline_order_corpus", 21, 13);
  const std::string build_dir = FreshDir("offline_order_build");
  ASSERT_TRUE(PlanOfflineBuild({dir}, TrainerOptions{}, 5, build_dir).ok());
  ASSERT_TRUE(RunOfflineBuild(build_dir).ok());
  auto plan = LoadShardPlan(OfflineManifestPath(build_dir));
  ASSERT_TRUE(plan.ok());

  // Every (stage, shard) partial, reloadable in any order.
  std::vector<std::string> paths;
  for (BuildStage stage : {BuildStage::kIndex, BuildStage::kObservations}) {
    for (size_t i = 0; i < plan->shards.size(); ++i) {
      paths.push_back(OfflinePartialPath(build_dir, stage, i));
    }
  }
  const auto fold = [&](const std::vector<std::string>& ordered) {
    Model merged(plan->trainer.model);
    for (const std::string& path : ordered) {
      auto bytes = ReadFileToString(path);
      EXPECT_TRUE(bytes.ok());
      auto partial = DecodeModelSnapshot(*bytes);
      EXPECT_TRUE(partial.ok()) << partial.status().ToString();
      merged.Merge(*partial);
    }
    merged.Finalize();
    return EncodeModelSnapshot(merged);
  };

  // Commutativity: random permutations of the fold order.
  const std::string want = fold(paths);
  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    std::vector<std::string> shuffled = paths;
    rng.Shuffle(shuffled);
    EXPECT_EQ(fold(shuffled), want) << "fold order " << round << " diverged";
  }

  // Associativity: pairwise tree reduction == the linear fold. Leaves
  // merge into intermediate models that merge into the root, exercising
  // partial-into-partial grouping instead of partial-into-accumulator.
  std::vector<Model> level;
  for (const std::string& path : paths) {
    auto bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok());
    auto partial = DecodeModelSnapshot(*bytes);
    ASSERT_TRUE(partial.ok());
    Model wrapper(plan->trainer.model);
    wrapper.Merge(*partial);
    level.push_back(std::move(wrapper));
  }
  while (level.size() > 1) {
    std::vector<Model> next;
    for (size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) {
        level[i].Finalize();
        level[i + 1].Finalize();
        Model pair(plan->trainer.model);
        pair.Merge(level[i]);
        pair.Merge(level[i + 1]);
        next.push_back(std::move(pair));
      } else {
        next.push_back(std::move(level[i]));
      }
    }
    level = std::move(next);
  }
  level[0].Finalize();
  EXPECT_EQ(EncodeModelSnapshot(level[0]), want);
}

TEST(OfflinePipelineTest, KilledBuildResumesToIdenticalBytes) {
  const std::string dir = WriteCorpusDir("offline_resume_corpus", 18, 17);
  const std::string want = SingleShotBytes({dir});
  const std::string build_dir = FreshDir("offline_resume_build");
  ASSERT_TRUE(PlanOfflineBuild({dir}, TrainerOptions{}, 6, build_dir).ok());

  // "Kill" the build after three shard-stages.
  size_t started = 0;
  OfflineBuildOptions options;
  options.keep_going = [&](BuildStage, size_t) { return started++ < 3; };
  auto report = RunOfflineBuild(build_dir, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->completed);
  EXPECT_EQ(report->built, 3u);
  // An interrupted build must not merge.
  EXPECT_FALSE(MergeOfflineBuild(build_dir).ok());

  // Resume: the three journaled shards are skipped, the rest built.
  auto resumed = RunOfflineBuild(build_dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->completed);
  EXPECT_EQ(resumed->skipped, 3u);
  EXPECT_EQ(resumed->built, 9u);
  EXPECT_EQ(MergedBytes(build_dir), want);
}

TEST(OfflinePipelineTest, CorruptPartialIsRebuiltOnResume) {
  const std::string dir = WriteCorpusDir("offline_corrupt_corpus", 12, 19);
  const std::string want = SingleShotBytes({dir});
  const std::string build_dir = FreshDir("offline_corrupt_build");
  ASSERT_TRUE(PlanOfflineBuild({dir}, TrainerOptions{}, 4, build_dir).ok());
  ASSERT_TRUE(RunOfflineBuild(build_dir).ok());

  // Flip one byte of a journaled partial: the journal still vouches for
  // it, but the re-hash on resume must not.
  const std::string victim =
      OfflinePartialPath(build_dir, BuildStage::kIndex, 2);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    f.put('\x5a');
  }
  EXPECT_FALSE(MergeOfflineBuild(build_dir).ok());
  EXPECT_FALSE(VerifyOfflineBuild(build_dir).ok());

  auto resumed = RunOfflineBuild(build_dir);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->rebuilt, 1u);
  EXPECT_EQ(resumed->built, 1u);
  EXPECT_EQ(resumed->skipped, 7u);
  EXPECT_EQ(MergedBytes(build_dir), want);

  auto verify = VerifyOfflineBuild(build_dir, /*check_inputs=*/true);
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  EXPECT_TRUE(verify->mergeable());
  EXPECT_EQ(verify->inputs_checked, 12u);
}

TEST(OfflinePipelineTest, IncrementalGrowthReusesOldShards) {
  const std::string dir_a = WriteCorpusDir("offline_incr_a", 14, 23);
  const std::string dir_b = WriteCorpusDir("offline_incr_b", 8, 29);
  const std::string build_dir = FreshDir("offline_incr_build");
  ASSERT_TRUE(PlanOfflineBuild({dir_a}, TrainerOptions{}, 3, build_dir).ok());
  ASSERT_TRUE(RunOfflineBuild(build_dir).ok());
  auto before = MergeOfflineBuild(build_dir);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(AddOfflineInputs(build_dir, {dir_b}, 2).ok());
  // The grown plan invalidates nothing: all six old shard-stages verify
  // and are reused; only the four new ones build.
  auto report = RunOfflineBuild(build_dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->skipped, 6u);
  EXPECT_EQ(report->built, 4u);

  auto after = MergeOfflineBuild(build_dir);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->num_observations(), before->num_observations());
  // The merged indexes are additive, so the incremental token index
  // matches a from-scratch build exactly even though old observations
  // keep their original feature keys (the documented approximation).
  Corpus combined;
  for (const std::string& dir : {dir_a, dir_b}) {
    auto loaded = LoadCorpusFromDirectory(dir);
    ASSERT_TRUE(loaded.ok());
    for (Table& table : loaded->tables) {
      combined.tables.push_back(std::move(table));
    }
  }
  const Model fresh = Trainer().Train(combined);
  EXPECT_EQ(after->token_index().num_tokens(),
            fresh.token_index().num_tokens());
  EXPECT_EQ(after->token_index().num_tables(),
            fresh.token_index().num_tables());
}

}  // namespace
}  // namespace unidetect
