// Tests for the multi-pass linter, pinned against the fixture files in
// tests/lint_fixtures/ (exact finding counts, per-pass selection, and
// per-pass NOLINT suppression semantics).

#include "lint/lint.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace unidetect {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(UNIDETECT_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  const std::string path = FixturePath(name);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintResult LintFixture(const std::string& name) {
  return LintSource(FixturePath(name), ReadFixture(name));
}

LintResult LintFixtureWithPasses(const std::string& name,
                                 const std::vector<std::string>& passes) {
  return LintSource(FixturePath(name), ReadFixture(name), passes,
                    OptionsForPath(FixturePath(name)));
}

std::map<std::string, int> CountByCheck(const LintResult& result) {
  std::map<std::string, int> counts;
  for (const auto& finding : result.findings) ++counts[finding.check];
  return counts;
}

// ---------------------------------------------------------------------------
// Registry

TEST(LintRegistryTest, PassNamesAndOrder) {
  const std::vector<std::string>& names = PassNames();
  ASSERT_EQ(names.size(), 3u);
  // Determinism first: the original single-pass behavior is the prefix.
  EXPECT_EQ(names[0], "determinism");
  EXPECT_EQ(names[1], "unsafe-bytes");
  EXPECT_EQ(names[2], "checked-arithmetic");
  for (const std::string& name : names) EXPECT_TRUE(IsPassName(name));
  EXPECT_FALSE(IsPassName("no-such-pass"));
  EXPECT_FALSE(IsPassName(""));
}

// ---------------------------------------------------------------------------
// Determinism pass (ported from the single-pass linter; counts pinned)

TEST(DeterminismPassTest, CleanFixtureHasNoFindings) {
  LintResult result = LintFixture("good_sorted_iteration.cc");
  EXPECT_TRUE(result.findings.empty())
      << result.findings.size() << " unexpected findings, first: "
      << (result.findings.empty() ? "" : result.findings[0].message);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismPassTest, UnorderedAppendsFlagged) {
  LintResult result = LintFixture("bad_unordered_append.cc");
  ASSERT_EQ(result.findings.size(), 3u);
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.pass, "determinism");
    EXPECT_EQ(finding.check, "unordered-iteration");
  }
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismPassTest, BannedSourcesFlagged) {
  LintResult result = LintFixture("bad_banned_sources.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["banned-source"], 5);
  EXPECT_EQ(counts["pointer-key"], 2);
  EXPECT_EQ(result.findings.size(), 7u);
}

TEST(DeterminismPassTest, PointerKeysOverMappedRegionsFlagged) {
  // The zero-copy snapshot path hands out spans into a mapped region;
  // keying anything on those addresses is run-to-run nondeterministic
  // (ASLR moves the mapping). The fixture collects the shapes the v2
  // reader must never grow.
  LintResult result = LintFixture("bad_pointer_key_mapped.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["pointer-key"], 3);
  EXPECT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismPassTest, PointerKeyedCachesFlagged) {
  // The serving tier memoizes findings; this fixture collects the
  // pointer-keyed cache shapes (request address, column address, LRU
  // node address) that the linter must keep rejecting — the real cache
  // keys on content fingerprints and evicts in LRU list order.
  LintResult result = LintFixture("bad_pointer_key_cache.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["pointer-key"], 3);
  EXPECT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(DeterminismPassTest, MutableStateFlagged) {
  LintResult result = LintFixture("bad_mutable_state.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["mutable-global"], 2);
  EXPECT_EQ(counts["mutable-static"], 1);
  EXPECT_EQ(result.findings.size(), 3u);
}

TEST(DeterminismPassTest, NolintSuppressesFindings) {
  LintResult result = LintFixture("nolint_suppression.cc");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "mutable-global");
  EXPECT_EQ(result.suppressed, 2);
}

TEST(DeterminismPassTest, FindingsAreSortedAndCarryLines) {
  LintResult result = LintFixture("bad_mutable_state.cc");
  ASSERT_EQ(result.findings.size(), 3u);
  for (size_t i = 1; i < result.findings.size(); ++i) {
    EXPECT_LE(result.findings[i - 1].line, result.findings[i].line);
  }
  for (const auto& finding : result.findings) {
    EXPECT_GT(finding.line, 0);
    EXPECT_NE(finding.file.find("bad_mutable_state.cc"), std::string::npos);
  }
}

TEST(DeterminismPassTest, RandomOwnerFileMayUseEngines) {
  const std::string source = "void Seed() { std::mt19937 gen; (void)gen; }\n";
  EXPECT_TRUE(LintSource("src/util/random.cc", source).findings.empty());
  EXPECT_EQ(LintSource("src/detect/foo.cc", source).findings.size(), 1u);
}

// ---------------------------------------------------------------------------
// Unsafe-bytes pass

TEST(UnsafeBytesPassTest, WireReinterpretFixtureFlagged) {
  LintResult result = LintFixture("bad_wire_reinterpret.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["wire-reinterpret"], 2);
  EXPECT_EQ(counts["wire-pointer-arith"], 2);
  EXPECT_EQ(counts["wire-memcpy"], 1);
  EXPECT_EQ(result.findings.size(), 5u);
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.pass, "unsafe-bytes");
  }
}

TEST(UnsafeBytesPassTest, SocketBufferReinterpretFixtureFlagged) {
  // The network front end's failure mode: overlaying a socket receive
  // buffer with a header struct instead of decoding through the bounded
  // cursor. Every raw shape is flagged; the one justified sockaddr ABI
  // cast is suppressed by its NOLINT and counted as such.
  LintResult result = LintFixture("bad_socket_reinterpret.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["wire-reinterpret"], 2);
  EXPECT_EQ(counts["wire-pointer-arith"], 1);
  EXPECT_EQ(counts["wire-memcpy"], 1);
  EXPECT_EQ(result.findings.size(), 4u);
  EXPECT_EQ(result.suppressed, 1);
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.pass, "unsafe-bytes");
  }
}

TEST(UnsafeBytesPassTest, SafeCursorModulesAreAllowlisted) {
  // The same hostile shapes are legal inside the audited safe-cursor
  // modules — that is where they are supposed to live.
  const std::string source = ReadFixture("bad_wire_reinterpret.cc");
  EXPECT_TRUE(
      LintSource("src/util/bounded_reader.h", source).findings.empty());
  EXPECT_TRUE(LintSource("src/util/binary_io.h", source).findings.empty());
  EXPECT_TRUE(LintSource("src/util/binary_io.cc", source).findings.empty());
}

TEST(UnsafeBytesPassTest, NolintWithPassNameSuppresses) {
  const std::string source =
      "void Load(const char* p) {\n"
      "  // trusted in-memory source. NOLINTNEXTLINE(unsafe-bytes)\n"
      "  const float* f = reinterpret_cast<const float*>(p);\n"
      "  (void)f;\n"
      "}\n";
  LintResult result = LintSource("src/detect/foo.cc", source);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed, 1);
}

TEST(UnsafeBytesPassTest, BareNolintSuppressesNothing) {
  const std::string source =
      "void Load(const char* p) {\n"
      "  const float* f = reinterpret_cast<const float*>(p);  // NOLINT\n"
      "  (void)f;\n"
      "}\n";
  LintResult result = LintSource("src/detect/foo.cc", source);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "wire-reinterpret");
  EXPECT_EQ(result.suppressed, 0);
}

TEST(UnsafeBytesPassTest, NolintForOtherPassDoesNotSuppress) {
  const std::string source =
      "void Load(const char* p) {\n"
      "  // NOLINTNEXTLINE(determinism)\n"
      "  const float* f = reinterpret_cast<const float*>(p);\n"
      "  (void)f;\n"
      "}\n";
  LintResult result = LintSource("src/detect/foo.cc", source);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].pass, "unsafe-bytes");
}

// ---------------------------------------------------------------------------
// Checked-arithmetic pass

TEST(CheckedArithmeticPassTest, UncheckedMulFixtureFlagged) {
  LintResult result = LintFixture("bad_unchecked_mul.cc");
  auto counts = CountByCheck(result);
  EXPECT_EQ(counts["unchecked-mul"], 2);  // one direct, one propagated
  EXPECT_EQ(counts["unchecked-add"], 1);
  EXPECT_EQ(counts["narrowing-cast"], 1);
  EXPECT_EQ(result.findings.size(), 4u);
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.pass, "checked-arithmetic");
  }
}

TEST(CheckedArithmeticPassTest, CheckedHelpersPassClean) {
  LintResult result = LintFixture("good_bounded_reader.cc");
  EXPECT_TRUE(result.findings.empty())
      << result.findings.size() << " unexpected findings, first: "
      << (result.findings.empty() ? "" : result.findings[0].message);
  EXPECT_EQ(result.suppressed, 0);
}

TEST(CheckedArithmeticPassTest, TaintDiesWithItsScope) {
  // `offset` is wire-tainted inside Parse; the unrelated helper below
  // reuses the name for trusted arithmetic and must stay clean.
  const std::string source =
      "bool Parse(Reader& r) {\n"
      "  uint64_t offset = 0;\n"
      "  if (!r.ReadU64(&offset)) return false;\n"
      "  return offset > 0;\n"
      "}\n"
      "uint64_t Align(uint64_t offset) { return offset + 63; }\n";
  LintResult result = LintSource("src/detect/foo.cc", source);
  EXPECT_TRUE(result.findings.empty())
      << (result.findings.empty() ? "" : result.findings[0].message);
}

TEST(CheckedArithmeticPassTest, AssignOrReturnResultIsTainted) {
  const std::string source =
      "Status Parse(Reader& r) {\n"
      "  UNIDETECT_ASSIGN_OR_RETURN(const uint64_t count, r.ReadCount());\n"
      "  uint64_t bytes = count * 8;\n"
      "  (void)bytes;\n"
      "  return Status::Ok();\n"
      "}\n";
  LintResult result = LintSource("src/detect/foo.cc", source);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].check, "unchecked-mul");
}

TEST(CheckedArithmeticPassTest, DeclarationParametersAreNotSources) {
  // `ReadCsvFile(const std::string& path, ...)` is a declaration: the
  // `&` is a reference parameter, not an out-param at a call site.
  const std::string source =
      "Status ReadCsvFile(const std::string& path, Table* out);\n"
      "std::string Join(const std::string& path) { return path + \"/x\"; }\n";
  LintResult result = LintSource("src/detect/foo.cc", source);
  EXPECT_TRUE(result.findings.empty())
      << (result.findings.empty() ? "" : result.findings[0].message);
}

// ---------------------------------------------------------------------------
// Pass selection

TEST(PassSelectionTest, DeterminismOnlyKeepsOldBehavior) {
  // `--passes=determinism` reproduces the original single-pass linter:
  // the unchecked-arithmetic fixture has no determinism findings.
  LintResult result =
      LintFixtureWithPasses("bad_unchecked_mul.cc", {"determinism"});
  EXPECT_TRUE(result.findings.empty());
  LintResult old = LintFixtureWithPasses("bad_mutable_state.cc",
                                         {"determinism"});
  EXPECT_EQ(old.findings.size(), 3u);
}

TEST(PassSelectionTest, SingleNewPassRunsAlone) {
  LintResult result =
      LintFixtureWithPasses("bad_wire_reinterpret.cc", {"unsafe-bytes"});
  EXPECT_EQ(result.findings.size(), 5u);
  LintResult none = LintFixtureWithPasses("bad_wire_reinterpret.cc",
                                          {"checked-arithmetic"});
  EXPECT_TRUE(none.findings.empty());
}

// ---------------------------------------------------------------------------
// Report

TEST(ReportJsonTest, ShapeCarriesPassesAndFindings) {
  LintResult result = LintFixture("nolint_suppression.cc");
  const std::string json = ReportJson(1, {}, result);
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
  EXPECT_NE(json.find("\"passes\":[\"determinism\",\"unsafe-bytes\","
                      "\"checked-arithmetic\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pass\":\"determinism\""), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"mutable-global\""), std::string::npos);
}

TEST(ReportJsonTest, SelectedPassesAreListed) {
  LintResult empty;
  const std::string json = ReportJson(0, {"unsafe-bytes"}, empty);
  EXPECT_NE(json.find("\"passes\":[\"unsafe-bytes\"]"), std::string::npos);
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace unidetect
