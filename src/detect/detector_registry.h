// DetectorRegistry: the factory layer between the UniDetect facade and
// the per-class detectors. Each error class registers a factory (from
// its own translation unit, via the Register*Detector functions declared
// in the detector headers), so the facade never hard-wires concrete
// detector types and new error classes plug in without touching it.
//
// Registration is explicit rather than via self-registering static
// objects: the library is linked statically, and a detector TU whose
// symbols are otherwise unreferenced could legally be dropped by the
// linker — taking its registration with it. An explicit Builtin()
// composition is immune to that and keeps registration order (and thus
// every derived default) deterministic.

#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "detect/detector.h"
#include "util/status.h"

namespace unidetect {

class Dictionary;
class ModelStack;
struct UniDetectOptions;

/// \brief Everything a detector factory may consult at construction
/// time. Pointers are non-owning; `dictionary` is null unless the
/// facade built one (UniDetectOptions::use_dictionary). `model` is the
/// layered serving stack (learn/model_stack.h) — a single flat Model
/// reaches detectors as a one-layer stack via ModelStack::Borrow.
struct DetectorContext {
  const ModelStack* model = nullptr;
  const Dictionary* dictionary = nullptr;
  const UniDetectOptions* options = nullptr;
};

/// \brief Factory map keyed by ErrorClass.
class DetectorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Detector>(const DetectorContext&)>;

  /// \brief Registers a factory for `cls`. `enabled_by_default` seeds
  /// the per-class flag in UniDetectOptions (see DefaultDetectorEnables).
  /// Registering a class twice is AlreadyExists.
  Status Register(ErrorClass cls, bool enabled_by_default, Factory factory);

  bool Has(ErrorClass cls) const;
  bool EnabledByDefault(ErrorClass cls) const;

  /// \brief Registered classes in ascending ErrorClass order.
  std::vector<ErrorClass> Classes() const;

  /// \brief Instantiates the detector for `cls` (null if unregistered).
  std::unique_ptr<Detector> Create(ErrorClass cls,
                                   const DetectorContext& context) const;

  /// \brief Per-class default-enable flags, indexed by ErrorClass;
  /// unregistered classes are false.
  std::array<bool, kNumErrorClasses> DefaultEnables() const;

  /// \brief The registry with every built-in detector registered: the
  /// four paper classes (Sections 3.1-3.4) enabled by default and the
  /// pattern class (Section 3.5) registered but off by default.
  static const DetectorRegistry& Builtin();

 private:
  struct Entry {
    Factory factory;  // empty when unregistered
    bool enabled_by_default = false;
  };
  std::array<Entry, kNumErrorClasses> entries_;
};

}  // namespace unidetect
