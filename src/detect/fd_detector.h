// FD-violation detection via perturbation LR over FR (Section 3.4).

#pragma once

#include <cstddef>

#include "detect/detector.h"
#include "learn/model_stack.h"

namespace unidetect {

class DetectorRegistry;

/// \brief Flags rows that break an FD (lhs -> rhs) which almost holds,
/// when the corpus evidence says such near-FDs are normally exact.
class FdDetector : public Detector {
 public:
  /// `model` must outlive the detector.
  explicit FdDetector(const ModelStack* model, size_t max_pairs_per_table = 30)
      : model_(model), max_pairs_per_table_(max_pairs_per_table) {}

  ErrorClass error_class() const override { return ErrorClass::kFd; }

  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const ModelStack* model_;
  size_t max_pairs_per_table_;
};

/// \brief Registers the FD detector (enabled by default); the pair cap
/// comes from UniDetectOptions::max_fd_pairs_per_table.
void RegisterFdDetector(DetectorRegistry* registry);

}  // namespace unidetect
