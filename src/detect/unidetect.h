// UniDetect: the unified facade (Definition 4). Runs the enabled
// per-class detectors over a table or corpus and returns one ranked list
// of findings, comparable across classes through their LR scores.

#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "corpus/corpus.h"
#include "detect/detector.h"
#include "detect/dictionary.h"
#include "learn/model.h"
#include "learn/model_stack.h"

namespace unidetect {

class DetectorRegistry;

/// \brief Per-class default-enable flags from the built-in registry
/// (DetectorRegistry::Builtin): the four paper classes on, pattern off.
/// Defined in detector_registry.cc.
std::array<bool, kNumErrorClasses> DefaultDetectorEnables();

/// \brief Facade configuration.
struct UniDetectOptions {
  /// Significance level alpha: findings with LR >= alpha are dropped.
  /// 1.0 keeps every finding with any surprise (useful for Precision@K
  /// sweeps where the consumer truncates the ranked list itself).
  double alpha = 0.05;
  /// Per-class enable flags, indexed by ErrorClass. Seeded from the
  /// registry defaults rather than a bespoke boolean per class, so a
  /// newly registered error class gets a flag without touching this
  /// struct. Pattern detection (the Auto-Detect mechanism of Section
  /// 3.5) is registered but off by default: the paper treats it as an
  /// orthogonal error class.
  std::array<bool, kNumErrorClasses> detect = DefaultDetectorEnables();

  bool detects(ErrorClass cls) const {
    return detect[static_cast<size_t>(cls)];
  }
  void set_detect(ErrorClass cls, bool enabled) {
    detect[static_cast<size_t>(cls)] = enabled;
  }
  /// \brief Turns every class off (callers then re-enable selectively,
  /// e.g. the eval harness isolating one class per run).
  void DisableAllClasses() { detect.fill(false); }

  /// PMI threshold for pattern findings (more negative = stricter).
  double pattern_pmi_threshold = -2.0;
  /// When true, builds a dictionary from the model's token index and runs
  /// the UNIDETECT+Dict spelling variant (Section 4.3).
  bool use_dictionary = false;
  /// Tokens must appear in at least this many corpus tables to enter the
  /// dictionary (only used when use_dictionary is true).
  uint64_t dictionary_min_table_count = 20;
  /// FD pair enumeration cap per table.
  size_t max_fd_pairs_per_table = 30;
  /// When > 0, DetectCorpus additionally applies Benjamini-Hochberg FDR
  /// control at this level over the final ranked list (the multiple-
  /// testing safeguard Section 2.2.3 calls out); 0 disables.
  double fdr_q = 0.0;
  /// Optional corpus-scan observer: invoked as progress(done, total)
  /// after each table finishes. Calls are serialized and `done` is
  /// strictly increasing even under the parallel path, but the callback
  /// runs on worker threads and must not re-enter UniDetect.
  std::function<void(size_t done, size_t total)> progress;
};

/// \brief The unified error detector. Construction instantiates the
/// enabled per-class detectors through a DetectorRegistry; the facade
/// itself only runs them, filters by alpha, ranks, and (for corpus
/// scans) applies FDR control.
class UniDetect {
 public:
  /// `model` must outlive the UniDetect instance (wrapped in a
  /// single-layer borrowed ModelStack internally). Detectors for the
  /// enabled classes come from `registry` (the built-in registry when
  /// null); `registry` is only consulted during construction.
  UniDetect(const Model* model, UniDetectOptions options = {},
            const DetectorRegistry* registry = nullptr);

  /// \brief Layered construction: detects against `stack` (base plus
  /// applied deltas). The shared_ptr keeps every layer's snapshot
  /// backing mapped for the detector's lifetime; answers are
  /// byte-identical to detecting against the Model::Merge fold of the
  /// stack's layers.
  UniDetect(std::shared_ptr<const ModelStack> stack,
            UniDetectOptions options = {},
            const DetectorRegistry* registry = nullptr);

  /// \brief All findings in one table, ranked most-confident first.
  std::vector<Finding> DetectTable(const Table& table) const;

  /// \brief All findings across a corpus, ranked most-confident first;
  /// each finding's table_index identifies its table. With num_threads
  /// != 1, tables are scanned in parallel (0 = hardware concurrency);
  /// the ranked output is identical regardless of thread count.
  std::vector<Finding> DetectCorpus(const Corpus& corpus,
                                    size_t num_threads = 1) const;

  const UniDetectOptions& options() const { return options_; }
  const Dictionary* dictionary() const { return dictionary_.get(); }

 private:
  // shared_ptr gives the stack a stable address across moves of this
  // facade (detectors hold raw pointers into it) and keeps delta layers
  // alive while any detector can still query them.
  std::shared_ptr<const ModelStack> stack_;
  UniDetectOptions options_;
  std::unique_ptr<Dictionary> dictionary_;
  std::vector<std::unique_ptr<Detector>> detectors_;
};

}  // namespace unidetect
