// Uniqueness-violation detection via perturbation LR over UR (Section 3.3).

#pragma once

#include "detect/detector.h"
#include "learn/model_stack.h"

namespace unidetect {

class DetectorRegistry;

/// \brief Flags duplicate values in columns that the corpus evidence says
/// are intended to be unique (ID-like subsets: mixed-alphanumeric type,
/// rare tokens, leftmost position).
class UniquenessDetector : public Detector {
 public:
  /// `model` must outlive the detector.
  explicit UniquenessDetector(const ModelStack* model) : model_(model) {}

  ErrorClass error_class() const override { return ErrorClass::kUniqueness; }

  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const ModelStack* model_;
};

/// \brief Registers the uniqueness detector (enabled by default).
void RegisterUniquenessDetector(DetectorRegistry* registry);

}  // namespace unidetect
