#include "detect/fdr.h"

namespace unidetect {

std::vector<Finding> ControlFdr(const std::vector<Finding>& ranked, double q,
                                size_t m) {
  if (m == 0) m = ranked.size();
  size_t keep = 0;
  for (size_t k = 1; k <= ranked.size(); ++k) {
    const double threshold =
        q * static_cast<double>(k) / static_cast<double>(m);
    if (ranked[k - 1].score <= threshold) keep = k;
  }
  return std::vector<Finding>(ranked.begin(),
                              ranked.begin() + static_cast<std::ptrdiff_t>(keep));
}

}  // namespace unidetect
