// Spelling-mistake detection via perturbation LR over MPD (Section 3.2),
// with the optional "+Dict" dictionary refutation of Section 4.3.

#pragma once

#include "detect/detector.h"
#include "detect/dictionary.h"
#include "learn/model_stack.h"

namespace unidetect {

class DetectorRegistry;

/// \brief Flags the closest value pair of a column when removing one
/// endpoint raises the column's MPD surprisingly.
class SpellingDetector : public Detector {
 public:
  /// `model` (and `dictionary`, if given) must outlive the detector.
  /// With a dictionary, findings whose pair values are both entirely
  /// made of known words are suppressed (the UNIDETECT+Dict variant).
  explicit SpellingDetector(const ModelStack* model,
                            const Dictionary* dictionary = nullptr)
      : model_(model), dictionary_(dictionary) {}

  ErrorClass error_class() const override { return ErrorClass::kSpelling; }

  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const ModelStack* model_;
  const Dictionary* dictionary_;
};

/// \brief Registers the spelling detector (enabled by default). The
/// factory wires in the context's dictionary, so the +Dict variant
/// follows UniDetectOptions::use_dictionary automatically.
void RegisterSpellingDetector(DetectorRegistry* registry);

}  // namespace unidetect
