// Dictionary: the "+Dict" refinement of Section 4.3. A spelling finding
// whose closest-pair values are both made of known-valid words
// ("Macroeconomics" vs "Microeconomics") is refuted and suppressed.
//
// The paper uses Wiktionary; we build the dictionary from the background
// corpus itself — tokens occurring in at least `min_table_count` corpus
// tables are considered real words (typos are rare enough in a mostly
// clean corpus not to clear the bar).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>

#include "corpus/token_index.h"

namespace unidetect {

/// \brief A set of known-valid (case-folded) words.
class Dictionary {
 public:
  Dictionary() = default;

  /// \brief Builds from a token prevalence index: every token appearing
  /// in >= min_table_count tables (and purely alphabetic, length >= 3)
  /// becomes a dictionary word.
  static Dictionary FromTokenIndex(const TokenIndex& index,
                                   uint64_t min_table_count = 20);

  /// \brief Same, over a (possibly layered) prevalence view — counts are
  /// summed across layers before the threshold test, so a base+deltas
  /// stack admits exactly the words its Model::Merge fold would.
  static Dictionary FromTokenPrevalence(const TokenPrevalence& prevalence,
                                        uint64_t min_table_count = 20);

  /// \brief Adds one word explicitly (tests, custom word lists).
  void AddWord(std::string_view word);

  size_t size() const { return words_.size(); }

  /// \brief True if the case-folded token is a known word.
  bool Contains(std::string_view word) const;

  /// \brief True when every alphabetic token of the cell (length >= 3)
  /// is a dictionary word — the refutation condition for +Dict.
  bool AllWordsKnown(std::string_view cell) const;

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace unidetect
