#include "detect/fd_detector.h"

#include <memory>

#include "detect/detector_registry.h"
#include "detect/unidetect.h"
#include "learn/candidates.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

void FdDetector::Detect(const Table& table, std::vector<Finding>* out) const {
  const ModelOptions& options = model_->options();
  size_t pairs = 0;
  for (size_t l = 0; l < table.num_columns(); ++l) {
    for (size_t r = 0; r < table.num_columns(); ++r) {
      if (l == r) continue;
      if (pairs >= max_pairs_per_table_) return;
      ++pairs;
      const FdCandidate cand = ExtractFdCandidate(
          table.column(l), table.column(r), model_->token_prevalence(),
          options);
      if (!cand.valid || cand.dropped_rows.empty()) continue;
      // Same reasoning as the uniqueness detector: an FD candidate is
      // only credible when dropping the suspected rows makes the
      // dependency hold exactly (FR(D_O^P) = 1, as in Figure 4(c)).
      if (cand.theta2 < 1.0) continue;
      const double lr = model_->LikelihoodRatio(ErrorClass::kFd, cand.key,
                                                cand.theta1, cand.theta2);
      if (lr >= 1.0) continue;

      Finding finding;
      finding.error_class = ErrorClass::kFd;
      finding.table_name = table.name();
      finding.column = l;
      finding.column2 = r;
      finding.rows = cand.dropped_rows;
      finding.value = table.column(l).cell(cand.dropped_rows.front()) +
                      " -> " +
                      table.column(r).cell(cand.dropped_rows.front());
      finding.score = lr;
      finding.explanation =
          StrCat("FR(", table.column(l).name(), " -> ",
                 table.column(r).name(), ") ", cand.theta1, " -> ",
                 cand.theta2, " after dropping ", cand.dropped_rows.size(),
                 " violating row(s), LR=", lr);
      out->push_back(std::move(finding));
    }
  }
}

void RegisterFdDetector(DetectorRegistry* registry) {
  const Status st = registry->Register(
      ErrorClass::kFd, /*enabled_by_default=*/true,
      [](const DetectorContext& context) -> std::unique_ptr<Detector> {
        return std::make_unique<FdDetector>(
            context.model, context.options->max_fd_pairs_per_table);
      });
  UNIDETECT_CHECK(st.ok());
}

}  // namespace unidetect
