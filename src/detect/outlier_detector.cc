#include "detect/outlier_detector.h"

#include <memory>

#include "detect/detector_registry.h"
#include "learn/candidates.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

void OutlierDetector::Detect(const Table& table,
                             std::vector<Finding>* out) const {
  const ModelOptions& options = model_->options();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const OutlierCandidate cand =
        ExtractOutlierCandidate(table.column(c), options);
    if (!cand.valid) continue;
    // A value within ~3 MADs is not even a candidate outlier under the
    // classical robust-statistics convention [48]; without this floor the
    // LR test can fire on rare-but-benign transitions (e.g. 1.9 -> 1.2)
    // whose endpoints are both unremarkable.
    if (cand.theta1 < 3.0) continue;
    const double lr = model_->LikelihoodRatio(ErrorClass::kOutlier, cand.key,
                                              cand.theta1, cand.theta2);
    if (lr >= 1.0) continue;

    Finding finding;
    finding.error_class = ErrorClass::kOutlier;
    finding.table_name = table.name();
    finding.column = c;
    finding.rows = {cand.row};
    finding.value = cand.cell;
    finding.score = lr;
    finding.explanation =
        StrCat("max-MAD ", cand.theta1, " -> ", cand.theta2,
               " after removing '", cand.cell, "', LR=", lr);
    out->push_back(std::move(finding));
  }
}

void RegisterOutlierDetector(DetectorRegistry* registry) {
  const Status st = registry->Register(
      ErrorClass::kOutlier, /*enabled_by_default=*/true,
      [](const DetectorContext& context) -> std::unique_ptr<Detector> {
        return std::make_unique<OutlierDetector>(context.model);
      });
  UNIDETECT_CHECK(st.ok());
}

}  // namespace unidetect
