#include "detect/finding_json.h"

#include <sstream>

#include "util/json.h"

namespace unidetect {

std::string FindingToJson(const Finding& finding) {
  std::ostringstream os;
  os << "{\"class\":" << JsonString(ErrorClassToString(finding.error_class))
     << ",\"table\":" << finding.table_index
     << ",\"table_name\":" << JsonString(finding.table_name)
     << ",\"column\":" << finding.column;
  if (finding.column2 != Finding::kNoColumn) {
    os << ",\"column2\":" << finding.column2;
  }
  os << ",\"rows\":[";
  for (size_t i = 0; i < finding.rows.size(); ++i) {
    if (i > 0) os << ',';
    os << finding.rows[i];
  }
  os << "],\"value\":" << JsonString(finding.value)
     << ",\"score\":" << finding.score
     << ",\"explanation\":" << JsonString(finding.explanation) << "}";
  return os.str();
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",\n ";
    out += FindingToJson(findings[i]);
  }
  out += "]";
  return out;
}

}  // namespace unidetect
