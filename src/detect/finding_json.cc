#include "detect/finding_json.h"

#include "util/json.h"
#include "util/string_util.h"

namespace unidetect {

std::string FindingToJson(const Finding& finding) {
  // Keys are emitted in the fixed order documented in finding_json.h;
  // consumers and the golden-file test depend on it byte for byte.
  std::string out;
  StrAppend(&out, "{\"class\":",
            JsonString(ErrorClassToString(finding.error_class)),
            ",\"table\":", finding.table_index,
            ",\"table_name\":", JsonString(finding.table_name),
            ",\"column\":", finding.column);
  if (finding.column2 != Finding::kNoColumn) {
    StrAppend(&out, ",\"column2\":", finding.column2);
  }
  out += ",\"rows\":[";
  for (size_t i = 0; i < finding.rows.size(); ++i) {
    if (i > 0) out += ',';
    StrAppend(&out, finding.rows[i]);
  }
  StrAppend(&out, "],\"value\":", JsonString(finding.value),
            ",\"score\":", finding.score,
            ",\"explanation\":", JsonString(finding.explanation), "}");
  return out;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",\n ";
    out += FindingToJson(findings[i]);
  }
  out += "]";
  return out;
}

}  // namespace unidetect
