#include "detect/unidetect.h"

#include "autodetect/pmi_detector.h"
#include "detect/fd_detector.h"
#include "detect/fdr.h"
#include "detect/outlier_detector.h"
#include "detect/spelling_detector.h"
#include "detect/uniqueness_detector.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace unidetect {

namespace {
// Scan-progress state shared by the DetectCorpus worker shards; the lock
// both guards the counter and serializes the user callback so observers
// see a strictly increasing `done`.
struct ProgressState {
  Mutex mu;
  size_t done GUARDED_BY(mu) = 0;
};
}  // namespace

UniDetect::UniDetect(const Model* model, UniDetectOptions options)
    : model_(model), options_(options) {
  if (options_.use_dictionary) {
    dictionary_ = std::make_unique<Dictionary>(Dictionary::FromTokenIndex(
        model_->token_index(), options_.dictionary_min_table_count));
  }
  if (options_.detect_outliers) {
    detectors_.push_back(std::make_unique<OutlierDetector>(model_));
  }
  if (options_.detect_spelling) {
    detectors_.push_back(
        std::make_unique<SpellingDetector>(model_, dictionary_.get()));
  }
  if (options_.detect_uniqueness) {
    detectors_.push_back(std::make_unique<UniquenessDetector>(model_));
  }
  if (options_.detect_fd) {
    detectors_.push_back(std::make_unique<FdDetector>(
        model_, options_.max_fd_pairs_per_table));
  }
  if (options_.detect_patterns) {
    detectors_.push_back(std::make_unique<PmiDetector>(
        &model_->pattern_index(), options_.pattern_pmi_threshold));
  }
}

std::vector<Finding> UniDetect::DetectTable(const Table& table) const {
  std::vector<Finding> findings;
  for (const auto& detector : detectors_) {
    detector->Detect(table, &findings);
  }
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& finding : findings) {
    if (finding.score < options_.alpha) kept.push_back(std::move(finding));
  }
  SortFindings(&kept);
  return kept;
}

std::vector<Finding> UniDetect::DetectCorpus(const Corpus& corpus,
                                             size_t num_threads) const {
  std::vector<std::vector<Finding>> per_table(corpus.tables.size());
  const size_t total = corpus.tables.size();
  ProgressState progress;
  auto report_done = [&]() {
    if (!options_.progress) return;
    MutexLock lock(&progress.mu);
    options_.progress(++progress.done, total);
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < corpus.tables.size(); ++i) {
      per_table[i] = DetectTable(corpus.tables[i]);
      report_done();
    }
  } else {
    // Detection is read-only over the model, so tables shard freely; the
    // per-table collection keeps the merged order independent of the
    // thread count.
    ThreadPool pool(num_threads);
    ParallelFor(pool, corpus.tables.size(),
                [&](size_t, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    per_table[i] = DetectTable(corpus.tables[i]);
                    report_done();
                  }
                });
  }
  std::vector<Finding> all;
  for (size_t i = 0; i < per_table.size(); ++i) {
    for (auto& finding : per_table[i]) {
      finding.table_index = i;
      all.push_back(std::move(finding));
    }
  }
  SortFindings(&all);
  if (options_.fdr_q > 0.0) {
    all = ControlFdr(all, options_.fdr_q);
  }
  return all;
}

}  // namespace unidetect
