#include "detect/unidetect.h"

#include <utility>

#include "detect/detector_registry.h"
#include "detect/fdr.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace unidetect {

namespace {
// Scan-progress state shared by the DetectCorpus worker shards; the lock
// both guards the counter and serializes the user callback so observers
// see a strictly increasing `done`.
struct ProgressState {
  Mutex mu;
  size_t done GUARDED_BY(mu) = 0;
};
}  // namespace

UniDetect::UniDetect(const Model* model, UniDetectOptions options,
                     const DetectorRegistry* registry)
    : UniDetect(std::make_shared<const ModelStack>(ModelStack::Borrow(model)),
                std::move(options), registry) {}

UniDetect::UniDetect(std::shared_ptr<const ModelStack> stack,
                     UniDetectOptions options, const DetectorRegistry* registry)
    : stack_(std::move(stack)), options_(std::move(options)) {
  if (options_.use_dictionary) {
    dictionary_ =
        std::make_unique<Dictionary>(Dictionary::FromTokenPrevalence(
            stack_->token_prevalence(), options_.dictionary_min_table_count));
  }
  const DetectorRegistry& reg =
      registry != nullptr ? *registry : DetectorRegistry::Builtin();
  const DetectorContext context{stack_.get(), dictionary_.get(), &options_};
  for (ErrorClass cls : reg.Classes()) {
    if (!options_.detects(cls)) continue;
    detectors_.push_back(reg.Create(cls, context));
  }
}

std::vector<Finding> UniDetect::DetectTable(const Table& table) const {
  std::vector<Finding> findings;
  for (const auto& detector : detectors_) {
    detector->Detect(table, &findings);
  }
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& finding : findings) {
    if (finding.score < options_.alpha) kept.push_back(std::move(finding));
  }
  SortFindings(&kept);
  return kept;
}

std::vector<Finding> UniDetect::DetectCorpus(const Corpus& corpus,
                                             size_t num_threads) const {
  std::vector<std::vector<Finding>> per_table(corpus.tables.size());
  const size_t total = corpus.tables.size();
  ProgressState progress;
  auto report_done = [&]() {
    if (!options_.progress) return;
    MutexLock lock(&progress.mu);
    options_.progress(++progress.done, total);
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < corpus.tables.size(); ++i) {
      per_table[i] = DetectTable(corpus.tables[i]);
      report_done();
    }
  } else {
    // Detection is read-only over the model, so tables shard freely; the
    // per-table collection keeps the merged order independent of the
    // thread count.
    ThreadPool pool(num_threads);
    ParallelFor(pool, corpus.tables.size(),
                [&](size_t, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    per_table[i] = DetectTable(corpus.tables[i]);
                    report_done();
                  }
                });
  }
  std::vector<Finding> all;
  for (size_t i = 0; i < per_table.size(); ++i) {
    for (auto& finding : per_table[i]) {
      finding.table_index = i;
      all.push_back(std::move(finding));
    }
  }
  SortFindings(&all);
  if (options_.fdr_q > 0.0) {
    all = ControlFdr(all, options_.fdr_q);
  }
  return all;
}

}  // namespace unidetect
