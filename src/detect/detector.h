// Detector: the interface all error-class detectors implement.

#pragma once

#include <vector>

#include "detect/finding.h"
#include "table/table.h"

namespace unidetect {

/// \brief Detects one class of errors in a table.
///
/// Implementations append zero or more findings, each carrying an LR
/// score; callers filter by significance and rank.
class Detector {
 public:
  virtual ~Detector() = default;

  /// \brief The error class this detector predicts.
  virtual ErrorClass error_class() const = 0;

  /// \brief Appends findings for `table` to `out`.
  virtual void Detect(const Table& table, std::vector<Finding>* out) const = 0;
};

}  // namespace unidetect
