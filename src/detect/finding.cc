#include "detect/finding.h"

#include <algorithm>
#include <tuple>

namespace unidetect {

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              const size_t row_a = a.rows.empty() ? 0 : a.rows.front();
              const size_t row_b = b.rows.empty() ? 0 : b.rows.front();
              return std::tie(a.score, a.table_index, a.column, a.column2,
                              row_a) < std::tie(b.score, b.table_index,
                                                b.column, b.column2, row_b);
            });
}

}  // namespace unidetect
