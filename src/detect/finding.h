// Finding: one predicted error, with the LR score that makes predictions
// comparable across error classes (Section 2.2.3: "a union of all errors
// as a ranked list").

#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "featurize/features.h"

namespace unidetect {

/// \brief One predicted error.
struct Finding {
  ErrorClass error_class = ErrorClass::kOutlier;
  /// Name of the table the finding is in.
  std::string table_name;
  /// Index of the table within a corpus-level run (0 for single tables).
  size_t table_index = 0;
  /// Column the finding concerns (lhs column for FD findings).
  size_t column = 0;
  /// rhs column for FD findings; kNoColumn otherwise.
  size_t column2 = kNoColumn;
  /// Suspected rows (outlier: 1 row; spelling: the closest pair;
  /// uniqueness: duplicate rows; FD: violating rows).
  std::vector<size_t> rows;
  /// Human-readable offending value(s).
  std::string value;
  /// Likelihood ratio; smaller = more surprising = more confident.
  double score = 1.0;
  /// One-line reasoning ("max-MAD 8.1 -> 3.5, LR=0.0003").
  std::string explanation;

  static constexpr size_t kNoColumn = std::numeric_limits<size_t>::max();
};

/// \brief Sorts findings most-confident first (ascending LR; ties broken
/// deterministically by table/column/row so runs are reproducible).
void SortFindings(std::vector<Finding>* findings);

}  // namespace unidetect
