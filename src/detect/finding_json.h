// JSON export of findings, for piping unidetect_cli output into other
// tools (spreadsheet plugins, dashboards, issue trackers).

#pragma once

#include <string>
#include <vector>

#include "detect/finding.h"

namespace unidetect {

/// \brief One finding as a JSON object, e.g.
/// {"class":"outlier","table":3,"column":1,"rows":[7],"value":"8.716",
///  "score":0.0003,"explanation":"..."}.
///
/// Key order is part of the contract (tests/golden/findings.json pins
/// it): class, table, table_name, column, column2 (FD findings only),
/// rows, value, score, explanation. Scores format as "%.6g". New keys
/// must be appended before "explanation", never inserted mid-object.
std::string FindingToJson(const Finding& finding);

/// \brief A ranked list as a JSON array (newline between elements).
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace unidetect
