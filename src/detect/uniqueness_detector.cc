#include "detect/uniqueness_detector.h"

#include <memory>

#include "detect/detector_registry.h"
#include "learn/candidates.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

void UniquenessDetector::Detect(const Table& table,
                                std::vector<Finding>* out) const {
  const ModelOptions& options = model_->options();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    const UniquenessCandidate cand = ExtractUniquenessCandidate(
        column, c, model_->token_prevalence(), options);
    if (!cand.valid || cand.dropped_rows.empty()) continue;
    // A uniqueness violation is only meaningful when removing the
    // suspected duplicates restores an exact uniqueness constraint
    // (every paper example has UR(D_O^P) = 1). A column that stays
    // non-unique after the epsilon-perturbation has no constraint to
    // violate — it is simply a non-key column.
    if (cand.theta2 < 1.0) continue;
    const double lr = model_->LikelihoodRatio(
        ErrorClass::kUniqueness, cand.key, cand.theta1, cand.theta2);
    if (lr >= 1.0) continue;

    Finding finding;
    finding.error_class = ErrorClass::kUniqueness;
    finding.table_name = table.name();
    finding.column = c;
    finding.rows = cand.dropped_rows;
    finding.value = column.cell(cand.dropped_rows.front());
    finding.score = lr;
    finding.explanation =
        StrCat("UR ", cand.theta1, " -> ", cand.theta2, " after dropping ",
               cand.dropped_rows.size(), " duplicate(s) like '",
               finding.value, "', LR=", lr);
    out->push_back(std::move(finding));
  }
}

void RegisterUniquenessDetector(DetectorRegistry* registry) {
  const Status st = registry->Register(
      ErrorClass::kUniqueness, /*enabled_by_default=*/true,
      [](const DetectorContext& context) -> std::unique_ptr<Detector> {
        return std::make_unique<UniquenessDetector>(context.model);
      });
  UNIDETECT_CHECK(st.ok());
}

}  // namespace unidetect
