// Numeric-outlier detection via perturbation LR (Section 3.1).

#pragma once

#include "detect/detector.h"
#include "learn/model_stack.h"

namespace unidetect {

class DetectorRegistry;

/// \brief Flags the most outlying numeric value of a column when removing
/// it makes the column's max-MAD drop surprisingly (small LR).
class OutlierDetector : public Detector {
 public:
  /// `model` must outlive the detector.
  explicit OutlierDetector(const ModelStack* model) : model_(model) {}

  ErrorClass error_class() const override { return ErrorClass::kOutlier; }

  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const ModelStack* model_;
};

/// \brief Registers the outlier detector (enabled by default).
void RegisterOutlierDetector(DetectorRegistry* registry);

}  // namespace unidetect
