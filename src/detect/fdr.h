// False-discovery-rate control over ranked findings.
//
// Section 2.2.3 raises FDR control [85] as an open challenge when many
// hypotheses are tested against the same corpus T. Treating each
// finding's likelihood ratio as its significance value, the
// Benjamini-Hochberg procedure picks the largest k such that
// LR_(k) <= (k / m) * q and keeps the k most significant findings,
// bounding the expected fraction of false discoveries by q.

#pragma once

#include <vector>

#include "detect/finding.h"

namespace unidetect {

/// \brief Applies Benjamini-Hochberg at level q to findings sorted
/// most-significant (smallest score) first; returns the kept prefix.
///
/// `m` is the number of hypotheses tested; pass 0 to use
/// findings.size() (appropriate when every candidate produced a
/// finding). Findings must already be sorted ascending by score.
std::vector<Finding> ControlFdr(const std::vector<Finding>& ranked, double q,
                                size_t m = 0);

}  // namespace unidetect
