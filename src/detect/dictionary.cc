#include "detect/dictionary.h"

#include <cctype>

#include "util/string_util.h"

namespace unidetect {

namespace {
bool IsAlphabetic(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}
}  // namespace

Dictionary Dictionary::FromTokenIndex(const TokenIndex& index,
                                      uint64_t min_table_count) {
  return FromTokenPrevalence(TokenPrevalence(index), min_table_count);
}

Dictionary Dictionary::FromTokenPrevalence(const TokenPrevalence& prevalence,
                                           uint64_t min_table_count) {
  Dictionary dict;
  prevalence.ForEachMergedToken([&](std::string_view token, uint64_t count) {
    if (count >= min_table_count && token.size() >= 3 &&
        IsAlphabetic(token)) {
      dict.words_.insert(std::string(token));
    }
  });
  return dict;
}

void Dictionary::AddWord(std::string_view word) {
  words_.insert(ToLower(word));
}

bool Dictionary::Contains(std::string_view word) const {
  return words_.count(ToLower(word)) > 0;
}

bool Dictionary::AllWordsKnown(std::string_view cell) const {
  bool any = false;
  for (const auto& token : TokenizeCell(cell)) {
    if (!IsAlphabetic(token) || token.size() < 3) continue;
    any = true;
    if (!Contains(token)) return false;
  }
  return any;
}

}  // namespace unidetect
