#include "detect/spelling_detector.h"

#include <memory>

#include "detect/detector_registry.h"
#include "learn/candidates.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

void SpellingDetector::Detect(const Table& table,
                              std::vector<Finding>* out) const {
  const ModelOptions& options = model_->options();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const SpellingCandidate cand =
        ExtractSpellingCandidate(table.column(c), options);
    if (!cand.valid) continue;
    const double lr = model_->LikelihoodRatio(ErrorClass::kSpelling, cand.key,
                                              cand.theta1, cand.theta2);
    if (lr >= 1.0) continue;
    if (dictionary_ != nullptr &&
        dictionary_->AllWordsKnown(cand.profile.value_a) &&
        dictionary_->AllWordsKnown(cand.profile.value_b)) {
      // Both values are real words ("Macroeconomics"/"Microeconomics"):
      // the dictionary refutes the misspelling hypothesis.
      continue;
    }

    Finding finding;
    finding.error_class = ErrorClass::kSpelling;
    finding.table_name = table.name();
    finding.column = c;
    finding.rows = {cand.profile.row_a, cand.profile.row_b};
    finding.value = cand.profile.value_a + " | " + cand.profile.value_b;
    finding.score = lr;
    finding.explanation =
        StrCat("MPD ", cand.theta1, " -> ", cand.theta2, " for pair ('",
               cand.profile.value_a, "', '", cand.profile.value_b,
               "'), LR=", lr);
    out->push_back(std::move(finding));
  }
}

void RegisterSpellingDetector(DetectorRegistry* registry) {
  const Status st = registry->Register(
      ErrorClass::kSpelling, /*enabled_by_default=*/true,
      [](const DetectorContext& context) -> std::unique_ptr<Detector> {
        return std::make_unique<SpellingDetector>(context.model,
                                                  context.dictionary);
      });
  UNIDETECT_CHECK(st.ok());
}

}  // namespace unidetect
