#include "detect/detector_registry.h"

#include <utility>

#include "autodetect/pmi_detector.h"
#include "detect/fd_detector.h"
#include "detect/outlier_detector.h"
#include "detect/spelling_detector.h"
#include "detect/uniqueness_detector.h"
#include "detect/unidetect.h"
#include "util/logging.h"

namespace unidetect {

namespace {
size_t IndexOf(ErrorClass cls) {
  const size_t index = static_cast<size_t>(cls);
  UNIDETECT_CHECK(index < static_cast<size_t>(kNumErrorClasses));
  return index;
}
}  // namespace

Status DetectorRegistry::Register(ErrorClass cls, bool enabled_by_default,
                                  Factory factory) {
  Entry& entry = entries_[IndexOf(cls)];
  if (entry.factory) {
    return Status::AlreadyExists(std::string("detector for class ") +
                                 ErrorClassToString(cls) +
                                 " already registered");
  }
  entry.factory = std::move(factory);
  entry.enabled_by_default = enabled_by_default;
  return Status::OK();
}

bool DetectorRegistry::Has(ErrorClass cls) const {
  return static_cast<bool>(entries_[IndexOf(cls)].factory);
}

bool DetectorRegistry::EnabledByDefault(ErrorClass cls) const {
  return entries_[IndexOf(cls)].enabled_by_default;
}

std::vector<ErrorClass> DetectorRegistry::Classes() const {
  std::vector<ErrorClass> classes;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].factory) classes.push_back(static_cast<ErrorClass>(i));
  }
  return classes;
}

std::unique_ptr<Detector> DetectorRegistry::Create(
    ErrorClass cls, const DetectorContext& context) const {
  const Entry& entry = entries_[IndexOf(cls)];
  if (!entry.factory) return nullptr;
  return entry.factory(context);
}

std::array<bool, kNumErrorClasses> DetectorRegistry::DefaultEnables() const {
  std::array<bool, kNumErrorClasses> enables{};
  for (size_t i = 0; i < entries_.size(); ++i) {
    enables[i] = entries_[i].factory && entries_[i].enabled_by_default;
  }
  return enables;
}

const DetectorRegistry& DetectorRegistry::Builtin() {
  static const DetectorRegistry* const registry = [] {
    auto* r = new DetectorRegistry();
    RegisterOutlierDetector(r);
    RegisterSpellingDetector(r);
    RegisterUniquenessDetector(r);
    RegisterFdDetector(r);
    RegisterPatternDetector(r);
    return r;
  }();
  return *registry;
}

std::array<bool, kNumErrorClasses> DefaultDetectorEnables() {
  return DetectorRegistry::Builtin().DefaultEnables();
}

}  // namespace unidetect
