// Portable SIMD kernels for the detection hot paths (DESIGN.md §13).
//
// Design: every kernel exists twice — a plain scalar reference
// (`*Scalar`) and a dispatch entry point that routes to the widest
// vector implementation the host supports (AVX2 on x86-64, NEON on
// aarch64, otherwise the scalar body). The contract is that the
// dispatched kernel is BIT-IDENTICAL to its scalar reference on every
// input, including NaN/Inf/denormal values, odd lengths, and unaligned
// tails: counting kernels reduce integer lane counts (order-free by
// construction), and the argmax kernel resolves cross-lane ties by
// smallest index, which is provably the element the scalar first-strict-
// improvement scan selects. Property tests (tests/simd_test.cc) pin the
// equivalence with dispatch forced on and off.
//
// Runtime dispatch: the implementation is chosen once per process from
// CPU feature detection; setting the environment variable
// UNIDETECT_DISABLE_SIMD (to anything but "0" or the empty string)
// forces the scalar path. Tests and benchmarks flip the same switch via
// SetSimdEnabled().

#pragma once

#include <cstddef>
#include <cstdint>

namespace unidetect {
namespace simd {

/// \brief Which kernel family the dispatcher selected.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// \brief The active kernel family (after the UNIDETECT_DISABLE_SIMD
/// override and any SetSimdEnabled() call).
SimdLevel ActiveSimdLevel();

const char* SimdLevelName(SimdLevel level);

/// \brief Forces the scalar kernels (false) or restores the detected
/// vector kernels (true). Used by the equivalence tests and the
/// SIMD-vs-scalar benchmarks; not thread-safe against in-flight kernels,
/// so flip it only from a quiesced process.
void SetSimdEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Counting kernels (the CountSurprising leaf scans).
//
// Count elements v[i] <= theta (or >= theta). NaN elements compare false
// on both sides, exactly like the scalar `<=` / `>=` operators; the
// vector implementations use ordered-quiet comparisons for this reason.

uint64_t CountLessEqualF32(const float* v, size_t n, float theta);
uint64_t CountGreaterEqualF32(const float* v, size_t n, float theta);
uint64_t CountLessEqualF32Scalar(const float* v, size_t n, float theta);
uint64_t CountGreaterEqualF32Scalar(const float* v, size_t n, float theta);

/// f16 variants for the half-precision observation encoding: elements
/// are IEEE 754 binary16 bit patterns, widened to f32 before the
/// comparison (widening is exact, so ordering matches the f32 kernels on
/// the dequantized values).
uint64_t CountLessEqualF16(const uint16_t* v, size_t n, float theta);
uint64_t CountGreaterEqualF16(const uint16_t* v, size_t n, float theta);
uint64_t CountLessEqualF16Scalar(const uint16_t* v, size_t n, float theta);
uint64_t CountGreaterEqualF16Scalar(const uint16_t* v, size_t n, float theta);

// ---------------------------------------------------------------------------
// Dispersion argmax kernel (the max-MAD / max-SD scans).

struct ArgMaxResult {
  double score = 0.0;
  size_t index = 0;
};

/// \brief Computes scores s[i] = |v[i] - center| / denom and returns the
/// first index attaining the maximum score, with the exact semantics of
/// the sequential first-strict-improvement scan: index 0 always seeds
/// (even when s[0] is NaN, in which case it wins outright because no
/// comparison against NaN succeeds), later NaN scores are never
/// selected, and among equal maxima the smallest index wins.
/// Requires n >= 1.
ArgMaxResult ArgMaxAbsDeviation(const double* v, size_t n, double center,
                                double denom);
ArgMaxResult ArgMaxAbsDeviationScalar(const double* v, size_t n,
                                      double center, double denom);

// ---------------------------------------------------------------------------
// MPD prefilter kernel (the Myers edit-distance length / character-class
// gates).
//
// For up to 64 candidate values, decides in one pass which candidates
// survive both cheap lower bounds against a probe value `a`:
//
//   lengths[i] - len_a       <= bound   (length gap; candidates are
//                                        scanned in ascending length, so
//                                        the gap is non-negative)
//   max(popcount(sig_a & ~sigs[i]),
//       popcount(sigs[i] & ~sig_a)) <= bound   (character-class bound:
//                                        every unit edit fixes at most
//                                        one class present on one side
//                                        only)
//
// Bit i of the result is set iff candidate i survives both gates. The
// count reduction is per-lane exact integer work, so the vector and
// scalar masks are identical bit for bit.

uint64_t MpdPrefilterMask(const int32_t* lengths, const uint64_t* sigs,
                          size_t count, int32_t len_a, uint64_t sig_a,
                          int32_t bound);
uint64_t MpdPrefilterMaskScalar(const int32_t* lengths, const uint64_t* sigs,
                                size_t count, int32_t len_a, uint64_t sig_a,
                                int32_t bound);

// ---------------------------------------------------------------------------
// IEEE 754 binary16 conversions (the f16 observation encoding).

/// \brief Exact widening of a binary16 bit pattern (handles subnormals,
/// infinities, and NaN payload-preserving enough for equality-free use).
float HalfToFloat(uint16_t half);

/// \brief Round-to-nearest-even narrowing to binary16. Values beyond
/// the f16 range saturate to +/-inf; NaN maps to a quiet NaN. Monotone
/// (order-preserving), so sorted arrays stay sorted after quantization.
uint16_t FloatToHalf(float value);

}  // namespace simd
}  // namespace unidetect
