// Small string helpers shared across the library.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace unidetect {

/// \brief Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits on runs of whitespace and common punctuation, dropping
/// empty tokens. This is the canonical cell tokenizer used for token
/// prevalence and dictionary features.
std::vector<std::string> TokenizeCell(std::string_view s);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// \brief ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// \brief ASCII uppercase copy.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Parses a numeric cell.
///
/// Accepts optional sign, decimal point, thousands separators ("8,011"),
/// leading/trailing whitespace, and a trailing '%'. Returns nullopt for
/// anything else (including empty strings).
std::optional<double> ParseNumeric(std::string_view s);

/// \brief True if the trimmed cell parses as an integer (no '.', no exponent).
bool LooksLikeInteger(std::string_view s);

/// \brief Formats a double the way the corpus generators and examples print
/// numbers: up to `precision` digits after the point, trailing zeros trimmed.
std::string FormatDouble(double v, int precision = 6);

}  // namespace unidetect
