// Small string helpers shared across the library.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace unidetect {

/// \brief Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits on runs of whitespace and common punctuation, dropping
/// empty tokens. This is the canonical cell tokenizer used for token
/// prevalence and dictionary features.
std::vector<std::string> TokenizeCell(std::string_view s);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// \brief ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// \brief ASCII uppercase copy.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Parses a numeric cell.
///
/// Accepts optional sign, decimal point, thousands separators ("8,011"),
/// leading/trailing whitespace, and a trailing '%'. Returns nullopt for
/// anything else (including empty strings).
std::optional<double> ParseNumeric(std::string_view s);

/// \brief True if the trimmed cell parses as an integer (no '.', no exponent).
bool LooksLikeInteger(std::string_view s);

/// \brief Formats a double the way the corpus generators and examples print
/// numbers: up to `precision` digits after the point, trailing zeros trimmed.
std::string FormatDouble(double v, int precision = 6);

// ---------------------------------------------------------------------------
// StrCat / StrAppend: cheap concatenation for hot explanation formatting.
//
// Doubles are rendered exactly as a default-formatted std::ostream would
// render them (printf "%.6g"), so replacing an ostringstream with StrCat
// is byte-for-byte output preserving.

namespace strcat_internal {
inline void AppendPiece(std::string* out, std::string_view v) {
  out->append(v);
}
inline void AppendPiece(std::string* out, const char* v) { out->append(v); }
inline void AppendPiece(std::string* out, char v) { out->push_back(v); }
void AppendPiece(std::string* out, double v);
inline void AppendPiece(std::string* out, float v) {
  AppendPiece(out, static_cast<double>(v));
}
void AppendPiece(std::string* out, long long v);
void AppendPiece(std::string* out, unsigned long long v);
inline void AppendPiece(std::string* out, int v) {
  AppendPiece(out, static_cast<long long>(v));
}
inline void AppendPiece(std::string* out, long v) {
  AppendPiece(out, static_cast<long long>(v));
}
inline void AppendPiece(std::string* out, unsigned v) {
  AppendPiece(out, static_cast<unsigned long long>(v));
}
inline void AppendPiece(std::string* out, unsigned long v) {
  AppendPiece(out, static_cast<unsigned long long>(v));
}
}  // namespace strcat_internal

/// \brief Appends every piece to *out without intermediate allocations.
template <typename... Pieces>
void StrAppend(std::string* out, const Pieces&... pieces) {
  (void)out;  // an empty pack expands to nothing
  (strcat_internal::AppendPiece(out, pieces), ...);
}

/// \brief Concatenates pieces (strings, string_views, chars, integers,
/// doubles) into one string. Doubles format as "%.6g", matching the
/// default std::ostream rendering.
template <typename... Pieces>
std::string StrCat(const Pieces&... pieces) {
  std::string out;
  StrAppend(&out, pieces...);
  return out;
}

}  // namespace unidetect
