// Clang thread-safety-analysis capability macros.
//
// These expand to `__attribute__((...))` under clang (where
// -Wthread-safety turns the annotations into compile-time lock-discipline
// checks) and to nothing elsewhere, so annotated code stays portable to
// gcc. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// analysis model; `src/util/mutex.h` provides the annotated Mutex /
// MutexLock / CondVar types these attach to.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define UNIDETECT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef UNIDETECT_THREAD_ANNOTATION
#define UNIDETECT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) UNIDETECT_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY UNIDETECT_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) UNIDETECT_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) UNIDETECT_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  UNIDETECT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  UNIDETECT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  UNIDETECT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  UNIDETECT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  UNIDETECT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  UNIDETECT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  UNIDETECT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  UNIDETECT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  UNIDETECT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) UNIDETECT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  UNIDETECT_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) UNIDETECT_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  UNIDETECT_THREAD_ANNOTATION(no_thread_safety_analysis)
