// Overflow-checked integer arithmetic for wire-derived values.
//
// Lengths, offsets and counts decoded from untrusted bytes must never
// meet raw `+`, `*` or a narrowing cast: a crafted u64 can wrap
// `offset + length` below the buffer size or truncate through size_t to
// a small in-bounds lie. These helpers return Result<T> so the overflow
// is a typed Corruption on the normal error path, not undefined
// behavior. The checked-arithmetic lint pass (tools/lint) enforces
// their use: CheckedAdd/CheckedMul calls contain no operator tokens, so
// refactored decoders pass the lint with no escapes.
//
// All helpers are branch-cheap (__builtin_*_overflow compiles to a
// flags check) and safe to use on the Reload hot path.

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace unidetect {

/// \brief `a + b`, or Corruption when the sum does not fit T.
template <typename T>
Result<T> CheckedAdd(T a, T b, const char* what = "sum") {
  static_assert(std::is_unsigned_v<T>, "checked arithmetic is unsigned");
  T out;
  if (__builtin_add_overflow(a, b, &out)) {
    return Status::Corruption(StrCat("integer overflow in ", what, ": ", a,
                                     " + ", b, " exceeds ",
                                     std::numeric_limits<T>::max()));
  }
  return out;
}

/// \brief `a * b`, or Corruption when the product does not fit T.
template <typename T>
Result<T> CheckedMul(T a, T b, const char* what = "product") {
  static_assert(std::is_unsigned_v<T>, "checked arithmetic is unsigned");
  T out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return Status::Corruption(StrCat("integer overflow in ", what, ": ", a,
                                     " * ", b, " exceeds ",
                                     std::numeric_limits<T>::max()));
  }
  return out;
}

/// \brief Narrows `value` to To, or Corruption when it does not fit.
/// The usual callers narrow u64 wire offsets to size_t on 32-bit-safe
/// paths and u64 counts to u32 table indices.
template <typename To, typename From>
Result<To> CheckedCast(From value, const char* what = "value") {
  static_assert(std::is_unsigned_v<From> && std::is_unsigned_v<To>,
                "checked casts are unsigned");
  if (value > std::numeric_limits<To>::max()) {
    return Status::Corruption(StrCat("integer overflow in ", what, ": ",
                                     value, " exceeds ",
                                     std::numeric_limits<To>::max()));
  }
  return static_cast<To>(value);
}

}  // namespace unidetect
