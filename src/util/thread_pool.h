// Fixed-size thread pool used by the offline learning component.
//
// The paper crunches the corpus with MapReduce-like jobs; we use a shared
// pool plus ParallelFor, which partitions an index range into contiguous
// shards (one per worker) so each shard can own a deterministic forked Rng.

#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace unidetect {

/// \brief Minimal work-queue thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// \brief Blocks until every submitted task has finished.
  void Wait() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  CondVar task_available_;
  CondVar all_done_;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

/// \brief Runs fn(shard_index, begin, end) over [0, n) split into
/// contiguous shards, one per pool thread, and waits for completion.
///
/// Shard boundaries depend only on (n, pool size), so callers can derive
/// deterministic per-shard state from shard_index.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t shard, size_t begin,
                                          size_t end)>& fn);

}  // namespace unidetect
