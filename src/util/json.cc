#include "util/json.h"

#include <cstdio>

namespace unidetect {

void AppendJsonString(std::string_view value, std::string* out) {
  out->push_back('"');
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          // Control bytes and anything non-ASCII: escape byte-wise. This
          // mangles multi-byte UTF-8 into per-byte escapes, which is
          // lossy for readers expecting text but always yields valid
          // JSON; table cells in this codebase are ASCII.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
        break;
    }
  }
  out->push_back('"');
}

std::string JsonString(std::string_view value) {
  std::string out;
  AppendJsonString(value, &out);
  return out;
}

}  // namespace unidetect
