#include "util/binary_io.h"

#include <array>
#include <fstream>

namespace unidetect {

namespace {
template <typename T>
void AppendLittleEndian(std::string* out, T v) {
  char bytes[sizeof(T)];
  for (size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(bytes, sizeof(T));
}

template <typename T>
bool ReadLittleEndian(std::string_view data, size_t* pos, T* out) {
  if (data.size() - *pos < sizeof(T)) return false;
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(data[*pos + i]))
         << (8 * i);
  }
  *pos += sizeof(T);
  *out = v;
  return true;
}
}  // namespace

void AppendU8(std::string* out, uint8_t v) { AppendLittleEndian(out, v); }
void AppendU16(std::string* out, uint16_t v) { AppendLittleEndian(out, v); }
void AppendU32(std::string* out, uint32_t v) { AppendLittleEndian(out, v); }
void AppendU64(std::string* out, uint64_t v) { AppendLittleEndian(out, v); }

void AppendLengthPrefixed(std::string* out, std::string_view bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

bool BinaryReader::ReadU8(uint8_t* out) {
  return ReadLittleEndian(data_, &pos_, out);
}
bool BinaryReader::ReadU16(uint16_t* out) {
  return ReadLittleEndian(data_, &pos_, out);
}
bool BinaryReader::ReadU32(uint32_t* out) {
  return ReadLittleEndian(data_, &pos_, out);
}
bool BinaryReader::ReadU64(uint64_t* out) {
  return ReadLittleEndian(data_, &pos_, out);
}

bool BinaryReader::ReadBytes(size_t n, std::string_view* out) {
  if (remaining() < n) return false;
  *out = data_.substr(pos_, n);
  pos_ += n;
  return true;
}

bool BinaryReader::ReadLengthPrefixed(std::string_view* out) {
  uint32_t n = 0;
  if (!ReadU32(&n)) return false;
  if (remaining() < n) return false;
  return ReadBytes(n, out);
}

namespace {
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace

uint32_t Crc32(std::string_view bytes) {
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = kCrc32Table[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot determine size of " + path);
  in.seekg(0, std::ios::beg);
  std::string out(static_cast<size_t>(size), '\0');
  in.read(out.data(), size);
  if (in.gcount() != size) {
    return Status::IOError("short read from " + path);
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace unidetect
