#include "util/simd.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define UNIDETECT_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define UNIDETECT_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace unidetect {
namespace simd {

namespace {

// Process-wide dispatch state: the detected level is fixed at first use;
// the enabled flag implements both the UNIDETECT_DISABLE_SIMD override
// and SetSimdEnabled(). Deterministic for any fixed host + environment.
std::atomic<int> g_detected_level{-1};  // NOLINT(determinism)
std::atomic<bool> g_simd_enabled{true};  // NOLINT(determinism)

int DetectLevel() {
#if defined(UNIDETECT_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) {
    return static_cast<int>(SimdLevel::kAvx2);
  }
#elif defined(UNIDETECT_SIMD_NEON)
  return static_cast<int>(SimdLevel::kNeon);
#endif
  return static_cast<int>(SimdLevel::kScalar);
}

bool DisabledByEnv() {
  const char* env = std::getenv("UNIDETECT_DISABLE_SIMD");
  if (env == nullptr || *env == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

SimdLevel Level() {
  int level = g_detected_level.load(std::memory_order_relaxed);
  if (level < 0) {
    if (DisabledByEnv()) g_simd_enabled.store(false);
    level = DetectLevel();
    g_detected_level.store(level);
  }
  if (!g_simd_enabled.load(std::memory_order_relaxed)) {
    return SimdLevel::kScalar;
  }
  return static_cast<SimdLevel>(level);
}

#if defined(UNIDETECT_SIMD_X86)
bool HasF16c() {
  static const bool has = __builtin_cpu_supports("f16c");
  return has;
}
#endif

}  // namespace

SimdLevel ActiveSimdLevel() { return Level(); }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

void SetSimdEnabled(bool enabled) {
  Level();  // pin the detected level before flipping the switch
  g_simd_enabled.store(enabled);
}

// ---------------------------------------------------------------------------
// Half <-> float conversions (software; exact widening, RNE narrowing).

float HalfToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1fu;
  uint32_t mant = half & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalize into a regular float exponent.
      uint32_t shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3ffu;
      bits = sign | ((113u - shift) << 23) | (mant << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

uint16_t FloatToHalf(float value) {
  const uint32_t bits = std::bit_cast<uint32_t>(value);
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t exp32 = (bits >> 23) & 0xffu;
  uint32_t mant = bits & 0x007fffffu;
  if (exp32 == 0xffu) {  // inf / NaN
    if (mant == 0) return static_cast<uint16_t>(sign | 0x7c00u);
    return static_cast<uint16_t>(sign | 0x7c00u | 0x0200u | (mant >> 13));
  }
  const int32_t exp = static_cast<int32_t>(exp32) - 127 + 15;
  if (exp >= 0x1f) return static_cast<uint16_t>(sign | 0x7c00u);  // overflow
  if (exp <= 0) {
    if (exp < -10) return sign;  // underflows to signed zero even with RNE
    mant |= 0x00800000u;  // make the implicit bit explicit
    const uint32_t shift = static_cast<uint32_t>(14 - exp);  // 14..24
    uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u) != 0)) {
      ++half_mant;  // a carry rolls into the exponent field, which is correct
    }
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = static_cast<uint32_t>(sign) |
                  (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0)) {
    ++half;  // mantissa/exponent carry chain; saturates into +/-inf
  }
  return static_cast<uint16_t>(half);
}

// ---------------------------------------------------------------------------
// Scalar references. These define the semantics; every vector kernel
// below must match them bit for bit.

uint64_t CountLessEqualF32Scalar(const float* v, size_t n, float theta) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] <= theta) ++count;
  }
  return count;
}

uint64_t CountGreaterEqualF32Scalar(const float* v, size_t n, float theta) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] >= theta) ++count;
  }
  return count;
}

uint64_t CountLessEqualF16Scalar(const uint16_t* v, size_t n, float theta) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (HalfToFloat(v[i]) <= theta) ++count;
  }
  return count;
}

uint64_t CountGreaterEqualF16Scalar(const uint16_t* v, size_t n, float theta) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (HalfToFloat(v[i]) >= theta) ++count;
  }
  return count;
}

ArgMaxResult ArgMaxAbsDeviationScalar(const double* v, size_t n,
                                      double center, double denom) {
  ArgMaxResult out{std::fabs(v[0] - center) / denom, 0};
  for (size_t i = 1; i < n; ++i) {
    const double s = std::fabs(v[i] - center) / denom;
    if (s > out.score) {
      out.score = s;
      out.index = i;
    }
  }
  return out;
}

namespace {
size_t PopcountLowerBound(uint64_t sig_a, uint64_t sig_b) {
  const auto a_only = static_cast<size_t>(std::popcount(sig_a & ~sig_b));
  const auto b_only = static_cast<size_t>(std::popcount(sig_b & ~sig_a));
  return a_only > b_only ? a_only : b_only;
}
}  // namespace

uint64_t MpdPrefilterMaskScalar(const int32_t* lengths, const uint64_t* sigs,
                                size_t count, int32_t len_a, uint64_t sig_a,
                                int32_t bound) {
  uint64_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    if (lengths[i] - len_a > bound) continue;
    if (static_cast<int64_t>(PopcountLowerBound(sig_a, sigs[i])) >
        static_cast<int64_t>(bound)) {
      continue;
    }
    mask |= uint64_t{1} << i;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with per-function target attributes so the rest
// of the translation unit (and the build) needs no -mavx2; only reached
// after __builtin_cpu_supports says the host has the instructions.

#if defined(UNIDETECT_SIMD_X86)

__attribute__((target("avx2"))) uint64_t CountLessEqualF32Avx2(
    const float* v, size_t n, float theta) {
  const __m256 t = _mm256_set1_ps(theta);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(v + i);
    // Ordered-quiet <= : false for NaN on either side, like scalar <=.
    const __m256 le = _mm256_cmp_ps(x, t, _CMP_LE_OQ);
    count += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(le))));
  }
  for (; i < n; ++i) {
    if (v[i] <= theta) ++count;
  }
  return count;
}

__attribute__((target("avx2"))) uint64_t CountGreaterEqualF32Avx2(
    const float* v, size_t n, float theta) {
  const __m256 t = _mm256_set1_ps(theta);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(v + i);
    const __m256 ge = _mm256_cmp_ps(x, t, _CMP_GE_OQ);
    count += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(ge))));
  }
  for (; i < n; ++i) {
    if (v[i] >= theta) ++count;
  }
  return count;
}

__attribute__((target("avx2,f16c"))) uint64_t CountLessEqualF16Avx2(
    const uint16_t* v, size_t n, float theta) {
  const __m256 t = _mm256_set1_ps(theta);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // SIMD lane load from a trusted in-memory array; the loop bound keeps
    // the 16-byte read inside [v, v + n).
    const __m128i halves = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(v + i));  // NOLINT(unsafe-bytes)
    const __m256 x = _mm256_cvtph_ps(halves);  // exact widening
    const __m256 le = _mm256_cmp_ps(x, t, _CMP_LE_OQ);
    count += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(le))));
  }
  for (; i < n; ++i) {
    if (HalfToFloat(v[i]) <= theta) ++count;
  }
  return count;
}

__attribute__((target("avx2,f16c"))) uint64_t CountGreaterEqualF16Avx2(
    const uint16_t* v, size_t n, float theta) {
  const __m256 t = _mm256_set1_ps(theta);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // SIMD lane load from a trusted in-memory array; the loop bound keeps
    // the 16-byte read inside [v, v + n).
    const __m128i halves = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(v + i));  // NOLINT(unsafe-bytes)
    const __m256 x = _mm256_cvtph_ps(halves);
    const __m256 ge = _mm256_cmp_ps(x, t, _CMP_GE_OQ);
    count += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(ge))));
  }
  for (; i < n; ++i) {
    if (HalfToFloat(v[i]) >= theta) ++count;
  }
  return count;
}

__attribute__((target("avx2"))) ArgMaxResult ArgMaxAbsDeviationAvx2(
    const double* v, size_t n, double center, double denom) {
  // Scores are |x| / denom with denom > 0, so every non-NaN score is
  // >= 0 and -1.0 is a safe "no lane selected yet" sentinel. The scalar
  // seed rule (index 0 wins outright when its score is NaN) is handled
  // before the vector body.
  const double s0 = std::fabs(v[0] - center) / denom;
  if (std::isnan(s0)) return ArgMaxResult{s0, 0};

  const __m256d c = _mm256_set1_pd(center);
  const __m256d d = _mm256_set1_pd(denom);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d best_score = _mm256_set1_pd(-1.0);
  __m256i best_index = _mm256_set1_epi64x(0);
  __m256i index = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i step = _mm256_set1_epi64x(4);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const __m256d s =
        _mm256_div_pd(_mm256_and_pd(_mm256_sub_pd(x, c), abs_mask), d);
    // Strict > keeps the first (lowest-index) maximum within each lane's
    // subsequence; NaN scores never pass an ordered compare.
    const __m256d gt = _mm256_cmp_pd(s, best_score, _CMP_GT_OQ);
    best_score = _mm256_blendv_pd(best_score, s, gt);
    best_index = _mm256_castpd_si256(_mm256_blendv_pd(
        _mm256_castsi256_pd(best_index), _mm256_castsi256_pd(index), gt));
    index = _mm256_add_epi64(index, step);
  }

  alignas(32) double lane_score[4];
  alignas(32) int64_t lane_index[4];
  _mm256_store_pd(lane_score, best_score);
  // Spill to a local alignas(32) array; trusted in-memory destination.
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_index),  // NOLINT(unsafe-bytes)
                     best_index);
  // Cross-lane reduce in fixed order: larger score wins; equal scores go
  // to the smaller index. That reproduces the scalar first-strict-
  // improvement scan, whose winner is the smallest index attaining the
  // global maximum.
  ArgMaxResult out{s0, 0};
  bool seeded = false;
  for (int lane = 0; lane < 4; ++lane) {
    if (lane_score[lane] < 0.0) continue;  // sentinel: lane never selected
    const auto idx = static_cast<size_t>(lane_index[lane]);
    if (!seeded || lane_score[lane] > out.score ||
        (lane_score[lane] == out.score && idx < out.index)) {
      out.score = lane_score[lane];
      out.index = idx;
      seeded = true;
    }
  }
  for (; i < n; ++i) {
    const double s = std::fabs(v[i] - center) / denom;
    if (s > out.score) {
      out.score = s;
      out.index = i;
    }
  }
  return out;
}

// pshufb nibble lookup table for per-byte popcount; _mm256_sad_epu8
// folds the bytes of each 64-bit lane into that lane's count. A named
// function (not a lambda inside the kernel) because closures do not
// inherit the enclosing function's target attribute, and gcc refuses
// to inline AVX2 intrinsics into a non-AVX2 closure body.
__attribute__((target("avx2"))) inline __m256i Popcount64Lanes(__m256i x) {
  const __m256i nibble_counts = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, low_nibble);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_nibble);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(nibble_counts, lo),
                      _mm256_shuffle_epi8(nibble_counts, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) uint64_t MpdPrefilterMaskAvx2(
    const int32_t* lengths, const uint64_t* sigs, size_t count, int32_t len_a,
    uint64_t sig_a, int32_t bound) {
  const __m256i vlen_a = _mm256_set1_epi32(len_a);
  const __m256i vbound32 = _mm256_set1_epi32(bound);
  const __m256i vsig_a = _mm256_set1_epi64x(static_cast<int64_t>(sig_a));
  const __m256i vbound64 = _mm256_set1_epi64x(bound);

  uint64_t mask = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    // SIMD lane load from a trusted in-memory array; the loop bound keeps
    // the 32-byte read inside [lengths, lengths + count).
    const __m256i len = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lengths + i));  // NOLINT(unsafe-bytes)
    const __m256i gap = _mm256_sub_epi32(len, vlen_a);
    const unsigned len_fail = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(gap, vbound32))));

    unsigned sig_fail = 0;
    for (size_t half = 0; half < 2; ++half) {
      // Trusted in-memory signature array; i + half * 4 + 4 <= count
      // u64 signatures by the outer loop bound.
      const __m256i sig = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(  // NOLINT(unsafe-bytes)
              sigs + i + half * 4));
      const __m256i a_only = Popcount64Lanes(_mm256_andnot_si256(sig, vsig_a));
      const __m256i b_only = Popcount64Lanes(_mm256_andnot_si256(vsig_a, sig));
      const __m256i fail = _mm256_or_si256(
          _mm256_cmpgt_epi64(a_only, vbound64),
          _mm256_cmpgt_epi64(b_only, vbound64));
      sig_fail |= static_cast<unsigned>(
                      _mm256_movemask_pd(_mm256_castsi256_pd(fail)))
                  << (half * 4);
    }
    mask |= static_cast<uint64_t>(~(len_fail | sig_fail) & 0xffu) << i;
  }
  for (; i < count; ++i) {
    if (lengths[i] - len_a > bound) continue;
    if (static_cast<int64_t>(PopcountLowerBound(sig_a, sigs[i])) >
        static_cast<int64_t>(bound)) {
      continue;
    }
    mask |= uint64_t{1} << i;
  }
  return mask;
}

#endif  // UNIDETECT_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels (aarch64 baseline; no runtime detection needed). Only the
// counting kernels are vectorized — the argmax and prefilter kernels
// fall back to the scalar references, which the dispatch contract
// permits because scalar IS the semantics.

#if defined(UNIDETECT_SIMD_NEON)

uint64_t CountLessEqualF32Neon(const float* v, size_t n, float theta) {
  const float32x4_t t = vdupq_n_f32(theta);
  uint64_t count = 0;
  size_t i = 0;
  uint32x4_t acc = vdupq_n_u32(0);
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t le = vcleq_f32(vld1q_f32(v + i), t);
    acc = vsubq_u32(acc, le);  // lanes are 0 or 0xffffffff (== -1)
    if ((i & 0x3ffc) == 0x3ffc) {  // drain before any u32 lane could wrap
      count += vaddlvq_u32(acc);
      acc = vdupq_n_u32(0);
    }
  }
  count += vaddlvq_u32(acc);
  for (; i < n; ++i) {
    if (v[i] <= theta) ++count;
  }
  return count;
}

uint64_t CountGreaterEqualF32Neon(const float* v, size_t n, float theta) {
  const float32x4_t t = vdupq_n_f32(theta);
  uint64_t count = 0;
  size_t i = 0;
  uint32x4_t acc = vdupq_n_u32(0);
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t ge = vcgeq_f32(vld1q_f32(v + i), t);
    acc = vsubq_u32(acc, ge);
    if ((i & 0x3ffc) == 0x3ffc) {
      count += vaddlvq_u32(acc);
      acc = vdupq_n_u32(0);
    }
  }
  count += vaddlvq_u32(acc);
  for (; i < n; ++i) {
    if (v[i] >= theta) ++count;
  }
  return count;
}

#endif  // UNIDETECT_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.

uint64_t CountLessEqualF32(const float* v, size_t n, float theta) {
#if defined(UNIDETECT_SIMD_X86)
  if (Level() == SimdLevel::kAvx2) return CountLessEqualF32Avx2(v, n, theta);
#elif defined(UNIDETECT_SIMD_NEON)
  if (Level() == SimdLevel::kNeon) return CountLessEqualF32Neon(v, n, theta);
#endif
  return CountLessEqualF32Scalar(v, n, theta);
}

uint64_t CountGreaterEqualF32(const float* v, size_t n, float theta) {
#if defined(UNIDETECT_SIMD_X86)
  if (Level() == SimdLevel::kAvx2) {
    return CountGreaterEqualF32Avx2(v, n, theta);
  }
#elif defined(UNIDETECT_SIMD_NEON)
  if (Level() == SimdLevel::kNeon) {
    return CountGreaterEqualF32Neon(v, n, theta);
  }
#endif
  return CountGreaterEqualF32Scalar(v, n, theta);
}

uint64_t CountLessEqualF16(const uint16_t* v, size_t n, float theta) {
#if defined(UNIDETECT_SIMD_X86)
  if (Level() == SimdLevel::kAvx2 && HasF16c()) {
    return CountLessEqualF16Avx2(v, n, theta);
  }
#endif
  return CountLessEqualF16Scalar(v, n, theta);
}

uint64_t CountGreaterEqualF16(const uint16_t* v, size_t n, float theta) {
#if defined(UNIDETECT_SIMD_X86)
  if (Level() == SimdLevel::kAvx2 && HasF16c()) {
    return CountGreaterEqualF16Avx2(v, n, theta);
  }
#endif
  return CountGreaterEqualF16Scalar(v, n, theta);
}

ArgMaxResult ArgMaxAbsDeviation(const double* v, size_t n, double center,
                                double denom) {
#if defined(UNIDETECT_SIMD_X86)
  // The vector body's -1 sentinel assumes non-negative scores, which
  // requires denom > 0 (the dispersion callers guarantee it; anything
  // else routes to the scalar reference).
  if (Level() == SimdLevel::kAvx2 && n >= 8 && denom > 0.0) {
    return ArgMaxAbsDeviationAvx2(v, n, center, denom);
  }
#endif
  return ArgMaxAbsDeviationScalar(v, n, center, denom);
}

uint64_t MpdPrefilterMask(const int32_t* lengths, const uint64_t* sigs,
                          size_t count, int32_t len_a, uint64_t sig_a,
                          int32_t bound) {
#if defined(UNIDETECT_SIMD_X86)
  if (Level() == SimdLevel::kAvx2) {
    return MpdPrefilterMaskAvx2(lengths, sigs, count, len_a, sig_a, bound);
  }
#endif
  return MpdPrefilterMaskScalar(lengths, sigs, count, len_a, sig_a, bound);
}

}  // namespace simd
}  // namespace unidetect
