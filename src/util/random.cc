#include "util/random.h"

#include <cmath>

namespace unidetect {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method would be faster; modulo bias for
  // 64-bit state and corpus-scale bounds is negligible (< 2^-40).
  return Next() % bound;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double xm, double alpha) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  // Inverse-CDF on the truncated zeta distribution via the integral
  // approximation H(x) = (x^(1-s) - 1) / (1 - s); exact enough for corpus
  // shaping and O(1) per sample.
  if (n <= 1) return 0;
  if (s == 1.0) s = 1.0000001;
  const double h_n =
      (std::pow(static_cast<double>(n) + 0.5, 1.0 - s) - 1.0) / (1.0 - s);
  const double u = NextDouble() * h_n;
  const double x = std::pow(u * (1.0 - s) + 1.0, 1.0 / (1.0 - s)) - 0.5;
  auto rank = static_cast<uint64_t>(x);
  if (rank >= n) rank = n - 1;
  return rank;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::string Rng::AlphaString(size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + NextBounded(26));
  return out;
}

std::string Rng::DigitString(size_t length) {
  std::string out(length, '0');
  for (size_t i = 0; i < length; ++i) {
    if (i == 0 && length > 1) {
      out[i] = static_cast<char>('1' + NextBounded(9));
    } else {
      out[i] = static_cast<char>('0' + NextBounded(10));
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace unidetect
