// Deterministic, seedable random number generation.
//
// All randomness in the library (corpus generation, error injection,
// sampling) flows through Rng so that corpora, injected ground truth, and
// therefore every benchmark output are bit-for-bit reproducible.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace unidetect {

/// \brief SplitMix64: used to expand a single seed into stream state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** PRNG with convenience distributions.
///
/// Not cryptographic; chosen for speed and reproducibility across
/// platforms (unlike std::mt19937 distributions, whose outputs are not
/// standardized, every helper here is fully specified by this code).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// \brief Uniform 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// \brief Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// \brief Pareto (power-law) sample with minimum xm and shape alpha.
  double Pareto(double xm, double alpha);

  /// \brief Zipf-distributed rank in [0, n) with exponent s (~1.0).
  ///
  /// Uses rejection-inversion; suitable for n up to millions.
  uint64_t Zipf(uint64_t n, double s);

  /// \brief True with probability p.
  bool Bernoulli(double p);

  /// \brief Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBounded(items.size())];
  }

  /// \brief Index drawn from unnormalized non-negative weights.
  size_t PickWeighted(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// \brief Random lowercase ASCII string of the given length.
  std::string AlphaString(size_t length);

  /// \brief Random digit string of the given length (no leading zero
  /// unless length == 1).
  std::string DigitString(size_t length);

  /// \brief Independent child generator (for parallel deterministic work).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace unidetect
