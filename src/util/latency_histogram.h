// Power-of-two latency histograms, shared by the serving tier
// (DetectionService request/reload timings) and the network front end
// (server/metrics.h). Bucket i counts samples with value in
// [2^(i-1), 2^i) microseconds (bucket 0: < 1us), so a histogram is a
// fixed 40-entry array with no allocation on the observe path and
// percentiles are upper bounds read off the bucket edges — p50 = 256
// means half the samples took under 256us. Upper bounds, not
// interpolations: the histogram never invents a latency that was not
// observed.

#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace unidetect {

/// Number of power-of-two buckets; 2^39 us ≈ 6.4 days caps the top.
inline constexpr size_t kLatencyHistogramBuckets = 40;

using LatencyBuckets = std::array<uint64_t, kLatencyHistogramBuckets>;

/// \brief Bucket index for a sample of `micros` microseconds. Negative
/// samples (a clock went backwards) clamp to bucket 0.
inline size_t LatencyBucketIndex(int64_t micros) {
  const uint64_t clamped = static_cast<uint64_t>(micros < 0 ? 0 : micros);
  const size_t width = static_cast<size_t>(std::bit_width(clamped));
  return width < kLatencyHistogramBuckets ? width
                                          : kLatencyHistogramBuckets - 1;
}

/// \brief Percentile upper bound read off a power-of-two histogram
/// holding `count` samples. `q` in [0, 1]; callers guard count > 0
/// (with no samples there is no percentile to report).
inline double LatencyPercentileUpperBound(std::span<const uint64_t> buckets,
                                          uint64_t count, double q) {
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return static_cast<double>(uint64_t{1} << i);
  }
  return static_cast<double>(uint64_t{1} << (buckets.size() - 1));
}

}  // namespace unidetect
