// Result<T>: a value-or-Status, the return type of fallible producers.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace unidetect {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result is a
/// programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return st;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    assert(!std::get<Status>(storage_).ok() &&
           "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// \brief The error status; Status::OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(storage_));
  }

  /// \brief Convenience aliases matching arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    if (ok()) return std::move(std::get<T>(storage_));
    return alternative;
  }

 private:
  std::variant<T, Status> storage_;
};

/// \brief Assigns the value of a Result expression or propagates its error.
#define UNIDETECT_ASSIGN_OR_RETURN(lhs, expr)          \
  auto UNIDETECT_CONCAT_(res_, __LINE__) = (expr);     \
  if (!UNIDETECT_CONCAT_(res_, __LINE__).ok())         \
    return UNIDETECT_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(UNIDETECT_CONCAT_(res_, __LINE__)).ValueOrDie()

#define UNIDETECT_CONCAT_IMPL_(a, b) a##b
#define UNIDETECT_CONCAT_(a, b) UNIDETECT_CONCAT_IMPL_(a, b)

}  // namespace unidetect
