// Leveled logging to stderr, plus CHECK macros for internal invariants.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace unidetect {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

[[noreturn]] void FatalCheckFailure(const char* expr, const char* file,
                                    int line);

}  // namespace internal

#define UNIDETECT_LOG(level)                                          \
  ::unidetect::internal::LogMessage(::unidetect::LogLevel::k##level, \
                                    __FILE__, __LINE__)

/// \brief Aborts with a message when an internal invariant is violated.
/// Unlike assert(), CHECK is active in release builds: a corrupted model
/// or histogram must never silently produce wrong statistics.
#define UNIDETECT_CHECK(expr)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      ::unidetect::internal::FatalCheckFailure(#expr, __FILE__, __LINE__); \
  } while (false)

}  // namespace unidetect
