// Status: error propagation without exceptions across API boundaries,
// following the Arrow/RocksDB convention used throughout this codebase.

#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace unidetect {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// \brief Returns a human-readable name for a StatusCode ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// A Status is either OK (the default) or carries a code and message.
/// Functions that can fail return Status (or Result<T> when they also
/// produce a value). Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \brief Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Returns early with the status if the expression is not OK.
#define UNIDETECT_RETURN_NOT_OK(expr)        \
  do {                                       \
    ::unidetect::Status _st = (expr);        \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace unidetect
