// Read-only memory-mapped file region, the storage substrate of the
// zero-copy UDSNAP v2 model path (model_format/snapshot_v2.h): serving
// maps the snapshot once and queries it in place, so reload cost is
// decoupled from observation count and the pages are shared read-only
// across every process that maps the same file.
//
// Determinism note: the base address of a mapping differs run to run
// (ASLR) and process to process. Pointers into a region must therefore
// never feed an ordering or hash key — see the pointer-key rule of the
// determinism linter (tools/lint/) and its mapped-region fixture
// (tests/lint_fixtures/bad_pointer_key_mapped.cc). MmapRegion
// deliberately defines no comparison operators so a region cannot end
// up as a container key by accident.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/result.h"

namespace unidetect {

/// \brief Owns one read-only, privately mapped view of a file.
class MmapRegion {
 public:
  /// \brief Maps `path` read-only. An empty file yields an empty region
  /// (no mapping); a missing or unreadable file yields IOError.
  static Result<MmapRegion> Map(const std::string& path);

  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  // Mapping addresses are nondeterministic; regions must not be ordered.
  bool operator<(const MmapRegion&) const = delete;

  /// \brief The mapped bytes. Valid until the region is destroyed or
  /// moved-from; page-aligned base (the alignment guarantee the v2
  /// cast-from-mapped-bytes float path relies on).
  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }

  size_t size() const { return size_; }

 private:
  MmapRegion(void* data, size_t size) : data_(data), size_(size) {}

  void Unmap();

  const void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace unidetect
