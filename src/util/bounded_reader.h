// BoundedReader: the safe-cursor layer over untrusted bytes.
//
// Together with BinaryReader (util/binary_io.h) this file is the
// allowlisted home of raw byte reinterpretation: the unsafe-bytes lint
// pass (tools/lint) bans reinterpret_cast, memcpy and overlay pointer
// arithmetic everywhere else, so every wire byte that becomes a typed
// value flows through one of these two audited modules. BinaryReader is
// the sequential scalar cursor; BoundedReader is the random-access view
// used by the section-based snapshot decoders:
//
//   SubSpan(offset, length)      checked sub-view (section extraction)
//   Overlay<T>(elem_off, count)  zero-copy typed span over mapped bytes
//                                (little-endian hosts; alignment checked)
//   CopyArray<T>(elem_off, count) owned, endian-corrected element copy
//
// Every offset/length/count is treated as hostile: range ends are
// computed with CheckedAdd/CheckedMul (util/checked.h), so a crafted
// u64 that would wrap a `offset + length <= size` compare is a typed
// Corruption instead of an out-of-bounds view. Failures carry the
// buffer's name for actionable messages.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/binary_io.h"
#include "util/checked.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace unidetect {

class BoundedReader {
 public:
  /// `what` names the buffer in error messages ("observations section");
  /// it must outlive the reader (string literals in practice).
  explicit BoundedReader(std::string_view bytes, const char* what = "buffer")
      : bytes_(bytes), what_(what) {}

  size_t size() const { return bytes_.size(); }

  /// \brief Bounds-checked sub-view: `[offset, offset + length)` of the
  /// buffer, with the range end computed overflow-checked.
  Result<std::string_view> SubSpan(uint64_t offset, uint64_t length) const {
    UNIDETECT_ASSIGN_OR_RETURN(const uint64_t end,
                               CheckedAdd<uint64_t>(offset, length, what_));
    if (end > bytes_.size()) {
      return Status::Corruption(StrCat(what_, ": range [", offset, ", ", end,
                                       ") exceeds buffer size ",
                                       bytes_.size()));
    }
    return bytes_.substr(static_cast<size_t>(offset),
                         static_cast<size_t>(length));
  }

  /// \brief Zero-copy typed view of `count` elements starting at element
  /// `elem_offset`. The bytes are interpreted in place, so callers must
  /// be on a little-endian host (the snapshot wire format is LE); the
  /// base alignment is verified at runtime — a misaligned overlay is
  /// Corruption, not UB.
  template <typename T>
  Result<std::span<const T>> Overlay(uint64_t elem_offset,
                                     uint64_t count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(std::endian::native == std::endian::little,
                  "zero-copy overlays require a little-endian host; use "
                  "CopyArray on big-endian builds");
    if (count == 0) return std::span<const T>();
    UNIDETECT_ASSIGN_OR_RETURN(const std::string_view raw,
                               ByteRange<T>(elem_offset, count));
    if (reinterpret_cast<uintptr_t>(raw.data()) % alignof(T) != 0) {
      return Status::Corruption(
          StrCat(what_, ": overlay base is not ", alignof(T),
                 "-byte aligned"));
    }
    return std::span<const T>(reinterpret_cast<const T*>(raw.data()),
                              static_cast<size_t>(count));
  }

  /// \brief Owned copy of `count` little-endian elements starting at
  /// element `elem_offset`. Byte-swaps on big-endian hosts; a plain
  /// bounds-checked memcpy on little-endian ones.
  template <typename T>
  Result<std::vector<T>> CopyArray(uint64_t elem_offset,
                                   uint64_t count) const {
    static_assert(std::is_same_v<T, float> || std::is_same_v<T, uint16_t> ||
                      std::is_same_v<T, uint32_t> ||
                      std::is_same_v<T, uint64_t>,
                  "CopyArray supports the snapshot element types");
    UNIDETECT_ASSIGN_OR_RETURN(const std::string_view raw,
                               ByteRange<T>(elem_offset, count));
    UNIDETECT_ASSIGN_OR_RETURN(const size_t n,
                               CheckedCast<size_t>(count, what_));
    std::vector<T> out(n);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out.data(), raw.data(), raw.size());
    } else {
      BinaryReader reader(raw);
      for (size_t i = 0; i < n; ++i) {
        if constexpr (std::is_same_v<T, float>) {
          reader.ReadF32(&out[i]);  // size pre-validated; cannot fail
        } else if constexpr (std::is_same_v<T, uint16_t>) {
          reader.ReadU16(&out[i]);
        } else if constexpr (std::is_same_v<T, uint32_t>) {
          reader.ReadU32(&out[i]);
        } else {
          reader.ReadU64(&out[i]);
        }
      }
    }
    return out;
  }

 private:
  /// Byte range covering `count` elements of T at element `elem_offset`,
  /// all products and the range end overflow-checked.
  template <typename T>
  Result<std::string_view> ByteRange(uint64_t elem_offset,
                                     uint64_t count) const {
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t byte_offset,
        CheckedMul<uint64_t>(elem_offset, sizeof(T), what_));
    UNIDETECT_ASSIGN_OR_RETURN(const uint64_t byte_length,
                               CheckedMul<uint64_t>(count, sizeof(T), what_));
    return SubSpan(byte_offset, byte_length);
  }

  std::string_view bytes_;
  const char* what_;
};

}  // namespace unidetect
