#include "util/csv.h"

#include <fstream>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace unidetect {

Result<CsvData> ParseCsv(std::string_view text, const CsvOptions& options) {
  CsvData out;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;

  auto end_field = [&] {
    if (options.trim_fields && !field_was_quoted) {
      field = std::string(Trim(field));
    }
    record.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_record = [&] {
    end_field();
    // Skip records that are entirely empty (e.g., trailing newline).
    if (!(record.size() == 1 && record[0].empty())) {
      out.rows.push_back(std::move(record));
    }
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      field_was_quoted = true;
    } else if (c == options.delimiter) {
      end_field();
    } else if (c == '\n') {
      end_record();
    } else if (c == '\r') {
      // consumed; \r\n handled when \n arrives, bare \r ends the record
      if (i + 1 >= text.size() || text[i + 1] != '\n') end_record();
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::Corruption("CSV ends inside a quoted field");
  }
  if (!field.empty() || !record.empty()) end_record();

  if (options.has_header && !out.rows.empty()) {
    out.header = std::move(out.rows.front());
    out.rows.erase(out.rows.begin());
  }
  return out;
}

Result<CsvData> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  // Single size-probed read; the old `ostringstream << rdbuf()` slurp
  // copied every byte twice through the stream buffer.
  UNIDETECT_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return ParseCsv(text, options);
}

namespace {
void AppendField(std::string& out, const std::string& field, char delimiter) {
  const bool needs_quotes =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quotes) {
    out += field;
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void AppendRecord(std::string& out, const std::vector<std::string>& record,
                  char delimiter) {
  for (size_t i = 0; i < record.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    AppendField(out, record[i], delimiter);
  }
  out.push_back('\n');
}
}  // namespace

std::string WriteCsv(const CsvData& data, char delimiter) {
  std::string out;
  if (!data.header.empty()) AppendRecord(out, data.header, delimiter);
  for (const auto& row : data.rows) AppendRecord(out, row, delimiter);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvData& data,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const std::string text = WriteCsv(data, delimiter);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace unidetect
