// Annotated mutex primitives.
//
// Thin wrappers over <mutex>/<condition_variable> that carry the
// capability annotations from thread_annotations.h, so clang's
// -Wthread-safety can statically check lock discipline on every
// GUARDED_BY field. libstdc++'s std::mutex is unannotated, which is why
// the wrapper (rather than std::lock_guard directly) is the project-wide
// locking idiom; the wrappers compile to the std types with no overhead.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace unidetect {

/// \brief An annotated standard mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over Mutex (the std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable usable with Mutex.
///
/// Wait takes the Mutex directly (caller must hold it); predicate loops
/// are written by the caller so guarded reads stay visible to the
/// thread-safety analysis:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    NativeLockAdapter adapter{mu.mu_};
    cv_.wait(adapter);
  }

  /// Like Wait, but also returns (false) when `timeout` elapses without
  /// a notification. Callers re-check their predicate either way — the
  /// background-compactor poll loop is the intended user.
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout) REQUIRES(mu) {
    NativeLockAdapter adapter{mu.mu_};
    return cv_.wait_for(adapter, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // BasicLockable view of an already-held std::mutex, for
  // condition_variable_any's unlock/relock protocol.
  struct NativeLockAdapter {
    std::mutex& mu;
    void lock() { mu.lock(); }
    void unlock() { mu.unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace unidetect
