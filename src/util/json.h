// Minimal JSON writing (no parsing): enough to export findings and
// repair suggestions for downstream tools. Strings are escaped per RFC
// 8259; invalid UTF-8 bytes are emitted as \u00XX escapes so output is
// always valid JSON even for binary-ish cells.

#pragma once

#include <string>
#include <string_view>

namespace unidetect {

/// \brief Appends a JSON string literal (with quotes) to `out`.
void AppendJsonString(std::string_view value, std::string* out);

/// \brief Returns the JSON string literal for `value`.
std::string JsonString(std::string_view value);

}  // namespace unidetect
