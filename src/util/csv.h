// RFC-4180-style CSV reading and writing for the example applications and
// for importing user spreadsheets into the Table model.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace unidetect {

/// \brief Parsing options for CSV input.
struct CsvOptions {
  char delimiter = ',';
  /// Treat the first record as column headers.
  bool has_header = true;
  /// Trim ASCII whitespace around unquoted fields.
  bool trim_fields = true;
};

/// \brief A parsed CSV file: header (possibly empty) plus data rows.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Parses CSV text. Handles quoted fields, embedded delimiters,
/// escaped quotes (""), and both \n and \r\n record separators.
Result<CsvData> ParseCsv(std::string_view text, const CsvOptions& options = {});

/// \brief Reads and parses a CSV file from disk.
Result<CsvData> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {});

/// \brief Serializes rows to CSV, quoting fields only when required.
std::string WriteCsv(const CsvData& data, char delimiter = ',');

/// \brief Writes CSV text to a file.
Status WriteCsvFile(const std::string& path, const CsvData& data,
                    char delimiter = ',');

}  // namespace unidetect
