#include "util/thread_pool.h"

#include <algorithm>

namespace unidetect {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(mu_);
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, pool.num_threads());
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = shard * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.Submit([&fn, shard, begin, end] { fn(shard, begin, end); });
  }
  pool.Wait();
}

}  // namespace unidetect
