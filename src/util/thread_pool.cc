#include "util/thread_pool.h"

#include <algorithm>

namespace unidetect {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, pool.num_threads());
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = shard * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.Submit([&fn, shard, begin, end] { fn(shard, begin, end); });
  }
  pool.Wait();
}

}  // namespace unidetect
