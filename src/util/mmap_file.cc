#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace unidetect {

Result<MmapRegion> MmapRegion::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(
        StrCat("mmap ", path, ": open failed: ", std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(
        StrCat("mmap ", path, ": fstat failed: ", std::strerror(err)));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(2) rejects zero-length mappings; an empty file is simply an
    // empty region.
    ::close(fd);
    return MmapRegion(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (data == MAP_FAILED) {
    return Status::IOError(
        StrCat("mmap ", path, ": mmap failed: ", std::strerror(err)));
  }
  return MmapRegion(data, size);
}

MmapRegion::~MmapRegion() { Unmap(); }

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapRegion::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace unidetect
