// Little-endian fixed-width binary encoding helpers and single-read
// file IO, shared by the model snapshot format (model_format/) and any
// future on-disk artifact. Encoders append to a std::string; the reader
// is a bounds-checked cursor over a string_view that never throws and
// never reads past the end.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/result.h"

namespace unidetect {

// ---------------------------------------------------------------------------
// Appenders. All integers are written little-endian regardless of host
// byte order; floats are written as the little-endian bytes of their
// IEEE-754 representation, so a float round-trips bit-identically.

void AppendU8(std::string* out, uint8_t v);
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

inline void AppendF32(std::string* out, float v) {
  AppendU32(out, std::bit_cast<uint32_t>(v));
}
inline void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// \brief Appends a u32 byte length followed by the raw bytes.
void AppendLengthPrefixed(std::string* out, std::string_view bytes);

// ---------------------------------------------------------------------------
// Reader.

/// \brief Bounds-checked little-endian cursor over an in-memory buffer.
///
/// Every Read* returns false (without advancing) when fewer bytes remain
/// than the field needs; callers translate that into a typed Status with
/// context. The buffer must outlive the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ == data_.size(); }

  bool ReadU8(uint8_t* out);
  bool ReadU16(uint16_t* out);
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);

  bool ReadF32(float* out) {
    uint32_t bits = 0;
    if (!ReadU32(&bits)) return false;
    *out = std::bit_cast<float>(bits);
    return true;
  }
  bool ReadF64(double* out) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  /// \brief Reads `n` raw bytes as a view into the underlying buffer.
  bool ReadBytes(size_t n, std::string_view* out);

  /// \brief Reads a u32 length prefix, then that many bytes.
  bool ReadLengthPrefixed(std::string_view* out);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Checksums.

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `bytes`.
uint32_t Crc32(std::string_view bytes);

// ---------------------------------------------------------------------------
// Whole-file IO.

/// \brief Reads an entire file with one size-probed allocation and one
/// read call — the replacement for the `ostringstream << rdbuf()` slurp
/// idiom, which copies every byte twice through a stream buffer.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace unidetect
