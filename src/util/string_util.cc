#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace unidetect {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

namespace {
bool IsTokenSeparator(char c) {
  switch (c) {
    case ' ':
    case '\t':
    case '\n':
    case '\r':
    case ',':
    case ';':
    case ':':
    case '/':
    case '(':
    case ')':
    case '[':
    case ']':
    case '"':
    case '\'':
      return true;
    default:
      return false;
  }
}
}  // namespace

std::vector<std::string> TokenizeCell(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsTokenSeparator(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsTokenSeparator(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<double> ParseNumeric(std::string_view raw) {
  std::string_view s = Trim(raw);
  if (s.empty()) return std::nullopt;
  if (s.back() == '%') s.remove_suffix(1);
  s = Trim(s);
  if (s.empty()) return std::nullopt;

  // Strip thousands separators, validating 3-digit grouping loosely
  // (real tables contain "8,011" and also "1,23,456"-style locales; we
  // accept any comma between digits).
  std::string cleaned;
  cleaned.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == ',') {
      const bool digit_before = i > 0 && std::isdigit(static_cast<unsigned char>(s[i - 1]));
      const bool digit_after =
          i + 1 < s.size() && std::isdigit(static_cast<unsigned char>(s[i + 1]));
      if (!digit_before || !digit_after) return std::nullopt;
      continue;
    }
    cleaned.push_back(s[i]);
  }
  if (cleaned.empty()) return std::nullopt;
  // std::from_chars does not accept an explicit '+'.
  if (cleaned[0] == '+') cleaned.erase(0, 1);
  if (cleaned.empty()) return std::nullopt;

  const char* begin = cleaned.data();
  const char* end = cleaned.data() + cleaned.size();
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

bool LooksLikeInteger(std::string_view raw) {
  std::string_view s = Trim(raw);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  if (i == s.size()) return false;
  bool any_digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      any_digit = true;
      continue;
    }
    if (s[i] == ',') continue;  // thousands separator
    return false;
  }
  return any_digit;
}

namespace strcat_internal {

void AppendPiece(std::string* out, double v) {
  // "%.6g" is exactly what a default-constructed ostream produces for a
  // double (precision 6, defaultfloat); explanations built with StrCat
  // must stay byte-identical to the ostringstream originals.
  char buf[64];
  const int len = std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf, static_cast<size_t>(len));
}

void AppendPiece(std::string* out, long long v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, static_cast<size_t>(ptr - buf));
}

void AppendPiece(std::string* out, unsigned long long v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, static_cast<size_t>(ptr - buf));
}

}  // namespace strcat_internal

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace unidetect
