// Synthetic table generation: the stand-in for the paper's 135M-table web
// corpus (see DESIGN.md, "Substitutions").
//
// Tables are produced from ~17 archetypes whose column families mirror
// the paper's motivating examples: passenger rosters with chance-duplicate
// names (Fig 2a), election vote shares with heavy tails (Fig 2e), chemical
// formulas and roman-numeral series with inherently tiny edit distances
// (Fig 2g/h), ICAO codes and part numbers that are genuinely unique
// (Fig 4a, Fig 6), City -> Country FDs (Fig 2d), and programmatic
// Route-number -> Route-name relationships (Fig 13).
//
// Every generated column carries metadata (its role, whether it is
// semantically unique, natural language, numeric, and its FD partner)
// used by the error injector to place ground-truth errors and never
// consumed by any detector.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "table/table.h"
#include "util/random.h"

namespace unidetect {

/// \brief Semantic role of a generated column.
enum class ColumnRole : int {
  kPersonName,
  kAge,
  kCity,
  kCountry,
  kVotePct,
  kBookTitle,
  kDate,
  kPopulationFormatted,
  kChemSpecies,
  kChemFormula,
  kRomanSeries,
  kYear,
  kIcaoCode,
  kAirportName,
  kPartNumber,
  kStockCode,
  kPrice,
  kQuantity,
  kCaseNumber,
  kPartyName,
  kEmployeeAlias,
  kFullName,
  kDepartment,
  kCompany,
  kSector,
  kRevenueFormatted,
  kCounty,
  kStatArea,
  kPlanetName,
  kAxis,
  kRouteNumber,
  kRouteName,
  kContestant,
  kNationalTitle,
  kCallSign,
  kChannelNumber,
  kViewCount,
  kIsbn,
  kTeamName,
  kWinCount,
  kPoints,
  kTemperature,
  kSampleId,
  kMeasurement,
  kOccupation,
};

/// \brief Generator-side ground-truth metadata for one column.
struct ColumnMeta {
  ColumnRole role = ColumnRole::kPersonName;
  /// Semantically required to be unique (ID-like); a duplicate here is a
  /// genuine uniqueness violation.
  bool intended_unique = false;
  /// Natural-language-ish values where a character typo is a genuine
  /// spelling error (names, titles, cities; NOT formulas or numerals).
  bool natural_language = false;
  /// Numeric values eligible for outlier injection.
  bool numeric = false;
  /// Index of the column this one functionally depends on (-1 = none):
  /// this column is the rhs of an FD (partner -> this).
  int fd_partner = -1;
  /// True when the FD is realized by an explicit string program
  /// (FD-synthesis target; Appendix D).
  bool synthesizable = false;
};

/// \brief A generated table plus its metadata.
struct AnnotatedTable {
  Table table;
  std::vector<ColumnMeta> meta;
};

/// \brief Table archetypes (see file comment).
enum class Archetype : int {
  kPeopleRoster = 0,
  kElection,
  kBooks,
  kCityStats,
  kChemicals,
  kSportsSeries,
  kFlights,
  kPartsInventory,
  kCaseRecords,
  kEmployees,
  kCompanies,
  kCountyStats,
  kPlanets,
  kRoutes,
  kContestants,
  kStations,
  kMeasurements,
  kBookCatalog,   ///< ISBNs (unique, check-digit structure) + titles
  kStandings,     ///< league table: team, W, L, points
  kWeatherLog,    ///< station, date, temperature readings
};
constexpr int kNumArchetypes = 20;

/// \brief Deterministic generator for one table of a given archetype.
AnnotatedTable GenerateTable(Archetype archetype, size_t rows, Rng& rng);

/// \brief Row-count distribution of a corpus preset.
struct RowProfile {
  size_t min_rows = 10;
  size_t max_rows = 60;
  /// Zipf exponent shaping toward small tables (0 = uniform).
  double skew = 1.1;
};

/// \brief A corpus preset: archetype mix plus row profile.
struct CorpusSpec {
  std::string name = "corpus";
  size_t num_tables = 1000;
  uint64_t seed = 42;
  RowProfile rows;
  /// Per-archetype sampling weights (size kNumArchetypes); empty = uniform.
  std::vector<double> archetype_weights;
};

/// \brief A generated corpus with per-table/column metadata aligned 1:1
/// with corpus.tables.
struct AnnotatedCorpus {
  Corpus corpus;
  std::vector<std::vector<ColumnMeta>> column_meta;
};

/// \brief Generates a corpus from a spec (deterministic in spec.seed).
AnnotatedCorpus GenerateCorpus(const CorpusSpec& spec);

/// \brief Presets mirroring Table 2's three corpora. `num_tables` scales
/// the corpus; relative row/column shapes follow the paper (WEB/WIKI
/// small web tables, Enterprise fewer but much taller tables).
CorpusSpec WebCorpusSpec(size_t num_tables, uint64_t seed = 1);
CorpusSpec WikiCorpusSpec(size_t num_tables, uint64_t seed = 2);
CorpusSpec EnterpriseCorpusSpec(size_t num_tables, uint64_t seed = 3);

}  // namespace unidetect
