#include "corpus/token_index.h"

#include <algorithm>
#include <charconv>
#include <unordered_set>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace unidetect {

void TokenIndex::AddTable(const Table& table) {
  std::unordered_set<std::string> distinct;
  for (const auto& column : table.columns()) {
    for (const auto& cell : column.cells()) {
      for (auto& token : TokenizeCell(cell)) {
        distinct.insert(ToLower(token));
      }
    }
  }
  for (auto& token : distinct) counts_[token]++;
  ++num_tables_;
}

uint64_t TokenIndex::TableCount(std::string_view token) const {
  return TableCountFolded(ToLower(token));
}

uint64_t TokenIndex::TableCountFolded(const std::string& folded_token) const {
  auto it = counts_.find(folded_token);
  return it == counts_.end() ? 0 : it->second;
}

double TokenIndex::AveragePrevalence(const Column& column) const {
  return TokenPrevalence(*this).AveragePrevalence(column);
}

void TokenIndex::Merge(const TokenIndex& other) {
  for (const auto& [token, count] : other.counts_) counts_[token] += count;
  num_tables_ += other.num_tables_;
}

std::string TokenIndex::Serialize() const {
  std::string out = "TokenIndex v1 " + std::to_string(num_tables_) + " " +
                    std::to_string(counts_.size()) + "\n";
  // Emit in token order: hash-order output would make the serialized
  // index differ across standard libraries for the same corpus.
  std::vector<const std::pair<const std::string, uint64_t>*> sorted;
  sorted.reserve(counts_.size());
  for (const auto& entry : counts_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) {
    out += std::to_string(entry->second);
    out += '\t';
    out += entry->first;
    out += '\n';
  }
  return out;
}

Result<TokenIndex> TokenIndex::Deserialize(std::string_view text) {
  TokenIndex out;
  size_t pos = text.find('\n');
  if (pos == std::string_view::npos) {
    return Status::Corruption("TokenIndex: missing header");
  }
  std::string_view header = text.substr(0, pos);
  if (!StartsWith(header, "TokenIndex v1 ")) {
    return Status::Corruption("TokenIndex: bad header");
  }
  {
    auto fields = Split(header, ' ');
    if (fields.size() != 4) return Status::Corruption("TokenIndex: bad header");
    out.num_tables_ = std::strtoull(fields[2].c_str(), nullptr, 10);
  }
  size_t start = pos + 1;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return Status::Corruption("TokenIndex: malformed line");
    }
    uint64_t count = 0;
    auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + tab, count);
    if (ec != std::errc() || ptr != line.data() + tab) {
      return Status::Corruption("TokenIndex: bad count");
    }
    out.counts_.emplace(std::string(line.substr(tab + 1)), count);
  }
  return out;
}

void TokenIndex::AppendBinary(std::string* out) const {
  AppendU64(out, num_tables_);
  AppendU64(out, counts_.size());
  // Token-sorted emit, same determinism rationale as Serialize().
  std::vector<const std::pair<const std::string, uint64_t>*> sorted;
  sorted.reserve(counts_.size());
  for (const auto& entry : counts_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) {
    AppendLengthPrefixed(out, entry->first);
    AppendU64(out, entry->second);
  }
}

uint64_t TokenPrevalence::num_tables() const {
  uint64_t total = 0;
  for (const TokenIndex* layer : layers_) total += layer->num_tables();
  return total;
}

size_t TokenPrevalence::num_tokens() const {
  if (layers_.size() == 1) return layers_[0]->num_tokens();
  size_t total = 0;
  ForEachMergedToken([&](const std::string&, uint64_t) { ++total; });
  return total;
}

uint64_t TokenPrevalence::TableCount(std::string_view token) const {
  const std::string folded = ToLower(token);
  uint64_t total = 0;
  for (const TokenIndex* layer : layers_) {
    total += layer->TableCountFolded(folded);
  }
  return total;
}

double TokenPrevalence::AveragePrevalence(const Column& column) const {
  // The loop structure mirrors the historical single-index
  // implementation exactly; only the per-token count is a sum over
  // layers. Counts stay integral until the per-cell division, so a
  // layered view and the merged index produce identical doubles.
  double sum = 0.0;
  size_t cells = 0;
  for (const auto& cell : column.cells()) {
    auto tokens = TokenizeCell(cell);
    if (tokens.empty()) continue;
    double cell_sum = 0.0;
    for (const auto& token : tokens) {
      cell_sum += static_cast<double>(TableCount(token));
    }
    sum += cell_sum / static_cast<double>(tokens.size());
    ++cells;
  }
  return cells > 0 ? sum / static_cast<double>(cells) : 0.0;
}

Result<TokenIndex> TokenIndex::FromBinary(BinaryReader* reader) {
  TokenIndex out;
  uint64_t num_tokens = 0;
  if (!reader->ReadU64(&out.num_tables_) || !reader->ReadU64(&num_tokens)) {
    return Status::Corruption("TokenIndex: truncated binary header");
  }
  // Bound the reserve by what the buffer could possibly hold (each entry
  // is at least 12 bytes) so a corrupt count cannot trigger a huge
  // allocation before the truncation check fires.
  out.counts_.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_tokens, reader->remaining() / 12)));
  for (uint64_t i = 0; i < num_tokens; ++i) {
    std::string_view token;
    uint64_t count = 0;
    if (!reader->ReadLengthPrefixed(&token) || !reader->ReadU64(&count)) {
      return Status::Corruption("TokenIndex: truncated binary entry");
    }
    out.counts_.emplace(std::string(token), count);
  }
  return out;
}

}  // namespace unidetect
