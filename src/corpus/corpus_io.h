// Corpus persistence: save/load a corpus as a directory of CSV files.
//
// This is how a downstream user trains Uni-Detect on their *own* table
// collection instead of the synthetic background corpus: drop CSVs in a
// directory, LoadCorpusFromDirectory, Trainer::Train.

#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "util/result.h"

namespace unidetect {

/// \brief Writes every table as `<dir>/<index>_<table-name>.csv`.
/// Creates the directory if needed; fails if any file cannot be written.
Status SaveCorpusToDirectory(const Corpus& corpus, const std::string& dir);

/// \brief Lists the `*.csv` files directly under `dir` in lexicographic
/// order — the deterministic file order shared by LoadCorpusFromDirectory
/// and the offline shard planner (src/offline/shard_plan.h).
Result<std::vector<std::string>> ListCsvFiles(const std::string& dir);

/// \brief Parses one CSV file as a table named after the file stem
/// ("00000003_flights.csv" -> "00000003_flights").
Result<Table> LoadTableFromCsvFile(const std::string& path);

/// \brief Loads every `*.csv` file under `dir` (non-recursive) as one
/// table each, in lexicographic filename order (deterministic). Files
/// that fail to parse are skipped with a warning rather than failing the
/// whole load — a corpus crawl always contains some junk.
///
/// With num_threads != 1 files are read and parsed in parallel
/// (0 = hardware concurrency); table order, skip decisions, and warning
/// order are identical regardless of thread count.
Result<Corpus> LoadCorpusFromDirectory(const std::string& dir,
                                       size_t num_threads = 1);

}  // namespace unidetect
