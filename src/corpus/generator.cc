#include "corpus/generator.h"

#include <algorithm>
#include <unordered_set>

#include "corpus/data_pools.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

// ---------------------------------------------------------------------------
// Column value builders. Each returns `rows` cells; uniqueness-by-
// construction families track what they have emitted.

// 97% popular pool, 3% obscure real towns (Speller bait; see
// RareTownName). The obscure names keep their source's country so
// City -> Country FDs stay intact.
CityEntry PickCity(Rng& rng) {
  if (rng.Bernoulli(0.02)) return RareTownName(rng);
  return rng.Pick(ExtendedCities());
}

std::string MakeFullName(Rng& rng) {
  return rng.Pick(FirstNames()) + " " + rng.Pick(LastNames());
}

std::string MakeRosterName(Rng& rng) {
  // "Keane, Mr. Andrew" style of Figure 2(a).
  static const std::vector<std::string> kHonorifics = {"Mr.", "Mrs.", "Ms.",
                                                       "Dr."};
  return rng.Pick(LastNames()) + ", " + rng.Pick(kHonorifics) + " " +
         rng.Pick(FirstNames());
}

std::vector<std::string> MakeNames(size_t rows, Rng& rng, bool roster_style) {
  std::vector<std::string> out;
  out.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    out.push_back(roster_style ? MakeRosterName(rng) : MakeFullName(rng));
  }
  return out;
}

std::vector<std::string> MakeUniqueAlnumIds(size_t rows, Rng& rng,
                                            const std::string& style) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(rows);
  while (out.size() < rows) {
    std::string id;
    if (style == "part") {
      // "KV214-310B8K2"-like part numbers (Figure 6).
      id = ToUpper(rng.AlphaString(2)) + rng.DigitString(3) + "-" +
           rng.DigitString(3) + ToUpper(rng.AlphaString(1)) +
           rng.DigitString(1) + ToUpper(rng.AlphaString(1)) +
           rng.DigitString(1);
    } else if (style == "case") {
      // "DN35828"-like case numbers.
      id = ToUpper(rng.AlphaString(1 + rng.NextBounded(2))) +
           rng.DigitString(5 + rng.NextBounded(2));
    } else if (style == "stock") {
      // "S042091"-like stock codes.
      id = "S" + rng.DigitString(6);
    } else if (style == "icao") {
      id = ToUpper(rng.AlphaString(4));
    } else {  // "sample"
      id = "SMP-" + rng.DigitString(5);
    }
    if (seen.insert(id).second) out.push_back(std::move(id));
  }
  return out;
}

std::vector<std::string> MakeDates(size_t rows, Rng& rng) {
  std::vector<std::string> out;
  out.reserve(rows);
  const int base_year = static_cast<int>(1995 + rng.NextBounded(25));
  for (size_t i = 0; i < rows; ++i) {
    const int year = base_year + static_cast<int>(rng.NextBounded(3));
    const int month = static_cast<int>(1 + rng.NextBounded(12));
    const int day = static_cast<int>(1 + rng.NextBounded(28));
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
    out.emplace_back(buf);
  }
  return out;
}

std::string FormatWithCommas(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::vector<std::string> MakeBookTitles(size_t rows, Rng& rng) {
  std::vector<std::string> out;
  out.reserve(rows);
  static const std::vector<std::string> kOrdinals = {
      "One", "Two", "Three", "Four", "Five", "Six"};
  const bool is_series = rng.Bernoulli(0.3);
  const std::string series_name =
      rng.Pick(TitleWords()) + rng.Pick(TitleWords());
  for (size_t i = 0; i < rows; ++i) {
    if (is_series && rng.Bernoulli(0.5)) {
      out.push_back(series_name + " Book " + rng.Pick(kOrdinals));
    } else {
      std::string title = "The " + rng.Pick(TitleWords());
      if (rng.Bernoulli(0.7)) title += " " + rng.Pick(TitleWords());
      out.push_back(std::move(title));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Archetype builders.

void AddColumn(AnnotatedTable* t, std::string name,
               std::vector<std::string> cells, ColumnMeta meta) {
  Status st = t->table.AddColumn(Column(std::move(name), std::move(cells)));
  UNIDETECT_CHECK(st.ok());
  t->meta.push_back(meta);
}

AnnotatedTable MakePeopleRoster(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("people_roster");
  AddColumn(&t, "Name", MakeNames(rows, rng, /*roster_style=*/true),
            {.role = ColumnRole::kPersonName, .natural_language = true});
  std::vector<std::string> ages;
  for (size_t i = 0; i < rows; ++i) {
    ages.push_back(std::to_string(rng.UniformInt(17, 75)));
  }
  AddColumn(&t, "Age", std::move(ages),
            {.role = ColumnRole::kAge, .numeric = true});
  std::vector<std::string> hometowns;
  for (size_t i = 0; i < rows; ++i) {
    hometowns.push_back(PickCity(rng).city);
  }
  AddColumn(&t, "Hometown", std::move(hometowns),
            {.role = ColumnRole::kCity, .natural_language = true});
  return t;
}

AnnotatedTable MakeElection(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("election");
  AddColumn(&t, "Candidate", MakeNames(rows, rng, false),
            {.role = ColumnRole::kPersonName, .natural_language = true});
  // Heavy-tailed vote shares: one or two front-runners, a long tail of
  // sub-1% candidates (the Figure 2(e) false-positive trap).
  std::vector<double> raw;
  for (size_t i = 0; i < rows; ++i) raw.push_back(rng.Pareto(0.1, 0.9));
  std::sort(raw.rbegin(), raw.rend());
  double total = 0.0;
  for (double v : raw) total += v;
  std::vector<std::string> pct;
  for (double v : raw) pct.push_back(FormatDouble(100.0 * v / total, 2));
  AddColumn(&t, "% of total votes", std::move(pct),
            {.role = ColumnRole::kVotePct, .numeric = true});
  // Raw vote counts: the same heavy tail in absolute numbers — the
  // front-runner's count is legitimately orders of magnitude above the
  // long tail of minor candidates.
  const double turnout = rng.Uniform(5e4, 2e6);
  std::vector<std::string> votes;
  for (double v : raw) {
    votes.push_back(
        std::to_string(static_cast<uint64_t>(turnout * v / total)));
  }
  AddColumn(&t, "Votes", std::move(votes),
            {.role = ColumnRole::kViewCount, .numeric = false});
  return t;
}

AnnotatedTable MakeBooks(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("books");
  AddColumn(&t, "Published", MakeDates(rows, rng),
            {.role = ColumnRole::kDate});
  AddColumn(&t, "Title", MakeBookTitles(rows, rng),
            {.role = ColumnRole::kBookTitle, .natural_language = true});
  return t;
}

AnnotatedTable MakeCityStats(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("city_stats");
  std::vector<std::string> cities;
  std::vector<std::string> countries;
  std::vector<std::string> populations;
  for (size_t i = 0; i < rows; ++i) {
    const CityEntry entry = PickCity(rng);
    cities.push_back(entry.city);
    countries.push_back(entry.country);
    populations.push_back(
        FormatWithCommas(static_cast<uint64_t>(rng.LogNormal(11.5, 1.2))));
  }
  AddColumn(&t, "City", std::move(cities),
            {.role = ColumnRole::kCity, .natural_language = true});
  AddColumn(&t, "Country", std::move(countries),
            {.role = ColumnRole::kCountry,
             .natural_language = true,
             .fd_partner = 0});
  AddColumn(&t, "Population", std::move(populations),
            {.role = ColumnRole::kPopulationFormatted, .numeric = true});
  return t;
}

AnnotatedTable MakeChemicals(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("chemicals");
  const auto& pool = Chemicals();
  std::vector<size_t> order(pool.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t n = std::min(rows, pool.size());
  std::vector<std::string> species;
  std::vector<std::string> formulas;
  for (size_t i = 0; i < n; ++i) {
    species.push_back(pool[order[i]].species);
    formulas.push_back(pool[order[i]].formula);
  }
  AddColumn(&t, "Species", std::move(species),
            {.role = ColumnRole::kChemSpecies});
  AddColumn(&t, "Formula", std::move(formulas),
            {.role = ColumnRole::kChemFormula, .fd_partner = 0});
  return t;
}

AnnotatedTable MakeSportsSeries(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("sports_series");
  static const std::vector<std::string> kEvents = {
      "Super Bowl", "WrestleMania", "Grand Prix", "Final", "Championship"};
  const std::string event = rng.Pick(kEvents);
  const size_t start = 1 + rng.NextBounded(20);
  const int base_year = static_cast<int>(1960 + rng.NextBounded(40));
  std::vector<std::string> names;
  std::vector<std::string> years;
  for (size_t i = 0; i < rows; ++i) {
    names.push_back(event + " " + RomanNumeral(start + i));
    years.push_back(std::to_string(base_year + static_cast<int>(i)));
  }
  AddColumn(&t, "Event", std::move(names), {.role = ColumnRole::kRomanSeries});
  AddColumn(&t, "Season", std::move(years),
            {.role = ColumnRole::kYear, .numeric = true, .fd_partner = 0});
  return t;
}

AnnotatedTable MakeFlights(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("flights");
  AddColumn(&t, "ICAO", MakeUniqueAlnumIds(rows, rng, "icao"),
            {.role = ColumnRole::kIcaoCode, .intended_unique = true});
  std::vector<std::string> airports;
  std::vector<std::string> cities;
  for (size_t i = 0; i < rows; ++i) {
    const CityEntry entry = PickCity(rng);
    airports.push_back(std::string(entry.city) + " International Airport");
    cities.push_back(entry.city);
  }
  AddColumn(&t, "Airport", std::move(airports),
            {.role = ColumnRole::kAirportName, .natural_language = true});
  AddColumn(&t, "City", std::move(cities),
            {.role = ColumnRole::kCity, .natural_language = true});
  return t;
}

AnnotatedTable MakePartsInventory(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("parts_inventory");
  AddColumn(&t, "Part No.", MakeUniqueAlnumIds(rows, rng, "part"),
            {.role = ColumnRole::kPartNumber, .intended_unique = true});
  AddColumn(&t, "Code", MakeUniqueAlnumIds(rows, rng, "stock"),
            {.role = ColumnRole::kStockCode, .intended_unique = true});
  std::vector<std::string> prices;
  std::vector<std::string> quantities;
  for (size_t i = 0; i < rows; ++i) {
    prices.push_back(FormatDouble(rng.LogNormal(3.5, 0.8), 2));
    quantities.push_back(std::to_string(rng.UniformInt(1, 500)));
  }
  AddColumn(&t, "Price", std::move(prices),
            {.role = ColumnRole::kPrice, .numeric = true});
  AddColumn(&t, "Quantity", std::move(quantities),
            {.role = ColumnRole::kQuantity, .numeric = true});
  // Lifetime units shipped: order volumes are heavy-tailed (a few parts
  // account for nearly all shipments), so the top value legitimately
  // dwarfs the median.
  std::vector<std::string> shipped;
  for (size_t i = 0; i < rows; ++i) {
    shipped.push_back(
        std::to_string(static_cast<uint64_t>(rng.Pareto(40.0, 0.5))));
  }
  AddColumn(&t, "Units shipped", std::move(shipped),
            {.role = ColumnRole::kViewCount, .numeric = false});
  return t;
}

AnnotatedTable MakeCaseRecords(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("case_records");
  AddColumn(&t, "Case Number", MakeUniqueAlnumIds(rows, rng, "case"),
            {.role = ColumnRole::kCaseNumber, .intended_unique = true});
  std::vector<std::string> parties;
  for (size_t i = 0; i < rows; ++i) {
    parties.push_back(ToUpper(rng.Pick(LastNames())) + ", " +
                      ToUpper(rng.Pick(FirstNames())));
  }
  AddColumn(&t, "Party Name", std::move(parties),
            {.role = ColumnRole::kPartyName, .natural_language = true});
  AddColumn(&t, "Filed", MakeDates(rows, rng), {.role = ColumnRole::kDate});
  return t;
}

AnnotatedTable MakeEmployees(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("employees");
  std::unordered_set<std::string> seen;
  std::vector<std::string> aliases;
  std::vector<std::string> names;
  while (aliases.size() < rows) {
    const std::string& first = rng.Pick(FirstNames());
    const std::string& last = rng.Pick(LastNames());
    std::string alias = first + last.substr(0, 1);
    if (!seen.insert(alias).second) {
      alias = first + last.substr(0, 2);
      if (!seen.insert(alias).second) continue;
    }
    aliases.push_back(alias);
    names.push_back(first + " " + last);
  }
  AddColumn(&t, "Alias", std::move(aliases),
            {.role = ColumnRole::kEmployeeAlias, .intended_unique = true});
  AddColumn(&t, "Full Name", std::move(names),
            {.role = ColumnRole::kFullName, .natural_language = true});
  std::vector<std::string> departments;
  for (size_t i = 0; i < rows; ++i) {
    departments.push_back(rng.Pick(Departments()));
  }
  AddColumn(&t, "Department", std::move(departments),
            {.role = ColumnRole::kDepartment, .natural_language = true});
  return t;
}

AnnotatedTable MakeCompanies(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("companies");
  std::vector<std::string> companies;
  std::vector<std::string> sectors;
  std::vector<std::string> revenues;
  for (size_t i = 0; i < rows; ++i) {
    companies.push_back(rng.Pick(CompanyNames()));
    sectors.push_back(rng.Pick(Sectors()));
    revenues.push_back(
        FormatWithCommas(static_cast<uint64_t>(rng.LogNormal(13.0, 1.5))));
  }
  AddColumn(&t, "Company", std::move(companies),
            {.role = ColumnRole::kCompany, .natural_language = true});
  AddColumn(&t, "Sector", std::move(sectors),
            {.role = ColumnRole::kSector, .natural_language = true});
  AddColumn(&t, "Revenue", std::move(revenues),
            {.role = ColumnRole::kRevenueFormatted, .numeric = true});
  // Market cap in thousands: heavy-tailed across companies, so the
  // largest value is routinely orders of magnitude above the median —
  // a legitimate extreme, not an error.
  std::vector<std::string> caps;
  for (size_t i = 0; i < rows; ++i) {
    caps.push_back(std::to_string(
        static_cast<uint64_t>(rng.Pareto(900.0, 0.5))));
  }
  AddColumn(&t, "Market cap (k)", std::move(caps),
            {.role = ColumnRole::kViewCount, .numeric = false});
  return t;
}

AnnotatedTable MakeCountyStats(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("county_stats");
  std::vector<std::string> counties;
  std::vector<std::string> populations;
  std::vector<std::string> areas;
  for (size_t i = 0; i < rows; ++i) {
    const std::string& county = rng.Pick(CountyNames());
    counties.push_back(county);
    populations.push_back(
        FormatWithCommas(static_cast<uint64_t>(rng.LogNormal(10.0, 1.0))));
    areas.push_back(county.substr(0, county.find(' ')) +
                    " Micropolitan Statistical Area");
  }
  AddColumn(&t, "County", std::move(counties),
            {.role = ColumnRole::kCounty, .natural_language = true});
  AddColumn(&t, "2013 Pop", std::move(populations),
            {.role = ColumnRole::kPopulationFormatted, .numeric = true});
  AddColumn(&t, "Core Based Statistical Area", std::move(areas),
            {.role = ColumnRole::kStatArea,
             .natural_language = true,
             .fd_partner = 0,
             .synthesizable = true});
  return t;
}

AnnotatedTable MakePlanets(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("planets");
  std::vector<std::string> names;
  std::vector<std::string> axes;
  static const std::vector<std::string> kPrefixes = {
      "Gliese", "COROT", "Kepler", "HD", "2MASS J", "BD+", "WASP", "TrES"};
  for (size_t i = 0; i < rows; ++i) {
    names.push_back(rng.Pick(kPrefixes) + " " + rng.DigitString(3) + " " +
                    rng.AlphaString(1));
    // Mostly tiny axis values with a genuine heavy tail (Figure 2(f)):
    // large values here are real data, not errors, and they come in
    // clumps (wide-orbit planets cluster in discovery batches), so
    // removing one still leaves others.
    const double axis =
        rng.Bernoulli(0.2) ? rng.Uniform(5.0, 60.0) : rng.Uniform(0.01, 0.9);
    axes.push_back(FormatDouble(axis, 4));
  }
  AddColumn(&t, "Name", std::move(names),
            {.role = ColumnRole::kPlanetName, .intended_unique = true});
  AddColumn(&t, "axis", std::move(axes),
            {.role = ColumnRole::kAxis, .numeric = true});
  return t;
}

AnnotatedTable MakeRoutes(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("routes");
  static const std::vector<std::string> kRegions = {
      "Malaysia Federal", "State", "National", "Provincial", "County"};
  const std::string region = rng.Pick(kRegions);
  const size_t start = 100 + rng.NextBounded(800);
  std::vector<std::string> shields;
  std::vector<std::string> names;
  for (size_t i = 0; i < rows; ++i) {
    const size_t number = start + i;
    shields.push_back(std::to_string(number));
    names.push_back(region + " Route " + std::to_string(number));
  }
  AddColumn(&t, "Highway shield", std::move(shields),
            {.role = ColumnRole::kRouteNumber, .intended_unique = true});
  AddColumn(&t, "Name", std::move(names),
            {.role = ColumnRole::kRouteName,
             .fd_partner = 0,
             .synthesizable = true});
  return t;
}

AnnotatedTable MakeContestants(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("contestants");
  static const std::vector<std::string> kTitlePrefixes = {
      "Mr", "Miss", "Mister", "Ms"};
  const std::string prefix = rng.Pick(kTitlePrefixes);
  std::vector<std::string> countries;
  std::vector<std::string> contestants;
  std::vector<std::string> titles;
  std::vector<size_t> order(Countries().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t n = std::min(rows, order.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string& country = Countries()[order[i]];
    countries.push_back(country);
    contestants.push_back(MakeFullName(rng));
    titles.push_back(prefix + " " + country);
  }
  AddColumn(&t, "Country", std::move(countries),
            {.role = ColumnRole::kCountry,
             .intended_unique = true,
             .natural_language = true});
  AddColumn(&t, "Contestant", std::move(contestants),
            {.role = ColumnRole::kContestant, .natural_language = true});
  AddColumn(&t, "National Title", std::move(titles),
            {.role = ColumnRole::kNationalTitle,
             .fd_partner = 0,
             .synthesizable = true});
  return t;
}

AnnotatedTable MakeStations(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("stations");
  std::vector<std::string> signs;
  std::vector<std::string> cities;
  std::vector<std::string> channels;
  for (size_t i = 0; i < rows; ++i) {
    signs.push_back(rng.Pick(StationCallSigns()));
    cities.push_back(PickCity(rng).city);
    channels.push_back(std::to_string(rng.UniformInt(2, 68)));
  }
  AddColumn(&t, "Station", std::move(signs),
            {.role = ColumnRole::kCallSign});
  AddColumn(&t, "City of license", std::move(cities),
            {.role = ColumnRole::kCity, .natural_language = true});
  AddColumn(&t, "Channel", std::move(channels),
            {.role = ColumnRole::kChannelNumber, .numeric = true});
  // Weekly viewers: an honest power law. A handful of stations reach
  // audiences thousands of times larger than the median — legitimate
  // values that MAD/SD/DBOD-style detectors flag as outliers (the
  // Figure 2(e)/(f) trap, at full strength).
  std::vector<std::string> viewers;
  for (size_t i = 0; i < rows; ++i) {
    viewers.push_back(std::to_string(
        static_cast<uint64_t>(rng.Pareto(120.0, 0.45))));
  }
  AddColumn(&t, "Weekly viewers", std::move(viewers),
            {.role = ColumnRole::kViewCount, .numeric = false});
  return t;
}

AnnotatedTable MakeMeasurements(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("measurements");
  AddColumn(&t, "Sample", MakeUniqueAlnumIds(rows, rng, "sample"),
            {.role = ColumnRole::kSampleId, .intended_unique = true});
  const double mean = rng.Uniform(50.0, 5000.0);
  const double sd = mean * rng.Uniform(0.02, 0.15);
  std::vector<std::string> readings;
  std::vector<std::string> temps;
  for (size_t i = 0; i < rows; ++i) {
    readings.push_back(FormatDouble(rng.Normal(mean, sd), 2));
    temps.push_back(FormatDouble(rng.Normal(21.0, 1.5), 1));
  }
  AddColumn(&t, "Reading", std::move(readings),
            {.role = ColumnRole::kMeasurement, .numeric = true});
  AddColumn(&t, "Temp", std::move(temps),
            {.role = ColumnRole::kMeasurement, .numeric = true});
  return t;
}

AnnotatedTable MakeBookCatalog(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("book_catalog");
  // ISBN-13 with a real check digit: unique, structured identifiers.
  std::unordered_set<std::string> seen;
  std::vector<std::string> isbns;
  while (isbns.size() < rows) {
    std::string digits = "978" + rng.DigitString(9);
    int sum = 0;
    for (size_t i = 0; i < 12; ++i) {
      sum += (digits[i] - '0') * (i % 2 == 0 ? 1 : 3);
    }
    digits.push_back(static_cast<char>('0' + (10 - sum % 10) % 10));
    std::string isbn = digits.substr(0, 3) + "-" + digits.substr(3, 1) +
                       "-" + digits.substr(4, 5) + "-" + digits.substr(9, 3) +
                       "-" + digits.substr(12, 1);
    if (seen.insert(isbn).second) isbns.push_back(std::move(isbn));
  }
  AddColumn(&t, "ISBN", std::move(isbns),
            {.role = ColumnRole::kIsbn, .intended_unique = true});
  AddColumn(&t, "Title", MakeBookTitles(rows, rng),
            {.role = ColumnRole::kBookTitle, .natural_language = true});
  std::vector<std::string> years;
  for (size_t i = 0; i < rows; ++i) {
    years.push_back(std::to_string(rng.UniformInt(1985, 2020)));
  }
  AddColumn(&t, "Year", std::move(years),
            {.role = ColumnRole::kYear, .numeric = true});
  return t;
}

AnnotatedTable MakeStandings(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("standings");
  static const std::vector<std::string> kMascots = {
      "Lions",  "Tigers", "Bears",   "Eagles",  "Hawks",  "Wolves",
      "Sharks", "Bulls",  "Falcons", "Panthers", "Rams",  "Cobras",
      "Ravens", "Knights", "Titans", "Comets",  "Storm",  "Rockets",
      "Pirates", "Giants", "Royals", "Rangers", "Chiefs", "Saints"};
  const size_t games = 20 + rng.NextBounded(30);
  std::vector<std::string> teams;
  std::vector<std::string> wins;
  std::vector<std::string> losses;
  std::vector<std::string> points;
  std::unordered_set<std::string> seen;
  while (teams.size() < rows) {
    std::string team = std::string(rng.Pick(ExtendedCities()).city) + " " +
                       rng.Pick(kMascots);
    if (!seen.insert(team).second) continue;
    const auto w = static_cast<size_t>(rng.NextBounded(games + 1));
    teams.push_back(std::move(team));
    wins.push_back(std::to_string(w));
    losses.push_back(std::to_string(games - w));
    points.push_back(std::to_string(3 * w));
  }
  AddColumn(&t, "Team", std::move(teams),
            {.role = ColumnRole::kTeamName,
             .intended_unique = true,
             .natural_language = true});
  AddColumn(&t, "W", std::move(wins),
            {.role = ColumnRole::kWinCount, .numeric = true});
  AddColumn(&t, "L", std::move(losses),
            {.role = ColumnRole::kWinCount, .numeric = true});
  // Points = 3 * W: a numeric dependency that holds as an exact FD and
  // is learnable by the kScaleInt synthesis transform.
  AddColumn(&t, "Pts", std::move(points),
            {.role = ColumnRole::kPoints,
             .numeric = true,
             .fd_partner = 1,
             .synthesizable = true});
  return t;
}

AnnotatedTable MakeWeatherLog(size_t rows, Rng& rng) {
  AnnotatedTable t;
  t.table.set_name("weather_log");
  std::vector<std::string> stations;
  std::vector<std::string> temps;
  std::vector<std::string> humidity;
  const double base = rng.Uniform(-5.0, 25.0);
  for (size_t i = 0; i < rows; ++i) {
    stations.push_back(rng.Pick(ExtendedCities()).city);
    temps.push_back(FormatDouble(rng.Normal(base, 4.0), 1));
    humidity.push_back(std::to_string(rng.UniformInt(20, 100)));
  }
  AddColumn(&t, "Station", std::move(stations),
            {.role = ColumnRole::kCity, .natural_language = true});
  AddColumn(&t, "Date", MakeDates(rows, rng), {.role = ColumnRole::kDate});
  AddColumn(&t, "Temp (C)", std::move(temps),
            {.role = ColumnRole::kTemperature, .numeric = true});
  AddColumn(&t, "Humidity", std::move(humidity),
            {.role = ColumnRole::kTemperature, .numeric = true});
  return t;
}

}  // namespace

AnnotatedTable GenerateTable(Archetype archetype, size_t rows, Rng& rng) {
  switch (archetype) {
    case Archetype::kPeopleRoster:
      return MakePeopleRoster(rows, rng);
    case Archetype::kElection:
      return MakeElection(rows, rng);
    case Archetype::kBooks:
      return MakeBooks(rows, rng);
    case Archetype::kCityStats:
      return MakeCityStats(rows, rng);
    case Archetype::kChemicals:
      return MakeChemicals(rows, rng);
    case Archetype::kSportsSeries:
      return MakeSportsSeries(rows, rng);
    case Archetype::kFlights:
      return MakeFlights(rows, rng);
    case Archetype::kPartsInventory:
      return MakePartsInventory(rows, rng);
    case Archetype::kCaseRecords:
      return MakeCaseRecords(rows, rng);
    case Archetype::kEmployees:
      return MakeEmployees(rows, rng);
    case Archetype::kCompanies:
      return MakeCompanies(rows, rng);
    case Archetype::kCountyStats:
      return MakeCountyStats(rows, rng);
    case Archetype::kPlanets:
      return MakePlanets(rows, rng);
    case Archetype::kRoutes:
      return MakeRoutes(rows, rng);
    case Archetype::kContestants:
      return MakeContestants(rows, rng);
    case Archetype::kStations:
      return MakeStations(rows, rng);
    case Archetype::kMeasurements:
      return MakeMeasurements(rows, rng);
    case Archetype::kBookCatalog:
      return MakeBookCatalog(rows, rng);
    case Archetype::kStandings:
      return MakeStandings(rows, rng);
    case Archetype::kWeatherLog:
      return MakeWeatherLog(rows, rng);
  }
  return MakePeopleRoster(rows, rng);
}

AnnotatedCorpus GenerateCorpus(const CorpusSpec& spec) {
  Rng rng(spec.seed);
  AnnotatedCorpus out;
  out.corpus.name = spec.name;
  out.corpus.tables.reserve(spec.num_tables);
  out.column_meta.reserve(spec.num_tables);

  std::vector<double> weights = spec.archetype_weights;
  if (weights.empty()) weights.assign(kNumArchetypes, 1.0);
  UNIDETECT_CHECK(weights.size() == kNumArchetypes);

  const size_t span = spec.rows.max_rows - spec.rows.min_rows + 1;
  for (size_t i = 0; i < spec.num_tables; ++i) {
    const auto archetype = static_cast<Archetype>(rng.PickWeighted(weights));
    size_t rows = spec.rows.min_rows;
    if (span > 1) {
      rows += spec.rows.skew > 0 ? rng.Zipf(span, spec.rows.skew)
                                 : rng.NextBounded(span);
    }
    AnnotatedTable t = GenerateTable(archetype, rows, rng);
    t.table.set_name(t.table.name() + "_" + std::to_string(i));
    out.corpus.tables.push_back(std::move(t.table));
    out.column_meta.push_back(std::move(t.meta));
  }
  return out;
}

CorpusSpec WebCorpusSpec(size_t num_tables, uint64_t seed) {
  CorpusSpec spec;
  spec.name = "WEB";
  spec.num_tables = num_tables;
  spec.seed = seed;
  // Mostly small web tables, with a long tail of large ones so every
  // row-count bucket the featurization uses (Section 3.1) has training
  // evidence — the paper's 135M-table crawl covers tall tables too.
  spec.rows = {10, 700, 1.2};
  return spec;
}

CorpusSpec WikiCorpusSpec(size_t num_tables, uint64_t seed) {
  CorpusSpec spec;
  spec.name = "WIKI";
  spec.num_tables = num_tables;
  spec.seed = seed;
  spec.rows = {10, 90, 1.3};
  // Wikipedia leans toward encyclopedic archetypes: rosters, elections,
  // series, planets, routes, contestants; fewer enterprise sheets.
  spec.archetype_weights = {2.0, 1.5, 1.5, 1.5, 1.0, 1.5, 1.0, 0.3, 0.3,
                            0.2, 0.7, 1.0, 1.2, 1.2, 1.2, 1.0, 0.3, 1.0,
                            1.5, 0.5};
  return spec;
}

CorpusSpec EnterpriseCorpusSpec(size_t num_tables, uint64_t seed) {
  CorpusSpec spec;
  spec.name = "Enterprise";
  spec.num_tables = num_tables;
  spec.seed = seed;
  // Much taller tables, ID/measurement heavy (exported from databases).
  spec.rows = {150, 900, 0.5};
  spec.archetype_weights = {0.3, 0.1, 0.2, 0.5, 0.1, 0.1, 0.5, 2.5, 2.0,
                            2.0, 1.5, 0.5, 0.1, 0.3, 0.1, 0.3, 2.5, 0.5,
                            0.2, 1.5};
  return spec;
}

}  // namespace unidetect
