// Token prevalence index over the background corpus T.
//
// Section 3.3 featurizes columns by "the average prevalence of tokens",
// i.e. in how many corpus tables a token occurs. The index is built in a
// first pass over T and then consulted both during offline learning and
// online detection (a trained model ships with its index).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "table/column.h"
#include "table/table.h"
#include "util/result.h"

namespace unidetect {

class BinaryReader;

/// \brief Maps token -> number of corpus tables containing it.
class TokenIndex {
 public:
  TokenIndex() = default;

  /// \brief Adds one table: every distinct token in it counts once.
  /// Tokens are case-folded.
  void AddTable(const Table& table);

  /// \brief Number of tables ingested.
  uint64_t num_tables() const { return num_tables_; }

  /// \brief Number of distinct tokens seen.
  size_t num_tokens() const { return counts_.size(); }

  /// \brief Tables containing the (case-folded) token; 0 if unseen.
  uint64_t TableCount(std::string_view token) const;

  /// \brief Prev(C) of Section 3.3: the mean, over non-empty cells and
  /// their tokens, of the token's table count.
  double AveragePrevalence(const Column& column) const;

  /// \brief Merges another index into this one (sharded builds).
  void Merge(const TokenIndex& other);

  /// \brief Visits every (token, table-count) entry.
  template <typename Fn>
  void ForEachToken(Fn&& fn) const {
    for (const auto& [token, count] : counts_) fn(token, count);
  }

  /// \brief Serialization for model persistence (text format: one
  /// "count<TAB>token" line per token after a header).
  std::string Serialize() const;
  static Result<TokenIndex> Deserialize(std::string_view text);

  /// \brief Binary codec for the snapshot format (model_format/):
  /// u64 num_tables, u64 num_tokens, then per token (sorted order, so
  /// output is deterministic) a length-prefixed token and u64 count.
  void AppendBinary(std::string* out) const;
  static Result<TokenIndex> FromBinary(BinaryReader* reader);

  /// \brief Snapshot-v2 decode helpers (model_format/snapshot_v2.cc):
  /// install already case-folded entries directly. AddTokenCount returns
  /// false on a duplicate token (corrupt input).
  void SetNumTables(uint64_t n) { num_tables_ = n; }
  bool AddTokenCount(std::string_view token, uint64_t count) {
    return counts_.emplace(std::string(token), count).second;
  }

 private:
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t num_tables_ = 0;
};

}  // namespace unidetect
