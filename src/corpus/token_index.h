// Token prevalence index over the background corpus T.
//
// Section 3.3 featurizes columns by "the average prevalence of tokens",
// i.e. in how many corpus tables a token occurs. The index is built in a
// first pass over T and then consulted both during offline learning and
// online detection (a trained model ships with its index).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "table/column.h"
#include "table/table.h"
#include "util/result.h"

namespace unidetect {

class BinaryReader;

/// \brief Maps token -> number of corpus tables containing it.
class TokenIndex {
 public:
  TokenIndex() = default;

  /// \brief Adds one table: every distinct token in it counts once.
  /// Tokens are case-folded.
  void AddTable(const Table& table);

  /// \brief Number of tables ingested.
  uint64_t num_tables() const { return num_tables_; }

  /// \brief Number of distinct tokens seen.
  size_t num_tokens() const { return counts_.size(); }

  /// \brief Tables containing the (case-folded) token; 0 if unseen.
  uint64_t TableCount(std::string_view token) const;

  /// \brief TableCount for a token the caller has already case-folded
  /// (the layered TokenPrevalence overlay folds once, then consults
  /// every layer).
  uint64_t TableCountFolded(const std::string& folded_token) const;

  /// \brief Prev(C) of Section 3.3: the mean, over non-empty cells and
  /// their tokens, of the token's table count. Delegates to a
  /// single-layer TokenPrevalence so the layered and flat paths share
  /// one arithmetic.
  double AveragePrevalence(const Column& column) const;

  /// \brief Merges another index into this one (sharded builds).
  void Merge(const TokenIndex& other);

  /// \brief Visits every (token, table-count) entry.
  template <typename Fn>
  void ForEachToken(Fn&& fn) const {
    for (const auto& [token, count] : counts_) fn(token, count);
  }

  /// \brief Serialization for model persistence (text format: one
  /// "count<TAB>token" line per token after a header).
  std::string Serialize() const;
  static Result<TokenIndex> Deserialize(std::string_view text);

  /// \brief Binary codec for the snapshot format (model_format/):
  /// u64 num_tables, u64 num_tokens, then per token (sorted order, so
  /// output is deterministic) a length-prefixed token and u64 count.
  void AppendBinary(std::string* out) const;
  static Result<TokenIndex> FromBinary(BinaryReader* reader);

  /// \brief Snapshot-v2 decode helpers (model_format/snapshot_v2.cc):
  /// install already case-folded entries directly. AddTokenCount returns
  /// false on a duplicate token (corrupt input).
  void SetNumTables(uint64_t n) { num_tables_ = n; }
  bool AddTokenCount(std::string_view token, uint64_t count) {
    return counts_.emplace(std::string(token), count).second;
  }

 private:
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t num_tables_ = 0;
};

/// \brief Read-side overlay over one or more TokenIndex layers (the
/// base snapshot plus any applied deltas — learn/model_stack.h).
///
/// Table counts are *additive*: each layer counted disjoint ingested
/// tables, so the count over the union corpus is exactly the sum of the
/// per-layer counts. Summing the integer counts before any conversion
/// to double makes every derived quantity (AveragePrevalence, and the
/// PrevalenceBucket feature dimension built on it) byte-identical to
/// the same query against the Model::Merge fold of the layers — the
/// keystone invariant of the layered serving path.
///
/// The implicit single-layer conversion keeps existing call sites
/// (trainer, featurizer) source-compatible: a plain `const TokenIndex&`
/// still binds wherever a TokenPrevalence is consumed. Layers are
/// borrowed and must outlive the view.
class TokenPrevalence {
 public:
  /// Single-layer view (implicit: a TokenIndex is its own prevalence).
  TokenPrevalence(const TokenIndex& index)  // NOLINT(google-explicit-*)
      : layers_{&index} {}

  /// Layered view, base first, deltas in application order. Order only
  /// matters for documentation — every answer is a commutative sum.
  explicit TokenPrevalence(std::vector<const TokenIndex*> layers)
      : layers_(std::move(layers)) {}

  size_t num_layers() const { return layers_.size(); }

  /// \brief Tables ingested across all layers.
  uint64_t num_tables() const;

  /// \brief Distinct tokens across all layers (union cardinality).
  size_t num_tokens() const;

  /// \brief Tables containing the (case-folded) token, summed over
  /// layers; 0 if unseen everywhere.
  uint64_t TableCount(std::string_view token) const;

  /// \brief Prev(C) of Section 3.3 over the layered counts. For a
  /// single layer this is exactly TokenIndex::AveragePrevalence.
  double AveragePrevalence(const Column& column) const;

  /// \brief Visits every (token, summed-count) entry. Single layer
  /// visits in the index's own order; multiple layers merge through an
  /// ordered map, so iteration order is deterministic either way for
  /// order-insensitive consumers (the Dictionary builder).
  template <typename Fn>
  void ForEachMergedToken(Fn&& fn) const {
    if (layers_.size() == 1) {
      layers_[0]->ForEachToken(fn);
      return;
    }
    std::map<std::string, uint64_t> merged;
    for (const TokenIndex* layer : layers_) {
      layer->ForEachToken([&](const std::string& token, uint64_t count) {
        merged[token] += count;
      });
    }
    for (const auto& [token, count] : merged) fn(token, count);
  }

 private:
  std::vector<const TokenIndex*> layers_;
};

}  // namespace unidetect
