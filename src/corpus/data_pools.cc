#include "corpus/data_pools.h"

#include "util/random.h"

namespace unidetect {

CityEntry RareTownName(Rng& rng) {
  const CityEntry& base = rng.Pick(ExtendedCities());
  std::string name = base.city;
  // Mutate one lowercase character (never the capitalized initial).
  if (name.size() < 4) return base;
  const size_t pos = 1 + rng.NextBounded(name.size() - 1);
  switch (rng.NextBounded(3)) {
    case 0:  // double a letter
      name.insert(pos, 1, name[pos > 1 ? pos - 1 : pos]);
      break;
    case 1:  // drop a letter
      name.erase(pos, 1);
      break;
    default:  // vowel swap
      name[pos] = name[pos] == 'e' ? 'a' : 'e';
      break;
  }
  if (name == base.city) name += "e";
  return {name, base.country};
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kPool = {
      "James",   "Mary",     "John",    "Patricia", "Robert",  "Jennifer",
      "Michael", "Linda",    "William", "Elizabeth", "David",  "Barbara",
      "Richard", "Susan",    "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",    "Kevin",   "Nancy",    "Brian",   "Lisa",
      "George",  "Margaret", "Edward",  "Betty",    "Ronald",  "Sandra",
      "Timothy", "Ashley",   "Jason",   "Dorothy",  "Jeffrey", "Kimberly",
      "Ryan",    "Emily",    "Jacob",   "Donna",    "Gary",    "Michelle",
      "Nicholas", "Carol",   "Eric",    "Amanda",   "Jonathan", "Melissa",
      "Stephen", "Deborah",  "Larry",   "Stephanie", "Justin", "Rebecca",
      "Scott",   "Sharon",   "Brandon", "Laura",    "Benjamin", "Cynthia",
      "Samuel",  "Kathleen", "Gregory", "Amy",      "Frank",   "Angela",
      "Patrick", "Anna",     "Raymond", "Ruth",     "Jack",    "Brenda",
      "Dennis",  "Pamela",   "Jerry",   "Nicole",   "Tyler",   "Katherine",
      "Aaron",   "Virginia", "Jose",    "Catherine", "Adam",   "Christine",
      "Nathan",  "Samantha", "Henry",   "Debra",    "Douglas", "Janet",
      "Zachary", "Rachel",   "Peter",   "Carolyn",  "Kyle",    "Emma",
      "Walter",  "Maria",    "Ethan",   "Heather",  "Jeremy",  "Diane",
      "Harold",  "Julie",    "Keith",   "Joyce",    "Christian", "Victoria",
  };
  return kPool;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kPool = {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",   "Garcia",
      "Miller",   "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
      "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",  "Moore",
      "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson", "White",
      "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",   "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",  "Scott",
      "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",   "Adams",
      "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
      "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",   "Turner",
      "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins", "Reyes",
      "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",    "Rogers",
      "Gutierrez", "Ortiz",   "Morgan",   "Cooper",   "Peterson", "Bailey",
      "Reed",     "Kelly",    "Howard",   "Ramos",    "Kim",     "Cox",
      "Ward",     "Richardson", "Watson", "Brooks",   "Chavez",  "Wood",
      "James",    "Bennett",  "Gray",     "Mendoza",  "Ruiz",    "Hughes",
      "Price",    "Alvarez",  "Castillo", "Sanders",  "Patel",   "Myers",
      "Long",     "Ross",     "Foster",   "Jimenez",  "Dowling", "Myerson",
      "Morrow",   "Keane",    "Katavelos", "Rabello",  "Jakobek", "Nunziata",
  };
  return kPool;
}

const std::vector<CityEntry>& Cities() {
  static const std::vector<CityEntry> kPool = {
      {"London", "United Kingdom"},   {"Manchester", "United Kingdom"},
      {"Birmingham", "United Kingdom"}, {"Paris", "France"},
      {"Lyon", "France"},             {"Marseille", "France"},
      {"Berlin", "Germany"},          {"Munich", "Germany"},
      {"Hamburg", "Germany"},         {"Madrid", "Spain"},
      {"Barcelona", "Spain"},         {"Valencia", "Spain"},
      {"Rome", "Italy"},              {"Milan", "Italy"},
      {"Naples", "Italy"},            {"Tokyo", "Japan"},
      {"Osaka", "Japan"},             {"Kyoto", "Japan"},
      {"Beijing", "China"},           {"Shanghai", "China"},
      {"Shenzhen", "China"},          {"Delhi", "India"},
      {"Mumbai", "India"},            {"Chennai", "India"},
      {"Sydney", "Australia"},        {"Melbourne", "Australia"},
      {"Brisbane", "Australia"},      {"Toronto", "Canada"},
      {"Vancouver", "Canada"},        {"Montreal", "Canada"},
      {"New York", "United States"},  {"Chicago", "United States"},
      {"Houston", "United States"},   {"Phoenix", "United States"},
      {"Seattle", "United States"},   {"Boston", "United States"},
      {"Denver", "United States"},    {"Atlanta", "United States"},
      {"Dublin", "Ireland"},          {"Cork", "Ireland"},
      {"Galway", "Ireland"},          {"Lisbon", "Portugal"},
      {"Porto", "Portugal"},          {"Amsterdam", "Netherlands"},
      {"Rotterdam", "Netherlands"},   {"Brussels", "Belgium"},
      {"Antwerp", "Belgium"},         {"Vienna", "Austria"},
      {"Zurich", "Switzerland"},      {"Geneva", "Switzerland"},
      {"Stockholm", "Sweden"},        {"Gothenburg", "Sweden"},
      {"Oslo", "Norway"},             {"Copenhagen", "Denmark"},
      {"Helsinki", "Finland"},        {"Warsaw", "Poland"},
      {"Krakow", "Poland"},           {"Prague", "Czech Republic"},
      {"Budapest", "Hungary"},        {"Athens", "Greece"},
      {"Istanbul", "Turkey"},         {"Ankara", "Turkey"},
      {"Cairo", "Egypt"},             {"Lagos", "Nigeria"},
      {"Nairobi", "Kenya"},           {"Cape Town", "South Africa"},
      {"Johannesburg", "South Africa"}, {"Sao Paulo", "Brazil"},
      {"Rio de Janeiro", "Brazil"},   {"Buenos Aires", "Argentina"},
      {"Santiago", "Chile"},          {"Lima", "Peru"},
      {"Bogota", "Colombia"},         {"Mexico City", "Mexico"},
      {"Guadalajara", "Mexico"},      {"Seoul", "South Korea"},
      {"Busan", "South Korea"},       {"Bangkok", "Thailand"},
      {"Singapore", "Singapore"},     {"Kuala Lumpur", "Malaysia"},
      {"Jakarta", "Indonesia"},       {"Manila", "Philippines"},
      {"Hanoi", "Vietnam"},           {"Auckland", "New Zealand"},
      {"Wellington", "New Zealand"},  {"Moscow", "Russia"},
      {"Saint Petersburg", "Russia"}, {"Kyiv", "Ukraine"},
  };
  return kPool;
}

const std::vector<CityEntry>& ExtendedCities() {
  static const std::vector<CityEntry> kPool = [] {
    std::vector<CityEntry> out = Cities();
    static const char* kBases[] = {
        "Ash",    "Maple",  "Oak",   "Elm",    "Cedar",  "Birch",  "Willow",
        "Pine",   "Stone",  "River", "Lake",   "Hill",   "Glen",   "Fern",
        "Clear",  "Spring", "Fair",  "Green",  "West",   "East",   "North",
        "South",  "New",    "Old",   "High",   "Low",    "Mill",   "Bridge",
        "Church", "King",   "Queen", "Castle", "Market", "Harbor", "Bay",
        "Cliff",  "Sand",   "Snow",  "Rock",   "Wolf",   "Fox",    "Deer",
        "Hawk",   "Crow",   "Swan",  "Thorn",  "Bram",   "Hazel",  "Holly",
        "Ivy",    "Rose",   "Lily",  "Heather", "Moss",  "Reed",   "Vale",
        "Wind",   "Storm",  "Sun",   "Moon",   "Star",   "Gold",   "Silver",
        "Iron",   "Copper", "Amber", "Crystal", "Pearl", "Coral",  "Jade",
        "Marsh",  "Fen",    "Moor",  "Heath",  "Dale",   "Wold",   "Combe",
        "Strath", "Aber",   "Inver", "Dun",    "Bal",    "Kil",    "Tre",
        "Lan",    "Pen",    "Pol",   "Car",    "Caer",   "Brad",   "Myr",
        "Tor",    "Wick",   "Thorp", "Hamden",
    };
    static const char* kSuffixes[] = {
        "ton",    "ville", "burg",  "field",  "ford",   "port",  "mouth",
        "haven",  "wood",  "dale",  "brook",  "stead",  "worth", "ham",
        "bury",   "ley",   "moor",  "gate",   "cliff",  "shore", "crest",
        "ridge",
    };
    const auto& countries = Countries();
    size_t country_index = 0;
    for (const char* base : kBases) {
      for (const char* suffix : kSuffixes) {
        out.push_back(
            {std::string(base) + suffix, countries[country_index]});
        country_index = (country_index + 1) % countries.size();
      }
    }
    return out;
  }();
  return kPool;
}

const std::vector<std::string>& Countries() {
  static const std::vector<std::string> kPool = [] {
    std::vector<std::string> out;
    for (const auto& entry : Cities()) {
      std::string country = entry.country;
      bool seen = false;
      for (const auto& existing : out) {
        if (existing == country) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(std::move(country));
    }
    return out;
  }();
  return kPool;
}

const std::vector<ChemicalEntry>& Chemicals() {
  static const std::vector<ChemicalEntry> kPool = {
      {"Water", "H2O"},           {"Hydrogen peroxide", "H2O2"},
      {"Sulfur dioxide", "SO2"},  {"Sulfur trioxide", "SO3"},
      {"Carbon monoxide", "CO"},  {"Carbon dioxide", "CO2"},
      {"Bromine", "Br2"},         {"Bromide", "Br-"},
      {"Nitric oxide", "NO"},     {"Nitrogen dioxide", "NO2"},
      {"Nitrous oxide", "N2O"},   {"Ammonia", "NH3"},
      {"Methane", "CH4"},         {"Ethane", "C2H6"},
      {"Propane", "C3H8"},        {"Butane", "C4H10"},
      {"Ethanol", "C2H5OH"},      {"Methanol", "CH3OH"},
      {"Glucose", "C6H12O6"},     {"Sodium chloride", "NaCl"},
      {"Potassium chloride", "KCl"}, {"Calcium carbonate", "CaCO3"},
      {"Sodium hydroxide", "NaOH"},  {"Potassium hydroxide", "KOH"},
      {"Sulfuric acid", "H2SO4"}, {"Nitric acid", "HNO3"},
      {"Hydrochloric acid", "HCl"}, {"Phosphoric acid", "H3PO4"},
      {"Ozone", "O3"},            {"Oxygen", "O2"},
      {"Nitrogen", "N2"},         {"Hydrogen", "H2"},
  };
  return kPool;
}

const std::vector<std::string>& Sectors() {
  static const std::vector<std::string> kPool = {
      "Consumer Goods", "Banking",        "Energy - Oil & Gas",
      "Cement",         "Information Technology", "Telecommunication",
      "Healthcare",     "Utilities",      "Real Estate",
      "Transportation", "Retail",         "Manufacturing",
      "Agriculture",    "Media",          "Insurance",
      "Pharmaceuticals", "Automotive",    "Aerospace",
      "Construction",   "Hospitality",
  };
  return kPool;
}

const std::vector<std::string>& Departments() {
  static const std::vector<std::string> kPool = {
      "Engineering", "Marketing",  "Sales",      "Finance",
      "Operations",  "Legal",      "Research",   "Support",
      "Procurement", "Logistics",  "Security",   "Facilities",
      "Design",      "Analytics",  "Compliance", "Training",
  };
  return kPool;
}

const std::vector<std::string>& CompanyNames() {
  static const std::vector<std::string> kPool = {
      "Acme Corp",      "Globex",        "Initech",       "Umbrella Group",
      "Stark Industries", "Wayne Enterprises", "Wonka Industries",
      "Tyrell Corp",    "Cyberdyne Systems", "Soylent Corp",
      "Hooli",          "Pied Piper",    "Aviato",        "Vandelay Industries",
      "Dunder Mifflin", "Sterling Cooper", "Bluth Company", "Gekko & Co",
      "Oceanic Airlines", "Virtucon",    "Massive Dynamic", "Veridian Dynamics",
      "Prestige Worldwide", "Gringotts", "Monsters Inc",  "Duff Brewing",
      "Nakatomi Trading", "Weyland-Yutani", "Oscorp",     "LexCorp",
  };
  return kPool;
}

const std::vector<std::string>& TitleWords() {
  static const std::vector<std::string> kPool = {
      "Shadow",   "River",   "Winter",  "Summer",  "Crown",   "Silent",
      "Broken",   "Hidden",  "Golden",  "Silver",  "Ancient", "Forgotten",
      "Last",     "First",   "Dark",    "Bright",  "Empire",  "Kingdom",
      "Journey",  "Return",  "Legacy",  "Promise", "Secret",  "Storm",
      "Garden",   "Harbor",  "Mountain", "Valley", "Ocean",   "Desert",
      "Memory",   "Dream",   "Whisper", "Echo",    "Flame",   "Frost",
      "Throne",   "Sword",   "Tower",   "Bridge",  "Mirror",  "Lantern",
      "Voyage",   "Horizon", "Twilight", "Dawn",   "Midnight", "Eclipse",
  };
  return kPool;
}

const std::vector<std::string>& Occupations() {
  static const std::vector<std::string> kPool = {
      "Teacher",   "Engineer",  "Nurse",     "Carpenter", "Electrician",
      "Architect", "Librarian", "Chef",      "Pilot",     "Farmer",
      "Journalist", "Pharmacist", "Plumber", "Surveyor",  "Translator",
      "Designer",  "Accountant", "Geologist", "Biologist", "Historian",
  };
  return kPool;
}

const std::vector<std::string>& CountyNames() {
  static const std::vector<std::string> kPool = {
      "Jackson County",  "Jefferson County", "Franklin County",
      "Lincoln County",  "Madison County",   "Washington County",
      "Monroe County",   "Clay County",      "Marion County",
      "Union County",    "Wayne County",     "Montgomery County",
      "Greene County",   "Warren County",    "Clark County",
      "Adams County",    "Lynn County",      "Throckmorton County",
      "McMullen County", "Swisher County",   "Smith County",
      "Jasper County",   "Douglas County",   "Carroll County",
  };
  return kPool;
}

const std::vector<std::string>& StationCallSigns() {
  static const std::vector<std::string> kPool = {
      "WALA-TV", "KMOH-TV", "KTVK",   "KASW",   "KOLD-TV", "KARK-TV",
      "WJLA-TV", "KOMO-TV", "WGN-TV", "KTLA",   "WPIX",    "KRON-TV",
      "WSB-TV",  "WFAA",    "KHOU",   "WMAQ-TV", "KNBC",   "WCVB-TV",
      "KIRO-TV", "WTVF",    "KUSA",   "WDIV-TV", "KPRC-TV", "WPLG",
  };
  return kPool;
}

std::string RomanNumeral(size_t n) {
  static const struct {
    size_t value;
    const char* glyph;
  } kTable[] = {{50, "L"}, {40, "XL"}, {10, "X"}, {9, "IX"},
                {5, "V"},  {4, "IV"},  {1, "I"}};
  std::string out;
  for (const auto& entry : kTable) {
    while (n >= entry.value) {
      out += entry.glyph;
      n -= entry.value;
    }
  }
  return out;
}

}  // namespace unidetect
