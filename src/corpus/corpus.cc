#include "corpus/corpus.h"

namespace unidetect {

CorpusStats Corpus::Stats() const {
  CorpusStats out;
  out.num_tables = tables.size();
  if (tables.empty()) return out;
  double cols = 0.0;
  double rows = 0.0;
  for (const auto& table : tables) {
    cols += static_cast<double>(table.num_columns());
    rows += static_cast<double>(table.num_rows());
  }
  out.avg_columns_per_table = cols / static_cast<double>(tables.size());
  out.avg_rows_per_table = rows / static_cast<double>(tables.size());
  return out;
}

}  // namespace unidetect
