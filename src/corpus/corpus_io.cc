#include "corpus/corpus_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace unidetect {

namespace fs = std::filesystem;

namespace {
// Files skipped by parallel-load shards; drained in path order after the
// shards join so the warning log is deterministic.
struct SkipLog {
  Mutex mu;
  std::vector<std::pair<size_t, std::string>> entries GUARDED_BY(mu);

  void Record(size_t path_index, std::string message) EXCLUDES(mu) {
    MutexLock lock(&mu);
    entries.emplace_back(path_index, std::move(message));
  }
};

std::string SanitizeFileName(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
        c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "table";
  return out;
}
}  // namespace

Status SaveCorpusToDirectory(const Corpus& corpus, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  for (size_t i = 0; i < corpus.tables.size(); ++i) {
    const Table& table = corpus.tables[i];
    // Zero-padded index keeps lexicographic load order == save order.
    char index[32];
    std::snprintf(index, sizeof(index), "%08zu", i);
    const std::string path = dir + "/" + index + "_" +
                             SanitizeFileName(table.name()) + ".csv";
    UNIDETECT_RETURN_NOT_OK(WriteCsvFile(path, table.ToCsv()));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListCsvFiles(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(dir + " is not a directory");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot list " + dir + ": " + ec.message());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<Table> LoadTableFromCsvFile(const std::string& path) {
  auto csv = ReadCsvFile(path);
  if (!csv.ok()) return csv.status();
  return Table::FromCsv(*csv, fs::path(path).stem().string());
}

Result<Corpus> LoadCorpusFromDirectory(const std::string& dir,
                                       size_t num_threads) {
  UNIDETECT_ASSIGN_OR_RETURN(const std::vector<std::string> paths,
                             ListCsvFiles(dir));

  // Per-path slots keep table order independent of shard timing.
  std::vector<std::optional<Table>> slots(paths.size());
  SkipLog skips;
  auto load_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      auto table = LoadTableFromCsvFile(paths[i]);
      if (table.ok()) {
        slots[i].emplace(std::move(table).ValueOrDie());
      } else {
        skips.Record(i, table.status().ToString());
      }
    }
  };
  if (num_threads == 1) {
    load_range(0, paths.size());
  } else {
    ThreadPool pool(num_threads);
    ParallelFor(pool, paths.size(),
                [&](size_t, size_t begin, size_t end) {
                  load_range(begin, end);
                });
  }

  {
    MutexLock lock(&skips.mu);
    std::sort(skips.entries.begin(), skips.entries.end());
    for (const auto& [index, message] : skips.entries) {
      UNIDETECT_LOG(Warning) << "skipping " << paths[index] << ": "
                             << message;
    }
  }

  Corpus corpus;
  corpus.name = dir;
  for (auto& slot : slots) {
    if (slot.has_value()) corpus.tables.push_back(std::move(*slot));
  }
  return corpus;
}

}  // namespace unidetect
