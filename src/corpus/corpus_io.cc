#include "corpus/corpus_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>

#include "util/logging.h"

namespace unidetect {

namespace fs = std::filesystem;

namespace {
std::string SanitizeFileName(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
        c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "table";
  return out;
}
}  // namespace

Status SaveCorpusToDirectory(const Corpus& corpus, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  for (size_t i = 0; i < corpus.tables.size(); ++i) {
    const Table& table = corpus.tables[i];
    // Zero-padded index keeps lexicographic load order == save order.
    char index[16];
    std::snprintf(index, sizeof(index), "%08zu", i);
    const std::string path = dir + "/" + index + "_" +
                             SanitizeFileName(table.name()) + ".csv";
    UNIDETECT_RETURN_NOT_OK(WriteCsvFile(path, table.ToCsv()));
  }
  return Status::OK();
}

Result<Corpus> LoadCorpusFromDirectory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(dir + " is not a directory");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot list " + dir + ": " + ec.message());
  }
  std::sort(paths.begin(), paths.end());

  Corpus corpus;
  corpus.name = dir;
  for (const std::string& path : paths) {
    auto csv = ReadCsvFile(path);
    if (!csv.ok()) {
      UNIDETECT_LOG(Warning) << "skipping " << path << ": " << csv.status();
      continue;
    }
    auto table = Table::FromCsv(*csv, fs::path(path).stem().string());
    if (!table.ok()) {
      UNIDETECT_LOG(Warning) << "skipping " << path << ": " << table.status();
      continue;
    }
    corpus.tables.push_back(std::move(table).ValueOrDie());
  }
  return corpus;
}

}  // namespace unidetect
