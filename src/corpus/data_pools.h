// Static value pools backing the synthetic corpus generator: person
// names, cities with their countries, chemical species, sectors, and the
// other vocabularies the paper's motivating examples draw from
// (Figures 2, 4, 6).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace unidetect {

/// \brief A city and the country it belongs to (drives City -> Country
/// FDs like Figure 2(d)).
struct CityEntry {
  std::string city;
  std::string country;
};

/// \brief Chemical species and formula (inherently-close value family of
/// Figure 2(g)).
struct ChemicalEntry {
  const char* species;
  const char* formula;
};

const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<CityEntry>& Cities();

/// \brief Cities() plus ~2000 deterministic synthetic town names
/// ("Ashford", "Maplebrook Springs", ...), each with a country. The big
/// pool makes chance duplicates in city columns *rare but regular* —
/// the birthday-paradox regime real "Hometown" columns live in, which
/// Uni-Detect's corpus statistics must learn are not uniqueness errors.
const std::vector<CityEntry>& ExtendedCities();

/// \brief A genuine-but-obscure town name derived by mutating one
/// character of an ExtendedCities() entry ("Oakvile", "Ashfordd").
/// Such names are valid yet nearly absent from the corpus and sit at
/// edit distance 1 from a popular name — the "Tulia"/"Trulia" trap that
/// makes dictionary spellers mis-correct real places (Figure 3).
CityEntry RareTownName(class Rng& rng);
const std::vector<std::string>& Countries();
const std::vector<ChemicalEntry>& Chemicals();
const std::vector<std::string>& Sectors();
const std::vector<std::string>& Departments();
const std::vector<std::string>& CompanyNames();
const std::vector<std::string>& TitleWords();
const std::vector<std::string>& Occupations();
const std::vector<std::string>& CountyNames();
const std::vector<std::string>& StationCallSigns();

/// \brief Roman numeral for 1 <= n <= 60 ("XX", "XXI", ...), the
/// short-token near-duplicate family of Figure 2(h).
std::string RomanNumeral(size_t n);

}  // namespace unidetect
