// Corpus: an in-memory collection of tables, standing in for the paper's
// web-scale table store T and for the test corpora (WIKI^T, WEB^T,
// Enterprise^T).

#pragma once

#include <string>
#include <vector>

#include "table/table.h"

namespace unidetect {

/// \brief Summary statistics matching the columns of the paper's Table 2.
struct CorpusStats {
  size_t num_tables = 0;
  double avg_columns_per_table = 0.0;
  double avg_rows_per_table = 0.0;
};

/// \brief A named collection of tables.
struct Corpus {
  std::string name;
  std::vector<Table> tables;

  CorpusStats Stats() const;
};

}  // namespace unidetect
