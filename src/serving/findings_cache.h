// FindingsCache: the serving tier's fingerprint -> findings memo
// (DESIGN.md §13). At corpus scale the common case is the same table
// text arriving again and again; detection is pure given (model
// generation, effective options, table content), so the service can key
// a table's ranked findings by a content fingerprint and skip the
// detectors entirely on a repeat.
//
// Determinism: the cache is insertion/LRU-ordered — eviction follows the
// recency list, never iteration order of a hash map (and never pointer
// keys, which the determinism linter rejects). A batch that hits the
// cache returns byte-identical findings to the batch that populated it:
// DetectTable output for one table depends on nothing outside the key.
//
// Invalidation: the model generation is folded into every key AND the
// service clears the cache on a successful Reload. The clear bounds
// memory; the generation in the key makes in-flight inserts from a
// batch that pinned the previous engine harmless (their entries can
// never match a lookup against the new generation).

#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/finding.h"
#include "detect/unidetect.h"
#include "table/table.h"

namespace unidetect {

/// \brief A 128-bit content fingerprint. Wide enough that accidental
/// collisions are negligible at any realistic cache population (the
/// cache serves correctness-sensitive reuse, so 64 bits would be
/// uncomfortably small at "millions of users" request volume).
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;
  bool operator==(const Key128&) const = default;
};

struct Key128Hash {
  size_t operator()(const Key128& key) const {
    // The halves are already well-mixed; fold them asymmetrically.
    return static_cast<size_t>(key.hi ^ (key.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// \brief Fingerprint of one column's name + cell contents (framed, so
/// cell boundaries are part of the hash).
Key128 FingerprintColumn(const Column& column);

/// \brief Full cache key for one table under one serving configuration:
/// model generation + effective options + table name + every column
/// fingerprint. `options.progress` is ignored (it cannot affect
/// findings).
Key128 FingerprintTable(const Table& table, uint64_t generation,
                        const UniDetectOptions& options);

/// \brief Byte-bounded LRU map from Key128 to a table's ranked findings.
///
/// Not thread-safe; the owner serializes access (DetectionService holds
/// it behind its own mutex). A max_bytes of 0 disables the cache:
/// Lookup always misses without counting, Insert is a no-op.
class FindingsCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;       ///< entries evicted by the byte bound
    uint64_t resident_bytes = 0;  ///< approximate bytes currently held
    uint64_t entries = 0;
  };

  explicit FindingsCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  bool enabled() const { return max_bytes_ > 0; }

  /// \brief Returns the cached findings and refreshes the entry's
  /// recency, or nullopt on a miss. Counts a hit or miss (only when
  /// enabled).
  std::optional<std::vector<Finding>> Lookup(const Key128& key);

  /// \brief Inserts (or refreshes) an entry, then evicts from the cold
  /// end of the recency list until the byte bound holds. An entry larger
  /// than the whole budget is not inserted (it could only thrash).
  void Insert(const Key128& key, const std::vector<Finding>& findings);

  /// \brief Drops every entry (Reload invalidation). Cumulative
  /// hit/miss/eviction counters survive; resident bytes drop to zero.
  void Clear();

  Stats stats() const;

 private:
  struct Entry {
    Key128 key;
    std::vector<Finding> findings;
    uint64_t bytes = 0;
  };

  void EvictToBound();

  const uint64_t max_bytes_;
  // Recency list, most-recent first; the map indexes into it. Eviction
  // pops from the back, so the order entries leave the cache is a pure
  // function of the lookup/insert sequence.
  std::list<Entry> lru_;
  std::unordered_map<Key128, std::list<Entry>::iterator, Key128Hash> index_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace unidetect
