#include "serving/detection_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <utility>

#include "model_format/codec_internal.h"
#include "model_format/delta_snapshot.h"
#include "model_format/model_view.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace unidetect {

namespace {
// Strips the corpus-progress observer: it is a serving-default knob that
// makes no sense per request (and would let one request's callback run
// on another snapshot's worker threads).
UniDetectOptions SanitizeOverride(const UniDetectOptions& options) {
  UniDetectOptions sanitized = options;
  sanitized.progress = nullptr;
  return sanitized;
}

// Resolves what the artifact at `path` is before loading it. Legacy text
// models are not UDSNAP containers — they have no identity and load as
// id-less bases (Corruption here is therefore not an error; a truly
// corrupt snapshot fails the subsequent ModelView::Open instead).
struct ArtifactKind {
  uint64_t artifact_id = 0;
  std::optional<DeltaManifest> manifest;
};

Result<ArtifactKind> ResolveArtifact(const std::string& path) {
  ArtifactKind kind;
  auto identity = ReadSnapshotIdentity(path);
  if (identity.ok()) {
    kind.artifact_id = identity->artifact_id;
    kind.manifest = identity->manifest;
  } else if (!identity.status().IsCorruption()) {
    return identity.status();
  }
  return kind;
}
}  // namespace

DetectionService::DetectionService(std::shared_ptr<const Model> model,
                                   UniDetectOptions options,
                                   uint64_t findings_cache_bytes)
    : DetectionService(std::move(model), /*base_path=*/std::string(),
                       /*base_id=*/0, std::move(options),
                       findings_cache_bytes) {}

DetectionService::DetectionService(std::shared_ptr<const Model> base,
                                   std::string base_path, uint64_t base_id,
                                   UniDetectOptions options,
                                   uint64_t findings_cache_bytes)
    : options_(std::move(options)), cache_(findings_cache_bytes) {
  auto stack = std::make_shared<const ModelStack>(
      std::vector<std::shared_ptr<const Model>>{std::move(base)});
  MutexLock lock(&mu_);
  engine_ = std::make_shared<const Engine>(
      std::move(stack), std::vector<std::string>{std::move(base_path)},
      std::vector<uint64_t>{base_id}, options_, /*generation_in=*/1);
}

Result<std::unique_ptr<DetectionService>> DetectionService::Create(
    const std::string& model_path, UniDetectOptions options,
    uint64_t findings_cache_bytes) {
  auto kind = ResolveArtifact(model_path);
  if (!kind.ok()) return kind.status();
  if (kind->manifest.has_value()) {
    return Status::InvalidArgument(
        StrCat("Create: ", model_path,
               " is a delta artifact; a service must start from a base "
               "(apply deltas with ApplyDelta)"));
  }
  auto view = ModelView::Open(model_path);
  if (!view.ok()) return view.status();
  return std::unique_ptr<DetectionService>(new DetectionService(
      view->shared_model(), model_path, kind->artifact_id, std::move(options),
      findings_cache_bytes));
}

Status DetectionService::Reload(const std::string& path) {
  return ReloadInternal(path, /*expected=*/-1);
}

Status DetectionService::ReloadIfGeneration(const std::string& path,
                                            uint64_t expected) {
  return ReloadInternal(path, static_cast<int64_t>(expected));
}

Status DetectionService::ReloadInternal(const std::string& path,
                                        int64_t expected) {
  const auto start = std::chrono::steady_clock::now();
  // Identity, load, and engine construction happen with no lock held:
  // the current snapshot keeps serving while the replacement is
  // prepared, and a failed load never disturbs it. ModelView's default
  // deferred validation keeps a v2 open at O(index); the bulk payloads
  // are never read until queries fault their pages in.
  auto kind = ResolveArtifact(path);
  if (kind.ok() && kind->manifest.has_value()) {
    kind = Status::InvalidArgument(
        StrCat("Reload: ", path,
               " is a delta artifact and only means something stacked on "
               "the chain it names; use ApplyDelta"));
  }
  if (!kind.ok()) {
    MutexLock lock(&stats_mu_);
    ++failed_reloads_;
    return kind.status();
  }
  auto view = ModelView::Open(path);
  if (!view.ok()) {
    MutexLock lock(&stats_mu_);
    ++failed_reloads_;
    return view.status();
  }
  auto stack = std::make_shared<const ModelStack>(
      std::vector<std::shared_ptr<const Model>>{view->shared_model()});
  size_t retired_deltas = 0;
  {
    MutexLock lock(&mu_);
    if (expected >= 0 &&
        engine_->generation != static_cast<uint64_t>(expected)) {
      // Benign compare-and-swap failure: the chain moved (a delta landed
      // or another reload won) between the caller's Layers() snapshot
      // and now. Not a failed reload — the caller refreshes and retries.
      return Status::AlreadyExists(
          StrCat("Reload: generation moved to ", engine_->generation,
                 " (expected ", expected, "); chain changed underfoot"));
    }
    retired_deltas = engine_->layer_ids.size() - 1;
    // The old engine is released here; it stays alive until the last
    // in-flight batch that pinned it drops its reference (for a mapped
    // model, that release is also the munmap).
    engine_ = std::make_shared<const Engine>(
        std::move(stack), std::vector<std::string>{path},
        std::vector<uint64_t>{kind->artifact_id}, options_,
        engine_->generation + 1);
  }
  {
    // Invalidate memoized findings: they belong to the retired
    // generation. (Keys also carry the generation, so a straggler batch
    // still inserting old-generation entries can never poison lookups
    // against the new model — those entries just age out.)
    MutexLock lock(&cache_mu_);
    cache_.Clear();
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  MutexLock lock(&stats_mu_);
  ++reloads_;
  if (retired_deltas > 0) ++compactions_;
  ++reload_latency_buckets_[LatencyBucketIndex(micros)];
  return Status::OK();
}

Status DetectionService::ApplyDelta(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  // Identity + open run off-lock, same as Reload. The chain checks run
  // under the swap lock against the engine actually being extended.
  auto identity = ReadSnapshotIdentity(path);
  if (identity.ok() && !identity->manifest.has_value()) {
    identity = Status::InvalidArgument(
        StrCat("ApplyDelta: ", path,
               " carries no delta manifest — it is a base snapshot; use "
               "Reload"));
  }
  if (!identity.ok()) return identity.status();
  const DeltaManifest manifest = *identity->manifest;
  auto view = ModelView::Open(path);
  if (!view.ok()) return view.status();
  std::shared_ptr<const Model> delta = view->shared_model();
  {
    MutexLock lock(&mu_);
    const std::vector<uint64_t>& ids = engine_->layer_ids;
    if (ids.front() == 0) {
      return Status::InvalidArgument(
          "ApplyDelta: the served base has no artifact id (in-memory or "
          "legacy text model); deltas chain only onto UDSNAP bases");
    }
    if (manifest.base_id != ids.front()) {
      return Status::InvalidArgument(
          StrCat("ApplyDelta: delta chains to base ", manifest.base_id,
                 " but the service is serving base ", ids.front()));
    }
    if (manifest.parent_id != ids.back()) {
      return Status::InvalidArgument(
          StrCat("ApplyDelta: delta expects parent ", manifest.parent_id,
                 " but the top of the served chain is ", ids.back(),
                 " (delta applied out of order, or already applied)"));
    }
    if (manifest.depth != ids.size()) {
      return Status::InvalidArgument(
          StrCat("ApplyDelta: delta is layer ", manifest.depth,
                 " of its chain but the service is serving ", ids.size(),
                 " layers"));
    }
    // Layers must agree on the learning options: LR arithmetic reads
    // them from the base, so a delta trained under different knobs would
    // silently change what its counts mean. Byte-compare the canonical
    // options payload rather than chasing field-by-field drift.
    if (snapshot_internal::EncodeOptionsPayload(delta->options()) !=
        snapshot_internal::EncodeOptionsPayload(
            engine_->stack->base().options())) {
      return Status::InvalidArgument(
          "ApplyDelta: delta was trained under different model options "
          "than the served base");
    }
    auto stack = std::make_shared<const ModelStack>(
        engine_->stack->WithDelta(std::move(delta)));
    std::vector<std::string> paths = engine_->layer_paths;
    std::vector<uint64_t> new_ids = ids;
    paths.push_back(path);
    new_ids.push_back(identity->artifact_id);
    // No cache clear: keys embed the generation, so warm entries simply
    // stop matching and age out — the swap stays O(1) beyond the delta
    // open itself.
    engine_ = std::make_shared<const Engine>(
        std::move(stack), std::move(paths), std::move(new_ids), options_,
        engine_->generation + 1);
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  MutexLock lock(&stats_mu_);
  ++applied_deltas_;
  ++reload_latency_buckets_[LatencyBucketIndex(micros)];
  return Status::OK();
}

std::shared_ptr<const DetectionService::Engine> DetectionService::Snapshot()
    const {
  MutexLock lock(&mu_);
  return engine_;
}

DetectionService::BatchResult DetectionService::DetectBatch(
    std::span<const Table> tables, const UniDetectOptions* override_options,
    size_t num_threads) const {
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const Engine> engine = Snapshot();

  // A request with overrides gets its own one-shot facade against the
  // pinned snapshot; the shared engine stays untouched.
  std::optional<UniDetect> scoped;
  const UniDetect* detector = &engine->detector;
  if (override_options != nullptr) {
    scoped.emplace(engine->stack, SanitizeOverride(*override_options));
    detector = &*scoped;
  }

  BatchResult result;
  result.generation = engine->generation;
  result.per_table.resize(tables.size());

  // Findings-cache probe: fingerprint every table against the pinned
  // generation and effective options, answer hits from the cache, and
  // narrow detection to the misses. Hit results are byte-identical to
  // re-detection — DetectTable is a pure function of the key's inputs.
  std::vector<Key128> keys;
  std::vector<size_t> todo;  // table indices needing detection
  const bool use_cache = cache_.enabled();
  if (use_cache) {
    const UniDetectOptions& effective = detector->options();
    keys.resize(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) {
      keys[i] = FingerprintTable(tables[i], engine->generation, effective);
    }
    MutexLock lock(&cache_mu_);
    for (size_t i = 0; i < tables.size(); ++i) {
      if (auto cached = cache_.Lookup(keys[i])) {
        result.per_table[i] = *std::move(cached);
      } else {
        todo.push_back(i);
      }
    }
  } else {
    todo.resize(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) todo[i] = i;
  }

  if (num_threads == 1 || todo.size() <= 1) {
    for (const size_t i : todo) {
      result.per_table[i] = detector->DetectTable(tables[i]);
    }
  } else {
    // Same sharding discipline as UniDetect::DetectCorpus: per-table
    // output slots keep the response independent of the thread count.
    ThreadPool pool(num_threads);
    ParallelFor(pool, todo.size(),
                [&](size_t, size_t begin, size_t end) {
                  for (size_t t = begin; t < end; ++t) {
                    const size_t i = todo[t];
                    result.per_table[i] = detector->DetectTable(tables[i]);
                  }
                });
  }

  if (use_cache && !todo.empty()) {
    // Insert after the parallel section, in table order, so the LRU
    // (and therefore eviction) order is independent of thread timing.
    MutexLock lock(&cache_mu_);
    for (const size_t i : todo) cache_.Insert(keys[i], result.per_table[i]);
  }

  uint64_t found = 0;
  for (const auto& per_table : result.per_table) found += per_table.size();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  {
    MutexLock lock(&stats_mu_);
    ++requests_;
    tables_ += tables.size();
    findings_ += found;
    ++latency_buckets_[LatencyBucketIndex(micros)];
  }
  return result;
}

uint64_t DetectionService::generation() const {
  return Snapshot()->generation;
}

DetectionService::LayerSet DetectionService::Layers() const {
  const std::shared_ptr<const Engine> engine = Snapshot();
  LayerSet layers;
  layers.paths = engine->layer_paths;
  layers.ids = engine->layer_ids;
  layers.generation = engine->generation;
  return layers;
}

ServiceStats DetectionService::Stats() const {
  ServiceStats stats;
  LatencyBuckets buckets;
  LatencyBuckets reload_buckets;
  uint64_t reload_samples = 0;
  {
    // One coherent cut: all three locks are held together for the
    // copy-out, so the engine gauges, cache counters and histograms
    // describe the same instant (a reload landing mid-Stats can no
    // longer show the new generation next to the old reload count).
    // Fixed acquisition order mu_ -> cache_mu_ -> stats_mu_; no other
    // code path holds any two of these at once, so the nesting cannot
    // deadlock. All three critical sections are short copies — the
    // percentile math runs after release.
    MutexLock engine_lock(&mu_);
    MutexLock cache_lock(&cache_mu_);
    MutexLock stats_lock(&stats_mu_);

    stats.generation = engine_->generation;
    const ModelStack& stack = *engine_->stack;
    stats.model_resident_bytes = stack.base().ApproxResidentBytes();
    stats.model_mapped_bytes = stack.base().mapped_bytes();
    stats.delta_layers = stack.num_layers() - 1;
    for (size_t i = 1; i < stack.num_layers(); ++i) {
      stats.delta_resident_bytes +=
          stack.layer(i).ApproxResidentBytes() + stack.layer(i).mapped_bytes();
    }

    const FindingsCache::Stats cache = cache_.stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_evictions = cache.evictions;
    stats.cache_resident_bytes = cache.resident_bytes;
    stats.cache_entries = cache.entries;
    if (cache.hits + cache.misses > 0) {
      stats.cache_hit_rate = static_cast<double>(cache.hits) /
                             static_cast<double>(cache.hits + cache.misses);
    }

    stats.requests = requests_;
    stats.tables = tables_;
    stats.findings = findings_;
    stats.reloads = reloads_;
    stats.failed_reloads = failed_reloads_;
    stats.applied_deltas = applied_deltas_;
    stats.compactions = compactions_;
    buckets = latency_buckets_;
    reload_buckets = reload_latency_buckets_;
    reload_samples = reloads_ + applied_deltas_;
  }
  if (stats.requests > 0) {
    stats.latency_p50_us =
        LatencyPercentileUpperBound(buckets, stats.requests, 0.50);
    stats.latency_p99_us =
        LatencyPercentileUpperBound(buckets, stats.requests, 0.99);
    stats.latency_p999_us =
        LatencyPercentileUpperBound(buckets, stats.requests, 0.999);
  }
  if (reload_samples > 0) {
    stats.reload_latency_p50_us =
        LatencyPercentileUpperBound(reload_buckets, reload_samples, 0.50);
    stats.reload_latency_p99_us =
        LatencyPercentileUpperBound(reload_buckets, reload_samples, 0.99);
  }
  return stats;
}

}  // namespace unidetect
