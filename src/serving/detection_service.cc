#include "serving/detection_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <utility>

#include "model_format/model_view.h"
#include "util/thread_pool.h"

namespace unidetect {

namespace {
// Strips the corpus-progress observer: it is a serving-default knob that
// makes no sense per request (and would let one request's callback run
// on another snapshot's worker threads).
UniDetectOptions SanitizeOverride(const UniDetectOptions& options) {
  UniDetectOptions sanitized = options;
  sanitized.progress = nullptr;
  return sanitized;
}

size_t LatencyBucket(int64_t micros) {
  return std::min<size_t>(
      std::bit_width(static_cast<uint64_t>(micros < 0 ? 0 : micros)),
      DetectionService::kLatencyBuckets - 1);
}

// Percentile upper bound read off a power-of-two histogram holding
// `count` samples.
double HistogramPercentile(
    const std::array<uint64_t, DetectionService::kLatencyBuckets>& buckets,
    uint64_t count, double q) {
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return static_cast<double>(uint64_t{1} << i);
  }
  return static_cast<double>(uint64_t{1}
                             << (DetectionService::kLatencyBuckets - 1));
}
}  // namespace

DetectionService::DetectionService(std::shared_ptr<const Model> model,
                                   UniDetectOptions options,
                                   uint64_t findings_cache_bytes)
    : options_(std::move(options)), cache_(findings_cache_bytes) {
  MutexLock lock(&mu_);
  engine_ = std::make_shared<const Engine>(std::move(model), options_,
                                           /*generation_in=*/1);
}

Result<std::unique_ptr<DetectionService>> DetectionService::Create(
    const std::string& model_path, UniDetectOptions options,
    uint64_t findings_cache_bytes) {
  auto view = ModelView::Open(model_path);
  if (!view.ok()) return view.status();
  return std::make_unique<DetectionService>(
      view->shared_model(), std::move(options), findings_cache_bytes);
}

Status DetectionService::Reload(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  // Load and engine construction happen with no lock held: the current
  // snapshot keeps serving while the replacement is prepared, and a
  // failed load never disturbs it. ModelView's default deferred
  // validation keeps a v2 open at O(index); the bulk payloads are never
  // read until queries fault their pages in.
  auto view = ModelView::Open(path);
  if (!view.ok()) {
    MutexLock lock(&stats_mu_);
    ++failed_reloads_;
    return view.status();
  }
  std::shared_ptr<const Engine> replacement;
  {
    MutexLock lock(&mu_);
    replacement = std::make_shared<const Engine>(
        view->shared_model(), options_, engine_->generation + 1);
    // The old engine is released here; it stays alive until the last
    // in-flight batch that pinned it drops its reference (for a mapped
    // model, that release is also the munmap).
    engine_ = replacement;
  }
  {
    // Invalidate memoized findings: they belong to the retired
    // generation. (Keys also carry the generation, so a straggler batch
    // still inserting old-generation entries can never poison lookups
    // against the new model — those entries just age out.)
    MutexLock lock(&cache_mu_);
    cache_.Clear();
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  MutexLock lock(&stats_mu_);
  ++reloads_;
  ++reload_latency_buckets_[LatencyBucket(micros)];
  return Status::OK();
}

std::shared_ptr<const DetectionService::Engine> DetectionService::Snapshot()
    const {
  MutexLock lock(&mu_);
  return engine_;
}

DetectionService::BatchResult DetectionService::DetectBatch(
    std::span<const Table> tables, const UniDetectOptions* override_options,
    size_t num_threads) const {
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const Engine> engine = Snapshot();

  // A request with overrides gets its own one-shot facade against the
  // pinned snapshot; the shared engine stays untouched.
  std::optional<UniDetect> scoped;
  const UniDetect* detector = &engine->detector;
  if (override_options != nullptr) {
    scoped.emplace(engine->model.get(), SanitizeOverride(*override_options));
    detector = &*scoped;
  }

  BatchResult result;
  result.generation = engine->generation;
  result.per_table.resize(tables.size());

  // Findings-cache probe: fingerprint every table against the pinned
  // generation and effective options, answer hits from the cache, and
  // narrow detection to the misses. Hit results are byte-identical to
  // re-detection — DetectTable is a pure function of the key's inputs.
  std::vector<Key128> keys;
  std::vector<size_t> todo;  // table indices needing detection
  const bool use_cache = cache_.enabled();
  if (use_cache) {
    const UniDetectOptions& effective = detector->options();
    keys.resize(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) {
      keys[i] = FingerprintTable(tables[i], engine->generation, effective);
    }
    MutexLock lock(&cache_mu_);
    for (size_t i = 0; i < tables.size(); ++i) {
      if (auto cached = cache_.Lookup(keys[i])) {
        result.per_table[i] = *std::move(cached);
      } else {
        todo.push_back(i);
      }
    }
  } else {
    todo.resize(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) todo[i] = i;
  }

  if (num_threads == 1 || todo.size() <= 1) {
    for (const size_t i : todo) {
      result.per_table[i] = detector->DetectTable(tables[i]);
    }
  } else {
    // Same sharding discipline as UniDetect::DetectCorpus: per-table
    // output slots keep the response independent of the thread count.
    ThreadPool pool(num_threads);
    ParallelFor(pool, todo.size(),
                [&](size_t, size_t begin, size_t end) {
                  for (size_t t = begin; t < end; ++t) {
                    const size_t i = todo[t];
                    result.per_table[i] = detector->DetectTable(tables[i]);
                  }
                });
  }

  if (use_cache && !todo.empty()) {
    // Insert after the parallel section, in table order, so the LRU
    // (and therefore eviction) order is independent of thread timing.
    MutexLock lock(&cache_mu_);
    for (const size_t i : todo) cache_.Insert(keys[i], result.per_table[i]);
  }

  uint64_t found = 0;
  for (const auto& per_table : result.per_table) found += per_table.size();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  {
    MutexLock lock(&stats_mu_);
    ++requests_;
    tables_ += tables.size();
    findings_ += found;
    ++latency_buckets_[LatencyBucket(micros)];
  }
  return result;
}

uint64_t DetectionService::generation() const {
  return Snapshot()->generation;
}

ServiceStats DetectionService::Stats() const {
  ServiceStats stats;
  {
    const std::shared_ptr<const Engine> engine = Snapshot();
    stats.generation = engine->generation;
    stats.model_resident_bytes = engine->model->ApproxResidentBytes();
    stats.model_mapped_bytes = engine->model->mapped_bytes();
  }
  {
    MutexLock lock(&cache_mu_);
    const FindingsCache::Stats cache = cache_.stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_evictions = cache.evictions;
    stats.cache_resident_bytes = cache.resident_bytes;
    stats.cache_entries = cache.entries;
    if (cache.hits + cache.misses > 0) {
      stats.cache_hit_rate = static_cast<double>(cache.hits) /
                             static_cast<double>(cache.hits + cache.misses);
    }
  }
  std::array<uint64_t, kLatencyBuckets> buckets;
  std::array<uint64_t, kLatencyBuckets> reload_buckets;
  {
    MutexLock lock(&stats_mu_);
    stats.requests = requests_;
    stats.tables = tables_;
    stats.findings = findings_;
    stats.reloads = reloads_;
    stats.failed_reloads = failed_reloads_;
    buckets = latency_buckets_;
    reload_buckets = reload_latency_buckets_;
  }
  if (stats.requests > 0) {
    stats.latency_p50_us = HistogramPercentile(buckets, stats.requests, 0.50);
    stats.latency_p99_us = HistogramPercentile(buckets, stats.requests, 0.99);
  }
  if (stats.reloads > 0) {
    stats.reload_latency_p50_us =
        HistogramPercentile(reload_buckets, stats.reloads, 0.50);
    stats.reload_latency_p99_us =
        HistogramPercentile(reload_buckets, stats.reloads, 0.99);
  }
  return stats;
}

}  // namespace unidetect
