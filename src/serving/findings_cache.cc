#include "serving/findings_cache.h"

#include <bit>
#include <string_view>

namespace unidetect {

namespace {

// A 128-bit streaming mix built from two decorrelated 64-bit FNV-1a
// lanes plus a final avalanche. Not cryptographic — it only needs to
// make accidental collisions between distinct table contents vanishingly
// unlikely, deterministically across platforms and runs.
struct Mix128 {
  uint64_t a = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  uint64_t b = 0x6c62272e07bb0142ULL;  // high half of the 128-bit basis

  void Byte(uint8_t byte) {
    a = (a ^ byte) * 0x100000001b3ULL;  // FNV-1a prime
    b = (b ^ byte) * 0x00000100000001b3ULL + 0x9e3779b97f4a7c15ULL;
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (i * 8)));
  }
  void Double(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Str(std::string_view s) {
    // Length framing first: "ab" + "c" must not collide with "a" + "bc".
    U64(s.size());
    for (const char c : s) Byte(static_cast<uint8_t>(c));
  }

  Key128 Final() const {
    // fmix64 avalanche on each lane, cross-fed so the halves diverge
    // even for short inputs.
    auto avalanche = [](uint64_t x) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      x *= 0xc4ceb9fe1a85ec53ULL;
      x ^= x >> 33;
      return x;
    };
    const uint64_t ha = avalanche(a ^ (b << 1));
    const uint64_t hb = avalanche(b ^ ha);
    return Key128{ha, hb};
  }
};

void MixColumn(Mix128* mix, const Column& column) {
  mix->Str(column.name());
  mix->U64(column.size());
  for (const std::string& cell : column.cells()) mix->Str(cell);
}

}  // namespace

Key128 FingerprintColumn(const Column& column) {
  Mix128 mix;
  MixColumn(&mix, column);
  return mix.Final();
}

Key128 FingerprintTable(const Table& table, uint64_t generation,
                        const UniDetectOptions& options) {
  Mix128 mix;
  mix.U64(generation);
  // Every option that can steer DetectTable output is part of the key
  // (fdr_q only affects corpus runs but is included for safety; the
  // progress callback cannot affect findings and is excluded).
  mix.Double(options.alpha);
  mix.U64(options.detect.size());
  for (const bool enabled : options.detect) mix.Byte(enabled ? 1 : 0);
  mix.Double(options.pattern_pmi_threshold);
  mix.Byte(options.use_dictionary ? 1 : 0);
  mix.U64(options.dictionary_min_table_count);
  mix.U64(options.max_fd_pairs_per_table);
  mix.Double(options.fdr_q);
  // Findings embed the table name, so two tables with identical columns
  // but different names must key differently.
  mix.Str(table.name());
  mix.U64(table.num_columns());
  for (const Column& column : table.columns()) MixColumn(&mix, column);
  return mix.Final();
}

namespace {

uint64_t FindingBytes(const Finding& finding) {
  return sizeof(Finding) + finding.table_name.capacity() +
         finding.value.capacity() + finding.explanation.capacity() +
         finding.rows.capacity() * sizeof(size_t);
}

uint64_t EntryBytes(const std::vector<Finding>& findings) {
  // Approximate but deterministic: struct + heap payloads per finding,
  // plus fixed list/map node overhead for the entry itself.
  constexpr uint64_t kEntryOverhead = 128;
  uint64_t bytes = kEntryOverhead + findings.capacity() * sizeof(Finding);
  for (const Finding& finding : findings) {
    bytes += FindingBytes(finding) - sizeof(Finding);
  }
  return bytes;
}

}  // namespace

std::optional<std::vector<Finding>> FindingsCache::Lookup(const Key128& key) {
  if (!enabled()) return std::nullopt;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->findings;
}

void FindingsCache::Insert(const Key128& key,
                           const std::vector<Finding>& findings) {
  if (!enabled()) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Re-detection of a cached table (e.g. its entry was looked up by a
    // racing batch after this one missed): identical value by
    // construction, just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  const uint64_t bytes = EntryBytes(findings);
  if (bytes > max_bytes_) return;  // would evict everything else for one entry
  lru_.push_front(Entry{key, findings, bytes});
  index_.emplace(key, lru_.begin());
  resident_bytes_ += bytes;
  EvictToBound();
}

void FindingsCache::EvictToBound() {
  while (resident_bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& cold = lru_.back();
    resident_bytes_ -= cold.bytes;
    index_.erase(cold.key);
    lru_.pop_back();
    ++evictions_;
  }
}

void FindingsCache::Clear() {
  lru_.clear();
  index_.clear();
  resident_bytes_ = 0;
}

FindingsCache::Stats FindingsCache::stats() const {
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.resident_bytes = resident_bytes_;
  stats.entries = lru_.size();
  return stats;
}

}  // namespace unidetect
