// DetectionService: the serving tier over the UniDetect engine.
//
// The service owns the model behind an immutable snapshot
// (std::shared_ptr<const Engine>): every request pins the snapshot it
// started with, Reload() builds a replacement off to the side and swaps
// the pointer on success, and the old model drains naturally when the
// last in-flight batch releases its reference. No request ever observes
// a half-swapped model, and a failed reload leaves the service exactly
// as it was.
//
// The engine serves a layered ModelStack (DESIGN.md §15): an immutable
// base snapshot plus zero or more delta layers, each a small UDSNAP
// artifact trained over only the new corpus shards. ApplyDelta() swaps
// in a new engine layering one more delta after verifying the delta's
// manifest chains onto the currently served layers by content hash;
// Reload() swaps full bases (and refuses deltas, as ApplyDelta refuses
// bases). ReloadIfGeneration() is the compare-and-swap variant the
// background compactor uses so a compacted base never clobbers layers
// it did not fold.
//
// Detection results are deterministic: batches produce identical
// findings at any thread count (same per-table-slot discipline as
// UniDetect::DetectCorpus) and carry no wall-clock values. Latency is
// observed only in ServiceStats, as a fixed power-of-two-microsecond
// histogram from which p50/p99 upper bounds are derived.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "detect/finding.h"
#include "detect/unidetect.h"
#include "learn/model.h"
#include "learn/model_stack.h"
#include "serving/findings_cache.h"
#include "table/table.h"
#include "util/latency_histogram.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace unidetect {

/// \brief A point-in-time copy of the service counters.
struct ServiceStats {
  uint64_t requests = 0;        ///< DetectBatch calls served.
  uint64_t tables = 0;          ///< Tables scanned across all batches.
  uint64_t findings = 0;        ///< Findings returned across all batches.
  uint64_t reloads = 0;         ///< Successful full-base swaps.
  uint64_t failed_reloads = 0;  ///< Reload attempts that changed nothing.
  uint64_t generation = 0;      ///< Generation of the currently served model.
  /// Successful ApplyDelta swaps since construction (a counter — it does
  /// not drop when a compaction folds the layers away).
  uint64_t applied_deltas = 0;
  /// Full-base swaps that retired at least one delta layer — i.e. the
  /// chain was folded into a fresh base, whether by the background
  /// compactor (ReloadIfGeneration) or an operator Reload.
  uint64_t compactions = 0;
  /// Delta layers currently stacked above the base (0 = just the base).
  uint64_t delta_layers = 0;
  /// Total bytes (private heap + file-backed mapping) held by the delta
  /// layers; 0 when serving a bare base. The base's own storage stays in
  /// model_resident_bytes / model_mapped_bytes.
  uint64_t delta_resident_bytes = 0;
  /// Per-request latency percentile upper bounds, in microseconds, read
  /// off the power-of-two histogram (0 when no requests yet). Upper
  /// bounds, not interpolations: p50 = 256 means half the requests took
  /// under 256us.
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
  /// Successful-Reload latency percentile upper bounds (load + swap), in
  /// microseconds, from their own power-of-two histogram. On the v2
  /// mmap path this stays flat as models grow — the whole point of the
  /// zero-copy snapshot layout. ApplyDelta swaps feed the same
  /// histogram: both are engine replacements, and the delta open cost
  /// is O(delta index), not O(base).
  double reload_latency_p50_us = 0.0;
  double reload_latency_p99_us = 0.0;
  /// Storage gauges of the currently served *base* layer: private heap
  /// bytes vs file-backed mapped bytes (page-cache shared across
  /// processes). An owned model reports mapped = 0; a mapped v2 model
  /// keeps resident near zero.
  uint64_t model_resident_bytes = 0;
  uint64_t model_mapped_bytes = 0;
  /// Findings-cache counters (all zero when the cache is disabled):
  /// cumulative hits/misses/evictions since construction, current
  /// approximate resident bytes, and hits / (hits + misses) (0 before
  /// the first lookup).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_resident_bytes = 0;
  uint64_t cache_entries = 0;
  double cache_hit_rate = 0.0;
};

/// \brief Serves detection requests over a hot-swappable model.
class DetectionService {
 public:
  /// \brief One DetectBatch response: findings per input table (same
  /// order and cardinality as the request), each ranked most-confident
  /// first, plus the generation of the model snapshot that served it.
  struct BatchResult {
    std::vector<std::vector<Finding>> per_table;
    uint64_t generation = 0;
  };

  /// \brief The layer chain currently serving: `paths[i]` / `ids[i]` for
  /// layer i (0 = base, ascending deltas above), plus the generation the
  /// chain was captured at. A service constructed from an in-memory
  /// model reports one layer with an empty path and id 0; such a chain
  /// accepts no deltas and cannot be compacted from files.
  struct LayerSet {
    std::vector<std::string> paths;
    std::vector<uint64_t> ids;
    uint64_t generation = 0;
  };

  /// Takes shared ownership of `model` (generation 1). `options` are the
  /// serving defaults applied to every request without an override.
  /// `findings_cache_bytes` bounds the fingerprint -> findings cache
  /// (serving/findings_cache.h); 0 — the default, so cold-path behavior
  /// and benchmarks are unchanged — disables it.
  explicit DetectionService(std::shared_ptr<const Model> model,
                            UniDetectOptions options = {},
                            uint64_t findings_cache_bytes = 0);

  /// \brief Builds a service from a model file (any supported format,
  /// opened through ModelView — v2 snapshots are mapped zero-copy).
  /// Refuses delta artifacts: a service must start from a base.
  static Result<std::unique_ptr<DetectionService>> Create(
      const std::string& model_path, UniDetectOptions options = {},
      uint64_t findings_cache_bytes = 0);

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// \brief Atomically replaces the served layer chain with a single
  /// fresh base loaded from `path`. The load runs outside the swap lock
  /// — the current model keeps serving throughout — and the swap happens
  /// only on success; on failure the service is untouched and the error
  /// is returned. In-flight batches finish on the snapshot they started
  /// with; a retired mapped model unmaps its region when the last such
  /// batch drops its engine reference.
  ///
  /// Delta artifacts are refused (InvalidArgument): a delta only means
  /// something stacked on the chain it names — use ApplyDelta.
  ///
  /// v2 snapshots open in deferred-validation mode (structure and
  /// metadata CRCs only), so reload cost is O(index), independent of
  /// observation count.
  Status Reload(const std::string& path) EXCLUDES(mu_, stats_mu_);

  /// \brief Reload() guarded by a generation check: the swap happens
  /// only if the served generation still equals `expected` once the
  /// replacement is ready. AlreadyExists when the generation moved —
  /// the benign compare-and-swap failure the compactor retries after
  /// refreshing its view of the chain (not counted as a failed reload).
  Status ReloadIfGeneration(const std::string& path, uint64_t expected)
      EXCLUDES(mu_, stats_mu_);

  /// \brief Atomically stacks the delta artifact at `path` on top of the
  /// served chain. The artifact must carry a delta manifest whose
  /// base/parent/depth match the chain exactly (base_id == layer 0's id,
  /// parent_id == the top layer's id, depth == current layer count) and
  /// whose model options byte-match the base's — anything else is
  /// refused with InvalidArgument and the service is untouched.
  ///
  /// On success the generation bumps, so findings-cache keys (which
  /// embed the generation) self-invalidate: warm entries miss against
  /// the new chain and age out of the LRU naturally.
  Status ApplyDelta(const std::string& path) EXCLUDES(mu_, stats_mu_);

  /// \brief Scans `tables` and returns per-table ranked findings.
  /// `num_threads` 0 means hardware concurrency; the response is
  /// byte-identical at any thread count. `override_options`, when
  /// non-null, replaces the serving defaults for this request only
  /// (per-request progress callbacks are ignored).
  BatchResult DetectBatch(
      std::span<const Table> tables,
      const UniDetectOptions* override_options = nullptr,
      size_t num_threads = 1) const EXCLUDES(mu_, stats_mu_);

  /// \brief Generation of the model currently serving (starts at 1,
  /// +1 per successful Reload or ApplyDelta).
  uint64_t generation() const EXCLUDES(mu_);

  /// \brief Snapshot of the served layer chain (paths, artifact ids,
  /// generation), taken atomically against swaps.
  LayerSet Layers() const EXCLUDES(mu_);

  /// \brief A coherent point-in-time snapshot: every counter, gauge and
  /// percentile describes the same instant (all three internal locks
  /// are held together for the copy-out — see the fixed acquisition
  /// order documented at the implementation).
  ServiceStats Stats() const EXCLUDES(mu_, stats_mu_);

  /// Number of power-of-two latency buckets (util/latency_histogram.h);
  /// bucket i counts requests with latency in [2^(i-1), 2^i)
  /// microseconds (bucket 0: < 1us).
  static constexpr size_t kLatencyBuckets = kLatencyHistogramBuckets;

 private:
  // An immutable (layer chain, engine) snapshot; requests pin one via
  // shared_ptr. layer_paths/layer_ids run bottom-up: index 0 is the
  // base, the last entry is the newest delta.
  struct Engine {
    Engine(std::shared_ptr<const ModelStack> stack_in,
           std::vector<std::string> layer_paths_in,
           std::vector<uint64_t> layer_ids_in,
           const UniDetectOptions& options, uint64_t generation_in)
        : stack(std::move(stack_in)),
          layer_paths(std::move(layer_paths_in)),
          layer_ids(std::move(layer_ids_in)),
          detector(stack, options),
          generation(generation_in) {}

    std::shared_ptr<const ModelStack> stack;
    std::vector<std::string> layer_paths;
    std::vector<uint64_t> layer_ids;
    UniDetect detector;
    uint64_t generation;
  };

  DetectionService(std::shared_ptr<const Model> base, std::string base_path,
                   uint64_t base_id, UniDetectOptions options,
                   uint64_t findings_cache_bytes);

  // Shared body of Reload / ReloadIfGeneration; `expected` < 0 means
  // unconditional.
  Status ReloadInternal(const std::string& path, int64_t expected)
      EXCLUDES(mu_, stats_mu_);

  std::shared_ptr<const Engine> Snapshot() const EXCLUDES(mu_);

  const UniDetectOptions options_;  // serving defaults; immutable

  mutable Mutex mu_;
  std::shared_ptr<const Engine> engine_ GUARDED_BY(mu_);

  // The findings cache sits behind its own mutex: lookups/inserts are
  // short map-and-splice operations, and keeping them off stats_mu_ and
  // mu_ means a cache hit never contends with a reload swap.
  mutable Mutex cache_mu_;
  mutable FindingsCache cache_ GUARDED_BY(cache_mu_);

  mutable Mutex stats_mu_;
  mutable uint64_t requests_ GUARDED_BY(stats_mu_) = 0;
  mutable uint64_t tables_ GUARDED_BY(stats_mu_) = 0;
  mutable uint64_t findings_ GUARDED_BY(stats_mu_) = 0;
  mutable uint64_t reloads_ GUARDED_BY(stats_mu_) = 0;
  mutable uint64_t failed_reloads_ GUARDED_BY(stats_mu_) = 0;
  mutable uint64_t applied_deltas_ GUARDED_BY(stats_mu_) = 0;
  mutable uint64_t compactions_ GUARDED_BY(stats_mu_) = 0;
  mutable LatencyBuckets latency_buckets_ GUARDED_BY(stats_mu_) = {};
  mutable LatencyBuckets reload_latency_buckets_ GUARDED_BY(stats_mu_) = {};
};

}  // namespace unidetect
