#include "autodetect/pattern.h"

#include <cctype>

#include "util/string_util.h"

namespace unidetect {

std::string GeneralizePattern(std::string_view value) {
  std::string out;
  size_t i = 0;
  const std::string_view s = Trim(value);
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (std::isdigit(c)) {
      while (i < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      out += "\\d+";
    } else if (std::isalpha(c)) {
      while (i < s.size() &&
             std::isalpha(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      out += "\\l+";
    } else if (std::isspace(c)) {
      while (i < s.size() &&
             std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      out += ' ';
    } else {
      out += s[i];
      ++i;
    }
  }
  return out;
}

std::vector<std::string> DistinctPatterns(
    const std::vector<std::string>& cells, size_t max_patterns) {
  std::vector<std::string> out;
  for (const auto& cell : cells) {
    if (Trim(cell).empty()) continue;
    std::string pattern = GeneralizePattern(cell);
    bool seen = false;
    for (const auto& existing : out) {
      if (existing == pattern) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(std::move(pattern));
      if (out.size() >= max_patterns) break;
    }
  }
  return out;
}

}  // namespace unidetect
