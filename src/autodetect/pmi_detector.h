// PMI-based pattern-compatibility detection (Auto-Detect [50]), the
// orthogonal error class whose mechanism Appendix C derives from the same
// likelihood-ratio test:
//
//   LR ∝ P(D|H0,T) / P(D|H1,T) = (n1/N)(n2/N) / (n12/N) = exp(-PMI)
//
// so ranking by ascending PMI is ranking by ascending surprise.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "corpus/corpus.h"
#include "detect/detector.h"
#include "util/result.h"

namespace unidetect {

class BinaryReader;
class DetectorRegistry;

/// \brief Corpus statistics over column pattern (co-)occurrence.
class PatternIndex {
 public:
  PatternIndex() = default;

  /// \brief Ingests a corpus: each column counts each of its distinct
  /// patterns once, and each unordered pattern pair once.
  void AddCorpus(const Corpus& corpus);

  /// \brief Ingests a single table (used by the Trainer's corpus pass).
  void AddTable(const Table& table);

  /// \brief Merges another index (sharded builds).
  void Merge(const PatternIndex& other);

  /// \brief Text serialization (embedded in the legacy Model file).
  std::string Serialize() const;
  static Result<PatternIndex> Deserialize(std::string_view text);

  /// \brief Binary codec for the snapshot format (model_format/):
  /// u64 num_columns, then the pattern and pair count maps, each as
  /// u64 size followed by key-sorted (length-prefixed key, u64 count).
  void AppendBinary(std::string* out) const;
  static Result<PatternIndex> FromBinary(BinaryReader* reader);

  /// \brief Snapshot-v2 pool codec support (model_format/snapshot_v2.cc):
  /// raw map access for the writer and direct-install decode helpers.
  /// The Add* helpers return false on a duplicate key (corrupt input).
  size_t num_patterns() const { return pattern_counts_.size(); }
  size_t num_pairs() const { return pair_counts_.size(); }
  template <typename Fn>
  void ForEachPattern(Fn&& fn) const {
    for (const auto& [pattern, count] : pattern_counts_) fn(pattern, count);
  }
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    for (const auto& [pair, count] : pair_counts_) fn(pair, count);
  }
  void SetNumColumns(uint64_t n) { num_columns_ = n; }
  bool AddPatternCount(std::string_view pattern, uint64_t count) {
    return pattern_counts_.emplace(std::string(pattern), count).second;
  }
  bool AddPairCount(std::string_view pair_key, uint64_t count) {
    return pair_counts_.emplace(std::string(pair_key), count).second;
  }

  uint64_t num_columns() const { return num_columns_; }
  uint64_t PatternCount(const std::string& pattern) const;
  uint64_t CoOccurrenceCount(const std::string& a,
                             const std::string& b) const;

  /// \brief PMI(a, b) = log(n_ab * N / (n_a * n_b)) with +0.5 smoothing
  /// on the co-occurrence count; strongly negative = incompatible.
  /// Delegates to a single-layer PatternPrevalence so the layered and
  /// flat query paths share one arithmetic.
  double Pmi(const std::string& a, const std::string& b) const;

 private:
  static std::string PairKey(const std::string& a, const std::string& b);

  std::unordered_map<std::string, uint64_t> pattern_counts_;
  std::unordered_map<std::string, uint64_t> pair_counts_;
  uint64_t num_columns_ = 0;
};

/// \brief Read-side overlay over one or more PatternIndex layers (base
/// snapshot plus applied deltas — learn/model_stack.h). Every count is
/// additive across layers, and the PMI formula runs over the *summed*
/// integer counts, so a layered view answers byte-identically to the
/// Model::Merge fold of its layers. Layers are borrowed and must
/// outlive the view.
class PatternPrevalence {
 public:
  /// Single-layer view (implicit: an index is its own prevalence).
  PatternPrevalence(const PatternIndex& index)  // NOLINT(google-explicit-*)
      : layers_{&index} {}

  /// Layered view, base first. Sums are commutative, so layer order
  /// never changes an answer.
  explicit PatternPrevalence(std::vector<const PatternIndex*> layers)
      : layers_(std::move(layers)) {}

  size_t num_layers() const { return layers_.size(); }

  uint64_t num_columns() const;
  uint64_t PatternCount(const std::string& pattern) const;
  uint64_t CoOccurrenceCount(const std::string& a, const std::string& b) const;

  /// \brief The PMI of PatternIndex::Pmi, computed over summed counts.
  double Pmi(const std::string& a, const std::string& b) const;

 private:
  std::vector<const PatternIndex*> layers_;
};

/// \brief Flags columns mixing pattern pairs with strongly negative PMI
/// ("2001-Jan-01" among "2001-01-01"s). The minority pattern's rows are
/// the suspected cells.
class PmiDetector : public Detector {
 public:
  /// The layers behind `index` must outlive the detector; pairs with
  /// PMI above `pmi_threshold` are considered compatible. A plain
  /// `&pattern_index` still works through PatternPrevalence's implicit
  /// single-layer conversion.
  explicit PmiDetector(PatternPrevalence index, double pmi_threshold = -2.0)
      : index_(std::move(index)), pmi_threshold_(pmi_threshold) {}

  ErrorClass error_class() const override { return ErrorClass::kPattern; }

  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  PatternPrevalence index_;
  double pmi_threshold_;
};

/// \brief Registers the pattern detector (off by default — the paper
/// treats pattern incompatibility as an orthogonal error class); the PMI
/// threshold comes from UniDetectOptions::pattern_pmi_threshold.
void RegisterPatternDetector(DetectorRegistry* registry);

}  // namespace unidetect
