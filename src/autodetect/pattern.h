// Pattern generalization for Auto-Detect-style compatibility errors
// (Section 3.5, Appendix C): cell values are abstracted into character-
// class patterns ("2001-Jan-01" -> "\d+-\l+-\d+") whose corpus
// co-occurrence statistics reveal incompatible mixtures in one column.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace unidetect {

/// \brief Generalizes a value: runs of digits -> "\d+", runs of letters
/// -> "\l+", whitespace runs -> one space; other characters kept
/// verbatim. Deliberately run-length-collapsed so "2001" and "85" share
/// a pattern.
std::string GeneralizePattern(std::string_view value);

/// \brief Distinct patterns of a list of cells, in first-seen order,
/// capped at `max_patterns`.
std::vector<std::string> DistinctPatterns(
    const std::vector<std::string>& cells, size_t max_patterns = 16);

}  // namespace unidetect
