#include "autodetect/pmi_detector.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "autodetect/pattern.h"
#include "detect/detector_registry.h"
#include "detect/unidetect.h"
#include "learn/model.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

std::string PatternIndex::PairKey(const std::string& a,
                                  const std::string& b) {
  return a <= b ? a + "\x1f" + b : b + "\x1f" + a;
}

void PatternIndex::AddTable(const Table& table) {
  for (const auto& column : table.columns()) {
    const std::vector<std::string> patterns =
        DistinctPatterns(column.cells());
    if (patterns.empty()) continue;
    ++num_columns_;
    for (const auto& pattern : patterns) pattern_counts_[pattern]++;
    for (size_t i = 0; i < patterns.size(); ++i) {
      for (size_t j = i + 1; j < patterns.size(); ++j) {
        pair_counts_[PairKey(patterns[i], patterns[j])]++;
      }
    }
  }
}

void PatternIndex::AddCorpus(const Corpus& corpus) {
  for (const auto& table : corpus.tables) AddTable(table);
}

void PatternIndex::Merge(const PatternIndex& other) {
  num_columns_ += other.num_columns_;
  for (const auto& [pattern, count] : other.pattern_counts_) {
    pattern_counts_[pattern] += count;
  }
  for (const auto& [pair, count] : other.pair_counts_) {
    pair_counts_[pair] += count;
  }
}

namespace {
// Patterns never contain '\t' or '\n' (GeneralizePattern collapses
// whitespace to single spaces), so a line-oriented format is safe.
void AppendCountMap(const std::unordered_map<std::string, uint64_t>& map,
                    std::string* out) {
  *out += std::to_string(map.size());
  *out += '\n';
  // Key-sorted emit: hash-order output would make the serialized index
  // differ across standard libraries for the same corpus.
  std::vector<const std::pair<const std::string, uint64_t>*> sorted;
  sorted.reserve(map.size());
  for (const auto& entry : map) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) {
    *out += std::to_string(entry->second);
    *out += '\t';
    *out += entry->first;
    *out += '\n';
  }
}

bool ParseCountMap(std::string_view text, size_t* pos,
                   std::unordered_map<std::string, uint64_t>* map) {
  const size_t line_end = text.find('\n', *pos);
  if (line_end == std::string_view::npos) return false;
  const size_t entries = std::strtoull(
      std::string(text.substr(*pos, line_end - *pos)).c_str(), nullptr, 10);
  *pos = line_end + 1;
  for (size_t i = 0; i < entries; ++i) {
    const size_t end = text.find('\n', *pos);
    if (end == std::string_view::npos) return false;
    std::string_view line = text.substr(*pos, end - *pos);
    *pos = end + 1;
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) return false;
    const uint64_t count =
        std::strtoull(std::string(line.substr(0, tab)).c_str(), nullptr, 10);
    map->emplace(std::string(line.substr(tab + 1)), count);
  }
  return true;
}
}  // namespace

std::string PatternIndex::Serialize() const {
  std::string out = "PatternIndex v1 " + std::to_string(num_columns_) + "\n";
  AppendCountMap(pattern_counts_, &out);
  AppendCountMap(pair_counts_, &out);
  return out;
}

Result<PatternIndex> PatternIndex::Deserialize(std::string_view text) {
  PatternIndex out;
  const size_t header_end = text.find('\n');
  if (header_end == std::string_view::npos ||
      text.substr(0, 16) != "PatternIndex v1 ") {
    return Status::Corruption("PatternIndex: bad header");
  }
  out.num_columns_ = std::strtoull(
      std::string(text.substr(16, header_end - 16)).c_str(), nullptr, 10);
  size_t pos = header_end + 1;
  if (!ParseCountMap(text, &pos, &out.pattern_counts_) ||
      !ParseCountMap(text, &pos, &out.pair_counts_)) {
    return Status::Corruption("PatternIndex: truncated maps");
  }
  return out;
}

namespace {
void AppendCountMapBinary(
    const std::unordered_map<std::string, uint64_t>& map, std::string* out) {
  AppendU64(out, map.size());
  // Key-sorted emit, same determinism rationale as the text format.
  std::vector<const std::pair<const std::string, uint64_t>*> sorted;
  sorted.reserve(map.size());
  for (const auto& entry : map) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) {
    AppendLengthPrefixed(out, entry->first);
    AppendU64(out, entry->second);
  }
}

Status ParseCountMapBinary(BinaryReader* reader,
                           std::unordered_map<std::string, uint64_t>* map) {
  uint64_t entries = 0;
  if (!reader->ReadU64(&entries)) {
    return Status::Corruption("PatternIndex: truncated binary map header");
  }
  // Bounded reserve: a corrupt count must not allocate ahead of the
  // truncation check (each entry is at least 12 bytes).
  map->reserve(static_cast<size_t>(
      std::min<uint64_t>(entries, reader->remaining() / 12)));
  for (uint64_t i = 0; i < entries; ++i) {
    std::string_view key;
    uint64_t count = 0;
    if (!reader->ReadLengthPrefixed(&key) || !reader->ReadU64(&count)) {
      return Status::Corruption("PatternIndex: truncated binary map entry");
    }
    map->emplace(std::string(key), count);
  }
  return Status::OK();
}
}  // namespace

void PatternIndex::AppendBinary(std::string* out) const {
  AppendU64(out, num_columns_);
  AppendCountMapBinary(pattern_counts_, out);
  AppendCountMapBinary(pair_counts_, out);
}

Result<PatternIndex> PatternIndex::FromBinary(BinaryReader* reader) {
  PatternIndex out;
  if (!reader->ReadU64(&out.num_columns_)) {
    return Status::Corruption("PatternIndex: truncated binary header");
  }
  UNIDETECT_RETURN_NOT_OK(ParseCountMapBinary(reader, &out.pattern_counts_));
  UNIDETECT_RETURN_NOT_OK(ParseCountMapBinary(reader, &out.pair_counts_));
  return out;
}

uint64_t PatternIndex::PatternCount(const std::string& pattern) const {
  auto it = pattern_counts_.find(pattern);
  return it == pattern_counts_.end() ? 0 : it->second;
}

uint64_t PatternIndex::CoOccurrenceCount(const std::string& a,
                                         const std::string& b) const {
  auto it = pair_counts_.find(PairKey(a, b));
  return it == pair_counts_.end() ? 0 : it->second;
}

double PatternIndex::Pmi(const std::string& a, const std::string& b) const {
  return PatternPrevalence(*this).Pmi(a, b);
}

uint64_t PatternPrevalence::num_columns() const {
  uint64_t total = 0;
  for (const PatternIndex* layer : layers_) total += layer->num_columns();
  return total;
}

uint64_t PatternPrevalence::PatternCount(const std::string& pattern) const {
  uint64_t total = 0;
  for (const PatternIndex* layer : layers_) total += layer->PatternCount(pattern);
  return total;
}

uint64_t PatternPrevalence::CoOccurrenceCount(const std::string& a,
                                              const std::string& b) const {
  uint64_t total = 0;
  for (const PatternIndex* layer : layers_) {
    total += layer->CoOccurrenceCount(a, b);
  }
  return total;
}

double PatternPrevalence::Pmi(const std::string& a,
                              const std::string& b) const {
  // Integer counts are summed over layers *before* any conversion to
  // double, so the layered answer is byte-identical to the merged one.
  const uint64_t columns = num_columns();
  if (columns == 0) return 0.0;
  const double n_a = static_cast<double>(PatternCount(a));
  const double n_b = static_cast<double>(PatternCount(b));
  if (n_a <= 0.0 || n_b <= 0.0) return 0.0;  // unseen: no evidence
  const double n_ab = static_cast<double>(CoOccurrenceCount(a, b)) + 0.5;
  const double n = static_cast<double>(columns);
  return std::log(n_ab * n / (n_a * n_b));
}

void PmiDetector::Detect(const Table& table, std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (column.size() < 8) continue;

    // Pattern histogram with row lists.
    std::unordered_map<std::string, std::vector<size_t>> rows_by_pattern;
    for (size_t row = 0; row < column.size(); ++row) {
      if (Trim(column.cell(row)).empty()) continue;
      rows_by_pattern[GeneralizePattern(column.cell(row))].push_back(row);
    }
    if (rows_by_pattern.size() < 2 || rows_by_pattern.size() > 16) continue;

    // The dominant pattern vs. each minority pattern. Ties on row count
    // break toward the lexicographically smaller pattern so the choice
    // never depends on hash iteration order.
    const std::string* dominant = nullptr;
    size_t dominant_rows = 0;
    for (const auto& [pattern, rows] : rows_by_pattern) {
      if (rows.size() > dominant_rows ||
          (rows.size() == dominant_rows && dominant != nullptr &&
           pattern < *dominant)) {
        dominant_rows = rows.size();
        dominant = &pattern;
      }
    }
    // Emission order is hash-dependent here, but every finding goes
    // through SortFindings' total order before anything ranked is
    // returned, so the hash order never reaches output.
    for (const auto& [pattern, rows] : rows_by_pattern) {  // NOLINT(determinism)
      if (&pattern == dominant) continue;
      // Only clear minorities are error candidates.
      if (rows.size() * 5 > dominant_rows) continue;
      double pmi = 0.0;
      if (index_.PatternCount(pattern) == 0) {
        // A pattern the corpus has never seen, inside a column whose
        // dominant pattern is well established, is maximally alien; the
        // more established the dominant, the more surprising.
        pmi = -std::log(
            1.0 + static_cast<double>(index_.PatternCount(*dominant)));
      } else {
        pmi = index_.Pmi(*dominant, pattern);
        if (pmi == 0.0) continue;  // dominant itself unseen: no evidence
      }
      if (pmi >= pmi_threshold_) continue;

      Finding finding;
      finding.error_class = ErrorClass::kPattern;
      finding.table_name = table.name();
      finding.column = c;
      finding.rows = rows;
      finding.value = column.cell(rows.front());
      // exp(PMI) maps incompatibility onto (0, 1) so pattern findings
      // rank alongside the LR scores of the other classes (Appendix C:
      // the PMI statistic is the LR test in disguise).
      finding.score = std::exp(pmi);
      finding.explanation =
          StrCat("pattern '", pattern, "' incompatible with dominant '",
                 *dominant, "' (PMI ", pmi, ")");
      out->push_back(std::move(finding));
    }
  }
}

void RegisterPatternDetector(DetectorRegistry* registry) {
  const Status st = registry->Register(
      ErrorClass::kPattern, /*enabled_by_default=*/false,
      [](const DetectorContext& context) -> std::unique_ptr<Detector> {
        return std::make_unique<PmiDetector>(
            context.model->pattern_prevalence(),
            context.options->pattern_pmi_threshold);
      });
  UNIDETECT_CHECK(st.ok());
}

}  // namespace unidetect
