// Experiment harness shared by the benchmark binaries: builds the
// standard setup of Section 4 (train on WEB, inject errors into a test
// corpus, evaluate ranked predictions with Precision@K) for every method.

#pragma once

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "eval/injection.h"
#include "eval/precision.h"
#include "learn/model.h"
#include "learn/trainer.h"

namespace unidetect {

/// \brief Configuration of one experiment run.
struct ExperimentConfig {
  /// Background corpus size (the paper trains on WEB).
  size_t train_tables = 25000;
  uint64_t train_seed = 1;
  ModelOptions model_options;
  InjectionSpec injection;
  /// Cache directory for trained models ("" disables caching). A model
  /// trained with the same (train_tables, train_seed, options) is reused
  /// across benchmark binaries.
  std::string model_cache_dir = ".";
  size_t threads = 0;
};

/// \brief One prepared experiment: trained model + injected test corpus.
struct Experiment {
  Model model;
  AnnotatedCorpus test;
  GroundTruth truth;
};

/// \brief Trains (or loads a cached) model and prepares the test corpus.
Experiment BuildExperiment(const CorpusSpec& test_spec,
                           const ExperimentConfig& config);

/// \brief Trains (or loads a cached) WEB model only.
Model TrainBackgroundModel(const ExperimentConfig& config);

/// \brief Runs the UniDetect facade for one error class over the test
/// corpus and evaluates it. `display_name` defaults to "UniDetect".
PrecisionCurve RunUniDetect(const Experiment& experiment, ErrorClass cls,
                            bool use_dictionary = false,
                            const std::string& display_name = "");

/// \brief Runs UniDetect-FD restricted to synthesized programmatic pairs
/// (the FD-synthesis variant of Appendix D).
PrecisionCurve RunFdSynthesis(const Experiment& experiment,
                              const GroundTruth& truth,
                              const std::string& display_name);

/// \brief Runs one baseline over the test corpus and evaluates it.
PrecisionCurve RunBaseline(const Baseline& baseline,
                           const Experiment& experiment);

/// \brief Like RunBaseline but against an alternative ground truth
/// (used for FD-synthesis panels).
PrecisionCurve RunBaselineAgainst(const Baseline& baseline,
                                  const Experiment& experiment,
                                  const GroundTruth& truth);

/// \brief Ground truth restricted to FD errors on synthesizable pairs.
GroundTruth SynthesizableFdTruth(const GroundTruth& truth);

/// \brief Prints the three Precision@K panels of Figures 8/9/10 —
/// (a) spelling, (b) numeric outliers, (c) uniqueness — comparing
/// UniDetect (+Dict) against every per-class baseline of Section 4.2.
void RunFigurePanels(const std::string& corpus_label,
                     const Experiment& experiment);

/// \brief Prints the FD and FD-synthesis panels of Figure 12 for one
/// test corpus.
void RunFdPanels(const std::string& corpus_label,
                 const Experiment& experiment);

}  // namespace unidetect
