#include "eval/precision.h"

#include <algorithm>
#include <cstdio>

namespace unidetect {

std::vector<size_t> DefaultKs() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

PrecisionCurve EvaluatePrecision(const std::string& method,
                                 const std::vector<Finding>& ranked,
                                 const GroundTruth& truth,
                                 const std::vector<size_t>& ks) {
  PrecisionCurve curve;
  curve.method = method;
  curve.ks = ks;
  const size_t max_k =
      ks.empty() ? 0 : *std::max_element(ks.begin(), ks.end());

  std::vector<bool> is_true(std::min(max_k, ranked.size()));
  for (size_t i = 0; i < is_true.size(); ++i) {
    is_true[i] = truth.Matches(ranked[i]);
  }
  for (size_t k : ks) {
    size_t hits = 0;
    const size_t upto = std::min(k, is_true.size());
    for (size_t i = 0; i < upto; ++i) {
      if (is_true[i]) ++hits;
    }
    curve.precision.push_back(k == 0 ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(k));
  }
  return curve;
}

std::vector<Finding> FilterByClass(const std::vector<Finding>& findings,
                                   ErrorClass c) {
  std::vector<Finding> out;
  for (const auto& finding : findings) {
    if (finding.error_class == c) out.push_back(finding);
  }
  return out;
}

void PrintCurves(const std::string& title,
                 const std::vector<PrecisionCurve>& curves) {
  std::printf("\n== %s ==\n", title.c_str());
  if (curves.empty()) return;
  std::printf("%-28s", "method \\ K");
  for (size_t k : curves.front().ks) std::printf(" %6zu", k);
  std::printf("\n");
  for (const auto& curve : curves) {
    std::printf("%-28s", curve.method.c_str());
    for (double p : curve.precision) std::printf(" %6.2f", p);
    std::printf("\n");
  }
}

}  // namespace unidetect
