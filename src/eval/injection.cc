#include "eval/injection.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "metrics/metric_functions.h"
#include "util/string_util.h"

namespace unidetect {

bool GroundTruth::Matches(const Finding& finding) const {
  // Location-based judgment, mirroring the paper's human evaluation: a
  // prediction is true iff it points at a corrupted cell (or its clean
  // counterpart in the same anomaly), regardless of which error-class
  // lens surfaced it — e.g. Figure 14's "Mr Gay Honkong" is a typo that
  // FD-synthesis legitimately discovers.
  for (const auto& error : errors) {
    if (error.table_index != finding.table_index) continue;
    // kNoColumn sentinels must never match each other.
    const bool column_hit =
        finding.column == error.column || finding.column == error.column2 ||
        (finding.column2 != Finding::kNoColumn &&
         (finding.column2 == error.column ||
          finding.column2 == error.column2));
    if (!column_hit) continue;
    for (size_t row : finding.rows) {
      if (row == error.row || row == error.partner_row) return true;
    }
  }
  return false;
}

size_t GroundTruth::CountClass(ErrorClass c) const {
  size_t count = 0;
  for (const auto& error : errors) {
    if (error.error_class == c) ++count;
  }
  return count;
}

namespace {

// One character-level typo inside the longest token of the value.
std::string MakeTypo(const std::string& value, Rng& rng) {
  // Locate the longest alphabetic token.
  size_t best_begin = 0;
  size_t best_len = 0;
  size_t i = 0;
  while (i < value.size()) {
    if (!std::isalpha(static_cast<unsigned char>(value[i]))) {
      ++i;
      continue;
    }
    size_t begin = i;
    while (i < value.size() &&
           std::isalpha(static_cast<unsigned char>(value[i]))) {
      ++i;
    }
    if (i - begin > best_len) {
      best_len = i - begin;
      best_begin = begin;
    }
  }
  if (best_len < 3) return value + "e";  // degenerate value: append

  std::string out = value;
  // Position within the token, avoiding the first character (typos on
  // leading capitals are rare and visually obvious).
  const size_t pos = best_begin + 1 + rng.NextBounded(best_len - 1);
  const char lower = static_cast<char>(
      'a' + rng.NextBounded(26));
  switch (rng.NextBounded(4)) {
    case 0:  // substitute
      out[pos] = out[pos] == lower ? (lower == 'z' ? 'a' : lower + 1) : lower;
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, lower);
      break;
    default:  // transpose with neighbor
      if (pos + 1 < best_begin + best_len && out[pos] != out[pos + 1]) {
        std::swap(out[pos], out[pos + 1]);
      } else {
        out[pos] = out[pos] == lower ? (lower == 'z' ? 'a' : lower + 1) : lower;
      }
      break;
  }
  return out == value ? value + "e" : out;
}

bool HasLongToken(const std::string& value) {
  for (const auto& token : TokenizeCell(value)) {
    size_t letters = 0;
    for (char c : token) {
      if (std::isalpha(static_cast<unsigned char>(c))) ++letters;
    }
    if (letters >= 5) return true;
  }
  return false;
}

// Corrupts a numeric cell: comma slips for formatted numbers, scale
// errors otherwise.
std::string MakeNumericError(const std::string& cell, Rng& rng) {
  const size_t comma = cell.find(',');
  if (comma != std::string::npos) {
    // "8,011" -> "8.011": the decimal-point slip of Figure 4(e).
    std::string out = cell;
    out[comma] = '.';
    // Remove any later commas so the result parses as a number.
    out.erase(std::remove(out.begin() + static_cast<std::ptrdiff_t>(comma) + 1,
                          out.end(), ','),
              out.end());
    return out;
  }
  const auto parsed = ParseNumeric(cell);
  if (!parsed.has_value()) return cell + "000";
  const double v = *parsed;
  const double corrupted = rng.Bernoulli(0.5) ? v * 1000.0 : v / 1000.0;
  return FormatDouble(corrupted, 4);
}

// "2015-04-01" -> "2015-Apr-01": a format change that is valid data in
// some other convention but incompatible with the column's dominant
// pattern (the Auto-Detect error family).
std::string MakePatternError(const std::string& cell) {
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  const auto parts = Split(cell, '-');
  if (parts.size() != 3) return cell;
  const int month = std::atoi(parts[1].c_str());
  if (month < 1 || month > 12) return cell;
  return parts[0] + "-" + kMonths[month - 1] + "-" + parts[2];
}

size_t PickOtherRow(size_t row, size_t num_rows, Rng& rng) {
  size_t other = rng.NextBounded(num_rows - 1);
  if (other >= row) ++other;
  return other;
}

}  // namespace

GroundTruth InjectErrors(AnnotatedCorpus* corpus, const InjectionSpec& spec) {
  Rng rng(spec.seed);
  GroundTruth truth;

  for (size_t t = 0; t < corpus->corpus.tables.size(); ++t) {
    Table& table = corpus->corpus.tables[t];
    const std::vector<ColumnMeta>& meta = corpus->column_meta[t];
    const size_t rows = table.num_rows();
    if (rows < 10) continue;
    // At most one injection per column: later corruptions must never
    // overwrite earlier recorded ground truth.
    std::unordered_set<size_t> touched;

    // --- Spelling ---
    if (rng.Bernoulli(spec.spelling_rate)) {
      std::vector<size_t> eligible;
      for (size_t c = 0; c < meta.size(); ++c) {
        if (meta[c].natural_language && !touched.count(c)) eligible.push_back(c);
      }
      if (!eligible.empty()) {
        const size_t c = rng.Pick(eligible);
        Column& column = table.mutable_column(c);
        // Find a source value with a long token (typo-able).
        for (int attempt = 0; attempt < 8; ++attempt) {
          const size_t src = rng.NextBounded(rows);
          const std::string& value = column.cell(src);
          if (!HasLongToken(value)) continue;
          const std::string typo = MakeTypo(value, rng);
          if (typo == value) continue;
          const size_t dst = PickOtherRow(src, rows, rng);
          InjectedError error;
          error.error_class = ErrorClass::kSpelling;
          error.table_index = t;
          error.column = c;
          error.row = dst;
          error.partner_row = src;
          error.original = column.cell(dst);
          error.corrupted = typo;
          error.on_synthesizable_pair = meta[c].synthesizable;
          column.SetCell(dst, typo);
          touched.insert(c);
          truth.errors.push_back(std::move(error));
          break;
        }
      }
    }

    // --- Numeric outlier ---
    if (rng.Bernoulli(spec.outlier_rate)) {
      std::vector<size_t> eligible;
      for (size_t c = 0; c < meta.size(); ++c) {
        if (meta[c].numeric && !touched.count(c)) eligible.push_back(c);
      }
      if (!eligible.empty()) {
        const size_t c = rng.Pick(eligible);
        Column& column = table.mutable_column(c);
        const size_t row = rng.NextBounded(rows);
        const std::string corrupted = MakeNumericError(column.cell(row), rng);
        if (corrupted != column.cell(row)) {
          InjectedError error;
          error.error_class = ErrorClass::kOutlier;
          error.table_index = t;
          error.column = c;
          error.row = row;
          error.original = column.cell(row);
          error.corrupted = corrupted;
          column.SetCell(row, corrupted);
          touched.insert(c);
          truth.errors.push_back(std::move(error));
        }
      }
    }

    // --- Uniqueness ---
    if (rng.Bernoulli(spec.uniqueness_rate)) {
      std::vector<size_t> eligible;
      for (size_t c = 0; c < meta.size(); ++c) {
        if (meta[c].intended_unique && !touched.count(c)) eligible.push_back(c);
      }
      if (!eligible.empty()) {
        const size_t c = rng.Pick(eligible);
        Column& column = table.mutable_column(c);
        const size_t src = rng.NextBounded(rows);
        const size_t dst = PickOtherRow(src, rows, rng);
        if (column.cell(src) != column.cell(dst)) {
          InjectedError error;
          error.error_class = ErrorClass::kUniqueness;
          error.table_index = t;
          error.column = c;
          error.row = dst;
          error.partner_row = src;
          error.original = column.cell(dst);
          error.corrupted = column.cell(src);
          column.SetCell(dst, column.cell(src));
          touched.insert(c);
          truth.errors.push_back(error);

          // The duplicated key also surfaces as an FD violation against
          // every column where the two rows disagree ("part S956148
          // listed twice with different quantities") — the same injected
          // error seen through the FD lens, so it counts as truth there
          // as well.
          for (size_t r = 0; r < table.num_columns(); ++r) {
            if (r == c) continue;
            const Column& rhs = table.column(r);
            if (Trim(rhs.cell(src)).empty() ||
                rhs.cell(src) == rhs.cell(dst)) {
              continue;
            }
            InjectedError fd;
            fd.error_class = ErrorClass::kFd;
            fd.table_index = t;
            fd.column = c;
            fd.column2 = r;
            fd.row = dst;
            fd.partner_row = src;
            // original/corrupted describe the cell at (column, row) —
            // the duplicated key — matching the base FD convention.
            fd.original = error.original;
            fd.corrupted = error.corrupted;
            fd.on_synthesizable_pair = meta[r].synthesizable;
            truth.errors.push_back(std::move(fd));
          }
        }
      }
    }

    // --- Pattern incompatibility ---
    if (rng.Bernoulli(spec.pattern_rate)) {
      std::vector<size_t> eligible;
      for (size_t c = 0; c < meta.size(); ++c) {
        if (meta[c].role == ColumnRole::kDate && !touched.count(c)) {
          eligible.push_back(c);
        }
      }
      if (!eligible.empty()) {
        const size_t c = rng.Pick(eligible);
        Column& column = table.mutable_column(c);
        const size_t row = rng.NextBounded(rows);
        const std::string corrupted = MakePatternError(column.cell(row));
        if (corrupted != column.cell(row)) {
          InjectedError error;
          error.error_class = ErrorClass::kPattern;
          error.table_index = t;
          error.column = c;
          error.row = row;
          error.original = column.cell(row);
          error.corrupted = corrupted;
          column.SetCell(row, corrupted);
          touched.insert(c);
          truth.errors.push_back(std::move(error));
        }
      }
    }

    // --- FD violation ---
    if (rng.Bernoulli(spec.fd_rate)) {
      std::vector<size_t> eligible;  // rhs columns with an fd partner
      for (size_t c = 0; c < meta.size(); ++c) {
        if (meta[c].fd_partner >= 0 && !touched.count(c) &&
            !touched.count(static_cast<size_t>(meta[c].fd_partner))) {
          eligible.push_back(c);
        }
      }
      if (!eligible.empty()) {
        const size_t rhs_col = rng.Pick(eligible);
        const size_t lhs_col = static_cast<size_t>(meta[rhs_col].fd_partner);
        Column& lhs = table.mutable_column(lhs_col);
        Column& rhs = table.mutable_column(rhs_col);
        const bool lhs_was_duplicate_free =
            ComputeUrProfile(lhs).duplicate_rows.empty();
        const size_t src = rng.NextBounded(rows);
        const size_t dst = PickOtherRow(src, rows, rng);
        if (rhs.cell(src) != rhs.cell(dst)) {
          // Duplicate the lhs value so rows src/dst share lhs but keep
          // their conflicting rhs values (Figure 13's duplicated shield).
          InjectedError error;
          error.error_class = ErrorClass::kFd;
          error.table_index = t;
          error.column = lhs_col;
          error.column2 = rhs_col;
          error.row = dst;
          error.partner_row = src;
          error.original = lhs.cell(dst);
          error.corrupted = lhs.cell(src);
          error.on_synthesizable_pair = meta[rhs_col].synthesizable;
          lhs.SetCell(dst, lhs.cell(src));
          touched.insert(lhs_col);
          touched.insert(rhs_col);
          truth.errors.push_back(error);

          // The duplicated lhs is itself a uniqueness violation when the
          // lhs column is semantically unique (Figure 13 again) — or when
          // it was duplicate-free before injection (a species list with a
          // repeated species is a genuine anomaly a human judge would
          // accept, even without a declared uniqueness constraint).
          if (meta[lhs_col].intended_unique || lhs_was_duplicate_free) {
            InjectedError dup;
            dup.error_class = ErrorClass::kUniqueness;
            dup.table_index = t;
            dup.column = lhs_col;
            dup.row = dst;
            dup.partner_row = src;
            dup.original = error.original;
            dup.corrupted = error.corrupted;
            truth.errors.push_back(std::move(dup));
          }
        }
      }
    }
  }
  return truth;
}

}  // namespace unidetect
