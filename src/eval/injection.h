// Controlled error injection: replaces the paper's manual top-100 judging
// (Section 4.3) with exact ground truth. The injector corrupts cells in
// an annotated corpus and records every corruption; a method's prediction
// is "true" iff it hits an injected cell (see GroundTruth::Matches).
//
// Injection families follow the paper's true-positive examples:
//   spelling   -- a near-duplicate of an existing value with a character
//                 typo in a long token (Fig 4(g) "Doeling"/"Dowling")
//   outlier    -- decimal-point slips ("8,716" -> "8.716", Fig 4(e)),
//                 scale errors (x1000 / /1000), digit transpositions
//   uniqueness -- a duplicated value in an ID column (Fig 4(a), Fig 6)
//   fd         -- two rows sharing an lhs value with conflicting rhs
//                 (Fig 4(c)); on synthesizable pairs this doubles as an
//                 FD-synthesis target (Fig 13/14)

#pragma once

#include <cstdint>
#include <vector>

#include "corpus/generator.h"
#include "detect/finding.h"
#include "util/random.h"

namespace unidetect {

/// \brief One injected, known error.
struct InjectedError {
  ErrorClass error_class = ErrorClass::kOutlier;
  size_t table_index = 0;
  size_t column = 0;
  /// rhs column for FD errors; Finding::kNoColumn otherwise.
  size_t column2 = Finding::kNoColumn;
  /// The corrupted row.
  size_t row = 0;
  /// For spelling/uniqueness/fd: the row holding the clean counterpart
  /// (the value that was duplicated / the conflicting lhs row).
  size_t partner_row = Finding::kNoColumn;
  std::string original;
  std::string corrupted;
  /// True when the error sits on a synthesizable (programmatic) FD pair.
  bool on_synthesizable_pair = false;
};

/// \brief Ground-truth ledger for an injected corpus.
struct GroundTruth {
  std::vector<InjectedError> errors;

  /// \brief True iff `finding` identifies some injected error: the error
  /// class and table match, the flagged column(s) include the injected
  /// column(s), and the flagged rows include the corrupted row or its
  /// partner.
  bool Matches(const Finding& finding) const;

  /// \brief Number of injected errors of one class.
  size_t CountClass(ErrorClass c) const;
};

/// \brief Injection rates: per eligible table, the probability that one
/// error of each class is injected (at most one error per class per
/// table, matching the paper's sparse real-world error rates).
struct InjectionSpec {
  uint64_t seed = 99;
  double spelling_rate = 0.25;
  double outlier_rate = 0.25;
  double uniqueness_rate = 0.25;
  double fd_rate = 0.25;
  /// Pattern-incompatibility errors (a date rewritten into a conflicting
  /// format, "2015-04-01" -> "2015-Apr-01"); off by default because the
  /// paper's Figures 8-12 evaluate only the four main classes.
  double pattern_rate = 0.0;
};

/// \brief Corrupts `corpus` in place and returns the ledger.
GroundTruth InjectErrors(AnnotatedCorpus* corpus, const InjectionSpec& spec);

}  // namespace unidetect
