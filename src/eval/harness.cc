#include "eval/harness.h"

#include <fstream>
#include <sstream>

#include "baselines/constraint_baselines.h"
#include "baselines/outlier_baselines.h"
#include "baselines/spelling_baselines.h"
#include "synthesis/fd_synthesis_detector.h"
#include "util/logging.h"

namespace unidetect {

namespace {

std::string ModelCachePath(const ExperimentConfig& config) {
  const ModelOptions& m = config.model_options;
  std::ostringstream os;
  os << config.model_cache_dir << "/unidetect_model_" << config.train_tables
     << "_" << config.train_seed << "_" << (m.featurize.enabled ? 1 : 0)
     << static_cast<int>(m.smoothing) << static_cast<int>(m.denominator)
     << "_" << m.min_support << ".model";
  return os.str();
}

}  // namespace

Model TrainBackgroundModel(const ExperimentConfig& config) {
  const std::string cache_path =
      config.model_cache_dir.empty() ? "" : ModelCachePath(config);
  if (!cache_path.empty()) {
    std::ifstream probe(cache_path);
    if (probe.good()) {
      probe.close();
      auto loaded = Model::Load(cache_path);
      if (loaded.ok()) {
        UNIDETECT_LOG(Info) << "loaded cached model " << cache_path;
        return std::move(loaded).ValueOrDie();
      }
      UNIDETECT_LOG(Warning) << "cached model unreadable, retraining: "
                             << loaded.status();
    }
  }
  const AnnotatedCorpus background =
      GenerateCorpus(WebCorpusSpec(config.train_tables, config.train_seed));
  TrainerOptions trainer_options;
  trainer_options.model = config.model_options;
  trainer_options.num_threads = config.threads;
  Trainer trainer(trainer_options);
  Model model = trainer.Train(background.corpus);
  if (!cache_path.empty()) {
    Status st = model.Save(cache_path);
    if (!st.ok()) {
      UNIDETECT_LOG(Warning) << "could not cache model: " << st;
    }
  }
  return model;
}

Experiment BuildExperiment(const CorpusSpec& test_spec,
                           const ExperimentConfig& config) {
  Experiment experiment{TrainBackgroundModel(config), {}, {}};
  experiment.test = GenerateCorpus(test_spec);
  experiment.truth = InjectErrors(&experiment.test, config.injection);
  UNIDETECT_LOG(Info) << test_spec.name << ": "
                      << experiment.test.corpus.tables.size() << " tables, "
                      << experiment.truth.errors.size()
                      << " injected errors";
  return experiment;
}

PrecisionCurve RunUniDetect(const Experiment& experiment, ErrorClass cls,
                            bool use_dictionary,
                            const std::string& display_name) {
  UniDetectOptions options;
  options.alpha = 1.0;  // keep the full ranked list; Precision@K truncates
  options.DisableAllClasses();  // per-class evaluation isolates one class
  options.set_detect(cls, true);
  options.use_dictionary = use_dictionary;
  UniDetect detector(&experiment.model, options);
  const std::vector<Finding> ranked =
      detector.DetectCorpus(experiment.test.corpus);
  std::string name = display_name;
  if (name.empty()) name = use_dictionary ? "UniDetect+Dict" : "UniDetect";
  return EvaluatePrecision(name, ranked, experiment.truth);
}

PrecisionCurve RunFdSynthesis(const Experiment& experiment,
                              const GroundTruth& truth,
                              const std::string& display_name) {
  FdSynthesisDetector detector(&experiment.model);
  std::vector<Finding> ranked;
  for (size_t i = 0; i < experiment.test.corpus.tables.size(); ++i) {
    std::vector<Finding> findings;
    detector.Detect(experiment.test.corpus.tables[i], &findings);
    for (auto& finding : findings) {
      finding.table_index = i;
      ranked.push_back(std::move(finding));
    }
  }
  SortFindings(&ranked);
  return EvaluatePrecision(display_name, ranked, truth);
}

PrecisionCurve RunBaseline(const Baseline& baseline,
                           const Experiment& experiment) {
  return RunBaselineAgainst(baseline, experiment, experiment.truth);
}

PrecisionCurve RunBaselineAgainst(const Baseline& baseline,
                                  const Experiment& experiment,
                                  const GroundTruth& truth) {
  const std::vector<Finding> ranked =
      baseline.DetectCorpus(experiment.test.corpus);
  return EvaluatePrecision(baseline.name(), ranked, truth);
}

void RunFigurePanels(const std::string& corpus_label,
                     const Experiment& experiment) {
  const WordFrequency frequency(experiment.model.token_index());

  // (a) spelling.
  {
    std::vector<PrecisionCurve> curves;
    curves.push_back(RunUniDetect(experiment, ErrorClass::kSpelling,
                                  /*use_dictionary=*/true));
    curves.push_back(RunUniDetect(experiment, ErrorClass::kSpelling));
    curves.push_back(RunBaseline(FuzzyClusterBaseline(), experiment));
    curves.push_back(RunBaseline(SpellerBaseline(&frequency), experiment));
    {
      SpellerOptions address_only;
      address_only.address_only = true;
      curves.push_back(
          RunBaseline(SpellerBaseline(&frequency, address_only), experiment));
    }
    curves.push_back(RunBaseline(
        OovBaseline(&experiment.model.token_index(), "Word2Vec", 40),
        experiment));
    curves.push_back(RunBaseline(
        OovBaseline(&experiment.model.token_index(), "GloVe", 10),
        experiment));
    PrintCurves("(a) spelling errors on " + corpus_label + " (Precision@K)",
                curves);
  }

  // (b) numeric outliers.
  {
    std::vector<PrecisionCurve> curves;
    curves.push_back(RunUniDetect(experiment, ErrorClass::kOutlier));
    curves.push_back(RunBaseline(MaxMadBaseline(), experiment));
    curves.push_back(RunBaseline(MaxSdBaseline(), experiment));
    curves.push_back(RunBaseline(DbodBaseline(), experiment));
    curves.push_back(RunBaseline(LofBaseline(), experiment));
    PrintCurves("(b) numeric outliers on " + corpus_label + " (Precision@K)",
                curves);
  }

  // (c) uniqueness violations.
  {
    std::vector<PrecisionCurve> curves;
    curves.push_back(RunUniDetect(experiment, ErrorClass::kUniqueness));
    curves.push_back(RunBaseline(UniqueRowRatioBaseline(), experiment));
    curves.push_back(RunBaseline(UniqueValueRatioBaseline(), experiment));
    PrintCurves(
        "(c) uniqueness violations on " + corpus_label + " (Precision@K)",
        curves);
  }
}

void RunFdPanels(const std::string& corpus_label,
                 const Experiment& experiment) {
  // FD panel: all injected FD errors.
  {
    std::vector<PrecisionCurve> curves;
    curves.push_back(RunUniDetect(experiment, ErrorClass::kFd));
    curves.push_back(RunBaseline(UniqueProjectionRatioBaseline(), experiment));
    curves.push_back(RunBaseline(ConformingRowRatioBaseline(), experiment));
    curves.push_back(RunBaseline(ConformingPairRatioBaseline(), experiment));
    PrintCurves("FD violations on " + corpus_label + " (Precision@K)",
                curves);
  }
  // FD-synthesis panel: errors on programmatic pairs only.
  {
    const GroundTruth synth_truth = SynthesizableFdTruth(experiment.truth);
    std::vector<PrecisionCurve> curves;
    curves.push_back(
        RunFdSynthesis(experiment, synth_truth, "UniDetect-FD-synthesis"));
    curves.push_back(RunBaselineAgainst(UniqueProjectionRatioBaseline(),
                                        experiment, synth_truth));
    curves.push_back(RunBaselineAgainst(ConformingRowRatioBaseline(),
                                        experiment, synth_truth));
    curves.push_back(RunBaselineAgainst(ConformingPairRatioBaseline(),
                                        experiment, synth_truth));
    PrintCurves(
        "FD-synthesis violations on " + corpus_label + " (Precision@K)",
        curves);
  }
}

GroundTruth SynthesizableFdTruth(const GroundTruth& truth) {
  GroundTruth out;
  for (const auto& error : truth.errors) {
    if (error.on_synthesizable_pair) out.errors.push_back(error);
  }
  return out;
}

}  // namespace unidetect
