// Precision@K evaluation (Section 4.3): methods emit ranked findings,
// and precision@K = (#true errors among the top K) / K against the
// injected ground truth.

#pragma once

#include <string>
#include <vector>

#include "detect/finding.h"
#include "eval/injection.h"

namespace unidetect {

/// \brief Precision@K curve of one method.
struct PrecisionCurve {
  std::string method;
  /// The K values evaluated (e.g. {10, 20, ..., 100}).
  std::vector<size_t> ks;
  /// precision[i] = Precision@ks[i]; when fewer than ks[i] findings were
  /// produced, the missing slots count as wrong (a method that returns 40
  /// predictions has at best 0.4 precision@100), matching how a fixed
  /// top-100 judgment treats short lists.
  std::vector<double> precision;
};

/// \brief Default K grid {10, 20, ..., 100}.
std::vector<size_t> DefaultKs();

/// \brief Evaluates a ranked finding list against ground truth. Findings
/// must already be sorted most-confident first.
PrecisionCurve EvaluatePrecision(const std::string& method,
                                 const std::vector<Finding>& ranked,
                                 const GroundTruth& truth,
                                 const std::vector<size_t>& ks = DefaultKs());

/// \brief Keeps only findings of one error class (rank order preserved).
std::vector<Finding> FilterByClass(const std::vector<Finding>& findings,
                                   ErrorClass c);

/// \brief Prints curves as an aligned text table, one row per method and
/// one column per K — the shape of the paper's Figures 8-10/12 panels.
void PrintCurves(const std::string& title,
                 const std::vector<PrecisionCurve>& curves);

}  // namespace unidetect
