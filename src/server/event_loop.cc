#include "server/event_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

namespace {
Status Errno(const char* what) {
  return Status::IOError(StrCat(what, ": ", strerror(errno)));
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_status_ = Errno("epoll_create1");
    return;
  }
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    init_status_ = Errno("eventfd");
    return;
  }
  struct epoll_event event = {};
  event.events = EPOLLIN;
  event.data.fd = wakeup_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &event) != 0) {
    init_status_ = Errno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  if (MustPost()) {
    Post([this, fd, events, callback = std::move(callback)]() mutable {
      const Status status = AddOnLoop(fd, events, std::move(callback));
      if (!status.ok()) {
        UNIDETECT_LOG(Warning) << "EventLoop: posted Add(" << fd
                               << ") failed: " << status.ToString();
      }
    });
    return Status::OK();
  }
  return AddOnLoop(fd, events, std::move(callback));
}

Status EventLoop::AddOnLoop(int fd, uint32_t events, FdCallback callback) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Errno("epoll_ctl(add)");
  }
  callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  if (MustPost()) {
    Post([this, fd, events] {
      const Status status = ModifyOnLoop(fd, events);
      if (!status.ok()) {
        UNIDETECT_LOG(Warning) << "EventLoop: posted Modify(" << fd
                               << ") failed: " << status.ToString();
      }
    });
    return Status::OK();
  }
  return ModifyOnLoop(fd, events);
}

Status EventLoop::ModifyOnLoop(int fd, uint32_t events) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (MustPost()) {
    Post([this, fd] { RemoveOnLoop(fd); });
    return;
  }
  RemoveOnLoop(fd);
}

void EventLoop::RemoveOnLoop(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    MutexLock lock(&post_mu_);
    posted_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] const ssize_t ignored =
      write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeup() {
  uint64_t counter = 0;
  while (read(wakeup_fd_, &counter, sizeof(counter)) > 0) {
  }
}

void EventLoop::RunPosted() {
  // Swap the queue out under the lock, run outside it: posted closures
  // are allowed to Post() more work or touch connections freely.
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(&post_mu_);
    tasks.swap(posted_);
  }
  for (std::function<void()>& task : tasks) task();
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  std::vector<struct epoll_event> events(64);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<size_t>(i)].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      // Look up and copy so a callback that removes its own (or a
      // sibling's) registration never invalidates the function object
      // mid-call.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      const FdCallback callback = it->second;
      callback(events[static_cast<size_t>(i)].events);
    }
    RunPosted();
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  // One final drain so closures posted alongside Stop() still run.
  RunPosted();
  running_.store(false, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  loop_thread_.store(std::thread::id(), std::memory_order_release);
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t ignored =
      write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace unidetect
