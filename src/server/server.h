// DetectionServer: the network front end over DetectionService
// (DESIGN.md §16). The reactor is sharded: `ServerOptions::io_threads`
// epoll event loops, each owning a disjoint set of sockets, so every
// Connection stays confined to exactly one loop thread and needs no
// locking — the single-reactor invariants of PR 9 hold per shard.
// io_threads = 1 (the default) is exactly the old single-reactor
// server.
//
// Connections reach shards one of two ways:
//   * SO_REUSEPORT (the multi-shard default): every shard binds its own
//     listener on the same port and the kernel spreads incoming
//     connections across them — no cross-thread accept path at all.
//   * Accept handoff (fallback, or pinned via accept_mode): shard 0
//     owns the only listener and round-robins accepted fds to shards by
//     posting the registration onto the target loop.
//
// Decoded requests flow through the *shared* RequestCoalescer — one
// admission point, so batching still coalesces across shards — and each
// completion posts back to the owning shard's loop, keyed by a globally
// unique connection id (ids never recycle; a completion for a closed
// connection drops harmlessly). A per-connection in-flight cap keeps a
// single pipelining client from occupying the whole admission queue:
// requests over the cap get a typed kOverloaded for that request only.
//
// Both protocols share the listen port and are distinguished by the
// first bytes of the stream: a prefix of "UDW1" selects the UDWIRE
// binary protocol (server/wire.h), anything else the minimal HTTP/1.1
// adapter (server/http.h) serving GET /healthz, GET /statz (JSON),
// GET /metrics (Prometheus text exposition) and POST /detect (CSV body
// in, findings JSON out).
//
// Overload behavior is typed end to end: connections beyond
// max_connections are accepted and immediately closed after counting
// kConnectionsRejected; requests beyond the admission queue get a
// kOverloaded response (or HTTP 503); requests whose deadline lapses in
// the queue get kDeadlineExceeded. Stop() is graceful — the listeners
// close first, the coalescer drains everything already admitted, and
// already-queued responses are flushed on every shard before its loop
// exits.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/coalescer.h"
#include "server/event_loop.h"
#include "server/http.h"
#include "server/metrics.h"
#include "server/wire.h"
#include "serving/detection_service.h"
#include "util/status.h"

namespace unidetect {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back
  /// with port() after Start()).
  uint16_t port = 0;
  /// Listen only on 127.0.0.1 (the default) or on all interfaces.
  bool loopback_only = true;
  /// Concurrent-connection cap across all shards; accepts beyond it are
  /// closed at once.
  size_t max_connections = 1024;
  /// Per-frame payload bound for UDWIRE requests.
  uint32_t max_frame_payload = 64u << 20;
  /// Number of IO reactor shards. 1 (the default) preserves the
  /// single-reactor behavior exactly.
  size_t io_threads = 1;
  /// How connections reach shards when io_threads > 1. kAuto tries
  /// per-shard SO_REUSEPORT listeners and falls back to accept handoff
  /// if the kernel refuses; kReusePort fails Start() instead of falling
  /// back; kHandoff pins the single-listener round-robin path.
  enum class AcceptMode { kAuto, kReusePort, kHandoff };
  AcceptMode accept_mode = AcceptMode::kAuto;
  /// Per-connection in-flight request cap (0 = unlimited). A request
  /// submitted while this many are already outstanding on the same
  /// connection gets a typed kOverloaded (HTTP 503) for that request
  /// only; the connection stays usable.
  size_t max_in_flight_per_connection = 256;
  http::Limits http_limits;
  CoalescerOptions coalescer;
};

class DetectionServer {
 public:
  /// `service` must outlive the server.
  DetectionServer(DetectionService* service, ServerOptions options);
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// \brief Binds, listens, starts the coalescer and the IO shards.
  Status Start();

  /// \brief Graceful shutdown: stop accepting, drain admitted requests,
  /// flush pending responses on every shard, join the IO threads.
  /// Idempotent.
  void Stop();

  /// \brief The bound port (resolves ephemeral port 0); valid after a
  /// successful Start(). All shards share it.
  uint16_t port() const { return bound_port_; }

  /// \brief Number of reactor shards actually running.
  size_t io_threads() const { return shards_.size(); }

  /// \brief True when the multi-shard server fell back to (or pinned)
  /// the single-listener accept-handoff path instead of SO_REUSEPORT.
  bool accept_handoff() const { return accept_handoff_; }

  const MetricsRegistry& metrics() const { return metrics_; }

  /// \brief The /statz document: server counters, latency percentiles,
  /// recent QPS, per-shard accept/connection stats, and the underlying
  /// ServiceStats, as one JSON object.
  std::string StatzJson() const;

  /// \brief The /metrics document: the same counters, gauges and
  /// histograms in Prometheus text exposition format.
  std::string MetricsText() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string rx;
    std::string tx;
    enum class Protocol { kUnknown, kUdwire, kHttp } protocol =
        Protocol::kUnknown;
    /// Close once tx drains (HTTP Connection: close, or fatal protocol
    /// error after the error response).
    bool close_after_flush = false;
    /// EPOLLOUT currently armed.
    bool want_write = false;
    /// Requests submitted to the coalescer and not yet completed
    /// (loop-thread-confined; decremented by the completion post).
    size_t in_flight = 0;
  };

  /// One reactor shard: an event loop, its thread, and the connection
  /// state confined to that loop's thread. Shards live in stable
  /// unique_ptr slots for the server's whole lifetime, so raw Shard
  /// pointers may be captured by completion callbacks.
  struct Shard {
    size_t index = 0;
    EventLoop loop;
    std::thread thread;
    /// This shard's listener (every shard in reuse-port mode, shard 0
    /// only in handoff mode, -1 otherwise).
    int listen_fd = -1;
    /// Monotonic accept counter and open-connection gauge, readable
    /// cross-thread by StatzJson/MetricsText.
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> open_connections{0};
    /// Handoff round-robin cursor (shard 0's loop thread only).
    size_t rr_next = 0;
    // Loop-thread state: connections keyed by id (ids are never reused,
    // so a stale completion post cannot hit a recycled connection).
    std::map<uint64_t, std::unique_ptr<Connection>> connections;
    std::map<int, uint64_t> fd_to_id;
  };

  /// Creates one nonblocking listener bound to the configured address.
  /// `reuse_port` additionally sets SO_REUSEPORT before bind. On
  /// success returns the fd and fills `bound_port` with the resolved
  /// port.
  Result<int> OpenListener(uint16_t port, bool reuse_port,
                           uint16_t* bound_port);

  void OnListenReady(Shard* shard);
  /// Registers an accepted fd on `shard` (runs on that shard's loop
  /// thread; the connection-cap slot was claimed by the acceptor).
  void RegisterConnection(Shard* shard, int fd);
  void OnConnectionReady(Shard* shard, uint64_t id, uint32_t events);
  /// Parses as many complete requests as rx holds; returns false when
  /// the connection must close now (peer error / unrecoverable bytes).
  bool ConsumeRx(Shard* shard, Connection* conn);
  bool ConsumeUdwire(Shard* shard, Connection* conn);
  bool ConsumeHttp(Shard* shard, Connection* conn);
  /// Hands one decoded UDWIRE request to the coalescer; the completion
  /// posts the encoded response back to the owning shard's loop. May
  /// write (and thus free) the connection inline when the request is
  /// over the per-connection cap — callers must re-resolve by id.
  void SubmitDetect(Shard* shard, Connection* conn,
                    wire::DetectRequest request);
  void HandleHttpRequest(Shard* shard, Connection* conn,
                         const http::Request& request);
  /// Appends bytes to tx and flushes opportunistically.
  void QueueWrite(Shard* shard, Connection* conn, std::string_view bytes);
  /// Writes as much tx as the socket takes; arms/disarms EPOLLOUT.
  void FlushTx(Shard* shard, Connection* conn);
  void CloseConnection(Shard* shard, uint64_t id);
  /// Runs on a shard's loop thread after the coalescer has drained:
  /// flushes every remaining tx buffer (bounded), closes all fds, stops
  /// that shard's loop.
  void FinalFlushAndStop(Shard* shard);

  DetectionService* const service_;
  const ServerOptions options_;

  MetricsRegistry metrics_;
  RequestCoalescer coalescer_;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool accept_handoff_ = false;
  uint16_t bound_port_ = 0;
  bool started_ = false;
  /// Read by loop threads (a handed-off registration racing shutdown).
  std::atomic<bool> stopped_{false};

  /// Globally unique connection ids (shards accept concurrently).
  std::atomic<uint64_t> next_connection_id_{1};
  /// Open connections across all shards, against max_connections.
  std::atomic<size_t> total_connections_{0};
};

}  // namespace unidetect
