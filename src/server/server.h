// DetectionServer: the network front end over DetectionService
// (DESIGN.md §16). One epoll IO thread owns every socket; decoded
// requests flow through the RequestCoalescer's bounded admission queue
// to the detector, and completed responses come back to the IO thread
// via EventLoop::Post, keyed by a monotonically increasing connection
// id so a completion for a connection that has since closed is dropped
// harmlessly (fds get reused; ids never do).
//
// Both protocols share the listen port and are distinguished by the
// first bytes of the stream: a prefix of "UDW1" selects the UDWIRE
// binary protocol (server/wire.h), anything else the minimal HTTP/1.1
// adapter (server/http.h) serving GET /healthz, GET /statz and
// POST /detect (CSV body in, findings JSON out).
//
// Overload behavior is typed end to end: connections beyond
// max_connections are accepted and immediately closed after counting
// kConnectionsRejected; requests beyond the admission queue get a
// kOverloaded response (or HTTP 503); requests whose deadline lapses in
// the queue get kDeadlineExceeded. Stop() is graceful — the listener
// closes first, the coalescer drains everything already admitted, and
// already-queued responses are flushed before the loop exits.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "server/coalescer.h"
#include "server/event_loop.h"
#include "server/http.h"
#include "server/metrics.h"
#include "server/wire.h"
#include "serving/detection_service.h"
#include "util/status.h"

namespace unidetect {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back
  /// with port() after Start()).
  uint16_t port = 0;
  /// Listen only on 127.0.0.1 (the default) or on all interfaces.
  bool loopback_only = true;
  /// Concurrent-connection cap; accepts beyond it are closed at once.
  size_t max_connections = 1024;
  /// Per-frame payload bound for UDWIRE requests.
  uint32_t max_frame_payload = 64u << 20;
  http::Limits http_limits;
  CoalescerOptions coalescer;
};

class DetectionServer {
 public:
  /// `service` must outlive the server.
  DetectionServer(DetectionService* service, ServerOptions options);
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// \brief Binds, listens, starts the coalescer and the IO thread.
  Status Start();

  /// \brief Graceful shutdown: stop accepting, drain admitted requests,
  /// flush pending responses, join the IO thread. Idempotent.
  void Stop();

  /// \brief The bound port (resolves ephemeral port 0); valid after a
  /// successful Start().
  uint16_t port() const { return bound_port_; }

  const MetricsRegistry& metrics() const { return metrics_; }

  /// \brief The /statz document: server counters, latency percentiles,
  /// recent QPS, and the underlying ServiceStats, as one JSON object.
  std::string StatzJson() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string rx;
    std::string tx;
    enum class Protocol { kUnknown, kUdwire, kHttp } protocol =
        Protocol::kUnknown;
    /// Close once tx drains (HTTP Connection: close, or fatal protocol
    /// error after the error response).
    bool close_after_flush = false;
    /// EPOLLOUT currently armed.
    bool want_write = false;
  };

  void OnListenReady(uint32_t events);
  void OnConnectionReady(uint64_t id, uint32_t events);
  /// Parses as many complete requests as rx holds; returns false when
  /// the connection must close now (peer error / unrecoverable bytes).
  bool ConsumeRx(Connection* conn);
  bool ConsumeUdwire(Connection* conn);
  bool ConsumeHttp(Connection* conn);
  /// Hands one decoded UDWIRE request to the coalescer; the completion
  /// posts the encoded response back to this connection.
  void SubmitDetect(Connection* conn, wire::DetectRequest request);
  void HandleHttpRequest(Connection* conn, const http::Request& request);
  /// Appends bytes to tx and flushes opportunistically.
  void QueueWrite(Connection* conn, std::string_view bytes);
  /// Writes as much tx as the socket takes; arms/disarms EPOLLOUT.
  void FlushTx(Connection* conn);
  void CloseConnection(uint64_t id);
  /// Runs on the loop thread after the coalescer has drained: flushes
  /// every remaining tx buffer (bounded), closes all fds, stops the loop.
  void FinalFlushAndStop();

  DetectionService* const service_;
  const ServerOptions options_;

  MetricsRegistry metrics_;
  RequestCoalescer coalescer_;
  EventLoop loop_;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  // IO-thread state: connections keyed by id (ids are never reused, so
  // a stale completion post cannot hit a recycled connection).
  uint64_t next_connection_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::map<int, uint64_t> fd_to_id_;

  std::thread io_thread_;
};

}  // namespace unidetect
