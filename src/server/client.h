// Blocking UDWIRE client: the counterpart of DetectionServer used by
// tools/udclient, the loopback tests and bench/bench_server. One
// connection, synchronous request/response (request ids still travel,
// so an async client could multiplex — this one just doesn't need to).
// SendRaw/ReadResponse are split out so robustness tests can push
// hand-corrupted bytes at a live server, and a tiny HTTP helper covers
// the /healthz-style probes without pulling in a real HTTP client.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "server/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace unidetect {

class UdwireClient {
 public:
  /// \brief Connects (blocking) to `host`:`port`; host is a dotted-quad
  /// IPv4 literal such as "127.0.0.1".
  static Result<UdwireClient> Connect(const std::string& host, uint16_t port);

  UdwireClient(UdwireClient&& other) noexcept;
  UdwireClient& operator=(UdwireClient&& other) noexcept;
  UdwireClient(const UdwireClient&) = delete;
  UdwireClient& operator=(const UdwireClient&) = delete;
  ~UdwireClient();

  /// \brief One synchronous round trip: encodes and sends `request`,
  /// blocks for the matching response frame. A typed server response
  /// (Overloaded, DeadlineExceeded, ...) is a *successful* return whose
  /// code says what happened; an error Status means the transport or
  /// framing itself failed.
  Result<wire::DetectResponse> Detect(const wire::DetectRequest& request);

  /// \brief Writes arbitrary bytes down the connection (robustness
  /// tests feed corrupted frames through this).
  Status SendRaw(std::string_view bytes);

  /// \brief Blocks until one complete response frame arrives.
  Result<wire::DetectResponse> ReadResponse();

  int fd() const { return fd_; }

 private:
  explicit UdwireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string rx_;  // bytes past the last decoded frame
};

/// \brief One blocking HTTP/1.1 request against a local server; returns
/// the raw response (status line + headers + body). `body` non-empty
/// implies a Content-Length header.
Result<std::string> HttpFetch(const std::string& host, uint16_t port,
                              std::string_view method, std::string_view target,
                              std::string_view body = {});

}  // namespace unidetect
