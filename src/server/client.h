// UDWIRE clients: the counterparts of DetectionServer used by
// tools/udclient, the loopback tests and bench/bench_server.
//
//   * UdwireClient — one connection, blocking request/response.
//     SendRaw/ReadResponse are split out so robustness tests can push
//     hand-corrupted bytes at a live server.
//   * AsyncUdwireClient — one connection, many in-flight pipelined
//     requests multiplexed by the wire request id, completions
//     delivered out of order via callback (or the blocking DetectSync
//     convenience), with optional per-request client-side deadlines.
//
// A tiny HTTP helper covers the /healthz-style probes without pulling
// in a real HTTP client.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "server/wire.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace unidetect {

class UdwireClient {
 public:
  /// \brief Connects (blocking) to `host`:`port`; host is a dotted-quad
  /// IPv4 literal such as "127.0.0.1".
  static Result<UdwireClient> Connect(const std::string& host, uint16_t port);

  UdwireClient(UdwireClient&& other) noexcept;
  UdwireClient& operator=(UdwireClient&& other) noexcept;
  UdwireClient(const UdwireClient&) = delete;
  UdwireClient& operator=(const UdwireClient&) = delete;
  ~UdwireClient();

  /// \brief One synchronous round trip: encodes and sends `request`,
  /// blocks for the matching response frame. A typed server response
  /// (Overloaded, DeadlineExceeded, ...) is a *successful* return whose
  /// code says what happened; an error Status means the transport or
  /// framing itself failed.
  Result<wire::DetectResponse> Detect(const wire::DetectRequest& request);

  /// \brief Writes arbitrary bytes down the connection (robustness
  /// tests feed corrupted frames through this).
  Status SendRaw(std::string_view bytes);

  /// \brief Blocks until one complete response frame arrives.
  Result<wire::DetectResponse> ReadResponse();

  int fd() const { return fd_; }

 private:
  explicit UdwireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string rx_;  // bytes past the last decoded frame
};

/// \brief Pipelined multiplexing UDWIRE client: one TCP connection,
/// many requests in flight, completions matched to callers by the wire
/// request id so they may arrive in any order.
///
/// Completion contract — the callback for every submitted request fires
/// **exactly once**, with a typed wire::DetectResponse:
///   * the server's response (whatever its code), or
///   * kDeadlineExceeded when the per-request client deadline lapses
///     first (a late server response for that id is then dropped), or
///   * kUnavailable when the connection breaks (server close, transport
///     error) or the client is destroyed with the request outstanding.
///
/// Callbacks run on the internal receiver thread (or inline on the
/// submitting thread when the connection is already broken). They must
/// not block and must not call DetectSync (self-deadlock: DetectSync
/// waits on a completion only the receiver thread can deliver).
/// Detect/DetectSync may be called from any thread concurrently.
class AsyncUdwireClient {
 public:
  using Callback = std::function<void(wire::DetectResponse)>;

  /// \brief Connects (blocking) and starts the receiver thread. `host`
  /// is a dotted-quad IPv4 literal such as "127.0.0.1".
  static Result<std::unique_ptr<AsyncUdwireClient>> Connect(
      const std::string& host, uint16_t port);

  AsyncUdwireClient(const AsyncUdwireClient&) = delete;
  AsyncUdwireClient& operator=(const AsyncUdwireClient&) = delete;

  /// Fails every outstanding request with kUnavailable, then joins the
  /// receiver thread.
  ~AsyncUdwireClient();

  /// \brief Submits one request. The client overwrites
  /// `request.request_id` with an internally assigned id (returned).
  /// `timeout_ms` > 0 bounds the wait client-side: if no response
  /// arrives in time, `done` fires with kDeadlineExceeded (this is
  /// independent of `request.deadline_ms`, the server-side queue
  /// deadline, which the caller sets — or not — as usual).
  uint64_t Detect(wire::DetectRequest request, Callback done,
                  int64_t timeout_ms = 0);

  /// \brief Blocking convenience over Detect(): submits and waits for
  /// that one completion. Other in-flight requests on this connection
  /// proceed concurrently. Must not be called from a completion
  /// callback.
  wire::DetectResponse DetectSync(wire::DetectRequest request,
                                  int64_t timeout_ms = 0);

  /// \brief Requests submitted and not yet completed.
  size_t pending() const;

  /// \brief True once the connection has failed; further Detect()
  /// calls complete immediately with kUnavailable.
  bool broken() const { return broken_.load(std::memory_order_acquire); }

 private:
  struct Pending {
    Callback done;
    /// Unset when the request has no client-side deadline.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  AsyncUdwireClient(int fd, int wakeup_fd);

  /// Receiver thread: poll(fd, wakeup) with the nearest pending
  /// deadline as timeout; decode frames, expire deadlines, and on
  /// connection failure (or shutdown) fail everything outstanding.
  void ReceiverLoop();
  void Wake();
  /// Decodes every complete frame in rx_, completing matched pending
  /// entries; returns false on a framing error (connection unusable).
  bool DecodeFrames();
  /// Fires kDeadlineExceeded for every pending entry whose client
  /// deadline has passed.
  void ExpireDeadlines(std::chrono::steady_clock::time_point now);
  /// Marks the connection broken and extracts all pending entries, both
  /// under mu_ (so a concurrent Detect() either sees broken_ or has its
  /// entry taken — never orphaned).
  std::map<uint64_t, Pending> BreakAndTakeAll();

  const int fd_;
  const int wakeup_fd_;

  mutable Mutex mu_;
  std::map<uint64_t, Pending> pending_;  // guarded by mu_
  uint64_t next_id_ = 1;                 // guarded by mu_

  /// Serializes writes so concurrent Detect() calls cannot interleave
  /// frame bytes.
  Mutex write_mu_;

  std::atomic<bool> broken_{false};
  std::atomic<bool> stop_{false};
  std::thread receiver_;
  std::string rx_;  // receiver thread only
};

/// \brief One blocking HTTP/1.1 request against a local server; returns
/// the raw response (status line + headers + body). `body` non-empty
/// implies a Content-Length header.
Result<std::string> HttpFetch(const std::string& host, uint16_t port,
                              std::string_view method, std::string_view target,
                              std::string_view body = {});

}  // namespace unidetect
