#include "server/coalescer.h"

#include <utility>
#include <vector>

namespace unidetect {

namespace {

wire::DetectResponse MakeError(uint64_t request_id, wire::WireCode code,
                               std::string message) {
  wire::DetectResponse response;
  response.request_id = request_id;
  response.code = code;
  response.error = std::move(message);
  return response;
}

}  // namespace

RequestCoalescer::RequestCoalescer(DetectionService* service,
                                   MetricsRegistry* metrics,
                                   CoalescerOptions options)
    : service_(service), metrics_(metrics), options_(options) {}

RequestCoalescer::~RequestCoalescer() { Stop(/*drain=*/true); }

void RequestCoalescer::Start() {
  worker_ = std::thread([this] { WorkerLoop(); });
}

RequestCoalescer::Admission RequestCoalescer::Submit(
    wire::DetectRequest request, ResponseCallback done) {
  const auto now = std::chrono::steady_clock::now();
  Pending pending;
  pending.options_key = wire::RequestOptionsKey(request.options);
  pending.admitted_at = now;
  pending.deadline = request.deadline_ms == 0
                         ? std::chrono::steady_clock::time_point::max()
                         : now + std::chrono::milliseconds(request.deadline_ms);
  const uint64_t request_id = request.request_id;
  pending.request = std::move(request);
  pending.done = std::move(done);

  Admission admission = Admission::kAdmitted;
  {
    MutexLock lock(&mu_);
    if (draining_) {
      metrics_->Add(ServerMetric::kShedDraining);
      admission = Admission::kDraining;
    } else if (queue_.size() >= options_.queue_capacity) {
      metrics_->Add(ServerMetric::kShedOverload);
      admission = Admission::kOverloaded;
    } else {
      queue_.push_back(std::move(pending));
      metrics_->set_queue_depth(queue_.size());
    }
  }
  // Refusal callbacks fire after mu_ is released so a callback that
  // re-enters the coalescer (Submit, queue_depth) cannot self-deadlock.
  if (admission == Admission::kDraining) {
    pending.done(MakeError(request_id, wire::WireCode::kUnavailable,
                           "server is draining"));
    return admission;
  }
  if (admission == Admission::kOverloaded) {
    pending.done(MakeError(request_id, wire::WireCode::kOverloaded,
                           "admission queue full"));
    return admission;
  }
  metrics_->Add(ServerMetric::kAdmitted);
  cv_.NotifyOne();
  return Admission::kAdmitted;
}

void RequestCoalescer::Stop(bool drain) {
  {
    MutexLock lock(&mu_);
    if (stop_ && draining_) {
      // Already stopping; keep the stronger (draining) semantics that
      // were requested first.
    } else {
      draining_ = true;
      stop_ = true;
      drain_on_stop_ = drain;
    }
  }
  cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();

  // Fail anything the worker left behind (drain=false path).
  std::deque<Pending> leftover;
  {
    MutexLock lock(&mu_);
    leftover.swap(queue_);
    metrics_->set_queue_depth(0);
  }
  for (Pending& pending : leftover) {
    metrics_->Add(ServerMetric::kShedDraining);
    pending.done(MakeError(pending.request.request_id,
                           wire::WireCode::kUnavailable,
                           "server shut down before serving this request"));
  }
}

size_t RequestCoalescer::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void RequestCoalescer::WorkerLoop() {
  for (;;) {
    std::vector<Pending> group;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stop_) cv_.Wait(mu_);
      if (queue_.empty()) break;  // stop_ with nothing left
      if (stop_ && !drain_on_stop_) break;  // Stop() fails the leftovers

      // Pick up the head, then gather the contiguous run that shares
      // its options key, up to the table budget.
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      size_t batch_tables = group.front().request.tables.size();
      // Copy, not reference: group.push_back below can reallocate the
      // vector and move its front, which would dangle a reference here.
      const std::string key = group.front().options_key;
      const bool coalesce =
          options_.coalesce && options_.max_batch_delay.count() > 0;
      auto cutoff =
          std::chrono::steady_clock::now() + options_.max_batch_delay;
      while (coalesce && batch_tables < options_.max_batch_tables) {
        if (queue_.empty()) {
          if (stop_) break;
          const auto now = std::chrono::steady_clock::now();
          if (now >= cutoff) break;
          cv_.WaitFor(mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                               cutoff - now) +
                               std::chrono::milliseconds(1));
          continue;
        }
        Pending& head = queue_.front();
        if (head.options_key != key) break;
        if (batch_tables + head.request.tables.size() >
            options_.max_batch_tables) {
          break;
        }
        batch_tables += head.request.tables.size();
        group.push_back(std::move(head));
        queue_.pop_front();
      }
      metrics_->set_queue_depth(queue_.size());
    }
    ServeGroup(std::move(group));
  }
}

void RequestCoalescer::ServeGroup(std::vector<Pending> group) {
  const auto dequeued_at = std::chrono::steady_clock::now();

  // Deadline enforcement happens here — at dequeue — so an expired
  // request never spends detector time. Expired members fall out of the
  // batch; survivors proceed.
  std::vector<Pending> live;
  live.reserve(group.size());
  for (Pending& pending : group) {
    metrics_->queue_latency().Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            dequeued_at - pending.admitted_at)
            .count());
    if (dequeued_at > pending.deadline) {
      metrics_->Add(ServerMetric::kExpiredDeadline);
      metrics_->Add(ServerMetric::kResponsesError);
      pending.done(MakeError(pending.request.request_id,
                             wire::WireCode::kDeadlineExceeded,
                             "deadline passed before the batch was cut"));
      continue;
    }
    live.push_back(std::move(pending));
  }
  if (live.empty()) return;

  // One flat table span; every member shares the options key, so the
  // first member's override serves the whole batch.
  std::vector<Table> tables;
  for (const Pending& pending : live) {
    for (const Table& table : pending.request.tables) {
      tables.push_back(table);
    }
  }
  const UniDetectOptions* override_options = nullptr;
  UniDetectOptions merged;
  if (live.front().request.options.has_override) {
    merged = wire::ApplyRequestOptions(options_.base_options,
                                       live.front().request.options);
    override_options = &merged;
  }

  metrics_->Add(ServerMetric::kBatches);
  metrics_->Add(ServerMetric::kBatchedTables, tables.size());
  if (live.size() > 1) {
    metrics_->Add(ServerMetric::kCoalescedRequests, live.size());
  }

  DetectionService::BatchResult result = service_->DetectBatch(
      tables, override_options, options_.detect_threads);

  // Slice per-table findings back out in request order.
  const auto finished_at = std::chrono::steady_clock::now();
  size_t next_table = 0;
  for (Pending& pending : live) {
    wire::DetectResponse response;
    response.request_id = pending.request.request_id;
    response.code = wire::WireCode::kOk;
    response.generation = result.generation;
    const size_t count = pending.request.tables.size();
    response.per_table.reserve(count);
    // Per-slot findings carry table_index exactly as DetectTable
    // produced them (DetectBatch does not rebase slots), so slicing
    // yields responses byte-identical to a direct per-request call.
    for (size_t i = 0; i < count; ++i) {
      response.per_table.push_back(std::move(result.per_table[next_table++]));
    }
    metrics_->Add(ServerMetric::kResponsesOk);
    metrics_->request_latency().Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            finished_at - pending.admitted_at)
            .count());
    pending.done(std::move(response));
  }
}

}  // namespace unidetect
