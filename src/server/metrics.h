// The serving front end's metrics surface: a fixed, enum-indexed
// counter array plus power-of-two latency histograms, exported as the
// /statz JSON document and by tools/udserve.
//
// The counter set follows the vcpkg metrics idiom: one enum whose last
// entry is COUNT, one constexpr entry array in exactly enum order, and
// a validation test (tests/server_metrics_test.cc) that fails the build
// when an entry is added to one side but not the other, duplicated, or
// reordered. Adding a counter is therefore a two-line change that the
// test suite cross-checks — no stringly-typed registry, no hashing on
// the hot path: a counter bump is one relaxed atomic add.
//
// Latency histograms share util/latency_histogram.h with
// DetectionService, so /statz percentiles (p50/p99/p999) mean the same
// thing at every layer: upper bounds read off power-of-two bucket
// edges. QPS is derived from a 16-slot one-second ring so the exported
// rate reflects the recent window rather than the lifetime average.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/latency_histogram.h"

namespace unidetect {

/// \brief Every counter the network front end maintains. COUNT must stay
/// the last entry (the entry-array size and the registry storage are
/// sized from it).
enum class ServerMetric : size_t {
  kConnectionsAccepted = 0,  ///< accept() successes.
  kConnectionsRejected,      ///< accepts shed by the connection cap.
  kConnectionsClosed,        ///< closes, both peer-initiated and ours.
  kAcceptHandoffs,           ///< accepted fds posted to a non-accepting shard.
  kBytesRead,                ///< bytes read off sockets.
  kBytesWritten,             ///< bytes flushed to sockets.
  kRequests,                 ///< well-formed detect requests (both protocols).
  kHttpRequests,             ///< well-formed HTTP requests (all routes).
  kProtocolErrors,           ///< malformed frames / HTTP -> typed error.
  kAdmitted,                 ///< requests accepted into the batch queue.
  kShedOverload,             ///< requests refused with Overloaded (queue full).
  kShedConnectionCap,        ///< requests over the per-connection in-flight cap.
  kExpiredDeadline,          ///< requests whose deadline passed at dequeue.
  kShedDraining,             ///< requests refused because the server is draining.
  kBatches,                  ///< DetectBatch calls issued by the coalescer.
  kBatchedTables,            ///< tables scanned across all batches.
  kCoalescedRequests,        ///< requests that shared a batch with another.
  kResponsesOk,              ///< responses carrying findings.
  kResponsesError,           ///< responses carrying a typed error.
  COUNT,
};

/// \brief One row of the metric table: the enum value and its wire name
/// (the /statz JSON key).
struct ServerMetricEntry {
  ServerMetric metric;
  std::string_view name;
};

/// Entry table in exactly enum order; tests/server_metrics_test.cc
/// enforces order, completeness and name uniqueness (snippet-2 idiom).
inline constexpr std::array<ServerMetricEntry,
                            static_cast<size_t>(ServerMetric::COUNT)>
    kServerMetricEntries = {{
        {ServerMetric::kConnectionsAccepted, "connections_accepted"},
        {ServerMetric::kConnectionsRejected, "connections_rejected"},
        {ServerMetric::kConnectionsClosed, "connections_closed"},
        {ServerMetric::kAcceptHandoffs, "accept_handoffs"},
        {ServerMetric::kBytesRead, "bytes_read"},
        {ServerMetric::kBytesWritten, "bytes_written"},
        {ServerMetric::kRequests, "requests"},
        {ServerMetric::kHttpRequests, "http_requests"},
        {ServerMetric::kProtocolErrors, "protocol_errors"},
        {ServerMetric::kAdmitted, "admitted"},
        {ServerMetric::kShedOverload, "shed_overload"},
        {ServerMetric::kShedConnectionCap, "shed_connection_cap"},
        {ServerMetric::kExpiredDeadline, "expired_deadline"},
        {ServerMetric::kShedDraining, "shed_draining"},
        {ServerMetric::kBatches, "batches"},
        {ServerMetric::kBatchedTables, "batched_tables"},
        {ServerMetric::kCoalescedRequests, "coalesced_requests"},
        {ServerMetric::kResponsesOk, "responses_ok"},
        {ServerMetric::kResponsesError, "responses_error"},
    }};

/// \brief Name of one metric (the /statz key).
std::string_view ServerMetricName(ServerMetric metric);

/// \brief Lock-free concurrent latency histogram (power-of-two buckets,
/// relaxed atomics — counters, not synchronization).
class LatencyHistogram {
 public:
  void Observe(int64_t micros) {
    buckets_[LatencyBucketIndex(micros)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(static_cast<uint64_t>(micros < 0 ? 0 : micros),
                      std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Total of all observed samples in microseconds (the Prometheus
  /// `_sum` series; /statz keeps reporting bucket percentiles only).
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }

  /// \brief Plain-array copy for percentile math and export.
  LatencyBuckets Snapshot() const {
    LatencyBuckets out;
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<uint64_t>, kLatencyHistogramBuckets> buckets_ = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// \brief The registry: enum-indexed counters, request/batch latency
/// histograms, a queue-depth gauge, and a one-second ring for recent
/// QPS. Every member is wait-free on the write path; readers take
/// relaxed snapshots (exact totals, approximate cross-counter skew —
/// the /statz contract is per-counter monotonicity, not a global cut).
class MetricsRegistry {
 public:
  MetricsRegistry();

  void Add(ServerMetric metric, uint64_t delta = 1) {
    counters_[static_cast<size_t>(metric)].fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Count(ServerMetric metric) const {
    return counters_[static_cast<size_t>(metric)].load(
        std::memory_order_relaxed);
  }

  /// End-to-end request latency (admission -> response encoded).
  LatencyHistogram& request_latency() { return request_latency_; }
  const LatencyHistogram& request_latency() const { return request_latency_; }
  /// Time a request spent queued before its batch was cut.
  LatencyHistogram& queue_latency() { return queue_latency_; }
  const LatencyHistogram& queue_latency() const { return queue_latency_; }

  void set_queue_depth(uint64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }
  uint64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// \brief Marks one served request at `now` for the QPS window.
  void MarkRequest(std::chrono::steady_clock::time_point now);

  /// \brief Requests per second over the trailing window (~15s),
  /// excluding the in-progress second.
  double RecentQps(std::chrono::steady_clock::time_point now) const;

  double uptime_seconds(std::chrono::steady_clock::time_point now) const {
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  static constexpr size_t kQpsSlots = 16;

  std::array<std::atomic<uint64_t>, static_cast<size_t>(ServerMetric::COUNT)>
      counters_ = {};
  LatencyHistogram request_latency_;
  LatencyHistogram queue_latency_;
  std::atomic<uint64_t> queue_depth_{0};

  // One slot per wall second (slot = second % kQpsSlots). A writer that
  // moves the ring into a new second publishes the second in slot_sec_
  // and zeroes the slot count; readers discard slots whose stamped
  // second is outside the window.
  std::chrono::steady_clock::time_point start_;
  mutable std::array<std::atomic<uint64_t>, kQpsSlots> qps_counts_ = {};
  mutable std::array<std::atomic<uint64_t>, kQpsSlots> qps_seconds_ = {};
};

/// \brief Appends one Prometheus text-format metric line:
/// `name{labels} value\n` (labels may be empty: `name value\n`).
void AppendPrometheusLine(std::string_view name, std::string_view labels,
                          uint64_t value, std::string* out);

/// \brief Appends a full Prometheus histogram exposition for `histogram`
/// under `name`: a `# TYPE name histogram` header, cumulative
/// `name_bucket{le="..."}` lines over the power-of-two edges (collapsed
/// to the occupied prefix plus `+Inf`), and `name_sum` / `name_count`.
void AppendPrometheusHistogram(std::string_view name,
                               const LatencyHistogram& histogram,
                               std::string* out);

}  // namespace unidetect
