#include "server/wire.h"

#include <cmath>
#include <utility>

#include "util/binary_io.h"
#include "util/checked.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {
namespace wire {

namespace {

constexpr uint8_t kFlagHasOverride = 0x1;
// A deadline is relative and short-lived by design; anything past an
// hour is a corrupt or hostile value, not a real serving deadline.
constexpr uint32_t kMaxDeadlineMs = 60u * 60u * 1000u;

std::string FinishFrame(FrameType type, std::string_view payload) {
  UNIDETECT_CHECK(payload.size() <= kAbsoluteMaxPayload);
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kMagic);
  AppendU8(&frame, static_cast<uint8_t>(type));
  AppendU8(&frame, 0);
  AppendU16(&frame, 0);
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

void AppendTable(std::string* out, const Table& table) {
  AppendLengthPrefixed(out, table.name());
  AppendU32(out, static_cast<uint32_t>(table.num_columns()));
  AppendU64(out, table.num_rows());
  for (const Column& column : table.columns()) {
    AppendLengthPrefixed(out, column.name());
    for (const std::string& cell : column.cells()) {
      AppendLengthPrefixed(out, cell);
    }
  }
}

Status DecodeTableInto(BinaryReader& reader, Table* out) {
  std::string_view name;
  if (!reader.ReadLengthPrefixed(&name)) {
    return Status::Corruption("UDWIRE request: truncated table name");
  }
  Table table{std::string(name)};
  uint32_t num_columns = 0;
  uint64_t num_rows = 0;
  if (!reader.ReadU32(&num_columns) || !reader.ReadU64(&num_rows)) {
    return Status::Corruption("UDWIRE request: truncated table shape");
  }
  // Every encoded cell costs at least its 4-byte length prefix, so a
  // row count the remaining bytes cannot possibly satisfy is hostile —
  // reject it before any loop or allocation sees it.
  if (num_rows > reader.remaining() / 4) {
    return Status::Corruption(
        StrCat("UDWIRE request: row count ", num_rows,
               " exceeds what ", reader.remaining(), " bytes can encode"));
  }
  if (num_columns > reader.remaining() / 4) {
    return Status::Corruption(
        StrCat("UDWIRE request: column count ", num_columns,
               " exceeds what ", reader.remaining(), " bytes can encode"));
  }
  UNIDETECT_ASSIGN_OR_RETURN(const size_t rows,
                             CheckedCast<size_t>(num_rows, "table rows"));
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string_view column_name;
    if (!reader.ReadLengthPrefixed(&column_name)) {
      return Status::Corruption("UDWIRE request: truncated column name");
    }
    std::vector<std::string> cells;
    for (size_t r = 0; r < rows; ++r) {
      std::string_view cell;
      if (!reader.ReadLengthPrefixed(&cell)) {
        return Status::Corruption("UDWIRE request: truncated cell");
      }
      cells.emplace_back(cell);
    }
    UNIDETECT_RETURN_NOT_OK(
        table.AddColumn(Column(std::string(column_name), std::move(cells))));
  }
  *out = std::move(table);
  return Status::OK();
}

void AppendFinding(std::string* out, const Finding& finding) {
  AppendU8(out, static_cast<uint8_t>(finding.error_class));
  AppendLengthPrefixed(out, finding.table_name);
  AppendU64(out, finding.table_index);
  AppendU64(out, finding.column);
  AppendU64(out, finding.column2);
  AppendU32(out, static_cast<uint32_t>(finding.rows.size()));
  for (const size_t row : finding.rows) AppendU64(out, row);
  AppendLengthPrefixed(out, finding.value);
  AppendF64(out, finding.score);
  AppendLengthPrefixed(out, finding.explanation);
}

Status DecodeFindingInto(BinaryReader& reader, Finding* out) {
  uint8_t error_class = 0;
  if (!reader.ReadU8(&error_class)) {
    return Status::Corruption("UDWIRE response: truncated finding");
  }
  if (error_class >= static_cast<uint8_t>(kNumErrorClasses)) {
    return Status::Corruption(
        StrCat("UDWIRE response: unknown error class ", error_class));
  }
  Finding finding;
  finding.error_class = static_cast<ErrorClass>(error_class);
  std::string_view table_name;
  uint64_t table_index = 0;
  uint64_t column = 0;
  uint64_t column2 = 0;
  uint32_t row_count = 0;
  if (!reader.ReadLengthPrefixed(&table_name) ||
      !reader.ReadU64(&table_index) || !reader.ReadU64(&column) ||
      !reader.ReadU64(&column2) || !reader.ReadU32(&row_count)) {
    return Status::Corruption("UDWIRE response: truncated finding fields");
  }
  finding.table_name.assign(table_name);
  UNIDETECT_ASSIGN_OR_RETURN(
      finding.table_index, CheckedCast<size_t>(table_index, "table index"));
  UNIDETECT_ASSIGN_OR_RETURN(finding.column,
                             CheckedCast<size_t>(column, "finding column"));
  UNIDETECT_ASSIGN_OR_RETURN(finding.column2,
                             CheckedCast<size_t>(column2, "finding column2"));
  if (row_count > reader.remaining() / 8) {
    return Status::Corruption(
        StrCat("UDWIRE response: row count ", row_count,
               " exceeds what ", reader.remaining(), " bytes can encode"));
  }
  for (uint32_t r = 0; r < row_count; ++r) {
    uint64_t row = 0;
    if (!reader.ReadU64(&row)) {
      return Status::Corruption("UDWIRE response: truncated finding rows");
    }
    UNIDETECT_ASSIGN_OR_RETURN(const size_t row_index,
                               CheckedCast<size_t>(row, "finding row"));
    finding.rows.push_back(row_index);
  }
  std::string_view value;
  std::string_view explanation;
  if (!reader.ReadLengthPrefixed(&value) || !reader.ReadF64(&finding.score) ||
      !reader.ReadLengthPrefixed(&explanation)) {
    return Status::Corruption("UDWIRE response: truncated finding tail");
  }
  finding.value.assign(value);
  finding.explanation.assign(explanation);
  *out = std::move(finding);
  return Status::OK();
}

std::string EncodeResponsePayload(const DetectResponse& response) {
  std::string payload;
  AppendU64(&payload, response.request_id);
  AppendU8(&payload, static_cast<uint8_t>(response.code));
  if (response.code != WireCode::kOk) {
    AppendLengthPrefixed(&payload, response.error);
    return payload;
  }
  AppendU64(&payload, response.generation);
  AppendU32(&payload, static_cast<uint32_t>(response.per_table.size()));
  for (const std::vector<Finding>& findings : response.per_table) {
    AppendU32(&payload, static_cast<uint32_t>(findings.size()));
    for (const Finding& finding : findings) AppendFinding(&payload, finding);
  }
  return payload;
}

}  // namespace

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "Ok";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kMalformed:
      return "Malformed";
    case WireCode::kOverloaded:
      return "Overloaded";
    case WireCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireCode::kUnavailable:
      return "Unavailable";
    case WireCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

UniDetectOptions ApplyRequestOptions(const UniDetectOptions& base,
                                     const RequestOptions& options) {
  UniDetectOptions out = base;
  if (!options.has_override) return out;
  out.alpha = options.alpha;
  out.fdr_q = options.fdr_q;
  out.use_dictionary = options.use_dictionary;
  for (int c = 0; c < kNumErrorClasses; ++c) {
    out.detect[static_cast<size_t>(c)] = ((options.detect_mask >> c) & 1) != 0;
  }
  return out;
}

std::string RequestOptionsKey(const RequestOptions& options) {
  // Empty key = "serve with the defaults"; any override gets the full
  // canonical encoding so requests batch together iff they would run
  // under identical options.
  std::string key;
  if (!options.has_override) return key;
  AppendF64(&key, options.alpha);
  AppendF64(&key, options.fdr_q);
  AppendU8(&key, options.detect_mask);
  AppendU8(&key, options.use_dictionary ? 1 : 0);
  return key;
}

Result<std::optional<FrameView>> TryParseFrame(std::string_view buffer,
                                               uint32_t max_payload) {
  // Reject a wrong protocol from the very first bytes: a buffer that
  // does not extend the magic can never become a UDWIRE frame, and the
  // server uses exactly this to fall back to the HTTP adapter.
  const size_t prefix = std::min(buffer.size(), kMagic.size());
  if (buffer.substr(0, prefix) != kMagic.substr(0, prefix)) {
    return Status::InvalidArgument("not a UDWIRE frame (bad magic)");
  }
  if (buffer.size() < kHeaderBytes) return std::optional<FrameView>();
  BinaryReader reader(buffer);
  std::string_view magic;
  uint8_t type = 0;
  uint8_t reserved8 = 0;
  uint16_t reserved16 = 0;
  uint32_t payload_len = 0;
  if (!reader.ReadBytes(kMagic.size(), &magic) || !reader.ReadU8(&type) ||
      !reader.ReadU8(&reserved8) || !reader.ReadU16(&reserved16) ||
      !reader.ReadU32(&payload_len)) {
    return Status::Corruption("UDWIRE: unreadable frame header");
  }
  if (type != static_cast<uint8_t>(FrameType::kDetectRequest) &&
      type != static_cast<uint8_t>(FrameType::kDetectResponse)) {
    return Status::Corruption(StrCat("UDWIRE: unknown frame type ", type));
  }
  if (reserved8 != 0 || reserved16 != 0) {
    return Status::Corruption("UDWIRE: nonzero reserved header bytes");
  }
  const uint32_t bound = std::min(max_payload, kAbsoluteMaxPayload);
  if (payload_len > bound) {
    return Status::Corruption(StrCat("UDWIRE: payload of ", payload_len,
                                     " bytes exceeds the limit of ", bound));
  }
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t total,
      CheckedAdd<uint64_t>(kHeaderBytes, payload_len, "frame size"));
  if (buffer.size() < total) return std::optional<FrameView>();
  FrameView view;
  view.type = static_cast<FrameType>(type);
  view.payload = buffer.substr(kHeaderBytes, payload_len);
  UNIDETECT_ASSIGN_OR_RETURN(view.frame_bytes,
                             CheckedCast<size_t>(total, "frame size"));
  return std::optional<FrameView>(view);
}

std::string EncodeDetectRequest(const DetectRequest& request) {
  std::string payload;
  AppendU64(&payload, request.request_id);
  AppendU32(&payload, request.deadline_ms);
  AppendU8(&payload, request.options.has_override ? kFlagHasOverride : 0);
  if (request.options.has_override) {
    AppendF64(&payload, request.options.alpha);
    AppendF64(&payload, request.options.fdr_q);
    AppendU8(&payload, request.options.detect_mask);
    AppendU8(&payload, request.options.use_dictionary ? 1 : 0);
  }
  AppendU32(&payload, static_cast<uint32_t>(request.tables.size()));
  for (const Table& table : request.tables) AppendTable(&payload, table);
  return FinishFrame(FrameType::kDetectRequest, payload);
}

Result<DetectRequest> DecodeDetectRequestPayload(std::string_view payload) {
  BinaryReader reader(payload);
  DetectRequest request;
  uint8_t flags = 0;
  if (!reader.ReadU64(&request.request_id) ||
      !reader.ReadU32(&request.deadline_ms) || !reader.ReadU8(&flags)) {
    return Status::Corruption("UDWIRE request: truncated preamble");
  }
  if (request.deadline_ms > kMaxDeadlineMs) {
    return Status::Corruption(StrCat("UDWIRE request: deadline of ",
                                     request.deadline_ms,
                                     "ms exceeds the one-hour bound"));
  }
  if ((flags & static_cast<uint8_t>(~kFlagHasOverride)) != 0) {
    return Status::Corruption(
        StrCat("UDWIRE request: unknown flag bits ", flags));
  }
  if ((flags & kFlagHasOverride) != 0) {
    request.options.has_override = true;
    uint8_t detect_mask = 0;
    uint8_t use_dictionary = 0;
    if (!reader.ReadF64(&request.options.alpha) ||
        !reader.ReadF64(&request.options.fdr_q) ||
        !reader.ReadU8(&detect_mask) || !reader.ReadU8(&use_dictionary)) {
      return Status::Corruption("UDWIRE request: truncated option override");
    }
    if (!std::isfinite(request.options.alpha) ||
        !std::isfinite(request.options.fdr_q)) {
      return Status::Corruption(
          "UDWIRE request: non-finite alpha or fdr_q override");
    }
    if ((detect_mask >> kNumErrorClasses) != 0) {
      return Status::Corruption(
          StrCat("UDWIRE request: detect mask ", detect_mask,
                 " names undefined error classes"));
    }
    if (use_dictionary > 1) {
      return Status::Corruption("UDWIRE request: non-boolean use_dictionary");
    }
    request.options.detect_mask = detect_mask;
    request.options.use_dictionary = use_dictionary == 1;
  }
  uint32_t table_count = 0;
  if (!reader.ReadU32(&table_count)) {
    return Status::Corruption("UDWIRE request: truncated table count");
  }
  if (table_count > kMaxTablesPerRequest) {
    return Status::Corruption(StrCat("UDWIRE request: ", table_count,
                                     " tables exceeds the per-request cap of ",
                                     kMaxTablesPerRequest));
  }
  for (uint32_t i = 0; i < table_count; ++i) {
    Table table;
    UNIDETECT_RETURN_NOT_OK(DecodeTableInto(reader, &table));
    request.tables.push_back(std::move(table));
  }
  if (!reader.empty()) {
    return Status::Corruption(StrCat("UDWIRE request: ", reader.remaining(),
                                     " trailing bytes after the last table"));
  }
  return request;
}

std::string EncodeDetectResponse(const DetectResponse& response) {
  return FinishFrame(FrameType::kDetectResponse,
                     EncodeResponsePayload(response));
}

Result<DetectResponse> DecodeDetectResponsePayload(std::string_view payload) {
  BinaryReader reader(payload);
  DetectResponse response;
  uint8_t code = 0;
  if (!reader.ReadU64(&response.request_id) || !reader.ReadU8(&code)) {
    return Status::Corruption("UDWIRE response: truncated preamble");
  }
  if (code > static_cast<uint8_t>(WireCode::kInternal)) {
    return Status::Corruption(
        StrCat("UDWIRE response: unknown code ", code));
  }
  response.code = static_cast<WireCode>(code);
  if (response.code != WireCode::kOk) {
    std::string_view message;
    if (!reader.ReadLengthPrefixed(&message)) {
      return Status::Corruption("UDWIRE response: truncated error message");
    }
    response.error.assign(message);
    if (!reader.empty()) {
      return Status::Corruption(
          "UDWIRE response: trailing bytes after error message");
    }
    return response;
  }
  uint32_t table_count = 0;
  if (!reader.ReadU64(&response.generation) || !reader.ReadU32(&table_count)) {
    return Status::Corruption("UDWIRE response: truncated findings header");
  }
  if (table_count > kMaxTablesPerRequest) {
    return Status::Corruption(StrCat("UDWIRE response: ", table_count,
                                     " tables exceeds the per-request cap of ",
                                     kMaxTablesPerRequest));
  }
  for (uint32_t i = 0; i < table_count; ++i) {
    uint32_t finding_count = 0;
    if (!reader.ReadU32(&finding_count)) {
      return Status::Corruption("UDWIRE response: truncated finding count");
    }
    // The smallest encodable finding is well over 8 bytes; the bound
    // rejects hostile counts before the decode loop starts.
    if (finding_count > reader.remaining() / 8) {
      return Status::Corruption(
          StrCat("UDWIRE response: finding count ", finding_count,
                 " exceeds what ", reader.remaining(), " bytes can encode"));
    }
    std::vector<Finding> findings;
    for (uint32_t f = 0; f < finding_count; ++f) {
      Finding finding;
      UNIDETECT_RETURN_NOT_OK(DecodeFindingInto(reader, &finding));
      findings.push_back(std::move(finding));
    }
    response.per_table.push_back(std::move(findings));
  }
  if (!reader.empty()) {
    return Status::Corruption(
        StrCat("UDWIRE response: ", reader.remaining(),
               " trailing bytes after the last finding"));
  }
  return response;
}

std::string EncodeErrorResponseFrame(uint64_t request_id, WireCode code,
                                     std::string_view message) {
  UNIDETECT_CHECK(code != WireCode::kOk);
  DetectResponse response;
  response.request_id = request_id;
  response.code = code;
  response.error.assign(message);
  return EncodeDetectResponse(response);
}

std::string EncodeOkResponseFrame(
    uint64_t request_id, uint64_t generation,
    const std::vector<std::vector<Finding>>& per_table) {
  std::string payload;
  AppendU64(&payload, request_id);
  AppendU8(&payload, static_cast<uint8_t>(WireCode::kOk));
  AppendU64(&payload, generation);
  AppendU32(&payload, static_cast<uint32_t>(per_table.size()));
  for (const std::vector<Finding>& findings : per_table) {
    AppendU32(&payload, static_cast<uint32_t>(findings.size()));
    for (const Finding& finding : findings) AppendFinding(&payload, finding);
  }
  return FinishFrame(FrameType::kDetectResponse, payload);
}

}  // namespace wire
}  // namespace unidetect
