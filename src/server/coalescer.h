// RequestCoalescer: the admission-control and batching stage between
// the network front end and DetectionService (DESIGN.md §16).
//
// Connections Submit() decoded detect requests into a bounded FIFO.
// Admission is all-or-nothing at the queue: when the queue is at
// capacity the request is refused immediately with kOverloaded (a typed
// response the client sees, never a silent drop), and once Stop() has
// begun draining new requests are refused with kDraining. A single
// worker thread dequeues, enforces each request's relative deadline at
// dequeue time (a request that waited past its budget gets
// kDeadlineExceeded without burning a detector slot), and cuts batches:
// contiguous queued requests with the same option-override key are
// merged into one DetectBatch call until the batch holds
// max_batch_tables tables or max_batch_delay has elapsed since the
// first request was picked up. Merging only contiguous same-key runs
// keeps completion FIFO per connection and makes batching invisible to
// clients — per-request responses are sliced back out of the batch in
// request order, byte-identical to a direct DetectBatch call
// (tests/server_integration_test.cc pins this).
//
// Reload/ApplyDelta need no coordination here: DetectBatch pins the
// engine snapshot it starts with, so an in-flight batch finishes on the
// model it began on while the swap proceeds. Stop(drain=true) serves
// everything already admitted before returning; Stop(drain=false)
// fails queued requests fast with kUnavailable.

#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>

#include "server/metrics.h"
#include "server/wire.h"
#include "serving/detection_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace unidetect {

struct CoalescerOptions {
  /// Admission queue bound, in requests. Submissions beyond this are
  /// refused with kOverloaded.
  size_t queue_capacity = 256;
  /// A batch is cut once it holds this many tables (requests are never
  /// split, so one oversized request still forms its own batch).
  size_t max_batch_tables = 64;
  /// How long the worker lingers for more same-key requests after
  /// picking up the first one. 0 — or coalesce=false — disables the
  /// wait entirely.
  std::chrono::microseconds max_batch_delay{500};
  /// Threads handed to DetectBatch (0 = hardware concurrency).
  size_t detect_threads = 1;
  /// Master switch: false serves every request as its own batch
  /// (the bench's comparison baseline).
  bool coalesce = true;
  /// The serving defaults that per-request overrides are applied over
  /// (mirror the options the DetectionService was built with so an
  /// override changes only the fields it names).
  UniDetectOptions base_options{};
};

class RequestCoalescer {
 public:
  /// \brief How Submit() disposed of a request.
  enum class Admission {
    kAdmitted,    ///< queued; the callback will fire exactly once
    kOverloaded,  ///< refused, queue full — callback already fired
    kDraining,    ///< refused, Stop() has begun — callback already fired
  };

  /// Invoked exactly once per submitted request, from the worker thread
  /// (or inline from Submit() on refusal). Always fires with the
  /// coalescer's internal lock released, so re-entering the coalescer
  /// is safe. May be called concurrently with other callbacks'
  /// completions; must not block.
  using ResponseCallback = std::function<void(wire::DetectResponse)>;

  /// `service` and `metrics` must outlive the coalescer.
  RequestCoalescer(DetectionService* service, MetricsRegistry* metrics,
                   CoalescerOptions options);
  ~RequestCoalescer();

  RequestCoalescer(const RequestCoalescer&) = delete;
  RequestCoalescer& operator=(const RequestCoalescer&) = delete;

  /// \brief Starts the worker thread. Call once before Submit().
  void Start();

  /// \brief Admits `request` or refuses it with a typed response.
  /// On refusal the callback fires inline (with kOverloaded /
  /// kUnavailable) before Submit returns.
  Admission Submit(wire::DetectRequest request, ResponseCallback done)
      EXCLUDES(mu_);

  /// \brief Stops the worker. With drain=true every already-admitted
  /// request is served first; with drain=false queued requests fail
  /// fast with kUnavailable. Idempotent; Submit() after Stop() refuses
  /// with kDraining.
  void Stop(bool drain) EXCLUDES(mu_);

  size_t queue_depth() const EXCLUDES(mu_);

 private:
  struct Pending {
    wire::DetectRequest request;
    ResponseCallback done;
    std::string options_key;
    std::chrono::steady_clock::time_point admitted_at;
    /// admitted_at + deadline_ms; time_point::max() when no deadline.
    std::chrono::steady_clock::time_point deadline;
  };

  void WorkerLoop() EXCLUDES(mu_);
  /// Serves `group` (same options key, in admission order) as one
  /// DetectBatch call and completes every member.
  void ServeGroup(std::vector<Pending> group);

  DetectionService* const service_;
  MetricsRegistry* const metrics_;
  const CoalescerOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Pending> queue_ GUARDED_BY(mu_);
  bool draining_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  bool drain_on_stop_ GUARDED_BY(mu_) = true;

  std::thread worker_;
};

}  // namespace unidetect
