// EventLoop: the single-threaded epoll reactor under the network front
// end (DESIGN.md §16). One thread owns every registered fd; readiness
// callbacks run on that thread, so connection state needs no locking.
// Other threads talk to the loop only through Post(), which enqueues a
// closure and kicks an eventfd so a parked epoll_wait wakes immediately
// — that is how coalescer worker threads hand finished responses back
// to the IO thread.
//
// Add/Modify/Remove are safe from any thread: called on the loop
// thread (or before Run()) they apply immediately; called from another
// thread while the loop runs they are routed through Post() and apply
// on the loop thread, in post order. The sharded server leans on this
// for accept handoff — shard 0 accepts a fd and posts its registration
// to the owning shard's loop, so the callback map stays loop-thread-
// confined either way. An off-thread registration against a loop that
// stops before the post runs is dropped with the rest of the post
// queue; the fd simply never fires (callers own their fds and close
// them regardless).
//
// The loop is deliberately minimal: level-triggered epoll, no timer
// wheel (the coalescer owns its own latency budget), no fd ownership
// (callers register, unregister and close their own fds). Everything
// here is Linux-only, like the mmap snapshot path.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace unidetect {

class EventLoop {
 public:
  /// Readiness callback; `events` is the epoll event mask (EPOLLIN /
  /// EPOLLOUT / EPOLLHUP / EPOLLERR bits).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief False when construction failed (epoll/eventfd unavailable);
  /// status() carries the reason.
  bool ok() const { return init_status_.ok(); }
  const Status& status() const { return init_status_; }

  /// \brief Registers `fd` for `events`; the callback runs on the loop
  /// thread whenever the fd is ready. Callable from any thread: off the
  /// loop thread while Run() is executing, the registration is posted
  /// and applied on the loop thread (a rare epoll failure there is
  /// logged, not returned — the fd never fires).
  Status Add(int fd, uint32_t events, FdCallback callback);

  /// \brief Changes the interest mask of a registered fd. Same
  /// threading contract as Add().
  Status Modify(int fd, uint32_t events);

  /// \brief Unregisters a fd (does not close it). Safe to call from
  /// inside the fd's own callback, and from off-loop threads (posted).
  void Remove(int fd);

  /// \brief True when the calling thread is the one inside Run().
  bool OnLoopThread() const {
    return loop_thread_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// \brief Enqueues `fn` to run on the loop thread and wakes the loop.
  /// Thread-safe; callable before Run() and from callbacks.
  void Post(std::function<void()> fn) EXCLUDES(post_mu_);

  /// \brief Runs the reactor on the calling thread until Stop().
  void Run();

  /// \brief Stops Run() from any thread (idempotent).
  void Stop();

  /// \brief True while Run() is executing.
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void DrainWakeup();
  void RunPosted() EXCLUDES(post_mu_);
  /// True when a mutating call must detour through Post(): the loop is
  /// running and we are not on its thread.
  bool MustPost() const { return running() && !OnLoopThread(); }
  Status AddOnLoop(int fd, uint32_t events, FdCallback callback);
  Status ModifyOnLoop(int fd, uint32_t events);
  void RemoveOnLoop(int fd);

  Status init_status_;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;

  // Callbacks keyed by fd. Only the loop thread touches this map
  // (off-thread Add/Modify/Remove detour through Post); std::map keeps
  // iteration order deterministic.
  std::map<int, FdCallback> callbacks_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_thread_{};

  Mutex post_mu_;
  std::vector<std::function<void()>> posted_ GUARDED_BY(post_mu_);
};

}  // namespace unidetect
