#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace unidetect {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrCat(what, ": ", strerror(errno)));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument(
        StrCat("not an IPv4 literal: '", host, "'"));
  }
  // sockaddr_in -> sockaddr is the BSD socket ABI contract, a trusted
  // in-memory cast, not wire decoding. NOLINTNEXTLINE(unsafe-bytes)
  if (connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    const Status status = Errno("connect");
    close(fd);
    return status;
  }
  return fd;
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

}  // namespace

Result<UdwireClient> UdwireClient::Connect(const std::string& host,
                                           uint16_t port) {
  UNIDETECT_ASSIGN_OR_RETURN(const int fd, ConnectTcp(host, port));
  return UdwireClient(fd);
}

UdwireClient::UdwireClient(UdwireClient&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
  other.fd_ = -1;
}

UdwireClient& UdwireClient::operator=(UdwireClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    rx_ = std::move(other.rx_);
    other.fd_ = -1;
  }
  return *this;
}

UdwireClient::~UdwireClient() {
  if (fd_ >= 0) close(fd_);
}

Status UdwireClient::SendRaw(std::string_view bytes) {
  return WriteAll(fd_, bytes);
}

Result<wire::DetectResponse> UdwireClient::ReadResponse() {
  char buf[64 << 10];
  for (;;) {
    Result<std::optional<wire::FrameView>> parsed =
        wire::TryParseFrame(rx_, wire::kAbsoluteMaxPayload);
    UNIDETECT_RETURN_NOT_OK(parsed.status());
    if (parsed->has_value()) {
      const wire::FrameView frame = **parsed;
      if (frame.type != wire::FrameType::kDetectResponse) {
        return Status::Corruption("UDWIRE client: unexpected frame type");
      }
      Result<wire::DetectResponse> response =
          wire::DecodeDetectResponsePayload(frame.payload);
      rx_.erase(0, frame.frame_bytes);
      return response;
    }
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      rx_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("UDWIRE client: server closed the connection");
    }
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

Result<wire::DetectResponse> UdwireClient::Detect(
    const wire::DetectRequest& request) {
  UNIDETECT_RETURN_NOT_OK(SendRaw(wire::EncodeDetectRequest(request)));
  return ReadResponse();
}

namespace {

wire::DetectResponse TypedClientError(uint64_t request_id, wire::WireCode code,
                                      std::string_view message) {
  wire::DetectResponse response;
  response.request_id = request_id;
  response.code = code;
  response.error = std::string(message);
  return response;
}

}  // namespace

Result<std::unique_ptr<AsyncUdwireClient>> AsyncUdwireClient::Connect(
    const std::string& host, uint16_t port) {
  UNIDETECT_ASSIGN_OR_RETURN(const int fd, ConnectTcp(host, port));
  const int wakeup = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup < 0) {
    const Status status = Errno("eventfd");
    close(fd);
    return status;
  }
  return std::unique_ptr<AsyncUdwireClient>(new AsyncUdwireClient(fd, wakeup));
}

AsyncUdwireClient::AsyncUdwireClient(int fd, int wakeup_fd)
    : fd_(fd), wakeup_fd_(wakeup_fd) {
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

AsyncUdwireClient::~AsyncUdwireClient() {
  stop_.store(true, std::memory_order_release);
  Wake();
  if (receiver_.joinable()) receiver_.join();
  // The receiver failed every outstanding request before exiting.
  close(wakeup_fd_);
  close(fd_);
}

void AsyncUdwireClient::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the poll; nothing to do.
  [[maybe_unused]] const ssize_t ignored =
      write(wakeup_fd_, &one, sizeof(one));
}

uint64_t AsyncUdwireClient::Detect(wire::DetectRequest request, Callback done,
                                   int64_t timeout_ms) {
  uint64_t id = 0;
  bool rejected = false;
  const bool has_deadline = timeout_ms > 0;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    if (broken_.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      rejected = true;
    } else {
      Pending entry;
      entry.done = std::move(done);
      if (has_deadline) {
        entry.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms);
      }
      pending_.emplace(id, std::move(entry));
    }
  }
  if (rejected) {
    done(TypedClientError(id, wire::WireCode::kUnavailable,
                          "async client: connection is broken"));
    return id;
  }

  request.request_id = id;
  const std::string frame = wire::EncodeDetectRequest(request);
  Status sent;
  {
    // Whole-frame writes under one lock: concurrent Detect() calls must
    // not interleave bytes on the stream.
    MutexLock lock(&write_mu_);
    sent = WriteAll(fd_, frame);
  }
  if (!sent.ok()) {
    // The receiver fails everything outstanding (this request
    // included) once it observes broken_.
    broken_.store(true, std::memory_order_release);
    Wake();
  } else if (has_deadline) {
    Wake();  // recompute the poll timeout against the new deadline
  }
  return id;
}

wire::DetectResponse AsyncUdwireClient::DetectSync(wire::DetectRequest request,
                                                   int64_t timeout_ms) {
  struct Slot {
    Mutex mu;
    CondVar cv;
    bool done = false;
    wire::DetectResponse response;
  };
  // shared_ptr: the callback may outlive this stack frame only in the
  // broken-inline path ordering sense; keep it safe unconditionally.
  auto slot = std::make_shared<Slot>();
  Detect(
      std::move(request),
      [slot](wire::DetectResponse response) {
        MutexLock lock(&slot->mu);
        slot->response = std::move(response);
        slot->done = true;
        slot->cv.NotifyAll();
      },
      timeout_ms);
  MutexLock lock(&slot->mu);
  while (!slot->done) slot->cv.Wait(slot->mu);
  return std::move(slot->response);
}

size_t AsyncUdwireClient::pending() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

std::map<uint64_t, AsyncUdwireClient::Pending>
AsyncUdwireClient::BreakAndTakeAll() {
  std::map<uint64_t, Pending> taken;
  MutexLock lock(&mu_);
  broken_.store(true, std::memory_order_release);
  taken.swap(pending_);
  return taken;
}

bool AsyncUdwireClient::DecodeFrames() {
  for (;;) {
    Result<std::optional<wire::FrameView>> parsed =
        wire::TryParseFrame(rx_, wire::kAbsoluteMaxPayload);
    if (!parsed.ok()) return false;  // framing lost; no resync point
    if (!parsed->has_value()) return true;
    const wire::FrameView frame = **parsed;
    if (frame.type != wire::FrameType::kDetectResponse) return false;
    Result<wire::DetectResponse> response =
        wire::DecodeDetectResponsePayload(frame.payload);
    rx_.erase(0, frame.frame_bytes);
    if (!response.ok()) return false;
    // Extraction under mu_ is the exactly-once gate: whichever of
    // {response, deadline, teardown} takes the entry first completes it;
    // the others find nothing.
    std::optional<Pending> entry;
    {
      MutexLock lock(&mu_);
      const auto it = pending_.find(response->request_id);
      if (it != pending_.end()) {
        entry = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (entry.has_value()) {
      entry->done(std::move(response).ValueOrDie());
    }
    // else: a late response for a deadline-expired id — dropped.
  }
}

void AsyncUdwireClient::ExpireDeadlines(
    std::chrono::steady_clock::time_point now) {
  std::vector<std::pair<uint64_t, Pending>> expired;
  {
    MutexLock lock(&mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.deadline.has_value() && *it->second.deadline <= now) {
        expired.emplace_back(it->first, std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [id, entry] : expired) {
    entry.done(TypedClientError(id, wire::WireCode::kDeadlineExceeded,
                                "async client: deadline exceeded"));
  }
}

void AsyncUdwireClient::ReceiverLoop() {
  char buf[64 << 10];
  while (!stop_.load(std::memory_order_acquire) &&
         !broken_.load(std::memory_order_acquire)) {
    // Poll until the nearest client-side deadline (or forever).
    int timeout_ms = -1;
    const auto now = std::chrono::steady_clock::now();
    {
      MutexLock lock(&mu_);
      for (const auto& [id, entry] : pending_) {
        if (!entry.deadline.has_value()) continue;
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(*entry.deadline - now).count();
        const int clamped =
            remaining <= 0 ? 0
                           : static_cast<int>(std::min<int64_t>(
                                 remaining + 1, 60 * 1000));
        if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
      }
    }

    struct pollfd fds[2] = {};
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wakeup_fd_;
    fds[1].events = POLLIN;
    const int n = poll(fds, 2, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed; tear down
    }
    if (fds[1].revents & POLLIN) {
      uint64_t counter = 0;
      while (read(wakeup_fd_, &counter, sizeof(counter)) > 0) {
      }
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t r = read(fd_, buf, sizeof(buf));
      if (r > 0) {
        rx_.append(buf, static_cast<size_t>(r));
        if (!DecodeFrames()) break;  // protocol broken
      } else if (r == 0) {
        break;  // server closed the connection
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        break;  // transport error
      }
    }
    ExpireDeadlines(std::chrono::steady_clock::now());
  }
  // Fail everything still outstanding, exactly once, under the same
  // lock discipline Detect() inserts with.
  std::map<uint64_t, Pending> orphaned = BreakAndTakeAll();
  for (auto& [id, entry] : orphaned) {
    entry.done(TypedClientError(id, wire::WireCode::kUnavailable,
                                "async client: connection closed"));
  }
}

Result<std::string> HttpFetch(const std::string& host, uint16_t port,
                              std::string_view method, std::string_view target,
                              std::string_view body) {
  UNIDETECT_ASSIGN_OR_RETURN(const int fd, ConnectTcp(host, port));
  std::string request = StrCat(method, " ", target,
                               " HTTP/1.1\r\nHost: ", host,
                               "\r\nConnection: close\r\n");
  if (!body.empty()) {
    StrAppend(&request, "Content-Length: ", body.size(), "\r\n");
  }
  request.append("\r\n");
  request.append(body);
  const Status sent = WriteAll(fd, request);
  if (!sent.ok()) {
    close(fd);
    return sent;
  }
  // Connection: close — the response is simply everything until EOF.
  std::string response;
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const Status status = Errno("read");
      close(fd);
      return status;
    }
    break;
  }
  close(fd);
  return response;
}

}  // namespace unidetect
