#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/string_util.h"

namespace unidetect {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrCat(what, ": ", strerror(errno)));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument(
        StrCat("not an IPv4 literal: '", host, "'"));
  }
  // sockaddr_in -> sockaddr is the BSD socket ABI contract, a trusted
  // in-memory cast, not wire decoding. NOLINTNEXTLINE(unsafe-bytes)
  if (connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    const Status status = Errno("connect");
    close(fd);
    return status;
  }
  return fd;
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

}  // namespace

Result<UdwireClient> UdwireClient::Connect(const std::string& host,
                                           uint16_t port) {
  UNIDETECT_ASSIGN_OR_RETURN(const int fd, ConnectTcp(host, port));
  return UdwireClient(fd);
}

UdwireClient::UdwireClient(UdwireClient&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
  other.fd_ = -1;
}

UdwireClient& UdwireClient::operator=(UdwireClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    rx_ = std::move(other.rx_);
    other.fd_ = -1;
  }
  return *this;
}

UdwireClient::~UdwireClient() {
  if (fd_ >= 0) close(fd_);
}

Status UdwireClient::SendRaw(std::string_view bytes) {
  return WriteAll(fd_, bytes);
}

Result<wire::DetectResponse> UdwireClient::ReadResponse() {
  char buf[64 << 10];
  for (;;) {
    Result<std::optional<wire::FrameView>> parsed =
        wire::TryParseFrame(rx_, wire::kAbsoluteMaxPayload);
    UNIDETECT_RETURN_NOT_OK(parsed.status());
    if (parsed->has_value()) {
      const wire::FrameView frame = **parsed;
      if (frame.type != wire::FrameType::kDetectResponse) {
        return Status::Corruption("UDWIRE client: unexpected frame type");
      }
      Result<wire::DetectResponse> response =
          wire::DecodeDetectResponsePayload(frame.payload);
      rx_.erase(0, frame.frame_bytes);
      return response;
    }
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      rx_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("UDWIRE client: server closed the connection");
    }
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

Result<wire::DetectResponse> UdwireClient::Detect(
    const wire::DetectRequest& request) {
  UNIDETECT_RETURN_NOT_OK(SendRaw(wire::EncodeDetectRequest(request)));
  return ReadResponse();
}

Result<std::string> HttpFetch(const std::string& host, uint16_t port,
                              std::string_view method, std::string_view target,
                              std::string_view body) {
  UNIDETECT_ASSIGN_OR_RETURN(const int fd, ConnectTcp(host, port));
  std::string request = StrCat(method, " ", target,
                               " HTTP/1.1\r\nHost: ", host,
                               "\r\nConnection: close\r\n");
  if (!body.empty()) {
    StrAppend(&request, "Content-Length: ", body.size(), "\r\n");
  }
  request.append("\r\n");
  request.append(body);
  const Status sent = WriteAll(fd, request);
  if (!sent.ok()) {
    close(fd);
    return sent;
  }
  // Connection: close — the response is simply everything until EOF.
  std::string response;
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const Status status = Errno("read");
      close(fd);
      return status;
    }
    break;
  }
  close(fd);
  return response;
}

}  // namespace unidetect
