#include "server/metrics.h"

#include "util/string_util.h"

namespace unidetect {

std::string_view ServerMetricName(ServerMetric metric) {
  return kServerMetricEntries[static_cast<size_t>(metric)].name;
}

MetricsRegistry::MetricsRegistry()
    : start_(std::chrono::steady_clock::now()) {}

void MetricsRegistry::MarkRequest(std::chrono::steady_clock::time_point now) {
  const uint64_t second = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now - start_).count());
  const size_t slot = static_cast<size_t>(second % kQpsSlots);
  // Claim the slot for this second; the first writer of a new second
  // resets the count. A racing reset loses at most the handful of marks
  // that interleave with the exchange — acceptable for a rate gauge.
  if (qps_seconds_[slot].exchange(second, std::memory_order_relaxed) !=
      second) {
    qps_counts_[slot].store(0, std::memory_order_relaxed);
  }
  qps_counts_[slot].fetch_add(1, std::memory_order_relaxed);
}

double MetricsRegistry::RecentQps(
    std::chrono::steady_clock::time_point now) const {
  const uint64_t second = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now - start_).count());
  uint64_t total = 0;
  uint64_t seconds_counted = 0;
  for (size_t slot = 0; slot < kQpsSlots; ++slot) {
    const uint64_t stamped = qps_seconds_[slot].load(std::memory_order_relaxed);
    // Skip the in-progress second (partial) and stale slots from a
    // previous trip around the ring.
    if (stamped == second) continue;
    if (stamped + kQpsSlots <= second) continue;
    total += qps_counts_[slot].load(std::memory_order_relaxed);
    ++seconds_counted;
  }
  if (seconds_counted == 0) {
    // Under a second of traffic: fall back to the lifetime average so
    // short-lived probes still see a nonzero rate.
    const double uptime = uptime_seconds(now);
    if (uptime <= 0.0) return 0.0;
    return static_cast<double>(Count(ServerMetric::kRequests)) / uptime;
  }
  return static_cast<double>(total) / static_cast<double>(seconds_counted);
}

void AppendPrometheusLine(std::string_view name, std::string_view labels,
                          uint64_t value, std::string* out) {
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  StrAppend(out, " ", value, "\n");
}

void AppendPrometheusHistogram(std::string_view name,
                               const LatencyHistogram& histogram,
                               std::string* out) {
  StrAppend(out, "# TYPE ", name, " histogram\n");
  // Derive the count from the bucket snapshot (not the counter) so the
  // cumulative series is internally consistent under concurrent
  // Observe(): `_count` must equal the `+Inf` bucket exactly.
  const LatencyBuckets buckets = histogram.Snapshot();
  uint64_t count = 0;
  size_t highest_occupied = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    count += buckets[i];
    if (buckets[i] != 0) highest_occupied = i;
  }
  // Emit the occupied prefix only: every edge up to the highest bucket
  // with samples, then +Inf. An empty histogram still gets +Inf so
  // scrapers see a well-formed series.
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= highest_occupied && count != 0; ++i) {
    cumulative += buckets[i];
    StrAppend(out, name, "_bucket{le=\"", uint64_t{1} << i, "\"} ", cumulative,
              "\n");
  }
  StrAppend(out, name, "_bucket{le=\"+Inf\"} ", count, "\n");
  StrAppend(out, name, "_sum ", histogram.sum_us(), "\n");
  StrAppend(out, name, "_count ", count, "\n");
}

}  // namespace unidetect
