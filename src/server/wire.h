// UDWIRE v1: the length-prefixed binary protocol of the network front
// end (DESIGN.md §16).
//
// Every frame is a fixed 12-byte header followed by one payload:
//
//   [0..4)   magic "UDW1"
//   [4]      u8 frame type (1 = detect request, 2 = detect response)
//   [5..8)   reserved, must be zero
//   [8..12)  u32 payload length (little-endian, bounded by the server's
//            configured maximum)
//
// A detect request carries a client-chosen request id (echoed in the
// response so responses can complete out of order), a relative deadline
// in milliseconds (0 = none; enforced when the request is dequeued for
// batching), optional per-request option overrides, and the tables
// themselves encoded cell-exactly (length-prefixed strings — no CSV
// round-trip, so the served tables are byte-identical to the client's).
// A detect response is either per-table ranked findings plus the model
// generation that served them, or a typed error (WireCode) with a
// message — Overloaded and DeadlineExceeded are first-class codes, not
// dropped connections.
//
// All decoding flows through util/binary_io.h's bounded cursor with
// util/checked.h arithmetic, per the untrusted-bytes rules (DESIGN.md
// §14): a crafted length or count produces a typed error, never a crash
// or an unbounded allocation. The fuzz smoke replays mutated frames
// against these decoders (tests/snapshot_fuzz_smoke_test.cc).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "detect/finding.h"
#include "detect/unidetect.h"
#include "table/table.h"
#include "util/result.h"
#include "util/status.h"

namespace unidetect {
namespace wire {

inline constexpr std::string_view kMagic = "UDW1";
inline constexpr size_t kHeaderBytes = 12;
/// Frames larger than this are rejected outright regardless of server
/// configuration; servers typically configure a smaller bound.
inline constexpr uint32_t kAbsoluteMaxPayload = 256u << 20;
/// Table-count bound per request; the per-table payloads are bounded by
/// the frame size itself.
inline constexpr uint32_t kMaxTablesPerRequest = 4096;

enum class FrameType : uint8_t {
  kDetectRequest = 1,
  kDetectResponse = 2,
};

/// \brief Typed response codes. kOk carries findings; everything else
/// carries a message. The admission-control outcomes (kOverloaded,
/// kDeadlineExceeded, kUnavailable) are deliberately distinct codes so
/// clients can tell "back off" from "your request was bad".
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,  ///< well-framed but semantically bad request
  kMalformed = 2,        ///< undecodable payload (corrupt bytes)
  kOverloaded = 3,       ///< shed: admission queue full
  kDeadlineExceeded = 4, ///< deadline passed before the batch was cut
  kUnavailable = 5,      ///< server draining; retry against a peer
  kInternal = 6,
};

const char* WireCodeName(WireCode code);

/// \brief Per-request option overrides: a compact subset of
/// UniDetectOptions that is meaningful per request. `has_override`
/// false means "serve with the service defaults".
struct RequestOptions {
  bool has_override = false;
  double alpha = 0.05;
  double fdr_q = 0.0;
  /// Bit i enables ErrorClass(i); only the low kNumErrorClasses bits
  /// are meaningful.
  uint8_t detect_mask = 0;
  bool use_dictionary = false;
};

/// \brief Serving options for this request: `base` with the override
/// applied (when present).
UniDetectOptions ApplyRequestOptions(const UniDetectOptions& base,
                                     const RequestOptions& options);

/// \brief Canonical byte key of the override: requests with equal keys
/// may share a DetectBatch call (the coalescer's grouping key).
std::string RequestOptionsKey(const RequestOptions& options);

struct DetectRequest {
  uint64_t request_id = 0;
  /// Relative deadline in milliseconds from admission; 0 = none.
  /// Enforced when the coalescer dequeues the request.
  uint32_t deadline_ms = 0;
  RequestOptions options;
  std::vector<Table> tables;
};

struct DetectResponse {
  uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string error;  ///< set when code != kOk
  uint64_t generation = 0;
  std::vector<std::vector<Finding>> per_table;
};

/// \brief A parsed frame header + payload view into the caller's buffer.
struct FrameView {
  FrameType type = FrameType::kDetectRequest;
  std::string_view payload;
  /// Total frame size (header + payload) to consume from the buffer.
  size_t frame_bytes = 0;
};

/// \brief Incremental frame parser over a receive buffer. Returns
/// nullopt when the buffer holds only a frame prefix (read more), a
/// FrameView when a complete frame is available, and a typed error
/// (InvalidArgument for a non-UDWIRE prefix, Corruption for a hostile
/// or oversized frame) when the bytes can never become a valid frame.
Result<std::optional<FrameView>> TryParseFrame(std::string_view buffer,
                                               uint32_t max_payload);

std::string EncodeDetectRequest(const DetectRequest& request);
Result<DetectRequest> DecodeDetectRequestPayload(std::string_view payload);

std::string EncodeDetectResponse(const DetectResponse& response);
Result<DetectResponse> DecodeDetectResponsePayload(std::string_view payload);

/// \brief A complete error-response frame (header included).
std::string EncodeErrorResponseFrame(uint64_t request_id, WireCode code,
                                     std::string_view message);

/// \brief Encodes per-table findings as a complete OK response frame.
std::string EncodeOkResponseFrame(
    uint64_t request_id, uint64_t generation,
    const std::vector<std::vector<Finding>>& per_table);

}  // namespace wire
}  // namespace unidetect
