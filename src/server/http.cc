#include "server/http.h"

#include <charconv>

#include "util/checked.h"
#include "util/string_util.h"

namespace unidetect {
namespace http {

namespace {

bool EqualsIgnoreAsciiCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z'
                        ? static_cast<char>(a[i] - 'A' + 'a')
                        : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z'
                        ? static_cast<char>(b[i] - 'A' + 'a')
                        : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

Result<std::optional<Request>> TryParseRequest(std::string_view buffer,
                                               const Limits& limits) {
  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_head_bytes) {
      return Status::Corruption(
          StrCat("HTTP: header exceeds ", limits.max_head_bytes, " bytes"));
    }
    return std::optional<Request>();
  }
  if (head_end > limits.max_head_bytes) {
    return Status::Corruption(
        StrCat("HTTP: header exceeds ", limits.max_head_bytes, " bytes"));
  }
  const std::string_view head = buffer.substr(0, head_end);

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) {
    return Status::Corruption("HTTP: malformed request line (no method)");
  }
  const size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos || target_end == method_end + 1) {
    return Status::Corruption("HTTP: malformed request line (no target)");
  }
  const std::string_view version = request_line.substr(target_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::Corruption(
        StrCat("HTTP: unsupported version '", std::string(version), "'"));
  }

  Request request;
  request.method = request_line.substr(0, method_end);
  request.target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  request.keep_alive = version == "HTTP/1.1";

  // Headers: one `Name: value` per line; only Content-Length,
  // Connection and Transfer-Encoding change behavior.
  uint64_t content_length = 0;
  bool saw_content_length = false;
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 2);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::Corruption("HTTP: malformed header line");
    }
    const std::string_view name = Trim(line.substr(0, colon));
    const std::string_view value = Trim(line.substr(colon + 1));
    if (EqualsIgnoreAsciiCase(name, "content-length")) {
      // RFC 9112 §6.3: conflicting Content-Length values make framing
      // ambiguous (CL/CL smuggling behind a proxy); reject any repeat.
      if (saw_content_length) {
        return Status::Corruption("HTTP: duplicate Content-Length header");
      }
      saw_content_length = true;
      uint64_t parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        return Status::Corruption(
            StrCat("HTTP: unparseable Content-Length '", std::string(value),
                   "'"));
      }
      content_length = parsed;
    } else if (EqualsIgnoreAsciiCase(name, "connection")) {
      if (EqualsIgnoreAsciiCase(value, "close")) request.keep_alive = false;
      if (EqualsIgnoreAsciiCase(value, "keep-alive")) {
        request.keep_alive = true;
      }
    } else if (EqualsIgnoreAsciiCase(name, "transfer-encoding")) {
      return Status::Corruption(
          "HTTP: Transfer-Encoding is not supported; send Content-Length");
    }
  }

  if (content_length > limits.max_body_bytes) {
    return Status::Corruption(StrCat("HTTP: body of ", content_length,
                                     " bytes exceeds the limit of ",
                                     limits.max_body_bytes));
  }
  const uint64_t head_bytes = static_cast<uint64_t>(head_end) + 4;
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t total,
      CheckedAdd<uint64_t>(head_bytes, content_length, "HTTP request size"));
  if (buffer.size() < total) return std::optional<Request>();
  request.body = buffer.substr(static_cast<size_t>(head_bytes),
                               static_cast<size_t>(content_length));
  request.consumed = static_cast<size_t>(total);
  return std::optional<Request>(request);
}

std::string EncodeResponse(int status, std::string_view reason,
                           std::string_view content_type,
                           std::string_view body, bool keep_alive) {
  std::string out = StrCat("HTTP/1.1 ", status, " ");
  out.append(reason);
  out.append("\r\nContent-Type: ");
  out.append(content_type);
  out.append(StrCat("\r\nContent-Length: ", body.size()));
  out.append(keep_alive ? "\r\nConnection: keep-alive"
                        : "\r\nConnection: close");
  out.append("\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace http
}  // namespace unidetect
