// Minimal HTTP/1.1 adapter for the network front end: just enough of
// the protocol to serve `GET /healthz`, `GET /statz` (the metrics
// registry as JSON) and `POST /detect` (CSV body in, findings JSON
// out) to curl and load balancers. Everything fancier — chunked
// encoding, trailers, continuation lines, upgrade — is rejected with a
// typed error; UDWIRE is the production protocol and this adapter is
// the operational window onto it.
//
// Parsing is incremental over the connection's receive buffer, with
// hard bounds on header and body sizes: a peer that streams an
// unbounded header or declares a hostile Content-Length gets a typed
// error (and a 4xx) instead of growing the buffer without limit.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace unidetect {
namespace http {

/// \brief One parsed request. Header storage is borrowed from the
/// caller's buffer; copy anything that must outlive it.
struct Request {
  std::string_view method;
  std::string_view target;
  std::string_view body;
  /// False when the client sent `Connection: close`.
  bool keep_alive = true;
  /// Total bytes (head + body) to consume from the buffer.
  size_t consumed = 0;
};

struct Limits {
  size_t max_head_bytes = 64u << 10;
  size_t max_body_bytes = 8u << 20;
};

/// \brief Incremental request parser. Returns nullopt when the buffer
/// holds only a prefix (read more), a Request when one is complete, and
/// a typed error (Corruption) when the bytes cannot become an
/// acceptable request — oversized head or body, malformed request
/// line, or an unsupported transfer encoding.
Result<std::optional<Request>> TryParseRequest(std::string_view buffer,
                                               const Limits& limits);

/// \brief Serializes one response with Content-Length framing.
std::string EncodeResponse(int status, std::string_view reason,
                           std::string_view content_type,
                           std::string_view body, bool keep_alive);

}  // namespace http
}  // namespace unidetect
