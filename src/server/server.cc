#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "detect/finding_json.h"
#include "table/table.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrCat(what, ": ", strerror(errno)));
}

// Maps a wire code onto the closest HTTP status for the /detect route.
int HttpStatusFor(wire::WireCode code) {
  switch (code) {
    case wire::WireCode::kOk:
      return 200;
    case wire::WireCode::kInvalidArgument:
    case wire::WireCode::kMalformed:
      return 400;
    case wire::WireCode::kOverloaded:
    case wire::WireCode::kUnavailable:
      return 503;
    case wire::WireCode::kDeadlineExceeded:
      return 504;
    case wire::WireCode::kInternal:
      return 500;
  }
  return 500;
}

void AppendHistogramJson(const LatencyHistogram& histogram, std::string* out) {
  const LatencyBuckets buckets = histogram.Snapshot();
  // Derive the count from the snapshot itself: reading the counter
  // separately can race ahead of the buckets under concurrent
  // Observe(), skewing the percentile toward the top bucket.
  uint64_t count = 0;
  for (const uint64_t bucket : buckets) count += bucket;
  if (count == 0) {
    out->append("{\"count\":0,\"p50_us\":0,\"p99_us\":0,\"p999_us\":0}");
    return;
  }
  StrAppend(out, "{\"count\":", count, ",\"p50_us\":",
            LatencyPercentileUpperBound(buckets, count, 0.50),
            ",\"p99_us\":", LatencyPercentileUpperBound(buckets, count, 0.99),
            ",\"p999_us\":",
            LatencyPercentileUpperBound(buckets, count, 0.999), "}");
}

}  // namespace

DetectionServer::DetectionServer(DetectionService* service,
                                 ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      coalescer_(service, &metrics_, options_.coalescer) {}

DetectionServer::~DetectionServer() { Stop(); }

Status DetectionServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  if (!loop_.ok()) return loop_.status();

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr =
      htonl(options_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  // sockaddr_in -> sockaddr is the BSD socket ABI contract, a trusted
  // in-memory cast, not wire decoding. NOLINTNEXTLINE(unsafe-bytes)
  if (bind(listen_fd_, reinterpret_cast<const struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) return Errno("listen");

  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  // NOLINTNEXTLINE(unsafe-bytes) — same trusted sockaddr ABI cast.
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    return Errno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  UNIDETECT_RETURN_NOT_OK(loop_.Add(
      listen_fd_, EPOLLIN, [this](uint32_t events) { OnListenReady(events); }));

  coalescer_.Start();
  io_thread_ = std::thread([this] { loop_.Run(); });
  started_ = true;
  return Status::OK();
}

void DetectionServer::Stop() {
  if (!started_ || stopped_) {
    if (!started_ && listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  stopped_ = true;

  // 1. Stop accepting: new connections see ECONNREFUSED, existing ones
  //    keep flowing.
  loop_.Post([this] {
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      close(listen_fd_);
      listen_fd_ = -1;
    }
  });

  // 2. Drain: every admitted request completes and posts its response
  //    to the loop (this blocks until the worker has finished).
  coalescer_.Stop(/*drain=*/true);

  // 3. The final post runs after every completion post (FIFO), so all
  //    responses are in tx buffers before the flush-and-stop.
  loop_.Post([this] { FinalFlushAndStop(); });
  if (io_thread_.joinable()) io_thread_.join();
}

void DetectionServer::OnListenReady(uint32_t /*events*/) {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      metrics_.Add(ServerMetric::kConnectionsRejected);
      close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_connection_id_++;
    conn->fd = fd;
    const uint64_t id = conn->id;
    fd_to_id_[fd] = id;
    connections_[id] = std::move(conn);
    metrics_.Add(ServerMetric::kConnectionsAccepted);
    const Status added = loop_.Add(
        fd, EPOLLIN, [this, id](uint32_t events) {
          OnConnectionReady(id, events);
        });
    if (!added.ok()) CloseConnection(id);
  }
}

void DetectionServer::OnConnectionReady(uint64_t id, uint32_t events) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(id);
    return;
  }

  if (events & EPOLLIN) {
    char buf[64 << 10];
    for (;;) {
      const ssize_t n = read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        metrics_.Add(ServerMetric::kBytesRead, static_cast<uint64_t>(n));
        conn->rx.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {  // peer closed its half; nothing more will decode
        CloseConnection(id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(id);
      return;
    }
    const bool stream_ok = ConsumeRx(conn);
    // ConsumeRx may have freed conn — a synchronous HTTP
    // Connection: close response that drained, or a hard send() failure
    // inside QueueWrite on an error-path response (peer RST after a
    // malformed frame). Re-resolve by id before touching conn again on
    // EITHER return value; ids are never reused.
    const auto again = connections_.find(id);
    if (again == connections_.end()) return;
    conn = again->second.get();
    if (!stream_ok) {
      if (conn->tx.empty()) {
        CloseConnection(id);
        return;
      }
      conn->close_after_flush = true;
    }
  }

  if (events & EPOLLOUT) {
    FlushTx(conn);
    // FlushTx may close; re-check before touching conn again.
    if (connections_.find(id) == connections_.end()) return;
  }
}

bool DetectionServer::ConsumeRx(Connection* conn) {
  if (conn->protocol == Connection::Protocol::kUnknown) {
    const size_t probe = std::min(conn->rx.size(), wire::kMagic.size());
    if (conn->rx.compare(0, probe, wire::kMagic.substr(0, probe)) == 0) {
      if (conn->rx.size() < wire::kMagic.size()) return true;  // need more
      conn->protocol = Connection::Protocol::kUdwire;
    } else {
      conn->protocol = Connection::Protocol::kHttp;
    }
  }
  return conn->protocol == Connection::Protocol::kUdwire ? ConsumeUdwire(conn)
                                                         : ConsumeHttp(conn);
}

bool DetectionServer::ConsumeUdwire(Connection* conn) {
  for (;;) {
    Result<std::optional<wire::FrameView>> parsed =
        wire::TryParseFrame(conn->rx, options_.max_frame_payload);
    if (!parsed.ok()) {
      // Framing is gone; after a bad header there is no resync point.
      metrics_.Add(ServerMetric::kProtocolErrors);
      metrics_.Add(ServerMetric::kResponsesError);
      QueueWrite(conn,
                 wire::EncodeErrorResponseFrame(
                     0, wire::WireCode::kMalformed,
                     parsed.status().message()));
      return false;
    }
    if (!parsed->has_value()) return true;  // partial frame
    const wire::FrameView frame = **parsed;

    // QueueWrite may free conn on a write error; ids are never reused,
    // so re-resolving by id detects that before the loop touches rx.
    const uint64_t id = conn->id;

    if (frame.type != wire::FrameType::kDetectRequest) {
      metrics_.Add(ServerMetric::kProtocolErrors);
      metrics_.Add(ServerMetric::kResponsesError);
      conn->rx.erase(0, frame.frame_bytes);
      QueueWrite(conn, wire::EncodeErrorResponseFrame(
                           0, wire::WireCode::kInvalidArgument,
                           "unexpected frame type (want detect request)"));
      if (connections_.find(id) == connections_.end()) return true;
      continue;
    }

    Result<wire::DetectRequest> request =
        wire::DecodeDetectRequestPayload(frame.payload);
    conn->rx.erase(0, frame.frame_bytes);
    if (!request.ok()) {
      // The frame boundary held, so the stream can continue; only this
      // request is rejected.
      metrics_.Add(ServerMetric::kProtocolErrors);
      metrics_.Add(ServerMetric::kResponsesError);
      QueueWrite(conn, wire::EncodeErrorResponseFrame(
                           0, wire::WireCode::kMalformed,
                           request.status().message()));
      if (connections_.find(id) == connections_.end()) return true;
      continue;
    }
    metrics_.Add(ServerMetric::kRequests);
    SubmitDetect(conn, std::move(request).ValueOrDie());
  }
}

void DetectionServer::SubmitDetect(Connection* conn,
                                   wire::DetectRequest request) {
  const uint64_t id = conn->id;
  coalescer_.Submit(
      std::move(request), [this, id](wire::DetectResponse response) {
        std::string frame =
            response.code == wire::WireCode::kOk
                ? wire::EncodeOkResponseFrame(response.request_id,
                                              response.generation,
                                              response.per_table)
                : wire::EncodeErrorResponseFrame(
                      response.request_id, response.code, response.error);
        metrics_.MarkRequest(std::chrono::steady_clock::now());
        loop_.Post([this, id, frame = std::move(frame)] {
          const auto it = connections_.find(id);
          if (it == connections_.end()) return;  // connection went away
          QueueWrite(it->second.get(), frame);
        });
      });
}

bool DetectionServer::ConsumeHttp(Connection* conn) {
  for (;;) {
    Result<std::optional<http::Request>> parsed =
        http::TryParseRequest(conn->rx, options_.http_limits);
    if (!parsed.ok()) {
      metrics_.Add(ServerMetric::kProtocolErrors);
      QueueWrite(conn, http::EncodeResponse(
                           400, "Bad Request", "text/plain",
                           StrCat(parsed.status().message(), "\n"),
                           /*keep_alive=*/false));
      return false;
    }
    if (!parsed->has_value()) return true;  // partial request
    // `request` borrows views into conn->rx — rx must stay intact
    // until the handler returns.
    const http::Request request = **parsed;
    metrics_.Add(ServerMetric::kHttpRequests);
    const uint64_t id = conn->id;
    const size_t consumed = request.consumed;
    const bool keep_alive = request.keep_alive;
    // Connection: close — mark it before handling, so a synchronous
    // response closes the socket as its last byte drains.
    if (!keep_alive) conn->close_after_flush = true;
    HandleHttpRequest(conn, request);
    // The handler may have freed conn (close-after-flush drained, or a
    // write error); ids are never reused, so re-resolve before rx.
    if (connections_.find(id) == connections_.end()) return true;
    if (!keep_alive) return true;  // no pipelining past a final request
    conn->rx.erase(0, consumed);
  }
}

void DetectionServer::HandleHttpRequest(Connection* conn,
                                        const http::Request& request) {
  if (request.method == "GET" && request.target == "/healthz") {
    QueueWrite(conn, http::EncodeResponse(200, "OK", "text/plain", "ok\n",
                                          request.keep_alive));
    return;
  }
  if (request.method == "GET" && request.target == "/statz") {
    QueueWrite(conn, http::EncodeResponse(200, "OK", "application/json",
                                          StatzJson(), request.keep_alive));
    return;
  }
  if (request.method == "POST" && request.target == "/detect") {
    Result<CsvData> csv = ParseCsv(request.body);
    if (!csv.ok()) {
      QueueWrite(conn, http::EncodeResponse(
                           400, "Bad Request", "text/plain",
                           StrCat(csv.status().message(), "\n"),
                           request.keep_alive));
      return;
    }
    Result<Table> table = Table::FromCsv(*csv, "http");
    if (!table.ok()) {
      QueueWrite(conn, http::EncodeResponse(
                           400, "Bad Request", "text/plain",
                           StrCat(table.status().message(), "\n"),
                           request.keep_alive));
      return;
    }
    wire::DetectRequest detect;
    detect.tables.push_back(std::move(table).ValueOrDie());
    metrics_.Add(ServerMetric::kRequests);
    const uint64_t id = conn->id;
    const bool keep_alive = request.keep_alive;
    coalescer_.Submit(
        std::move(detect),
        [this, id, keep_alive](wire::DetectResponse response) {
          std::string http_response;
          if (response.code == wire::WireCode::kOk) {
            std::string body =
                StrCat("{\"generation\":", response.generation,
                       ",\"findings\":");
            body.append(response.per_table.empty()
                            ? "[]"
                            : FindingsToJson(response.per_table[0]));
            body.append("}\n");
            http_response = http::EncodeResponse(
                200, "OK", "application/json", body, keep_alive);
          } else {
            http_response = http::EncodeResponse(
                HttpStatusFor(response.code),
                wire::WireCodeName(response.code), "text/plain",
                StrCat(response.error, "\n"), keep_alive);
          }
          metrics_.MarkRequest(std::chrono::steady_clock::now());
          loop_.Post([this, id, http_response = std::move(http_response)] {
            const auto it = connections_.find(id);
            if (it == connections_.end()) return;
            QueueWrite(it->second.get(), http_response);
          });
        });
    return;
  }
  QueueWrite(conn, http::EncodeResponse(404, "Not Found", "text/plain",
                                        "no such route\n", request.keep_alive));
}

void DetectionServer::QueueWrite(Connection* conn, std::string_view bytes) {
  conn->tx.append(bytes);
  FlushTx(conn);
}

void DetectionServer::FlushTx(Connection* conn) {
  while (!conn->tx.empty()) {
    const ssize_t n =
        send(conn->fd, conn->tx.data(), conn->tx.size(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_.Add(ServerMetric::kBytesWritten, static_cast<uint64_t>(n));
      conn->tx.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.Modify(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);  // peer reset mid-write
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.Modify(conn->fd, EPOLLIN);
  }
  if (conn->close_after_flush) CloseConnection(conn->id);
}

void DetectionServer::CloseConnection(uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  loop_.Remove(conn->fd);
  fd_to_id_.erase(conn->fd);
  close(conn->fd);
  connections_.erase(it);
  metrics_.Add(ServerMetric::kConnectionsClosed);
}

void DetectionServer::FinalFlushAndStop() {
  // Every response the drain produced is already in a tx buffer (posts
  // are FIFO). Flush with bounded patience: a peer that stopped reading
  // cannot hold shutdown hostage.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (auto& [id, conn] : connections_) {
    while (!conn->tx.empty() && std::chrono::steady_clock::now() < give_up) {
      const ssize_t n =
        send(conn->fd, conn->tx.data(), conn->tx.size(), MSG_NOSIGNAL);
      if (n > 0) {
        metrics_.Add(ServerMetric::kBytesWritten, static_cast<uint64_t>(n));
        conn->tx.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      break;  // peer gone
    }
  }
  while (!connections_.empty()) {
    CloseConnection(connections_.begin()->first);
  }
  loop_.Stop();
}

std::string DetectionServer::StatzJson() const {
  const auto now = std::chrono::steady_clock::now();
  std::string out = "{";
  StrAppend(&out, "\"uptime_seconds\":", metrics_.uptime_seconds(now),
            ",\"qps_recent\":", metrics_.RecentQps(now),
            ",\"queue_depth\":", metrics_.queue_depth(), ",\"counters\":{");
  for (size_t i = 0; i < kServerMetricEntries.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendJsonString(kServerMetricEntries[i].name, &out);
    StrAppend(&out, ":", metrics_.Count(kServerMetricEntries[i].metric));
  }
  out.append("},\"request_latency\":");
  AppendHistogramJson(metrics_.request_latency(), &out);
  out.append(",\"queue_latency\":");
  AppendHistogramJson(metrics_.queue_latency(), &out);

  const ServiceStats service = service_->Stats();
  StrAppend(&out, ",\"service\":{\"requests\":", service.requests,
            ",\"tables\":", service.tables,
            ",\"findings\":", service.findings,
            ",\"generation\":", service.generation,
            ",\"reloads\":", service.reloads,
            ",\"failed_reloads\":", service.failed_reloads,
            ",\"applied_deltas\":", service.applied_deltas,
            ",\"compactions\":", service.compactions,
            ",\"delta_layers\":", service.delta_layers,
            ",\"latency_p50_us\":", service.latency_p50_us,
            ",\"latency_p99_us\":", service.latency_p99_us,
            ",\"latency_p999_us\":", service.latency_p999_us,
            ",\"model_resident_bytes\":", service.model_resident_bytes,
            ",\"model_mapped_bytes\":", service.model_mapped_bytes,
            ",\"cache_hits\":", service.cache_hits,
            ",\"cache_misses\":", service.cache_misses,
            ",\"cache_hit_rate\":", service.cache_hit_rate, "}}");
  out.push_back('\n');
  return out;
}

}  // namespace unidetect
