#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "detect/finding_json.h"
#include "table/table.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrCat(what, ": ", strerror(errno)));
}

// Maps a wire code onto the closest HTTP status for the /detect route.
int HttpStatusFor(wire::WireCode code) {
  switch (code) {
    case wire::WireCode::kOk:
      return 200;
    case wire::WireCode::kInvalidArgument:
    case wire::WireCode::kMalformed:
      return 400;
    case wire::WireCode::kOverloaded:
    case wire::WireCode::kUnavailable:
      return 503;
    case wire::WireCode::kDeadlineExceeded:
      return 504;
    case wire::WireCode::kInternal:
      return 500;
  }
  return 500;
}

void AppendHistogramJson(const LatencyHistogram& histogram, std::string* out) {
  const LatencyBuckets buckets = histogram.Snapshot();
  // Derive the count from the snapshot itself: reading the counter
  // separately can race ahead of the buckets under concurrent
  // Observe(), skewing the percentile toward the top bucket.
  uint64_t count = 0;
  for (const uint64_t bucket : buckets) count += bucket;
  if (count == 0) {
    out->append("{\"count\":0,\"p50_us\":0,\"p99_us\":0,\"p999_us\":0}");
    return;
  }
  StrAppend(out, "{\"count\":", count, ",\"p50_us\":",
            LatencyPercentileUpperBound(buckets, count, 0.50),
            ",\"p99_us\":", LatencyPercentileUpperBound(buckets, count, 0.99),
            ",\"p999_us\":",
            LatencyPercentileUpperBound(buckets, count, 0.999), "}");
}

}  // namespace

DetectionServer::DetectionServer(DetectionService* service,
                                 ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      coalescer_(service, &metrics_, options_.coalescer) {}

DetectionServer::~DetectionServer() { Stop(); }

Result<int> DetectionServer::OpenListener(uint16_t port, bool reuse_port,
                                          uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int enable = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (reuse_port &&
      setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &enable, sizeof(enable)) != 0) {
    const Status status = Errno("setsockopt(SO_REUSEPORT)");
    close(fd);
    return status;
  }

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr =
      htonl(options_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  // sockaddr_in -> sockaddr is the BSD socket ABI contract, a trusted
  // in-memory cast, not wire decoding. NOLINTNEXTLINE(unsafe-bytes)
  if (bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status = Errno("bind");
    close(fd);
    return status;
  }
  if (listen(fd, SOMAXCONN) != 0) {
    const Status status = Errno("listen");
    close(fd);
    return status;
  }

  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  // NOLINTNEXTLINE(unsafe-bytes) — same trusted sockaddr ABI cast.
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    const Status status = Errno("getsockname");
    close(fd);
    return status;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

Status DetectionServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  const size_t shard_count = std::max<size_t>(1, options_.io_threads);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    if (!shard->loop.ok()) {
      const Status status = shard->loop.status();
      shards_.clear();
      return status;
    }
    shards_.push_back(std::move(shard));
  }

  auto abort_start = [this](Status status) {
    for (auto& shard : shards_) {
      if (shard->listen_fd >= 0) {
        close(shard->listen_fd);
        shard->listen_fd = -1;
      }
    }
    shards_.clear();
    return status;
  };

  accept_handoff_ =
      shard_count > 1 &&
      options_.accept_mode == ServerOptions::AcceptMode::kHandoff;
  bool want_reuse_port = shard_count > 1 && !accept_handoff_;

  // Shard 0's listener always exists and resolves the (possibly
  // ephemeral) port the remaining shards bind.
  Result<int> first = OpenListener(options_.port, want_reuse_port,
                                   &bound_port_);
  if (!first.ok() && want_reuse_port &&
      options_.accept_mode == ServerOptions::AcceptMode::kAuto) {
    // A kernel without SO_REUSEPORT: fall back to the handoff path.
    want_reuse_port = false;
    accept_handoff_ = true;
    first = OpenListener(options_.port, /*reuse_port=*/false, &bound_port_);
  }
  if (!first.ok()) return abort_start(first.status());
  shards_[0]->listen_fd = *first;

  if (want_reuse_port) {
    for (size_t i = 1; i < shard_count; ++i) {
      uint16_t ignored = 0;
      Result<int> fd = OpenListener(bound_port_, /*reuse_port=*/true,
                                    &ignored);
      if (!fd.ok()) {
        if (options_.accept_mode == ServerOptions::AcceptMode::kReusePort) {
          return abort_start(fd.status());
        }
        // kAuto: release the extra listeners and hand off from shard 0
        // instead. Shard 0's listener keeps working either way.
        for (size_t j = 1; j < i; ++j) {
          close(shards_[j]->listen_fd);
          shards_[j]->listen_fd = -1;
        }
        accept_handoff_ = true;
        break;
      }
      shards_[i]->listen_fd = *fd;
    }
  }

  for (auto& shard : shards_) {
    if (shard->listen_fd < 0) continue;
    Shard* raw = shard.get();
    const Status added = raw->loop.Add(
        raw->listen_fd, EPOLLIN,
        [this, raw](uint32_t /*events*/) { OnListenReady(raw); });
    if (!added.ok()) return abort_start(added);
  }

  coalescer_.Start();
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([raw] { raw->loop.Run(); });
  }
  started_ = true;
  return Status::OK();
}

void DetectionServer::Stop() {
  if (!started_ || stopped_.load(std::memory_order_acquire)) return;
  stopped_.store(true, std::memory_order_release);

  // 1. Stop accepting on every shard: new connections see ECONNREFUSED,
  //    existing ones keep flowing.
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    if (raw->listen_fd < 0) continue;
    raw->loop.Post([raw] {
      if (raw->listen_fd >= 0) {
        raw->loop.Remove(raw->listen_fd);
        close(raw->listen_fd);
        raw->listen_fd = -1;
      }
    });
  }

  // 2. Drain: every admitted request completes and posts its response
  //    to its owning shard's loop (this blocks until the worker has
  //    finished).
  coalescer_.Stop(/*drain=*/true);

  // 3. Per shard, the final post runs after every completion post on
  //    that loop (FIFO), so all responses are in tx buffers before the
  //    flush-and-stop.
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->loop.Post([this, raw] { FinalFlushAndStop(raw); });
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }

  // 4. Sweep any straggler a late accept-handoff post registered after
  //    that shard's FinalFlushAndStop ran (the loops are joined, so the
  //    maps are safe to touch here).
  for (auto& shard : shards_) {
    for (auto& [id, conn] : shard->connections) close(conn->fd);
    shard->connections.clear();
    shard->fd_to_id.clear();
  }
}

void DetectionServer::OnListenReady(Shard* shard) {
  for (;;) {
    const int fd = accept4(shard->listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    // Claim a connection slot up front so the cap is one global bound
    // even when several shards accept concurrently.
    if (total_connections_.fetch_add(1, std::memory_order_relaxed) >=
        options_.max_connections) {
      total_connections_.fetch_sub(1, std::memory_order_relaxed);
      metrics_.Add(ServerMetric::kConnectionsRejected);
      close(fd);
      continue;
    }
    Shard* target = shard;
    if (accept_handoff_ && shards_.size() > 1) {
      target = shards_[shard->rr_next % shards_.size()].get();
      ++shard->rr_next;
    }
    if (target == shard) {
      RegisterConnection(shard, fd);
    } else {
      metrics_.Add(ServerMetric::kAcceptHandoffs);
      target->loop.Post(
          [this, target, fd] { RegisterConnection(target, fd); });
    }
  }
}

void DetectionServer::RegisterConnection(Shard* shard, int fd) {
  if (stopped_.load(std::memory_order_acquire)) {
    // A handed-off fd can land after shutdown began; Stop()'s final
    // sweep catches the narrow remaining race.
    total_connections_.fetch_sub(1, std::memory_order_relaxed);
    close(fd);
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->id = next_connection_id_.fetch_add(1, std::memory_order_relaxed);
  conn->fd = fd;
  const uint64_t id = conn->id;
  shard->fd_to_id[fd] = id;
  shard->connections[id] = std::move(conn);
  shard->accepted.fetch_add(1, std::memory_order_relaxed);
  shard->open_connections.fetch_add(1, std::memory_order_relaxed);
  metrics_.Add(ServerMetric::kConnectionsAccepted);
  const Status added = shard->loop.Add(
      fd, EPOLLIN, [this, shard, id](uint32_t events) {
        OnConnectionReady(shard, id, events);
      });
  if (!added.ok()) CloseConnection(shard, id);
}

void DetectionServer::OnConnectionReady(Shard* shard, uint64_t id,
                                        uint32_t events) {
  const auto it = shard->connections.find(id);
  if (it == shard->connections.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(shard, id);
    return;
  }

  if (events & EPOLLIN) {
    char buf[64 << 10];
    for (;;) {
      const ssize_t n = read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        metrics_.Add(ServerMetric::kBytesRead, static_cast<uint64_t>(n));
        conn->rx.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {  // peer closed its half; nothing more will decode
        CloseConnection(shard, id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(shard, id);
      return;
    }
    const bool stream_ok = ConsumeRx(shard, conn);
    // ConsumeRx may have freed conn — a synchronous HTTP
    // Connection: close response that drained, or a hard send() failure
    // inside QueueWrite on an error-path response (peer RST after a
    // malformed frame). Re-resolve by id before touching conn again on
    // EITHER return value; ids are never reused.
    const auto again = shard->connections.find(id);
    if (again == shard->connections.end()) return;
    conn = again->second.get();
    if (!stream_ok) {
      if (conn->tx.empty()) {
        CloseConnection(shard, id);
        return;
      }
      conn->close_after_flush = true;
    }
  }

  if (events & EPOLLOUT) {
    FlushTx(shard, conn);
    // FlushTx may close; re-check before touching conn again.
    if (shard->connections.find(id) == shard->connections.end()) return;
  }
}

bool DetectionServer::ConsumeRx(Shard* shard, Connection* conn) {
  if (conn->protocol == Connection::Protocol::kUnknown) {
    const size_t probe = std::min(conn->rx.size(), wire::kMagic.size());
    if (conn->rx.compare(0, probe, wire::kMagic.substr(0, probe)) == 0) {
      if (conn->rx.size() < wire::kMagic.size()) return true;  // need more
      conn->protocol = Connection::Protocol::kUdwire;
    } else {
      conn->protocol = Connection::Protocol::kHttp;
    }
  }
  return conn->protocol == Connection::Protocol::kUdwire
             ? ConsumeUdwire(shard, conn)
             : ConsumeHttp(shard, conn);
}

bool DetectionServer::ConsumeUdwire(Shard* shard, Connection* conn) {
  for (;;) {
    Result<std::optional<wire::FrameView>> parsed =
        wire::TryParseFrame(conn->rx, options_.max_frame_payload);
    if (!parsed.ok()) {
      // Framing is gone; after a bad header there is no resync point.
      metrics_.Add(ServerMetric::kProtocolErrors);
      metrics_.Add(ServerMetric::kResponsesError);
      QueueWrite(shard, conn,
                 wire::EncodeErrorResponseFrame(
                     0, wire::WireCode::kMalformed,
                     parsed.status().message()));
      return false;
    }
    if (!parsed->has_value()) return true;  // partial frame
    const wire::FrameView frame = **parsed;

    // QueueWrite may free conn on a write error; ids are never reused,
    // so re-resolving by id detects that before the loop touches rx.
    const uint64_t id = conn->id;

    if (frame.type != wire::FrameType::kDetectRequest) {
      metrics_.Add(ServerMetric::kProtocolErrors);
      metrics_.Add(ServerMetric::kResponsesError);
      conn->rx.erase(0, frame.frame_bytes);
      QueueWrite(shard, conn, wire::EncodeErrorResponseFrame(
                                  0, wire::WireCode::kInvalidArgument,
                                  "unexpected frame type (want detect request)"));
      if (shard->connections.find(id) == shard->connections.end()) return true;
      continue;
    }

    Result<wire::DetectRequest> request =
        wire::DecodeDetectRequestPayload(frame.payload);
    conn->rx.erase(0, frame.frame_bytes);
    if (!request.ok()) {
      // The frame boundary held, so the stream can continue; only this
      // request is rejected.
      metrics_.Add(ServerMetric::kProtocolErrors);
      metrics_.Add(ServerMetric::kResponsesError);
      QueueWrite(shard, conn, wire::EncodeErrorResponseFrame(
                                  0, wire::WireCode::kMalformed,
                                  request.status().message()));
      if (shard->connections.find(id) == shard->connections.end()) return true;
      continue;
    }
    metrics_.Add(ServerMetric::kRequests);
    SubmitDetect(shard, conn, std::move(request).ValueOrDie());
    // SubmitDetect writes inline on an over-cap refusal, and that write
    // can close the connection; re-resolve before the loop touches rx.
    const auto alive = shard->connections.find(id);
    if (alive == shard->connections.end()) return true;
    conn = alive->second.get();
  }
}

void DetectionServer::SubmitDetect(Shard* shard, Connection* conn,
                                   wire::DetectRequest request) {
  if (options_.max_in_flight_per_connection != 0 &&
      conn->in_flight >= options_.max_in_flight_per_connection) {
    // This pipelining connection already owns its fair share of the
    // admission queue; refuse this request, keep the stream alive.
    metrics_.Add(ServerMetric::kShedConnectionCap);
    metrics_.Add(ServerMetric::kResponsesError);
    QueueWrite(shard, conn,
               wire::EncodeErrorResponseFrame(
                   request.request_id, wire::WireCode::kOverloaded,
                   "per-connection in-flight cap reached"));
    return;
  }
  conn->in_flight++;
  const uint64_t id = conn->id;
  coalescer_.Submit(
      std::move(request), [this, shard, id](wire::DetectResponse response) {
        std::string frame =
            response.code == wire::WireCode::kOk
                ? wire::EncodeOkResponseFrame(response.request_id,
                                              response.generation,
                                              response.per_table)
                : wire::EncodeErrorResponseFrame(
                      response.request_id, response.code, response.error);
        metrics_.MarkRequest(std::chrono::steady_clock::now());
        shard->loop.Post([this, shard, id, frame = std::move(frame)] {
          const auto it = shard->connections.find(id);
          if (it == shard->connections.end()) return;  // connection went away
          Connection* conn = it->second.get();
          if (conn->in_flight > 0) --conn->in_flight;
          QueueWrite(shard, conn, frame);
        });
      });
}

bool DetectionServer::ConsumeHttp(Shard* shard, Connection* conn) {
  for (;;) {
    Result<std::optional<http::Request>> parsed =
        http::TryParseRequest(conn->rx, options_.http_limits);
    if (!parsed.ok()) {
      metrics_.Add(ServerMetric::kProtocolErrors);
      QueueWrite(shard, conn, http::EncodeResponse(
                                  400, "Bad Request", "text/plain",
                                  StrCat(parsed.status().message(), "\n"),
                                  /*keep_alive=*/false));
      return false;
    }
    if (!parsed->has_value()) return true;  // partial request
    // `request` borrows views into conn->rx — rx must stay intact
    // until the handler returns.
    const http::Request request = **parsed;
    metrics_.Add(ServerMetric::kHttpRequests);
    const uint64_t id = conn->id;
    const size_t consumed = request.consumed;
    const bool keep_alive = request.keep_alive;
    // Connection: close — mark it before handling, so a synchronous
    // response closes the socket as its last byte drains.
    if (!keep_alive) conn->close_after_flush = true;
    HandleHttpRequest(shard, conn, request);
    // The handler may have freed conn (close-after-flush drained, or a
    // write error); ids are never reused, so re-resolve before rx.
    if (shard->connections.find(id) == shard->connections.end()) return true;
    if (!keep_alive) return true;  // no pipelining past a final request
    conn->rx.erase(0, consumed);
  }
}

void DetectionServer::HandleHttpRequest(Shard* shard, Connection* conn,
                                        const http::Request& request) {
  if (request.method == "GET" && request.target == "/healthz") {
    QueueWrite(shard, conn, http::EncodeResponse(200, "OK", "text/plain",
                                                 "ok\n", request.keep_alive));
    return;
  }
  if (request.method == "GET" && request.target == "/statz") {
    QueueWrite(shard, conn,
               http::EncodeResponse(200, "OK", "application/json", StatzJson(),
                                    request.keep_alive));
    return;
  }
  if (request.method == "GET" && request.target == "/metrics") {
    QueueWrite(shard, conn,
               http::EncodeResponse(200, "OK", "text/plain; version=0.0.4",
                                    MetricsText(), request.keep_alive));
    return;
  }
  if (request.method == "POST" && request.target == "/detect") {
    Result<CsvData> csv = ParseCsv(request.body);
    if (!csv.ok()) {
      QueueWrite(shard, conn, http::EncodeResponse(
                                  400, "Bad Request", "text/plain",
                                  StrCat(csv.status().message(), "\n"),
                                  request.keep_alive));
      return;
    }
    Result<Table> table = Table::FromCsv(*csv, "http");
    if (!table.ok()) {
      QueueWrite(shard, conn, http::EncodeResponse(
                                  400, "Bad Request", "text/plain",
                                  StrCat(table.status().message(), "\n"),
                                  request.keep_alive));
      return;
    }
    if (options_.max_in_flight_per_connection != 0 &&
        conn->in_flight >= options_.max_in_flight_per_connection) {
      metrics_.Add(ServerMetric::kShedConnectionCap);
      QueueWrite(shard, conn,
                 http::EncodeResponse(
                     503, "Overloaded", "text/plain",
                     "per-connection in-flight cap reached\n",
                     request.keep_alive));
      return;
    }
    wire::DetectRequest detect;
    detect.tables.push_back(std::move(table).ValueOrDie());
    metrics_.Add(ServerMetric::kRequests);
    conn->in_flight++;
    const uint64_t id = conn->id;
    const bool keep_alive = request.keep_alive;
    coalescer_.Submit(
        std::move(detect),
        [this, shard, id, keep_alive](wire::DetectResponse response) {
          std::string http_response;
          if (response.code == wire::WireCode::kOk) {
            std::string body =
                StrCat("{\"generation\":", response.generation,
                       ",\"findings\":");
            body.append(response.per_table.empty()
                            ? "[]"
                            : FindingsToJson(response.per_table[0]));
            body.append("}\n");
            http_response = http::EncodeResponse(
                200, "OK", "application/json", body, keep_alive);
          } else {
            http_response = http::EncodeResponse(
                HttpStatusFor(response.code),
                wire::WireCodeName(response.code), "text/plain",
                StrCat(response.error, "\n"), keep_alive);
          }
          metrics_.MarkRequest(std::chrono::steady_clock::now());
          shard->loop.Post(
              [this, shard, id, http_response = std::move(http_response)] {
                const auto it = shard->connections.find(id);
                if (it == shard->connections.end()) return;
                Connection* conn = it->second.get();
                if (conn->in_flight > 0) --conn->in_flight;
                QueueWrite(shard, conn, http_response);
              });
        });
    return;
  }
  QueueWrite(shard, conn,
             http::EncodeResponse(404, "Not Found", "text/plain",
                                  "no such route\n", request.keep_alive));
}

void DetectionServer::QueueWrite(Shard* shard, Connection* conn,
                                 std::string_view bytes) {
  conn->tx.append(bytes);
  FlushTx(shard, conn);
}

void DetectionServer::FlushTx(Shard* shard, Connection* conn) {
  while (!conn->tx.empty()) {
    const ssize_t n =
        send(conn->fd, conn->tx.data(), conn->tx.size(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_.Add(ServerMetric::kBytesWritten, static_cast<uint64_t>(n));
      conn->tx.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        shard->loop.Modify(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(shard, conn->id);  // peer reset mid-write
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    shard->loop.Modify(conn->fd, EPOLLIN);
  }
  if (conn->close_after_flush) CloseConnection(shard, conn->id);
}

void DetectionServer::CloseConnection(Shard* shard, uint64_t id) {
  const auto it = shard->connections.find(id);
  if (it == shard->connections.end()) return;
  Connection* conn = it->second.get();
  shard->loop.Remove(conn->fd);
  shard->fd_to_id.erase(conn->fd);
  close(conn->fd);
  shard->connections.erase(it);
  shard->open_connections.fetch_sub(1, std::memory_order_relaxed);
  total_connections_.fetch_sub(1, std::memory_order_relaxed);
  metrics_.Add(ServerMetric::kConnectionsClosed);
}

void DetectionServer::FinalFlushAndStop(Shard* shard) {
  // Every response the drain produced is already in a tx buffer (posts
  // are FIFO per loop). Flush with bounded patience: a peer that
  // stopped reading cannot hold shutdown hostage.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (auto& [id, conn] : shard->connections) {
    while (!conn->tx.empty() && std::chrono::steady_clock::now() < give_up) {
      const ssize_t n =
          send(conn->fd, conn->tx.data(), conn->tx.size(), MSG_NOSIGNAL);
      if (n > 0) {
        metrics_.Add(ServerMetric::kBytesWritten, static_cast<uint64_t>(n));
        conn->tx.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      break;  // peer gone
    }
  }
  while (!shard->connections.empty()) {
    CloseConnection(shard, shard->connections.begin()->first);
  }
  shard->loop.Stop();
}

std::string DetectionServer::StatzJson() const {
  const auto now = std::chrono::steady_clock::now();
  std::string out = "{";
  StrAppend(&out, "\"uptime_seconds\":", metrics_.uptime_seconds(now),
            ",\"qps_recent\":", metrics_.RecentQps(now),
            ",\"queue_depth\":", metrics_.queue_depth(),
            ",\"io_threads\":", shards_.size(), ",\"accept_mode\":\"",
            shards_.size() <= 1 ? "single"
                                : (accept_handoff_ ? "handoff" : "reuse_port"),
            "\",\"io_shards\":[");
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i != 0) out.push_back(',');
    StrAppend(&out, "{\"accepted\":",
              shards_[i]->accepted.load(std::memory_order_relaxed),
              ",\"open_connections\":",
              shards_[i]->open_connections.load(std::memory_order_relaxed),
              "}");
  }
  out.append("],\"counters\":{");
  for (size_t i = 0; i < kServerMetricEntries.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendJsonString(kServerMetricEntries[i].name, &out);
    StrAppend(&out, ":", metrics_.Count(kServerMetricEntries[i].metric));
  }
  out.append("},\"request_latency\":");
  AppendHistogramJson(metrics_.request_latency(), &out);
  out.append(",\"queue_latency\":");
  AppendHistogramJson(metrics_.queue_latency(), &out);

  const ServiceStats service = service_->Stats();
  StrAppend(&out, ",\"service\":{\"requests\":", service.requests,
            ",\"tables\":", service.tables,
            ",\"findings\":", service.findings,
            ",\"generation\":", service.generation,
            ",\"reloads\":", service.reloads,
            ",\"failed_reloads\":", service.failed_reloads,
            ",\"applied_deltas\":", service.applied_deltas,
            ",\"compactions\":", service.compactions,
            ",\"delta_layers\":", service.delta_layers,
            ",\"latency_p50_us\":", service.latency_p50_us,
            ",\"latency_p99_us\":", service.latency_p99_us,
            ",\"latency_p999_us\":", service.latency_p999_us,
            ",\"model_resident_bytes\":", service.model_resident_bytes,
            ",\"model_mapped_bytes\":", service.model_mapped_bytes,
            ",\"cache_hits\":", service.cache_hits,
            ",\"cache_misses\":", service.cache_misses,
            ",\"cache_hit_rate\":", service.cache_hit_rate, "}}");
  out.push_back('\n');
  return out;
}

std::string DetectionServer::MetricsText() const {
  const auto now = std::chrono::steady_clock::now();
  std::string out;
  out.reserve(4096);

  // Front-end counters, one Prometheus counter per ServerMetric entry.
  for (const ServerMetricEntry& entry : kServerMetricEntries) {
    const std::string name = StrCat("unidetect_", entry.name, "_total");
    StrAppend(&out, "# TYPE ", name, " counter\n");
    AppendPrometheusLine(name, "", metrics_.Count(entry.metric), &out);
  }

  // Gauges.
  out.append("# TYPE unidetect_queue_depth gauge\n");
  AppendPrometheusLine("unidetect_queue_depth", "", metrics_.queue_depth(),
                       &out);
  out.append("# TYPE unidetect_io_threads gauge\n");
  AppendPrometheusLine("unidetect_io_threads", "", shards_.size(), &out);
  StrAppend(&out, "# TYPE unidetect_qps_recent gauge\nunidetect_qps_recent ",
            metrics_.RecentQps(now), "\n");

  // Per-shard accept counters and open-connection gauges, labelled by
  // shard index so dashboards can see kernel (or round-robin) spread.
  out.append("# TYPE unidetect_shard_accepted_total counter\n");
  for (size_t i = 0; i < shards_.size(); ++i) {
    AppendPrometheusLine("unidetect_shard_accepted_total",
                         StrCat("shard=\"", i, "\""),
                         shards_[i]->accepted.load(std::memory_order_relaxed),
                         &out);
  }
  out.append("# TYPE unidetect_shard_open_connections gauge\n");
  for (size_t i = 0; i < shards_.size(); ++i) {
    AppendPrometheusLine(
        "unidetect_shard_open_connections", StrCat("shard=\"", i, "\""),
        shards_[i]->open_connections.load(std::memory_order_relaxed), &out);
  }

  AppendPrometheusHistogram("unidetect_request_latency_microseconds",
                            metrics_.request_latency(), &out);
  AppendPrometheusHistogram("unidetect_queue_latency_microseconds",
                            metrics_.queue_latency(), &out);

  // The serving tier underneath, so one scrape covers the stack.
  const ServiceStats service = service_->Stats();
  const struct {
    const char* name;
    const char* type;
    uint64_t value;
  } service_rows[] = {
      {"unidetect_service_requests_total", "counter", service.requests},
      {"unidetect_service_tables_total", "counter", service.tables},
      {"unidetect_service_findings_total", "counter", service.findings},
      {"unidetect_service_reloads_total", "counter", service.reloads},
      {"unidetect_service_failed_reloads_total", "counter",
       service.failed_reloads},
      {"unidetect_service_applied_deltas_total", "counter",
       service.applied_deltas},
      {"unidetect_service_compactions_total", "counter", service.compactions},
      {"unidetect_service_cache_hits_total", "counter", service.cache_hits},
      {"unidetect_service_cache_misses_total", "counter",
       service.cache_misses},
      {"unidetect_service_generation", "gauge", service.generation},
      {"unidetect_service_delta_layers", "gauge", service.delta_layers},
      {"unidetect_service_model_resident_bytes", "gauge",
       service.model_resident_bytes},
      {"unidetect_service_model_mapped_bytes", "gauge",
       service.model_mapped_bytes},
  };
  for (const auto& row : service_rows) {
    StrAppend(&out, "# TYPE ", row.name, " ", row.type, "\n");
    AppendPrometheusLine(row.name, "", row.value, &out);
  }
  return out;
}

}  // namespace unidetect
