#include "repair/repair.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "metrics/dispersion.h"
#include "metrics/metric_functions.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

// Mean table-count of a cell's tokens in the background corpus; the more
// prevalent value of a near-duplicate pair is the canonical spelling.
double CellPrevalence(const TokenIndex& index, const std::string& cell) {
  const auto tokens = TokenizeCell(cell);
  if (tokens.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& token : tokens) {
    sum += static_cast<double>(index.TableCount(token));
  }
  return sum / static_cast<double>(tokens.size());
}

}  // namespace

std::vector<RepairSuggestion> Repairer::SuggestSpelling(
    const Table& table, const Finding& finding) const {
  std::vector<RepairSuggestion> out;
  if (finding.rows.size() < 2) return out;
  const Column& column = table.column(finding.column);
  const size_t row_a = finding.rows[0];
  const size_t row_b = finding.rows[1];
  const std::string& a = column.cell(row_a);
  const std::string& b = column.cell(row_b);
  const double prev_a = CellPrevalence(model_->token_index(), a);
  const double prev_b = CellPrevalence(model_->token_index(), b);
  if (prev_a == prev_b) return out;  // no canonical-form evidence

  RepairSuggestion suggestion;
  suggestion.action = RepairAction::kReplace;
  suggestion.column = finding.column;
  if (prev_a < prev_b) {
    suggestion.row = row_a;
    suggestion.current = a;
    suggestion.suggested = b;
  } else {
    suggestion.row = row_b;
    suggestion.current = b;
    suggestion.suggested = a;
  }
  suggestion.rationale =
      "'" + suggestion.suggested + "' is the more corpus-prevalent form of "
      "the near-duplicate pair";
  out.push_back(std::move(suggestion));
  return out;
}

std::vector<RepairSuggestion> Repairer::SuggestOutlier(
    const Table& table, const Finding& finding) const {
  std::vector<RepairSuggestion> out;
  if (finding.rows.empty()) return out;
  const Column& column = table.column(finding.column);
  const size_t row = finding.rows[0];
  const std::string& cell = column.cell(row);
  const auto parsed = ParseNumeric(cell);
  if (!parsed.has_value()) return out;

  // Column statistics without the suspect value.
  std::vector<double> rest;
  for (size_t i = 0; i < column.NumericValues().size(); ++i) {
    if (column.NumericRows()[i] != row) {
      rest.push_back(column.NumericValues()[i]);
    }
  }
  if (rest.size() < 3) return out;
  const double median = Median(rest);
  auto plausible = [&](double v) {
    const double score = ScoreMad(v, rest);
    return score > 0.0 ? score <= 3.5 : std::fabs(v - median) < 1e-12;
  };

  struct FixCandidate {
    double value;
    const char* why;
  };
  const double v = *parsed;
  const std::vector<FixCandidate> fixes = {
      {v * 1000.0, "missed thousands separator (value / 1000 slip)"},
      {v / 1000.0, "extra factor of 1000 (scale slip)"},
      {v * 100.0, "missed decimal shift (x100)"},
      {v / 100.0, "extra decimal shift (/100)"},
  };
  for (const auto& fix : fixes) {
    if (!plausible(fix.value)) continue;
    RepairSuggestion suggestion;
    suggestion.action = RepairAction::kReplace;
    suggestion.column = finding.column;
    suggestion.row = row;
    suggestion.current = cell;
    suggestion.suggested = FormatDouble(fix.value, 4);
    suggestion.rationale = std::string(fix.why) +
                           " brings the value inside the column's robust "
                           "range";
    out.push_back(std::move(suggestion));
    break;  // one best-guess scale fix
  }
  return out;
}

std::vector<RepairSuggestion> Repairer::SuggestUniqueness(
    const Table& table, const Finding& finding) const {
  std::vector<RepairSuggestion> out;
  const Column& column = table.column(finding.column);
  for (size_t row : finding.rows) {
    RepairSuggestion suggestion;
    suggestion.action = RepairAction::kRemoveRow;
    suggestion.column = finding.column;
    suggestion.row = row;
    suggestion.current = column.cell(row);
    suggestion.rationale =
        "duplicate of a value in a column the corpus evidence says is an "
        "identifier; the true value is unknown, review and re-enter";
    out.push_back(std::move(suggestion));
  }
  return out;
}

std::vector<RepairSuggestion> Repairer::SuggestFd(
    const Table& table, const Finding& finding) const {
  std::vector<RepairSuggestion> out;
  if (finding.column2 == Finding::kNoColumn) return out;
  const Column& lhs = table.column(finding.column);
  const Column& rhs = table.column(finding.column2);

  // If the pair is programmatic, the program is the exact repair.
  const SynthesisResult synth = SynthesizeColumnProgram(lhs, rhs);
  for (size_t row : finding.rows) {
    if (row >= rhs.size()) continue;
    if (synth.found) {
      const auto repaired = synth.program.Apply(lhs.cell(row));
      if (repaired.has_value() && *repaired != rhs.cell(row)) {
        RepairSuggestion suggestion;
        suggestion.action = RepairAction::kReplace;
        suggestion.column = finding.column2;
        suggestion.row = row;
        suggestion.current = rhs.cell(row);
        suggestion.suggested = *repaired;
        suggestion.rationale =
            "programmatic relationship y = " + synth.program.Describe() +
            " determines the value exactly";
        out.push_back(std::move(suggestion));
        continue;
      }
    }
    // Otherwise: majority rhs of this row's lhs group.
    std::unordered_map<std::string_view, size_t> votes;
    for (size_t i = 0; i < std::min(lhs.size(), rhs.size()); ++i) {
      if (i == row) continue;
      if (Trim(lhs.cell(i)) == Trim(lhs.cell(row)) &&
          !Trim(rhs.cell(i)).empty()) {
        votes[rhs.cell(i)]++;
      }
    }
    const std::string_view* best = nullptr;
    size_t best_votes = 0;
    for (const auto& [value, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best = &value;
      }
    }
    if (best == nullptr || std::string(*best) == rhs.cell(row)) continue;
    RepairSuggestion suggestion;
    suggestion.action = RepairAction::kReplace;
    suggestion.column = finding.column2;
    suggestion.row = row;
    suggestion.current = rhs.cell(row);
    suggestion.suggested = std::string(*best);
    suggestion.rationale = "majority value among rows sharing '" +
                           lhs.cell(row) + "' in column '" + lhs.name() +
                           "' (" + std::to_string(best_votes) + " vote(s))";
    out.push_back(std::move(suggestion));
  }
  return out;
}

std::vector<RepairSuggestion> Repairer::Suggest(
    const Table& table, const Finding& finding) const {
  switch (finding.error_class) {
    case ErrorClass::kSpelling:
      return SuggestSpelling(table, finding);
    case ErrorClass::kOutlier:
      return SuggestOutlier(table, finding);
    case ErrorClass::kUniqueness:
      return SuggestUniqueness(table, finding);
    case ErrorClass::kFd:
      return SuggestFd(table, finding);
    case ErrorClass::kPattern:
      return {};  // format normalization is application-specific
  }
  return {};
}

}  // namespace unidetect
