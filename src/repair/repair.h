// Repair suggestions for detected errors.
//
// Detection is "one step before error-repair" (Appendix A), but several
// Uni-Detect findings carry enough structure for a concrete fix:
//   spelling    -- rewrite the suspect value to its closest-pair partner
//                  (the partner is the canonical form when it is the more
//                  corpus-prevalent of the two)
//   outlier     -- undo scale slips: x1000 / /1000 / comma-vs-period
//                  variants that land the value back inside the column's
//                  robust range
//   fd          -- rewrite violating rows to their lhs group's majority
//                  rhs value
//   fd-synthesis -- apply the learnt program (the paper: "explicit
//                  programmatic relationships ... enable exact repair")
//   uniqueness  -- no rewrite is derivable; suggest removal for review
//
// Suggestions are exactly that: candidate fixes with a rationale, for a
// human to accept.

#pragma once

#include <string>
#include <vector>

#include "detect/finding.h"
#include "learn/model.h"
#include "synthesis/string_program.h"
#include "table/table.h"

namespace unidetect {

/// \brief What a suggestion proposes to do with a cell.
enum class RepairAction : int {
  kReplace = 0,  ///< overwrite the cell with `suggested`
  kRemoveRow,    ///< delete the row (no replacement derivable)
};

/// \brief One proposed fix.
struct RepairSuggestion {
  RepairAction action = RepairAction::kReplace;
  size_t column = 0;
  size_t row = 0;
  std::string current;
  std::string suggested;  ///< empty for kRemoveRow
  std::string rationale;
};

/// \brief Derives repair suggestions for findings.
class Repairer {
 public:
  /// `model` supplies token prevalence for canonical-form decisions; it
  /// must outlive the Repairer.
  explicit Repairer(const Model* model) : model_(model) {}

  /// \brief Suggestions for one finding in its table (possibly empty —
  /// not every error admits an automatic fix).
  std::vector<RepairSuggestion> Suggest(const Table& table,
                                        const Finding& finding) const;

 private:
  std::vector<RepairSuggestion> SuggestSpelling(const Table& table,
                                                const Finding& finding) const;
  std::vector<RepairSuggestion> SuggestOutlier(const Table& table,
                                               const Finding& finding) const;
  std::vector<RepairSuggestion> SuggestUniqueness(
      const Table& table, const Finding& finding) const;
  std::vector<RepairSuggestion> SuggestFd(const Table& table,
                                          const Finding& finding) const;

  const Model* model_;
};

}  // namespace unidetect
