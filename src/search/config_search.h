// Configuration search (Definition 5): given spaces of metric functions
// M and perturbations P, find the configurations (m, P) that maximize
// statistically surprising discoveries on target tables D:
//
//   argmax |{ D : min_O LR(D, D_O^P) < alpha }|
//
// The paper's intuition: only *aligned* configurations — a perturbation
// that actually moves its metric, like (max-MAD, drop-most-outlying) or
// (MPD, drop-closest-pair) — can produce surprising ratios; mismatched
// combos (e.g. UR metric with drop-closest-pair perturbation) barely move
// the metric and discover nothing. This module instantiates that search
// over column-level metrics.

#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/token_index.h"
#include "learn/model.h"
#include "table/column.h"

namespace unidetect {

/// \brief Column-level metric functions in the search space M.
enum class MetricKind : int {
  kMaxMad = 0,   ///< most outlying value's MAD score (Section 3.1)
  kMaxSd,        ///< same with SD scores
  kMpd,          ///< minimum pair-wise edit distance (Section 3.2)
  kUr,           ///< uniqueness ratio (Section 3.3)
};
constexpr int kNumMetricKinds = 4;
const char* MetricKindToString(MetricKind kind);

/// \brief Perturbations in the search space P (each selects <= epsilon
/// rows to hypothetically remove).
enum class PerturbationKind : int {
  kDropMostOutlying = 0,  ///< the value with the highest MAD score
  kDropClosestPair,       ///< one endpoint of the closest value pair
  kDropDuplicates,        ///< extra occurrences of repeated values
};
constexpr int kNumPerturbationKinds = 3;
const char* PerturbationKindToString(PerturbationKind kind);

/// \brief One point of the configuration space.
struct Configuration {
  MetricKind metric = MetricKind::kMaxMad;
  PerturbationKind perturbation = PerturbationKind::kDropMostOutlying;
  bool featurize = true;

  std::string ToString() const;
};

/// \brief Metric evaluation: value of `kind` on a column, or invalid.
struct MetricValue {
  bool valid = false;
  double value = 0.0;
};
MetricValue EvalMetric(MetricKind kind, const Column& column);

/// \brief Suspicious-tail direction of each metric.
SurpriseDirection DirectionOfMetric(MetricKind kind);

/// \brief Rows selected by a perturbation, capped at `epsilon`.
std::vector<size_t> SelectPerturbationRows(PerturbationKind kind,
                                           const Column& column,
                                           size_t epsilon);

/// \brief Search options.
struct ConfigSearchOptions {
  double alpha = 0.01;
  EpsilonPolicy epsilon;
  uint64_t min_support = 30;
  double pseudocount = 1.0;
  size_t min_column_rows = 8;
};

/// \brief Result for one configuration: how many target columns it
/// discovers (LR below alpha), per Definition 5.
struct ConfigResult {
  Configuration config;
  size_t discoveries = 0;
  size_t candidates = 0;  ///< columns where metric + perturbation applied
};

/// \brief Evaluates every (metric, perturbation) configuration: learns
/// its statistics from `background` and counts discoveries on `targets`.
/// Returned results are sorted by discoveries, descending.
std::vector<ConfigResult> SearchConfigurations(
    const Corpus& background, const Corpus& targets,
    const ConfigSearchOptions& options = {});

}  // namespace unidetect
