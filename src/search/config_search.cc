#include "search/config_search.h"

#include <algorithm>
#include <unordered_map>

#include "featurize/buckets.h"
#include "metrics/dispersion.h"
#include "metrics/metric_functions.h"

namespace unidetect {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kMaxMad:
      return "max-MAD";
    case MetricKind::kMaxSd:
      return "max-SD";
    case MetricKind::kMpd:
      return "MPD";
    case MetricKind::kUr:
      return "UR";
  }
  return "?";
}

const char* PerturbationKindToString(PerturbationKind kind) {
  switch (kind) {
    case PerturbationKind::kDropMostOutlying:
      return "drop-most-outlying";
    case PerturbationKind::kDropClosestPair:
      return "drop-closest-pair";
    case PerturbationKind::kDropDuplicates:
      return "drop-duplicates";
  }
  return "?";
}

std::string Configuration::ToString() const {
  std::string out = MetricKindToString(metric);
  out += " + ";
  out += PerturbationKindToString(perturbation);
  if (!featurize) out += " (no featurization)";
  return out;
}

MetricValue EvalMetric(MetricKind kind, const Column& column) {
  MetricValue out;
  switch (kind) {
    case MetricKind::kMaxMad: {
      const MaxScore score = MaxMadScore(column.NumericValues());
      if (score.valid && column.NumericFraction() >= 0.8) {
        out.valid = true;
        out.value = score.score;
      }
      return out;
    }
    case MetricKind::kMaxSd: {
      const MaxScore score = MaxSdScore(column.NumericValues());
      if (score.valid && column.NumericFraction() >= 0.8) {
        out.valid = true;
        out.value = score.score;
      }
      return out;
    }
    case MetricKind::kMpd: {
      const MpdProfile profile = ComputeMpdProfile(column);
      if (profile.valid) {
        out.valid = true;
        out.value = static_cast<double>(profile.mpd);
      }
      return out;
    }
    case MetricKind::kUr: {
      const UrProfile profile = ComputeUrProfile(column);
      if (profile.valid) {
        out.valid = true;
        out.value = profile.ur;
      }
      return out;
    }
  }
  return out;
}

SurpriseDirection DirectionOfMetric(MetricKind kind) {
  switch (kind) {
    case MetricKind::kMaxMad:
    case MetricKind::kMaxSd:
      return SurpriseDirection::kHigherMoreSurprising;
    case MetricKind::kMpd:
    case MetricKind::kUr:
      return SurpriseDirection::kLowerMoreSurprising;
  }
  return SurpriseDirection::kHigherMoreSurprising;
}

std::vector<size_t> SelectPerturbationRows(PerturbationKind kind,
                                           const Column& column,
                                           size_t epsilon) {
  std::vector<size_t> rows;
  switch (kind) {
    case PerturbationKind::kDropMostOutlying: {
      const MaxScore score = MaxMadScore(column.NumericValues());
      if (score.valid) rows.push_back(column.NumericRows()[score.index]);
      break;
    }
    case PerturbationKind::kDropClosestPair: {
      const MpdProfile profile = ComputeMpdProfile(column);
      if (profile.valid) rows.push_back(profile.drop_row);
      break;
    }
    case PerturbationKind::kDropDuplicates: {
      rows = ComputeUrProfile(column).duplicate_rows;
      break;
    }
  }
  if (rows.size() > epsilon) rows.resize(epsilon);
  return rows;
}

namespace {

// Generic subset key for the search: configuration index x column type x
// row bucket. (Class-specific extra dimensions are deliberately absent —
// the search compares raw (m, P) pairings.)
FeatureKey SearchKey(size_t config_index, const Column& column,
                     bool featurize) {
  uint64_t key = config_index;
  if (featurize) {
    key |= static_cast<uint64_t>(column.type()) << 8;
    key |= static_cast<uint64_t>(RowCountBucket(column.size())) << 11;
  }
  return FeatureKey{key};
}

struct Transition {
  bool valid = false;
  FeatureKey key;
  double theta1 = 0.0;
  double theta2 = 0.0;
};

Transition ExtractTransition(const Configuration& config, size_t config_index,
                             const Column& column,
                             const ConfigSearchOptions& options) {
  Transition out;
  if (column.size() < options.min_column_rows) return out;
  const MetricValue before = EvalMetric(config.metric, column);
  if (!before.valid) return out;
  const size_t epsilon = options.epsilon.AllowedRows(column.size());
  const std::vector<size_t> rows =
      SelectPerturbationRows(config.perturbation, column, epsilon);
  if (rows.empty()) return out;
  const MetricValue after =
      EvalMetric(config.metric, column.WithoutRows(rows));
  if (!after.valid) return out;
  out.valid = true;
  out.key = SearchKey(config_index, column, config.featurize);
  out.theta1 = before.value;
  out.theta2 = after.value;
  return out;
}

}  // namespace

std::vector<ConfigResult> SearchConfigurations(
    const Corpus& background, const Corpus& targets,
    const ConfigSearchOptions& options) {
  // Enumerate the configuration space.
  std::vector<Configuration> configs;
  for (int m = 0; m < kNumMetricKinds; ++m) {
    for (int p = 0; p < kNumPerturbationKinds; ++p) {
      Configuration config;
      config.metric = static_cast<MetricKind>(m);
      config.perturbation = static_cast<PerturbationKind>(p);
      configs.push_back(config);
    }
  }

  // Learn each configuration's statistics from the background corpus.
  // One Model holds every configuration's subsets (keys are disjoint by
  // config index).
  ModelOptions model_options;
  model_options.min_support = options.min_support;
  model_options.pseudocount = options.pseudocount;
  model_options.epsilon = options.epsilon;
  model_options.min_column_rows = options.min_column_rows;
  Model model(model_options);
  for (const auto& table : background.tables) {
    for (const auto& column : table.columns()) {
      for (size_t i = 0; i < configs.size(); ++i) {
        const Transition tr =
            ExtractTransition(configs[i], i, column, options);
        if (tr.valid) model.AddObservation(tr.key, tr.theta1, tr.theta2);
      }
    }
  }
  model.Finalize();

  // Count discoveries on the target corpus (Definition 5's objective).
  std::vector<ConfigResult> results(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) results[i].config = configs[i];
  // The LR direction is the metric's; reuse the model's machinery by
  // mapping metric direction onto a pseudo error class.
  for (const auto& table : targets.tables) {
    for (const auto& column : table.columns()) {
      for (size_t i = 0; i < configs.size(); ++i) {
        const Transition tr =
            ExtractTransition(configs[i], i, column, options);
        if (!tr.valid) continue;
        results[i].candidates++;
        const ErrorClass pseudo_class =
            DirectionOfMetric(configs[i].metric) ==
                    SurpriseDirection::kHigherMoreSurprising
                ? ErrorClass::kOutlier
                : ErrorClass::kUniqueness;
        const double lr = model.LikelihoodRatio(pseudo_class, tr.key,
                                                tr.theta1, tr.theta2);
        if (lr < options.alpha) results[i].discoveries++;
      }
    }
  }

  std::sort(results.begin(), results.end(),
            [](const ConfigResult& a, const ConfigResult& b) {
              return a.discoveries > b.discoveries;
            });
  return results;
}

}  // namespace unidetect
