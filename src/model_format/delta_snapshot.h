// Delta UDSNAP artifacts: small v2 model snapshots chained to a base
// snapshot by content hash (DESIGN.md §15).
//
// A delta is an ordinary v2 model trained over only the *new* corpus
// shards, plus one extra section (kDeltaManifest, id 13) naming the
// chain it extends:
//
//   kDeltaManifest  u32 manifest_version = 1
//                   u32 reserved = 0
//                   u64 base_id     artifact id of the chain's base
//                   u64 parent_id   artifact id of the layer directly
//                                   below this delta (== base_id for the
//                                   first delta, depth 1)
//                   u64 depth       1-based position above the base
//
// The artifact id is FNV-1a-64 over the container's header and section
// table bytes. The table embeds every section's CRC-32, so the id
// commits to the full content of the file while costing O(#sections) to
// compute — cheap enough to verify on every ApplyDelta. The trust model
// is integrity, not authenticity: the chain detects mixed-up, reordered,
// or stale artifacts (apply-time errors, never silent corruption), and
// the per-section CRCs below it detect bit rot; neither defends against
// an attacker who can rewrite both a delta and its manifest.
//
// Because id 13 is additive and sits above every other section id, old
// readers CRC-check and skip it: a delta decodes as a plain model
// everywhere a model is accepted. Only the serving tier interprets the
// chain (DetectionService::ApplyDelta refuses full Reload of a delta and
// vice versa).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace unidetect {

/// \brief Chain link carried by a delta artifact (section 13 payload).
struct DeltaManifest {
  uint64_t base_id = 0;    ///< artifact id of the chain's base snapshot
  uint64_t parent_id = 0;  ///< artifact id of the layer directly below
  uint64_t depth = 0;      ///< 1-based layer position above the base
};

/// \brief Decode bound on DeltaManifest::depth. A hostile layer count in
/// a crafted manifest is rejected as Corruption before any caller sizes
/// anything by it.
inline constexpr uint64_t kMaxDeltaDepth = 4096;

/// \brief The 32-byte wire payload of the kDeltaManifest section.
std::string EncodeDeltaManifestPayload(const DeltaManifest& manifest);

/// \brief Strict payload decode: exact length, known version, zero
/// reserved field, 1 <= depth <= kMaxDeltaDepth, and parent == base at
/// depth 1. Anything else is Corruption (newer manifest versions are
/// NotImplemented, mirroring the container policy).
Result<DeltaManifest> DecodeDeltaManifestPayload(std::string_view payload);

/// \brief Content-committing artifact id of any UDSNAP container:
/// FNV-1a-64 over the header and section table bytes (which embed every
/// payload's CRC-32). Corruption when `bytes` is not a UDSNAP container
/// or the table is truncated.
Result<uint64_t> SnapshotArtifactId(std::string_view bytes);

/// \brief Locates and decodes the kDeltaManifest section of a UDSNAP
/// container, CRC-checking it regardless of validation mode (it is 32
/// bytes). nullopt when the container carries no manifest — i.e. the
/// artifact is a base, not a delta.
Result<std::optional<DeltaManifest>> FindDeltaManifest(std::string_view bytes);

/// \brief What the serving tier needs to know about an artifact before
/// deciding how to load it.
struct SnapshotIdentity {
  uint64_t artifact_id = 0;
  /// Present iff the artifact is a delta.
  std::optional<DeltaManifest> manifest;
};

/// \brief Reads `path` and resolves its identity. IOError when the file
/// is unreadable; Corruption when it is not a UDSNAP container (legacy
/// text models have no identity — callers treat them as id-less bases).
/// I/O is bounded by the header, section table, and 32-byte manifest
/// payload — never the bulk sections — so the Reload/ApplyDelta hot
/// path stays O(#sections) regardless of snapshot size.
Result<SnapshotIdentity> ReadSnapshotIdentity(const std::string& path);

}  // namespace unidetect
